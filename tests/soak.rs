//! Soak test: every feature enabled at once on one long mixed run —
//! QVISOR with monitor and live adaptation, heterogeneous host/switch
//! schedulers, three tenants (reliable + CBR), fault injection — checking
//! the global invariants that must survive any feature interaction.

use qvisor::core::{MonitorConfig, SynthConfig, TenantSpec, UnknownTenantAction, ViolationAction};
use qvisor::netsim::{NewCbr, NewFlow, QvisorSetup, SchedulerKind, SimConfig, Simulation};
use qvisor::ranking::{ByteCountFq, Edf, PFabric, RankRange};
use qvisor::sim::{Nanos, SimRng, TenantId};
use qvisor::topology::{LeafSpine, LeafSpineConfig};
use qvisor::workloads::{EmpiricalCdf, PoissonFlowGen};

const T1: TenantId = TenantId(1);
const T2: TenantId = TenantId(2);
const T3: TenantId = TenantId(3);
const T_UNKNOWN: TenantId = TenantId(9); // no spec: exercises BestEffort

#[test]
fn everything_on_at_once() {
    let fabric = LeafSpine::build(&LeafSpineConfig::small());
    let hosts = fabric.all_hosts();
    let specs = vec![
        TenantSpec::new(T1, "T1", "pFabric", RankRange::new(0, 100_000)).with_levels(256),
        TenantSpec::new(T2, "T2", "EDF", RankRange::new(0, 500)).with_levels(64),
        TenantSpec::new(T3, "T3", "FQ", RankRange::new(0, 10_000)).with_levels(64),
    ];
    let cfg = SimConfig {
        seed: 99,
        random_loss: 0.01,
        horizon: Nanos::from_millis(250),
        scheduler: SchedulerKind::Pifo,
        host_scheduler: Some(SchedulerKind::Fifo),
        adaptation_interval: Some(Nanos::from_millis(10)),
        qvisor: Some(QvisorSetup {
            specs,
            policy: "T1 >> T2 + T3".into(),
            synth: SynthConfig::default(),
            unknown: UnknownTenantAction::BestEffort,
            scope: Default::default(),
            monitor: Some(MonitorConfig {
                violation_action: ViolationAction::Clamp,
                idle_after: Nanos::from_millis(30),
                drift_ratio: 4.0,
            }),
        }),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(fabric.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(T1, Box::new(PFabric::default_datacenter()));
    sim.register_rank_fn(T2, Box::new(Edf::default_datacenter()));
    sim.register_rank_fn(T3, Box::new(ByteCountFq::new(1_460, 10_000)));
    // T_UNKNOWN has no rank fn and no spec: rank 0, best-effort band.

    let rng = SimRng::seed_from(99);
    let sizes = EmpiricalCdf::web_search().scaled(1, 20);
    let flows = PoissonFlowGen {
        tenant: T1,
        hosts: &hosts,
        sizes: &sizes,
        rate_flows_per_sec: 10_000.0,
    }
    .generate(200, &mut rng.derive(1));
    let mut offered_t1 = 0u64;
    for f in &flows {
        offered_t1 += f.size;
        sim.add_generated(f);
    }
    for i in 0..3u64 {
        sim.add_cbr(NewCbr {
            tenant: T2,
            src: hosts[i as usize],
            dst: hosts[hosts.len() - 1 - i as usize],
            rate_bps: 150_000_000,
            pkt_size: 1_500,
            start: Nanos::ZERO,
            stop: Nanos::from_millis(60),
            deadline_offset: Nanos::from_micros(500),
        });
    }
    for i in 0..2u64 {
        sim.add_flow(NewFlow::new(
            T3,
            hosts[(3 + i) as usize],
            hosts[((6 + i) % 8) as usize],
            1_000_000,
            Nanos::from_millis(5 * i),
        ));
        sim.add_flow(NewFlow::new(
            T_UNKNOWN,
            hosts[(5 + i) as usize],
            hosts[((2 + i) % 8) as usize],
            100_000,
            Nanos::from_millis(3 * i),
        ));
    }

    let r = sim.run();

    // Invariant 1: everything reliable completes despite loss + adaptation.
    assert_eq!(r.incomplete_flows, 0, "all reliable flows must finish");
    assert_eq!(r.fct.count(Some(T1)), 200);
    assert_eq!(r.fct.count(Some(T3)), 2);
    assert_eq!(
        r.fct.count(Some(T_UNKNOWN)),
        2,
        "best-effort still delivers"
    );

    // Invariant 2: byte conservation per reliable tenant.
    assert_eq!(r.tenant(T1).delivered_bytes, offered_t1);
    assert_eq!(r.tenant(T3).delivered_bytes, 2 * 1_000_000);
    assert_eq!(r.tenant(T_UNKNOWN).delivered_bytes, 2 * 100_000);

    // Invariant 3: accounting is consistent — per-tenant payload drops are
    // covered by per-node drops (which also include ACKs/fault injection).
    let node_total: u64 = r.node_drops.values().sum();
    let tenant_total: u64 = [T1, T2, T3, T_UNKNOWN]
        .iter()
        .map(|&t| r.tenant(t).dropped_pkts)
        .sum();
    assert!(node_total >= tenant_total);
    assert!(node_total >= r.random_losses);

    // Invariant 4: the features actually fired.
    assert!(r.random_losses > 0, "fault injection ran");
    assert!(
        r.reconfigurations >= 1,
        "drift tightening should trigger (T1 uses a sliver of [0,100000])"
    );
    assert!(
        r.tenant(T2).deadline_met + r.tenant(T2).deadline_missed > 0,
        "deadline accounting ran"
    );

    // Invariant 5: determinism, all features on.
    // (A second identical run must agree exactly.)
    // -- rebuilt inline to avoid factoring the whole setup into a closure.
    let events_first = r.events;
    let fct_first = r
        .fct
        .mean_fct_ms(Some(T1), qvisor::transport::SizeBucket::ALL);
    let again = {
        let mut sim = Simulation::new(
            fabric.topology.clone(),
            SimConfig {
                seed: 99,
                random_loss: 0.01,
                horizon: Nanos::from_millis(250),
                scheduler: SchedulerKind::Pifo,
                host_scheduler: Some(SchedulerKind::Fifo),
                adaptation_interval: Some(Nanos::from_millis(10)),
                qvisor: Some(QvisorSetup {
                    specs: vec![
                        TenantSpec::new(T1, "T1", "pFabric", RankRange::new(0, 100_000))
                            .with_levels(256),
                        TenantSpec::new(T2, "T2", "EDF", RankRange::new(0, 500)).with_levels(64),
                        TenantSpec::new(T3, "T3", "FQ", RankRange::new(0, 10_000)).with_levels(64),
                    ],
                    policy: "T1 >> T2 + T3".into(),
                    synth: SynthConfig::default(),
                    unknown: UnknownTenantAction::BestEffort,
                    scope: Default::default(),
                    monitor: Some(MonitorConfig {
                        violation_action: ViolationAction::Clamp,
                        idle_after: Nanos::from_millis(30),
                        drift_ratio: 4.0,
                    }),
                }),
                ..SimConfig::default()
            },
        )
        .unwrap();
        sim.register_rank_fn(T1, Box::new(PFabric::default_datacenter()));
        sim.register_rank_fn(T2, Box::new(Edf::default_datacenter()));
        sim.register_rank_fn(T3, Box::new(ByteCountFq::new(1_460, 10_000)));
        let rng = SimRng::seed_from(99);
        let flows = PoissonFlowGen {
            tenant: T1,
            hosts: &hosts,
            sizes: &sizes,
            rate_flows_per_sec: 10_000.0,
        }
        .generate(200, &mut rng.derive(1));
        for f in &flows {
            sim.add_generated(f);
        }
        for i in 0..3u64 {
            sim.add_cbr(NewCbr {
                tenant: T2,
                src: hosts[i as usize],
                dst: hosts[hosts.len() - 1 - i as usize],
                rate_bps: 150_000_000,
                pkt_size: 1_500,
                start: Nanos::ZERO,
                stop: Nanos::from_millis(60),
                deadline_offset: Nanos::from_micros(500),
            });
        }
        for i in 0..2u64 {
            sim.add_flow(NewFlow::new(
                T3,
                hosts[(3 + i) as usize],
                hosts[((6 + i) % 8) as usize],
                1_000_000,
                Nanos::from_millis(5 * i),
            ));
            sim.add_flow(NewFlow::new(
                T_UNKNOWN,
                hosts[(5 + i) as usize],
                hosts[((2 + i) % 8) as usize],
                100_000,
                Nanos::from_millis(3 * i),
            ));
        }
        sim.run()
    };
    assert_eq!(again.events, events_first);
    assert_eq!(
        again
            .fct
            .mean_fct_ms(Some(T1), qvisor::transport::SizeBucket::ALL),
        fct_first
    );
}
