//! Wall-clock self-profiler: scoped timers around the simulator's own hot
//! paths (event dispatch, scheduler enqueue/dequeue, policy synthesis).
//!
//! Unlike every other collector in this crate, the profiler measures *host*
//! wall-clock time, not simulated time — it answers "where does the
//! simulator spend its cycles", not "where do packets spend theirs". Its
//! numbers therefore vary run to run and are deliberately kept out of
//! anything the determinism suite compares byte-for-byte; they surface in
//! the `profile` section of `qvisor telemetry report`.
//!
//! Usage: fetch a [`Profiler`] once per site via `Telemetry::profiler`, then
//! wrap each occurrence in a scope guard:
//!
//! ```
//! # let telemetry = qvisor_telemetry::Telemetry::enabled();
//! let dispatch = telemetry.profiler("event_dispatch");
//! {
//!     let _span = dispatch.time();
//!     // ... hot work ...
//! } // guard drop records the elapsed wall time
//! ```
//!
//! With the `enabled` feature off, both types are zero-sized and every
//! method is an empty inlined body — no `Instant::now` calls survive.

/// Aggregated wall-clock statistics for one profiled site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfileStat {
    /// Number of recorded scopes.
    pub count: u64,
    /// Total wall-clock nanoseconds across all scopes.
    pub total_ns: u64,
    /// Shortest scope, 0 if none recorded.
    pub min_ns: u64,
    /// Longest scope.
    pub max_ns: u64,
}

impl ProfileStat {
    /// Fold one scope's elapsed time into the aggregate.
    pub fn record(&mut self, ns: u64) {
        self.min_ns = if self.count == 0 {
            ns
        } else {
            self.min_ns.min(ns)
        };
        self.max_ns = self.max_ns.max(ns);
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
    }

    /// Mean nanoseconds per scope (0 if none recorded).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Fold another site's aggregate in (the sharded engine's telemetry
    /// merge: each worker profiles its own dispatch loop, and the merged
    /// stat describes all of them together).
    pub fn merge(&mut self, other: &ProfileStat) {
        if other.count == 0 {
            return;
        }
        self.min_ns = if self.count == 0 {
            other.min_ns
        } else {
            self.min_ns.min(other.min_ns)
        };
        self.max_ns = self.max_ns.max(other.max_ns);
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
    }
}

#[cfg(feature = "enabled")]
pub use live_profiler::{ProfileSpan, Profiler};

#[cfg(feature = "enabled")]
mod live_profiler {
    use super::ProfileStat;
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::time::Instant;

    /// Handle to one profiled site's aggregate. Cloning shares the
    /// aggregate; the default value is disabled (records nothing).
    #[derive(Clone, Default)]
    pub struct Profiler(pub(crate) Option<Rc<RefCell<ProfileStat>>>);

    impl std::fmt::Debug for Profiler {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Profiler(count={})", self.stat().count)
        }
    }

    impl Profiler {
        /// Start a scope; the elapsed wall time is recorded when the
        /// returned guard drops. Disabled handles never read the clock.
        #[inline]
        pub fn time(&self) -> ProfileSpan {
            ProfileSpan(
                self.0
                    .as_ref()
                    .map(|stat| (Instant::now(), Rc::clone(stat))),
            )
        }

        /// Record an externally measured scope duration.
        #[inline]
        pub fn record_ns(&self, ns: u64) {
            if let Some(stat) = &self.0 {
                stat.borrow_mut().record(ns);
            }
        }

        /// Snapshot of the aggregate so far (zeros when disabled).
        pub fn stat(&self) -> ProfileStat {
            self.0
                .as_ref()
                .map_or_else(ProfileStat::default, |s| *s.borrow())
        }
    }

    /// Scope guard returned by [`Profiler::time`]; records on drop.
    #[must_use = "dropping immediately records a ~0ns scope"]
    pub struct ProfileSpan(Option<(Instant, Rc<RefCell<ProfileStat>>)>);

    impl Drop for ProfileSpan {
        fn drop(&mut self) {
            if let Some((started, stat)) = self.0.take() {
                let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                stat.borrow_mut().record(ns);
            }
        }
    }
}

#[cfg(not(feature = "enabled"))]
pub use noop_profiler::{ProfileSpan, Profiler};

#[cfg(not(feature = "enabled"))]
mod noop_profiler {
    use super::ProfileStat;

    /// No-op profiler handle (telemetry compiled out).
    #[derive(Clone, Copy, Default, Debug)]
    pub struct Profiler;

    impl Profiler {
        /// A guard that does nothing on drop.
        #[inline(always)]
        pub fn time(&self) -> ProfileSpan {
            ProfileSpan
        }

        /// No-op.
        #[inline(always)]
        pub fn record_ns(&self, _ns: u64) {}

        /// Always zeros.
        #[inline(always)]
        pub fn stat(&self) -> ProfileStat {
            ProfileStat::default()
        }
    }

    /// No-op scope guard.
    #[must_use = "dropping immediately records a ~0ns scope"]
    #[derive(Clone, Copy)]
    pub struct ProfileSpan;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_aggregates_count_total_min_max() {
        let mut s = ProfileStat::default();
        for ns in [30, 10, 20] {
            s.record(ns);
        }
        assert_eq!(s.count, 3);
        assert_eq!(s.total_ns, 60);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 30);
        assert_eq!(s.mean_ns(), 20);
    }

    #[test]
    fn empty_stat_is_all_zero() {
        let s = ProfileStat::default();
        assert_eq!(s.mean_ns(), 0);
        assert_eq!(s.min_ns, 0);
    }

    #[cfg(feature = "enabled")]
    mod live {
        #[test]
        fn scope_guard_records_on_drop() {
            let t = crate::Telemetry::enabled();
            let p = t.profiler("unit_test_site");
            {
                let _span = p.time();
                std::hint::black_box(42);
            }
            p.record_ns(1_000);
            let stat = p.stat();
            assert_eq!(stat.count, 2);
            assert!(stat.total_ns >= 1_000);
        }

        #[test]
        fn disabled_profiler_records_nothing() {
            let t = crate::Telemetry::disabled();
            let p = t.profiler("site");
            drop(p.time());
            p.record_ns(5);
            assert_eq!(p.stat(), super::super::ProfileStat::default());
        }

        #[test]
        fn refetching_shares_the_aggregate() {
            let t = crate::Telemetry::enabled();
            t.profiler("site").record_ns(7);
            t.profiler("site").record_ns(3);
            assert_eq!(t.profiler("site").stat().count, 2);
        }
    }
}
