//! The packet-level network simulator (the repo's Netbench equivalent).
//!
//! A deterministic discrete-event loop over output-queued nodes: hosts run
//! transport state machines and tag packets with tenant ranks; every output
//! port owns a scheduler-model queue; switches (and hosts) run QVISOR's
//! pre-processor at egress when deployed. Links have a serialization rate
//! and a propagation delay; routing is precomputed ECMP.
//!
//! The implementation is split by concern:
//!
//! * [`mod@self`] — the [`Simulation`] state, construction (including the
//!   QVISOR synthesis/deployment hookup), and the event dispatch loop;
//! * `traffic` — traffic sources: reliable flows and CBR streams, packet
//!   emission, and retransmission timers;
//! * `forward` — device/port forwarding: the pre-processor and monitor
//!   hookup, queueing, and link serialization;
//! * `deliver` — destination-side delivery, ACK generation, and per-tenant
//!   stats collection;
//! * `queues` — per-port scheduler-model queue construction.

mod deliver;
mod forward;
mod queues;
#[cfg(test)]
mod tests;
mod traffic;

pub use traffic::{NewCbr, NewFlow};

use crate::config::SimConfig;
use crate::report::SimReport;
use qvisor_core::{JointPolicy, Policy, PreProcessor, QvisorError, RuntimeAdapter, RuntimeMonitor};
use qvisor_ranking::{RankCtx, RankFn};
use qvisor_sim::{
    json::Value, EventQueue, FlowId, Nanos, NodeId, PacketArena, PacketSlot, SimRng, TenantId,
};
use qvisor_telemetry::{Profiler, TraceKind, TraceRecord};
use qvisor_topology::{Routes, Topology};
use std::collections::BTreeMap;

use queues::{Port, TenantMetrics};
use traffic::FlowState;

#[derive(Clone, Copy, Debug)]
pub(in crate::sim) enum Event {
    FlowStart(FlowId),
    CbrEmit(FlowId),
    PortFree {
        node: NodeId,
        port: usize,
    },
    Arrive {
        node: NodeId,
    },
    Timeout {
        flow: FlowId,
        seq: u64,
        attempt: u32,
    },
    /// Periodic control-plane tick driving runtime adaptation.
    ControlTick,
    /// Periodic goodput sampling tick.
    Sample,
}

/// The simulator. Build with [`Simulation::new`], register tenant rank
/// functions, add traffic, then [`Simulation::run`].
pub struct Simulation {
    pub(in crate::sim) topo: Topology,
    pub(in crate::sim) routes: Routes,
    pub(in crate::sim) cfg: SimConfig,
    pub(in crate::sim) joint: Option<JointPolicy>,
    pub(in crate::sim) preproc: Option<PreProcessor>,
    pub(in crate::sim) monitor: Option<RuntimeMonitor>,
    pub(in crate::sim) adapter: Option<RuntimeAdapter>,
    /// The event core. Payloads are `Copy`: packets in flight are parked
    /// in `arena` and referenced by slot, so scheduling an event moves a
    /// few words instead of boxing a packet.
    pub(in crate::sim) events: EventQueue<(Event, Option<PacketSlot>)>,
    /// In-flight packet storage (freelist-recycled; no per-packet allocation
    /// on the forwarding path).
    pub(in crate::sim) arena: PacketArena,
    pub(in crate::sim) ports: Vec<Vec<Port>>,
    /// `port_of[node][neighbor raw id]` = port index.
    pub(in crate::sim) port_of: Vec<BTreeMap<u32, usize>>,
    pub(in crate::sim) flows: Vec<FlowState>,
    pub(in crate::sim) rank_fns: Vec<Option<Box<dyn RankFn>>>,
    pub(in crate::sim) rng: SimRng,
    pub(in crate::sim) report: SimReport,
    pub(in crate::sim) reliable_total: u64,
    pub(in crate::sim) reliable_done: u64,
    pub(in crate::sim) cbr_live: u64,
    pub(in crate::sim) in_flight: u64,
    /// Bytes delivered per tenant since the last sampling tick.
    pub(in crate::sim) window_bytes: BTreeMap<TenantId, u64>,
    pub(in crate::sim) tenant_metrics: BTreeMap<TenantId, TenantMetrics>,
    /// Wall-clock cost of handling one event (self-profiler site).
    pub(in crate::sim) dispatch_prof: Profiler,
}

impl Simulation {
    /// Build a simulation over `topo` with `cfg`. Synthesizes and deploys
    /// the QVISOR joint policy when configured.
    pub fn new(topo: Topology, cfg: SimConfig) -> Result<Simulation, QvisorError> {
        let routes = Routes::compute(&topo);
        let (joint, preproc, monitor, adapter) = match &cfg.qvisor {
            Some(setup) => {
                let policy = Policy::parse(&setup.policy)?;
                // determinism: allowed (self-profiler measures host
                // synthesis cost; stripped from deterministic exports)
                let started = std::time::Instant::now(); // determinism: allowed
                let joint = qvisor_core::synthesize(&setup.specs, &policy, setup.synth)?;
                let synth_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                cfg.telemetry
                    .histogram("runtime_synth_ns", &[])
                    .record(synth_ns);
                cfg.telemetry.profiler("synthesize").record_ns(synth_ns);
                cfg.telemetry.gauge("runtime_transform_version", &[]).set(1);
                let preproc = PreProcessor::new(&joint, setup.unknown);
                let monitor = setup
                    .monitor
                    .map(|mc| RuntimeMonitor::new(&setup.specs, mc));
                let adapter = match (cfg.adaptation_interval, setup.monitor) {
                    (Some(_), Some(mc)) => Some(
                        RuntimeAdapter::new(setup.specs.clone(), policy.clone(), setup.synth, mc)
                            .with_telemetry(&cfg.telemetry),
                    ),
                    (Some(_), None) => {
                        return Err(QvisorError::Deployment(
                            "adaptation_interval requires a runtime monitor".into(),
                        ))
                    }
                    _ => None,
                };
                (Some(joint), Some(preproc), monitor, adapter)
            }
            None => {
                if cfg.adaptation_interval.is_some() {
                    return Err(QvisorError::Deployment(
                        "adaptation_interval requires a QVISOR deployment".into(),
                    ));
                }
                (None, None, None, None)
            }
        };

        let (ports, port_of) = queues::build_ports(&topo, &cfg, joint.as_ref())?;
        let rng = SimRng::seed_from(cfg.seed).derive(0x5157_4953);
        let events = EventQueue::with_core(cfg.event_core);
        let dispatch_prof = cfg.telemetry.profiler("event_dispatch");
        Ok(Simulation {
            topo,
            routes,
            cfg,
            joint,
            preproc,
            monitor,
            adapter,
            events,
            arena: PacketArena::with_capacity(64),
            ports,
            port_of,
            flows: Vec::new(),
            rank_fns: Vec::new(),
            rng,
            report: SimReport::default(),
            reliable_total: 0,
            reliable_done: 0,
            cbr_live: 0,
            in_flight: 0,
            window_bytes: BTreeMap::new(),
            tenant_metrics: BTreeMap::new(),
            dispatch_prof,
        })
    }

    /// The synthesized joint policy, when QVISOR is deployed.
    pub fn joint_policy(&self) -> Option<&JointPolicy> {
        self.joint.as_ref()
    }

    /// Register the rank function computing `tenant`'s packet ranks at the
    /// end hosts. Tenants without one emit rank 0.
    pub fn register_rank_fn(&mut self, tenant: TenantId, f: Box<dyn RankFn>) {
        if self.rank_fns.len() <= tenant.index() {
            self.rank_fns.resize_with(tenant.index() + 1, || None);
        }
        self.rank_fns[tenant.index()] = Some(f);
    }

    pub(in crate::sim) fn compute_rank(&mut self, tenant: TenantId, ctx: &RankCtx) -> u64 {
        match self
            .rank_fns
            .get_mut(tenant.index())
            .and_then(|f| f.as_mut())
        {
            Some(f) => f.rank(ctx),
            None => 0,
        }
    }

    fn all_traffic_done(&self) -> bool {
        self.reliable_done == self.reliable_total && self.cbr_live == 0 && self.in_flight == 0
    }

    /// One control-plane tick: feed the monitor's view to the adapter;
    /// on a proposal, re-synthesize and hot-reload the pre-processor.
    ///
    /// Queue contents keep their old transformed ranks until they drain —
    /// the transition cost §2 acknowledges ("emptying the buffers") — but
    /// every packet processed after the reload uses the new joint policy.
    fn control_tick(&mut self, now: Nanos) {
        let (Some(adapter), Some(monitor), Some(preproc)) = (
            self.adapter.as_mut(),
            self.monitor.as_ref(),
            self.preproc.as_mut(),
        ) else {
            return;
        };
        if let Some(proposal) = adapter.propose(monitor, now) {
            if let Ok(Some(new_joint)) = adapter.apply(&proposal) {
                preproc.reload(&new_joint);
                self.joint = Some(new_joint);
                self.report.reconfigurations += 1;
                self.cfg.telemetry.event(
                    now,
                    "reconfiguration",
                    &[("total", Value::from(self.report.reconfigurations))],
                );
            }
        }
    }

    /// Run to quiescence or the horizon; returns the report.
    pub fn run(mut self) -> SimReport {
        if let Some(interval) = self.cfg.adaptation_interval {
            assert!(
                interval > Nanos::ZERO,
                "adaptation interval must be positive"
            );
            self.events.schedule(interval, (Event::ControlTick, None));
        }
        if let Some(interval) = self.cfg.sample_interval {
            assert!(interval > Nanos::ZERO, "sample interval must be positive");
            self.events.schedule(interval, (Event::Sample, None));
        }
        while let Some(t) = self.events.peek_time() {
            if t > self.cfg.horizon {
                break;
            }
            if self.all_traffic_done() {
                break;
            }
            let (now, (ev, packet)) = self.events.pop().expect("peeked");
            self.report.events += 1;
            self.report.end_time = now;
            let _dispatch = self.dispatch_prof.time();
            match ev {
                Event::FlowStart(flow) => {
                    if self.cfg.tracer.sampled(flow.0) {
                        if let FlowState::Reliable { sender, .. } = &self.flows[flow.index()] {
                            let def = *sender.def();
                            self.cfg.tracer.record(TraceRecord::new(
                                now,
                                flow.0,
                                0,
                                def.tenant.0,
                                TraceKind::FlowStart { size: def.size },
                            ));
                        }
                    }
                    let sends = match &mut self.flows[flow.index()] {
                        FlowState::Reliable { sender, .. } => sender.on_start(now),
                        FlowState::Cbr { .. } => unreachable!("FlowStart on CBR"),
                    };
                    for req in sends {
                        self.send_data(flow, req, 0, now);
                    }
                }
                Event::CbrEmit(flow) => self.emit_cbr(flow, now),
                Event::PortFree { node, port } => {
                    self.ports[node.index()][port].busy = false;
                    self.try_transmit(node, port, now);
                }
                Event::Arrive { node } => {
                    let p = self.arena.take(packet.expect("Arrive carries a packet"));
                    self.on_arrive(node, p, now);
                }
                Event::Timeout { flow, seq, attempt } => {
                    let req = match &mut self.flows[flow.index()] {
                        FlowState::Reliable { sender, .. } => sender.on_timeout(seq, now),
                        FlowState::Cbr { .. } => None,
                    };
                    if let Some(req) = req {
                        self.send_data(flow, req, attempt + 1, now);
                    }
                }
                Event::ControlTick => {
                    self.control_tick(now);
                    let interval = self.cfg.adaptation_interval.expect("tick implies interval");
                    if now + interval <= self.cfg.horizon {
                        self.events
                            .schedule(now + interval, (Event::ControlTick, None));
                    }
                }
                Event::Sample => {
                    for (&tenant, bytes) in self.window_bytes.iter_mut() {
                        if *bytes > 0 {
                            self.report.samples.push((now, tenant, *bytes));
                            *bytes = 0;
                        }
                    }
                    let interval = self.cfg.sample_interval.expect("tick implies interval");
                    if now + interval <= self.cfg.horizon {
                        self.events.schedule(now + interval, (Event::Sample, None));
                    }
                }
            }
        }
        // Flush the final partial sampling window so the series sums to
        // the delivered bytes.
        if self.cfg.sample_interval.is_some() {
            let at = self.report.end_time;
            for (&tenant, bytes) in self.window_bytes.iter_mut() {
                if *bytes > 0 {
                    self.report.samples.push((at, tenant, *bytes));
                    *bytes = 0;
                }
            }
        }
        self.report.incomplete_flows = self.reliable_total - self.reliable_done;
        self.report
    }
}
