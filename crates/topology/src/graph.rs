//! Network graph: nodes (hosts/switches) and directed capacitated links.

use qvisor_sim::{Nanos, NodeId};

/// What kind of device a node is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host: sources and sinks traffic, never forwards.
    Host,
    /// A switch: forwards traffic, owns scheduled output ports.
    Switch,
}

/// A node in the topology.
#[derive(Clone, Debug)]
pub struct Node {
    /// Stable identifier; equals the node's index in [`Topology::nodes`].
    pub id: NodeId,
    /// Host or switch.
    pub kind: NodeKind,
    /// Human-readable name for logs and error messages.
    pub name: String,
}

/// A directed link. Physical cables are modelled as two directed links.
#[derive(Clone, Copy, Debug)]
pub struct Link {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Serialization rate in bits per second.
    pub rate_bps: u64,
    /// Propagation delay.
    pub delay: Nanos,
}

/// An immutable network topology.
///
/// Built once via [`TopologyBuilder`] (or the canned constructors in
/// [`crate::builders`]), then shared read-only by routing and the simulator.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Outgoing link indices per node, in insertion order (= port order).
    out_links: Vec<Vec<usize>>,
}

impl Topology {
    /// Start building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// All nodes, indexable by `NodeId::index()`.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All directed links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Node metadata.
    ///
    /// # Panics
    /// Panics if `id` is not a node of this topology.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The directed link from `from` to `to`, if one exists.
    pub fn link_between(&self, from: NodeId, to: NodeId) -> Option<&Link> {
        self.out_links[from.index()]
            .iter()
            .map(|&i| &self.links[i])
            .find(|l| l.to == to)
    }

    /// Outgoing links of `from`, in port order.
    pub fn out_links(&self, from: NodeId) -> impl Iterator<Item = &Link> + '_ {
        self.out_links[from.index()].iter().map(|&i| &self.links[i])
    }

    /// Neighbors reachable in one hop from `from`, in port order.
    pub fn neighbors(&self, from: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_links(from).map(|l| l.to)
    }

    /// All host nodes.
    pub fn hosts(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Host)
            .map(|n| n.id)
    }

    /// All switch nodes.
    pub fn switches(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Switch)
            .map(|n| n.id)
    }

    /// Number of host nodes.
    pub fn host_count(&self) -> usize {
        self.hosts().count()
    }
}

/// Incremental topology construction.
#[derive(Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl TopologyBuilder {
    /// Add a node; returns its id.
    pub fn add_node(&mut self, kind: NodeKind, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            kind,
            name: name.into(),
        });
        id
    }

    /// Add a host node.
    pub fn add_host(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Host, name)
    }

    /// Add a switch node.
    pub fn add_switch(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Switch, name)
    }

    /// Add one directed link.
    ///
    /// # Panics
    /// Panics on unknown endpoints, self-loops, zero rate, or a duplicate
    /// directed link.
    pub fn add_directed_link(&mut self, from: NodeId, to: NodeId, rate_bps: u64, delay: Nanos) {
        assert!(from.index() < self.nodes.len(), "unknown node {from}");
        assert!(to.index() < self.nodes.len(), "unknown node {to}");
        assert_ne!(from, to, "self-loop on {from}");
        assert!(rate_bps > 0, "link rate must be positive");
        assert!(
            !self.links.iter().any(|l| l.from == from && l.to == to),
            "duplicate link {from}->{to}"
        );
        self.links.push(Link {
            from,
            to,
            rate_bps,
            delay,
        });
    }

    /// Add a bidirectional link (two directed links with equal properties).
    pub fn add_link(&mut self, a: NodeId, b: NodeId, rate_bps: u64, delay: Nanos) {
        self.add_directed_link(a, b, rate_bps, delay);
        self.add_directed_link(b, a, rate_bps, delay);
    }

    /// Finish construction.
    pub fn build(self) -> Topology {
        let mut out_links = vec![Vec::new(); self.nodes.len()];
        for (i, l) in self.links.iter().enumerate() {
            out_links[l.from.index()].push(i);
        }
        Topology {
            nodes: self.nodes,
            links: self.links,
            out_links,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        let mut b = Topology::builder();
        let h0 = b.add_host("h0");
        let s0 = b.add_switch("s0");
        let h1 = b.add_host("h1");
        b.add_link(h0, s0, 1_000, Nanos(10));
        b.add_link(s0, h1, 2_000, Nanos(20));
        b.build()
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let t = triangle();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.node(NodeId(0)).name, "h0");
        assert_eq!(t.node(NodeId(1)).kind, NodeKind::Switch);
    }

    #[test]
    fn links_are_bidirectional() {
        let t = triangle();
        assert_eq!(t.links().len(), 4);
        let l = t.link_between(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(l.rate_bps, 1_000);
        let back = t.link_between(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(back.delay, Nanos(10));
        assert!(t.link_between(NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn host_and_switch_iterators() {
        let t = triangle();
        assert_eq!(t.hosts().collect::<Vec<_>>(), vec![NodeId(0), NodeId(2)]);
        assert_eq!(t.switches().collect::<Vec<_>>(), vec![NodeId(1)]);
        assert_eq!(t.host_count(), 2);
    }

    #[test]
    fn neighbors_in_port_order() {
        let t = triangle();
        assert_eq!(
            t.neighbors(NodeId(1)).collect::<Vec<_>>(),
            vec![NodeId(0), NodeId(2)]
        );
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let mut b = Topology::builder();
        let h = b.add_host("h");
        b.add_link(h, h, 1, Nanos(1));
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn rejects_duplicate_link() {
        let mut b = Topology::builder();
        let a = b.add_host("a");
        let c = b.add_host("c");
        b.add_directed_link(a, c, 1, Nanos(1));
        b.add_directed_link(a, c, 1, Nanos(1));
    }

    #[test]
    #[should_panic(expected = "link rate must be positive")]
    fn rejects_zero_rate() {
        let mut b = Topology::builder();
        let a = b.add_host("a");
        let c = b.add_host("c");
        b.add_directed_link(a, c, 0, Nanos(1));
    }
}
