//! The differential oracle: does the static verifier's verdict agree with
//! what actually happens on an exact PIFO?
//!
//! Three independent cross-checks per case:
//!
//! * **Witness replay** — every diagnostic carrying a [`Witness`] is
//!   re-executed through the real `TransformChain::apply`. The recorded
//!   outputs must match, the inputs must lie in the declared range, and
//!   error-severity refutations must reproduce the claimed misbehavior:
//!   a QV-NONMONO pair must actually invert on an exact PIFO, a
//!   QV-COLLAPSE / QV-OVERFLOW pair must actually collide, and a
//!   cross-tenant QV-STRICT-OVERLAP / QV-STRICT-ORDER pair must actually
//!   misorder two tenants that `>>` promised to isolate.
//! * **Queue oracle** — sampled inputs from every scheduled tenant are
//!   pushed through an `InstrumentedQueue<PifoQueue>` (the exact-PIFO
//!   inversion mirror, which must stay at zero) and the drain order is
//!   replayed at strict-level granularity through an
//!   `InstrumentedQueue<FifoQueue>`, whose inversion mirror then counts
//!   exactly the cross-tenant strict-level inversions of the schedule.
//! * **Scenario oracle** — non-error deployments are materialized into a
//!   dumbbell [`ScenarioSpec`] and run through the scenario `Engine` with
//!   the flight recorder on; the trace is scanned for dequeues that
//!   overtook a resident packet of a strictly higher-priority tenant.
//!
//! A policy the verifier proved isolated (no QV-STRICT-* finding at any
//! severity) must show **zero** cross-tenant inversions in both oracles;
//! anything else is recorded as a disagreement and handed to the
//! minimizer.
//!
//! [`Witness`]: qvisor_core::Witness
//! [`ScenarioSpec`]: qvisor_netsim::ScenarioSpec

use std::collections::BTreeMap;

use qvisor_core::{verify, DiagCode, Diagnostic, JointPolicy, Severity, SpecPaths, VerifyReport};
use qvisor_netsim::scenario::{
    FlowDecl, QvisorSpec, SchedulerSpec, ScopeSpec, SimSpec, SynthSpec, TenantDecl, TimeRef,
    TopologySpec, WorkloadSpec,
};
use qvisor_netsim::{Engine, ScenarioSpec};
use qvisor_scheduler::{Capacity, FifoQueue, InstrumentedQueue, PacketQueue, PifoQueue};
use qvisor_sim::{FlowId, Nanos, NodeId, Packet, TenantId};
use qvisor_telemetry::{Telemetry, TraceConfig, TraceData, TraceKind, Tracer};

use crate::gen::{FuzzCase, STREAM_ORACLE, STREAM_SCENARIO};

/// The verifier's verdict class for a case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// No warnings or errors (infos allowed).
    Clean,
    /// Warnings but no errors.
    Warnings,
    /// At least one error-severity finding.
    Errors,
}

impl Verdict {
    /// Classify a report.
    pub fn of(report: &VerifyReport) -> Verdict {
        match report.worst() {
            Some(Severity::Error) => Verdict::Errors,
            Some(Severity::Warning) => Verdict::Warnings,
            _ => Verdict::Clean,
        }
    }

    /// Stable label used in summaries and corpus documents.
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Clean => "clean",
            Verdict::Warnings => "warnings",
            Verdict::Errors => "errors",
        }
    }

    /// Parse a corpus label.
    pub fn parse(s: &str) -> Option<Verdict> {
        match s {
            "clean" => Some(Verdict::Clean),
            "warnings" => Some(Verdict::Warnings),
            "errors" => Some(Verdict::Errors),
            _ => None,
        }
    }
}

/// Everything the oracle concluded about one case.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// Case index within its campaign.
    pub index: u64,
    /// Verifier verdict class.
    pub verdict: Verdict,
    /// Distinct QV-* codes in the report, sorted.
    pub codes: Vec<String>,
    /// Diagnostics whose witnesses were replayed through the chains.
    pub witnesses_checked: usize,
    /// Cross-tenant strict-level inversions observed by the queue oracle
    /// (only counted when the verifier proved isolation).
    pub cross_inversions: u64,
    /// Whether the end-to-end scenario oracle ran for this case.
    pub scenario_ran: bool,
    /// Verifier-vs-simulation disagreements (empty = conformant).
    pub disagreements: Vec<String>,
}

/// Run the full differential oracle on a case (scenario oracle included).
pub fn run_case(case: &FuzzCase) -> CaseOutcome {
    run_case_with(case, true)
}

/// Run the oracle, optionally skipping the end-to-end scenario stage
/// (corpus replays skip it: the recorded expectation covers the verifier
/// verdict and the queue oracle, which are cheap and self-contained).
pub fn run_case_with(case: &FuzzCase, run_scenario: bool) -> CaseOutcome {
    let mut disagreements = Vec::new();

    let joint = match case.config.synthesize() {
        Ok(j) => j,
        Err(e) => {
            // The generator only emits structurally sound configs; a
            // synthesis failure is itself a conformance finding.
            disagreements.push(format!("generated config failed to synthesize: {e}"));
            return CaseOutcome {
                index: case.index,
                verdict: Verdict::Errors,
                codes: Vec::new(),
                witnesses_checked: 0,
                cross_inversions: 0,
                scenario_ran: false,
                disagreements,
            };
        }
    };
    let report = verify(&joint, &SpecPaths::config());
    let verdict = Verdict::of(&report);
    let codes: Vec<String> = {
        let mut set: Vec<String> = report
            .diagnostics
            .iter()
            .map(|d| d.code.as_str().to_string())
            .collect();
        set.sort();
        set.dedup();
        set
    };

    let mut witnesses_checked = 0;
    for diag in &report.diagnostics {
        if diag.witness.is_some() {
            witnesses_checked += 1;
            replay_witness(&joint, diag, &mut disagreements);
        }
    }

    // Only a strict-level overlap/misorder can produce cross-tenant
    // inversions; witness-less suspicions are downgraded to warnings but
    // still void the isolation proof, so the zero-inversion assertion
    // only applies when no QV-STRICT-* finding exists at any severity.
    let isolation_proven = !report
        .diagnostics
        .iter()
        .any(|d| matches!(d.code, DiagCode::StrictOverlap | DiagCode::StrictOrder));

    let mut cross_inversions = 0;
    if !report.has_errors() {
        let (pifo_inversions, cross) = queue_oracle(case, &joint, &report);
        cross_inversions = cross;
        if pifo_inversions > 0 {
            disagreements.push(format!(
                "exact PIFO reported {pifo_inversions} intra-queue rank inversions (must be 0)"
            ));
        }
        if cross > 0 && isolation_proven {
            disagreements.push(format!(
                "verifier proved strict isolation but the PIFO schedule shows \
                 {cross} cross-tenant strict-level inversions"
            ));
        }
    }

    let mut scenario_ran = false;
    if run_scenario && !report.gate_fails(false) {
        scenario_ran = true;
        match scenario_oracle(case, &report) {
            Ok(inversions) => {
                if inversions > 0 && isolation_proven {
                    disagreements.push(format!(
                        "verifier proved strict isolation but the scenario engine's trace \
                         shows {inversions} cross-tenant strict-level inversions"
                    ));
                }
            }
            Err(e) => disagreements.push(format!(
                "scenario engine refused a deployment the verifier admitted: {e}"
            )),
        }
    }

    CaseOutcome {
        index: case.index,
        verdict,
        codes,
        witnesses_checked,
        cross_inversions,
        scenario_ran,
        disagreements,
    }
}

/// Index of the tenant declaration a `tenants.N…` span points at.
fn tenant_index_of_span(span: &str) -> Option<usize> {
    let rest = span.strip_prefix("tenants.")?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Re-execute a diagnostic's witness through the real chains and check
/// that it demonstrates what the diagnostic claims.
fn replay_witness(joint: &JointPolicy, diag: &Diagnostic, disagreements: &mut Vec<String>) {
    let Some(w) = diag.witness else { return };
    let fail = |msg: String, out: &mut Vec<String>| {
        out.push(format!("{} witness at {}: {msg}", diag.code, diag.span));
    };

    if let Some(idx) = tenant_index_of_span(&diag.span) {
        // Intra-tenant witness: both inputs go through the same chain.
        let Some(spec) = joint.specs.get(idx) else {
            return fail(
                format!(
                    "span names tenant {idx} but only {} specs exist",
                    joint.specs.len()
                ),
                disagreements,
            );
        };
        let Some(chain) = joint.chain(spec.id) else {
            return fail("span names an unscheduled tenant".into(), disagreements);
        };
        if !spec.range.contains(w.input_a) || !spec.range.contains(w.input_b) {
            return fail(
                format!(
                    "inputs {}/{} outside declared {}",
                    w.input_a, w.input_b, spec.range
                ),
                disagreements,
            );
        }
        if chain.apply(w.input_a) != w.output_a || chain.apply(w.input_b) != w.output_b {
            return fail(format!(
                "chain.apply disagrees with recorded outputs: f({}) = {} (recorded {}), f({}) = {} (recorded {})",
                w.input_a, chain.apply(w.input_a), w.output_a,
                w.input_b, chain.apply(w.input_b), w.output_b,
            ), disagreements);
        }
        if diag.severity != Severity::Error {
            return;
        }
        match diag.code {
            DiagCode::NonMonotone => {
                if !(w.input_a < w.input_b && w.output_a > w.output_b) {
                    return fail(
                        "claimed inversion pair is not inverted".into(),
                        disagreements,
                    );
                }
                // The misbehavior must be observable: an exact PIFO pops
                // the later (larger-input) packet first.
                if !pifo_pops_b_first(w.input_a, w.output_a, w.input_b, w.output_b) {
                    fail(
                        "pair does not invert on an exact PIFO".into(),
                        disagreements,
                    );
                }
            }
            DiagCode::OrderCollapse | DiagCode::Overflow
                if w.input_a == w.input_b || w.output_a != w.output_b =>
            {
                fail(
                    "claimed collision pair does not collide".into(),
                    disagreements,
                );
            }
            _ => {}
        }
    } else {
        // Cross-tenant witness at the policy span: input_a belongs to the
        // higher-priority tenant, input_b to the lower. Some tenant pair
        // separated by `>>` must reproduce both applications with the
        // misordered (or colliding) outputs.
        if w.output_a < w.output_b {
            return fail(
                "cross-tenant witness outputs are correctly ordered".into(),
                disagreements,
            );
        }
        let reproduced = joint.specs.iter().enumerate().any(|(i, hi)| {
            joint.specs.iter().enumerate().any(|(j, lo)| {
                i != j
                    && joint.chain(hi.id).is_some_and(|c| {
                        hi.range.contains(w.input_a) && c.apply(w.input_a) == w.output_a
                    })
                    && joint.chain(lo.id).is_some_and(|c| {
                        lo.range.contains(w.input_b) && c.apply(w.input_b) == w.output_b
                    })
            })
        });
        if !reproduced {
            fail(
                "no tenant pair reproduces the recorded applications".into(),
                disagreements,
            );
        }
    }
}

/// Does an exact PIFO holding both packets pop `b` (enqueued second)
/// first? Demonstrates that `a`'s transformed rank overtakes it.
fn pifo_pops_b_first(input_a: u64, out_a: u64, input_b: u64, out_b: u64) -> bool {
    let telemetry = Telemetry::disabled();
    let mut q = InstrumentedQueue::new(
        PifoQueue::new(Capacity::UNBOUNDED),
        &telemetry,
        "fuzz.witness",
    );
    q.enqueue(packet(1, 0, input_a, out_a), Nanos::ZERO);
    q.enqueue(packet(1, 1, input_b, out_b), Nanos::ZERO);
    let first = q.dequeue(Nanos::ZERO).expect("two packets queued");
    first.rank == input_b && first.seq == 1
}

/// A data packet carrying `input` as its tenant rank and `output` as the
/// transformed rank the PIFO sorts on.
fn packet(tenant: u16, seq: u64, input: u64, output: u64) -> Packet {
    let mut p = Packet::data(
        FlowId(u64::from(tenant)),
        TenantId(tenant),
        seq,
        100,
        NodeId(0),
        NodeId(1),
        input,
        Nanos::ZERO,
    );
    p.txf_rank = output;
    p
}

/// Sample `count` inputs from a declared range.
fn sample_input(rng: &mut qvisor_sim::SimRng, min: u64, max: u64) -> u64 {
    let span = max - min;
    if span == u64::MAX {
        rng.next()
    } else {
        min + rng.below(span + 1)
    }
}

/// Drive sampled per-tenant traffic through an exact PIFO and count
/// cross-tenant strict-level inversions in its drain order.
///
/// Returns `(intra-queue txf-rank inversions, cross-tenant strict-level
/// inversions)`. The first must always be zero (the PIFO is exact); the
/// second is measured by replaying the pop order into a FIFO whose
/// mirror ranks are the strict-level indices — FIFO preserves the pop
/// order, so its `InstrumentedQueue` inversion mirror counts exactly the
/// dequeues that overtook a resident packet of a strictly
/// higher-priority (lower-level) tenant.
fn queue_oracle(case: &FuzzCase, joint: &JointPolicy, report: &VerifyReport) -> (u64, u64) {
    const ROUNDS: u64 = 32;
    let mut rng = case.rng(STREAM_ORACLE);
    let telemetry = Telemetry::enabled();
    let mut pifo =
        InstrumentedQueue::new(PifoQueue::new(Capacity::UNBOUNDED), &telemetry, "fuzz.pifo");

    let mut level_of: BTreeMap<u16, u64> = BTreeMap::new();
    let mut seq = 0;
    for _ in 0..ROUNDS {
        for t in &report.tenants {
            level_of.insert(t.tenant.0, t.level as u64);
            let Some(chain) = joint.chain(t.tenant) else {
                continue;
            };
            let input = sample_input(&mut rng, t.declared.min, t.declared.max);
            pifo.enqueue(
                packet(t.tenant.0, seq, input, chain.apply(input)),
                Nanos::ZERO,
            );
            seq += 1;
        }
    }

    let mut popped = Vec::new();
    while let Some(p) = pifo.dequeue(Nanos::ZERO) {
        popped.push(p);
    }
    let pifo_inversions = pifo.inversion_count();

    let mut fifo = InstrumentedQueue::new(
        FifoQueue::new(Capacity::UNBOUNDED),
        &telemetry,
        "fuzz.levels",
    );
    for mut p in popped {
        p.txf_rank = level_of.get(&p.tenant.0).copied().unwrap_or(u64::MAX);
        fifo.enqueue(p, Nanos::ZERO);
    }
    while fifo.dequeue(Nanos::ZERO).is_some() {}

    (pifo_inversions, fifo.inversion_count())
}

/// Materialize the case as a dumbbell scenario: one sender/receiver pair
/// and one short flow per tenant, all contending for one bottleneck.
fn scenario_spec(case: &FuzzCase) -> ScenarioSpec {
    let mut rng = case.rng(STREAM_SCENARIO);
    let n = case.config.tenants.len();
    let tenants: Vec<TenantDecl> = case
        .config
        .tenants
        .iter()
        .map(|t| TenantDecl {
            id: t.id,
            name: t.name.clone(),
            algorithm: t.algorithm.clone(),
            rank_min: t.rank_min,
            rank_max: t.rank_max,
            levels: t.levels,
        })
        .collect();
    let flows: Vec<FlowDecl> = case
        .config
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| FlowDecl {
            tenant: t.id,
            src_host: i,
            dst_host: n + i,
            size: 5_000 + rng.below(20_000),
            start_ns: rng.below(100_000),
            deadline_ns: None,
            weight: 1,
        })
        .collect();
    ScenarioSpec {
        name: format!("fuzz-{}-{}", case.seed, case.index),
        seed: rng.next(),
        topology: TopologySpec::Dumbbell {
            pairs: n,
            edge_bps: 10_000_000_000,
            bottleneck_bps: 1_000_000_000,
            delay_ns: 1_000,
        },
        sim: SimSpec {
            horizon: TimeRef::At(4_000_000),
            ..SimSpec::default()
        },
        scheduler: SchedulerSpec::Pifo,
        host_scheduler: None,
        qvisor: Some(QvisorSpec {
            tenants,
            policy: case.config.policy.clone(),
            unknown_drop: false,
            scope: ScopeSpec::Everywhere,
            monitor: None,
            synth: Some(SynthSpec {
                default_levels: case.config.synth.default_levels,
                first_rank: case.config.synth.first_rank,
                pref_bias_divisor: case.config.synth.pref_bias_divisor,
            }),
        }),
        rank_fns: case.rank_fns.clone(),
        workloads: vec![WorkloadSpec::Flows { list: flows }],
        alerts: Vec::new(),
    }
}

/// Run the case end to end through the scenario `Engine` on an exact
/// PIFO with the flight recorder on, and count cross-tenant strict-level
/// inversions in the trace.
fn scenario_oracle(case: &FuzzCase, report: &VerifyReport) -> Result<u64, String> {
    let spec = scenario_spec(case);
    let tracer = Tracer::enabled(TraceConfig::default());
    let engine = Engine::new().with_tracer(&tracer);
    engine.run(&spec).map_err(|e| e.to_string())?;
    let level_of: BTreeMap<u16, u64> = report
        .tenants
        .iter()
        .map(|t| (t.tenant.0, t.level as u64))
        .collect();
    Ok(trace_cross_level_inversions(&tracer.snapshot(), &level_of))
}

/// Count dequeues in `data` that overtook a resident packet of a
/// strictly higher-priority tenant: for every labelled queue, a dequeue
/// is a cross-level inversion when some resident data packet belongs to
/// a strictly lower level (higher priority) *and* carries a strictly
/// lower transformed rank. ACK records and tenants without a strict
/// level (unscheduled or unknown traffic) are outside the `>>` contract
/// and are skipped.
pub(crate) fn trace_cross_level_inversions(data: &TraceData, level_of: &BTreeMap<u16, u64>) -> u64 {
    /// Resident packets of one labelled queue: (flow, seq) -> (level, rank).
    type Residency = BTreeMap<(u64, u64), (u64, u64)>;
    let mut resident: BTreeMap<u32, Residency> = BTreeMap::new();
    let mut inversions = 0;
    for r in &data.records {
        if r.ack {
            continue;
        }
        let Some(&level) = level_of.get(&r.tenant) else {
            continue;
        };
        match r.kind {
            TraceKind::Enqueue { rank } => {
                resident
                    .entry(r.label)
                    .or_default()
                    .insert((r.flow, r.seq), (level, rank));
            }
            TraceKind::Dequeue { rank, .. } => {
                let queue = resident.entry(r.label).or_default();
                queue.remove(&(r.flow, r.seq));
                if queue.values().any(|&(l, rk)| l < level && rk < rank) {
                    inversions += 1;
                }
            }
            TraceKind::Drop { .. } => {
                resident
                    .entry(r.label)
                    .or_default()
                    .remove(&(r.flow, r.seq));
            }
            _ => {}
        }
    }
    inversions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_case;
    use qvisor_core::DeploymentConfig;

    fn case_from_json(json: &str) -> FuzzCase {
        FuzzCase {
            seed: 1,
            index: 0,
            config: DeploymentConfig::from_json(json).unwrap(),
            rank_fns: Vec::new(),
        }
    }

    #[test]
    fn a_clean_two_tenant_strict_policy_shows_zero_inversions() {
        let case = case_from_json(
            r#"{
              "tenants": [
                {"id": 1, "name": "A", "algorithm": "pFabric", "rank_min": 0, "rank_max": 1000},
                {"id": 2, "name": "B", "algorithm": "EDF", "rank_min": 0, "rank_max": 1000}
              ],
              "policy": "A >> B"
            }"#,
        );
        let out = run_case_with(&case, false);
        assert_eq!(out.verdict, Verdict::Clean, "{:?}", out.codes);
        assert_eq!(out.cross_inversions, 0);
        assert!(out.disagreements.is_empty(), "{:?}", out.disagreements);
    }

    #[test]
    fn a_saturating_first_rank_yields_replayable_error_witnesses() {
        let case = case_from_json(
            r#"{
              "tenants": [
                {"id": 1, "name": "A", "algorithm": "pFabric", "rank_min": 0, "rank_max": 1000},
                {"id": 2, "name": "B", "algorithm": "EDF", "rank_min": 0, "rank_max": 1000}
              ],
              "policy": "A >> B",
              "synth": {"first_rank": 18446744073709551610}
            }"#,
        );
        let out = run_case_with(&case, false);
        assert_eq!(out.verdict, Verdict::Errors);
        assert!(out.witnesses_checked > 0, "expected witnessed refutations");
        assert!(out.disagreements.is_empty(), "{:?}", out.disagreements);
    }

    #[test]
    fn the_level_replay_counts_a_planted_cross_level_inversion() {
        // Pop order B(level 1) then A(level 0): by the time B leaves, A
        // is resident at a strictly higher priority with a lower rank.
        let telemetry = Telemetry::enabled();
        let mut fifo =
            InstrumentedQueue::new(FifoQueue::new(Capacity::UNBOUNDED), &telemetry, "t.levels");
        fifo.enqueue(packet(2, 0, 5, 1), Nanos::ZERO); // level 1 popped first
        fifo.enqueue(packet(1, 1, 3, 0), Nanos::ZERO); // level 0 still waiting
        while fifo.dequeue(Nanos::ZERO).is_some() {}
        assert_eq!(fifo.inversion_count(), 1);
    }

    #[test]
    fn the_scenario_oracle_sees_a_nonempty_schedule() {
        // Guard against a vacuous oracle: the materialized dumbbell run
        // must actually enqueue and dequeue data packets of every
        // scheduled tenant through the traced queues.
        let mut case = generate_case(crate::DEFAULT_SEED, 0);
        case.config = DeploymentConfig::from_json(
            r#"{
              "tenants": [
                {"id": 1, "name": "A", "algorithm": "pFabric", "rank_min": 0, "rank_max": 1000},
                {"id": 2, "name": "B", "algorithm": "EDF", "rank_min": 0, "rank_max": 1000}
              ],
              "policy": "A >> B"
            }"#,
        )
        .unwrap();
        case.rank_fns = vec![
            (
                1,
                qvisor_ranking::RankFnSpec::PFabric {
                    unit_bytes: 1000,
                    max_rank: 1000,
                },
            ),
            (
                2,
                qvisor_ranking::RankFnSpec::Edf {
                    unit_ns: 1000,
                    max_rank: 1000,
                },
            ),
        ];
        let spec = scenario_spec(&case);
        let tracer = Tracer::enabled(TraceConfig::default());
        Engine::new().with_tracer(&tracer).run(&spec).unwrap();
        let data = tracer.snapshot();
        for tenant in [1u16, 2] {
            let dequeues = data
                .records
                .iter()
                .filter(|r| {
                    !r.ack && r.tenant == tenant && matches!(r.kind, TraceKind::Dequeue { .. })
                })
                .count();
            assert!(dequeues > 0, "tenant {tenant} never dequeued in the trace");
        }
    }

    #[test]
    fn generated_cases_run_the_oracle_without_disagreement() {
        for index in 0..48 {
            let case = generate_case(crate::DEFAULT_SEED, index);
            let out = run_case_with(&case, false);
            assert!(
                out.disagreements.is_empty(),
                "case {index}: {:?}",
                out.disagreements
            );
        }
    }
}
