//! The common interface all scheduler models implement.

use qvisor_sim::{Nanos, Packet, Rank};

/// Outcome of offering a packet to a queue.
#[derive(Debug)]
pub enum Enqueue {
    /// Packet admitted; nothing dropped.
    Accepted,
    /// Packet admitted, but the listed resident packets were evicted to make
    /// room (e.g. a PIFO dropping its worst-ranked entries).
    AcceptedDropped(Vec<Packet>),
    /// Packet rejected (tail drop / admission control); returned to caller
    /// for loss accounting.
    Rejected(Box<Packet>),
}

impl Enqueue {
    /// All packets lost by this enqueue, in drop order.
    pub fn dropped(self) -> Vec<Packet> {
        match self {
            Enqueue::Accepted => Vec::new(),
            Enqueue::AcceptedDropped(d) => d,
            Enqueue::Rejected(p) => vec![*p],
        }
    }

    /// True if the offered packet itself was admitted.
    pub fn accepted(&self) -> bool {
        !matches!(self, Enqueue::Rejected(_))
    }
}

/// A work-conserving packet queue with a drop policy.
///
/// Schedulers sort on [`Packet::txf_rank`] — the rank *after* QVISOR's
/// pre-processor — never on the tenant's raw rank. `now` is threaded through
/// so stateful disciplines (shapers, virtual clocks) can use time.
pub trait PacketQueue {
    /// Offer a packet. May drop the offered packet or resident ones.
    fn enqueue(&mut self, p: Packet, now: Nanos) -> Enqueue;

    /// Remove and return the next packet to transmit.
    fn dequeue(&mut self, now: Nanos) -> Option<Packet>;

    /// Number of queued packets.
    fn len(&self) -> usize;

    /// Total queued bytes.
    fn bytes(&self) -> u64;

    /// True when nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rank of the packet [`Self::dequeue`] would return, if any.
    fn head_rank(&self) -> Option<Rank>;

    /// Short stable identifier of the scheduling discipline, used as the
    /// `kind` label on telemetry metrics (e.g. `"pifo"`, `"sp_pifo"`).
    /// Wrappers report the wrapped queue's kind.
    fn kind(&self) -> &'static str;
}

impl PacketQueue for Box<dyn PacketQueue> {
    fn enqueue(&mut self, p: Packet, now: Nanos) -> Enqueue {
        (**self).enqueue(p, now)
    }
    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        (**self).dequeue(now)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn bytes(&self) -> u64 {
        (**self).bytes()
    }
    fn head_rank(&self) -> Option<Rank> {
        (**self).head_rank()
    }
    fn kind(&self) -> &'static str {
        (**self).kind()
    }
}

/// Buffer capacity in bytes shared by every queue model.
///
/// The paper's schedulers (pFabric-style PIFOs in particular) rely on
/// *small* buffers: the drop policy at a full buffer is where rank-aware
/// scheduling gets its advantage over FIFO.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Capacity {
    /// Maximum total bytes the queue may hold.
    pub bytes: u64,
}

impl Capacity {
    /// Capacity expressed in bytes.
    pub const fn bytes(bytes: u64) -> Capacity {
        Capacity { bytes }
    }

    /// Capacity expressed in full-size packets of `mtu` bytes.
    pub const fn packets(count: u64, mtu: u64) -> Capacity {
        Capacity { bytes: count * mtu }
    }

    /// Effectively unbounded (for tests and ideal baselines).
    pub const UNBOUNDED: Capacity = Capacity { bytes: u64::MAX };

    /// Does a queue currently holding `used` bytes fit `extra` more?
    pub fn fits(&self, used: u64, extra: u64) -> bool {
        used.saturating_add(extra) <= self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvisor_sim::{FlowId, NodeId, TenantId};

    fn pkt(size: u32) -> Packet {
        Packet::data(
            FlowId(1),
            TenantId(0),
            0,
            size,
            NodeId(0),
            NodeId(1),
            5,
            Nanos::ZERO,
        )
    }

    #[test]
    fn enqueue_outcome_accounting() {
        assert!(Enqueue::Accepted.accepted());
        assert!(Enqueue::Accepted.dropped().is_empty());
        let r = Enqueue::Rejected(Box::new(pkt(100)));
        assert!(!r.accepted());
        assert_eq!(r.dropped().len(), 1);
        let a = Enqueue::AcceptedDropped(vec![pkt(1), pkt(2)]);
        assert!(a.accepted());
        assert_eq!(a.dropped().len(), 2);
    }

    #[test]
    fn capacity_fits() {
        let c = Capacity::packets(2, 1500);
        assert_eq!(c.bytes, 3000);
        assert!(c.fits(1500, 1500));
        assert!(!c.fits(1501, 1500));
        assert!(Capacity::UNBOUNDED.fits(u64::MAX - 1, 1));
    }
}
