//! Streaming per-tenant isolation SLO monitor.
//!
//! The static verifier proves a policy clean before deployment and the
//! trace reports explain a run after it ends; this module watches isolation
//! *while* the simulation runs. It consumes the same feed points the
//! telemetry counters already use — enqueue/dequeue on instrumented queues,
//! delivery and flow completion at the destination, end-to-end drops — and
//! maintains sliding sim-time-windowed per-tenant health:
//!
//! * **drop rate** — dropped / (delivered + dropped) over the window,
//! * **rank-inversion rate** — cross-tenant inversions / dequeues,
//! * **queueing-delay and FCT quantiles** — via a deterministic streaming
//!   [`QuantileSketch`] (sparse log-linear buckets, property-tested against
//!   exact sorted-vec quantiles).
//!
//! Declarative [`AlertRule`]s (`{metric, tenant, window_ns, threshold}`)
//! are evaluated incrementally on every matching feed event. Alerts are
//! edge-triggered: one `alert_fired` journal event when the windowed value
//! first exceeds the threshold, one `alert_resolved` when it falls back.
//! Fired alerts land in the monitor's own bounded [`Journal`] and, when a
//! [`SnapshotBus`] is attached, are pushed to live subscribers.
//!
//! Like the rest of the telemetry subsystem the monitor only *observes*:
//! it takes no randomness, orders no events, and is keyed by simulated
//! time, so attaching it cannot change a simulation's outcome. Unlike the
//! [`Telemetry`](crate::Telemetry) registry it keeps fully separate state
//! (including its own journal), so a telemetry JSONL export is
//! byte-identical whether or not a monitor was attached. The determinism
//! suite enforces both properties.

use crate::journal::{Journal, JournalEvent};
use crate::report::{Export, HistLine, MetricLine};
use crate::stream::SnapshotBus;
use qvisor_sim::json::Value;
use qvisor_sim::Nanos;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

/// Sub-bucket resolution of the streaming sketch: each power-of-two range
/// is split into `2^SKETCH_SUB_BITS` linear sub-buckets, so the relative
/// quantile error is bounded by `2^-SKETCH_SUB_BITS` (6.25%) and the
/// absolute error by one bucket width.
pub const SKETCH_SUB_BITS: u32 = 4;
const SKETCH_SUBS: u64 = 1 << SKETCH_SUB_BITS;

/// Number of ring slices a sliding window is quantized into.
const SLICES: u64 = 8;

fn sketch_index(v: u64) -> u16 {
    if v < SKETCH_SUBS {
        return v as u16;
    }
    let exp = 63 - v.leading_zeros(); // >= SKETCH_SUB_BITS
    let sub = (v >> (exp - SKETCH_SUB_BITS)) & (SKETCH_SUBS - 1);
    ((exp - SKETCH_SUB_BITS + 1) as u16) * SKETCH_SUBS as u16 + sub as u16
}

/// The closed `[lo, hi]` range of values mapping to sketch bucket `index`.
fn sketch_range(index: u16) -> (u64, u64) {
    let subs = SKETCH_SUBS as u16;
    if index < subs {
        return (index as u64, index as u64);
    }
    let block = (index / subs) as u32;
    let sub = (index % subs) as u64;
    let exp = block + SKETCH_SUB_BITS - 1;
    let width = 1u64 << (exp - SKETCH_SUB_BITS);
    let lo = (1u64 << exp) + sub * width;
    (lo, lo.saturating_add(width - 1))
}

/// A deterministic streaming quantile sketch over `u64` values.
///
/// Same log-linear binning idea as [`LogHistogram`](crate::LogHistogram)
/// but sparse (a `BTreeMap` of occupied buckets) and *subtractable*, which
/// is what sliding-window aggregation needs: the window keeps one sketch
/// per ring slice plus a rolling aggregate, and expiring a slice subtracts
/// its sketch from the aggregate in O(occupied buckets).
///
/// The quantile estimate is the upper bound of the bucket holding the
/// nearest-rank target, so it never undershoots the exact quantile and
/// overshoots by less than one bucket width (see
/// [`bucket_width`](Self::bucket_width)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QuantileSketch {
    counts: BTreeMap<u16, u64>,
    total: u64,
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> QuantileSketch {
        QuantileSketch::default()
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        *self.counts.entry(sketch_index(v)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Nearest-rank `p`-quantile estimate (`p` in `[0, 1]`; `None` if
    /// empty): the upper bound of the bucket holding the target rank.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = ((p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut acc = 0u64;
        for (&index, &c) in &self.counts {
            acc += c;
            if acc >= target {
                return Some(sketch_range(index).1);
            }
        }
        // Unreachable when counts sum to total; defensive for safety.
        self.counts.keys().next_back().map(|&i| sketch_range(i).1)
    }

    /// Merge another sketch into this one.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (&k, &c) in &other.counts {
            *self.counts.entry(k).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// Remove `other`'s counts from this sketch. `other` must be a subset
    /// of what was merged or recorded here (the sliding-window invariant).
    pub fn subtract(&mut self, other: &QuantileSketch) {
        for (&k, &c) in &other.counts {
            let e = self
                .counts
                .get_mut(&k)
                .expect("subtracting counts never recorded");
            *e = e.checked_sub(c).expect("sketch subtraction underflow");
            if *e == 0 {
                self.counts.remove(&k);
            }
        }
        self.total -= other.total;
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.total = 0;
    }

    /// Width of the bucket that `v` falls in — the quantile error bound at
    /// that magnitude (exact below `2^SKETCH_SUB_BITS`).
    pub fn bucket_width(v: u64) -> u64 {
        let (lo, hi) = sketch_range(sketch_index(v));
        hi - lo + 1
    }
}

/// A count over a sliding sim-time window, quantized into [`SLICES`] ring
/// slices: O(1) add, O(1) amortized expiry, purely a function of the
/// event stream's simulated timestamps.
#[derive(Clone, Debug)]
struct SlidingCounter {
    slice_ns: u64,
    cur: u64,
    ring: [u64; SLICES as usize],
    total: u64,
}

impl SlidingCounter {
    fn new(window_ns: u64) -> SlidingCounter {
        SlidingCounter {
            slice_ns: window_ns.div_ceil(SLICES).max(1),
            cur: 0,
            ring: [0; SLICES as usize],
            total: 0,
        }
    }

    fn advance(&mut self, t: u64) {
        let s = t / self.slice_ns;
        if s <= self.cur {
            return;
        }
        let steps = (s - self.cur).min(SLICES);
        for i in 1..=steps {
            let slot = ((self.cur + i) % SLICES) as usize;
            self.total -= self.ring[slot];
            self.ring[slot] = 0;
        }
        self.cur = s;
    }

    fn add(&mut self, t: u64, n: u64) {
        self.advance(t);
        self.ring[(self.cur % SLICES) as usize] += n;
        self.total += n;
    }

    fn value(&mut self, t: u64) -> u64 {
        self.advance(t);
        self.total
    }
}

/// A [`QuantileSketch`] over a sliding sim-time window: one sketch per
/// ring slice plus a rolling aggregate kept current by subtraction.
#[derive(Clone, Debug)]
struct SlidingSketch {
    slice_ns: u64,
    cur: u64,
    ring: [QuantileSketch; SLICES as usize],
    agg: QuantileSketch,
}

impl SlidingSketch {
    fn new(window_ns: u64) -> SlidingSketch {
        SlidingSketch {
            slice_ns: window_ns.div_ceil(SLICES).max(1),
            cur: 0,
            ring: std::array::from_fn(|_| QuantileSketch::new()),
            agg: QuantileSketch::new(),
        }
    }

    fn advance(&mut self, t: u64) {
        let s = t / self.slice_ns;
        if s <= self.cur {
            return;
        }
        let steps = (s - self.cur).min(SLICES);
        for i in 1..=steps {
            let slot = ((self.cur + i) % SLICES) as usize;
            if !self.ring[slot].is_empty() {
                self.agg.subtract(&self.ring[slot]);
                self.ring[slot].clear();
            }
        }
        self.cur = s;
    }

    fn record(&mut self, t: u64, v: u64) {
        self.advance(t);
        self.ring[(self.cur % SLICES) as usize].record(v);
        self.agg.record(v);
    }

    fn quantile(&mut self, t: u64, p: f64) -> Option<u64> {
        self.advance(t);
        self.agg.quantile(p)
    }
}

/// A per-tenant SLO metric an [`AlertRule`] can watch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertMetric {
    /// Dropped / (delivered + dropped) payload packets over the window.
    DropRate,
    /// Cross-tenant rank inversions / dequeues over the window.
    InversionRate,
    /// Median queueing delay (ns) over the window.
    QueueDelayP50,
    /// 90th-percentile queueing delay (ns) over the window.
    QueueDelayP90,
    /// 99th-percentile queueing delay (ns) over the window.
    QueueDelayP99,
    /// Median flow completion time (ns) over the window.
    FctP50,
    /// 90th-percentile flow completion time (ns) over the window.
    FctP90,
    /// 99th-percentile flow completion time (ns) over the window.
    FctP99,
}

/// Every metric, for validation error messages and exhaustive tests.
pub const ALERT_METRICS: &[AlertMetric] = &[
    AlertMetric::DropRate,
    AlertMetric::InversionRate,
    AlertMetric::QueueDelayP50,
    AlertMetric::QueueDelayP90,
    AlertMetric::QueueDelayP99,
    AlertMetric::FctP50,
    AlertMetric::FctP90,
    AlertMetric::FctP99,
];

impl AlertMetric {
    /// The schema name (`drop_rate`, `queue_delay_p99`, ...).
    pub fn name(self) -> &'static str {
        match self {
            AlertMetric::DropRate => "drop_rate",
            AlertMetric::InversionRate => "inversion_rate",
            AlertMetric::QueueDelayP50 => "queue_delay_p50",
            AlertMetric::QueueDelayP90 => "queue_delay_p90",
            AlertMetric::QueueDelayP99 => "queue_delay_p99",
            AlertMetric::FctP50 => "fct_p50",
            AlertMetric::FctP90 => "fct_p90",
            AlertMetric::FctP99 => "fct_p99",
        }
    }

    /// Parse a schema name; `None` for unknown metrics.
    pub fn parse(s: &str) -> Option<AlertMetric> {
        ALERT_METRICS.iter().copied().find(|m| m.name() == s)
    }

    /// The quantile a sketch-backed metric reads (`None` for rates).
    fn quantile(self) -> Option<f64> {
        match self {
            AlertMetric::DropRate | AlertMetric::InversionRate => None,
            AlertMetric::QueueDelayP50 | AlertMetric::FctP50 => Some(0.5),
            AlertMetric::QueueDelayP90 | AlertMetric::FctP90 => Some(0.9),
            AlertMetric::QueueDelayP99 | AlertMetric::FctP99 => Some(0.99),
        }
    }

    fn uses_fct(self) -> bool {
        matches!(
            self,
            AlertMetric::FctP50 | AlertMetric::FctP90 | AlertMetric::FctP99
        )
    }
}

/// One declarative SLO alert rule: fire while `metric` for `tenant`,
/// computed over a sliding `window_ns` of simulated time, exceeds
/// `threshold` (a fraction in `[0, 1]` for rates, nanoseconds for
/// latency quantiles).
#[derive(Clone, Debug, PartialEq)]
pub struct AlertRule {
    /// The watched metric.
    pub metric: AlertMetric,
    /// The watched tenant id.
    pub tenant: u16,
    /// Sliding window length in simulated nanoseconds (quantized up to
    /// eight ring slices).
    pub window_ns: u64,
    /// Fire when the windowed value strictly exceeds this.
    pub threshold: f64,
}

/// Windowed state backing one rule.
#[derive(Clone, Debug)]
enum RuleState {
    Rate {
        num: SlidingCounter,
        den: SlidingCounter,
    },
    Quantile {
        sketch: SlidingSketch,
        p: f64,
    },
}

#[derive(Clone, Debug)]
struct RuleRt {
    rule: AlertRule,
    state: RuleState,
    firing: bool,
}

impl RuleRt {
    fn new(rule: AlertRule) -> RuleRt {
        let state = match rule.metric.quantile() {
            None => RuleState::Rate {
                num: SlidingCounter::new(rule.window_ns),
                den: SlidingCounter::new(rule.window_ns),
            },
            Some(p) => RuleState::Quantile {
                sketch: SlidingSketch::new(rule.window_ns),
                p,
            },
        };
        RuleRt {
            rule,
            state,
            firing: false,
        }
    }

    /// Current windowed value at sim-time `t`.
    fn value(&mut self, t: u64) -> f64 {
        match &mut self.state {
            RuleState::Rate { num, den } => {
                let d = den.value(t);
                if d == 0 {
                    0.0
                } else {
                    num.value(t) as f64 / d as f64
                }
            }
            RuleState::Quantile { sketch, p } => sketch.quantile(t, *p).unwrap_or(0) as f64,
        }
    }
}

/// Cumulative (whole-run) per-tenant health, exported as the monitor's
/// health table.
#[derive(Clone, Debug, Default)]
struct TenantStats {
    delivered: u64,
    dropped: u64,
    dequeues: u64,
    inversions: u64,
    queue_delay: QuantileSketch,
    fct: QuantileSketch,
}

#[derive(Debug)]
struct MonitorState {
    rules: Vec<RuleRt>,
    tenants: BTreeMap<u16, TenantStats>,
    journal: Journal,
    alerts_fired: u64,
    alerts_resolved: u64,
    bus: Option<Arc<SnapshotBus>>,
}

/// Which feed event just happened, for routing to matching rules.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Feed {
    Drop,
    Delivered,
    Dequeue,
    Fct,
}

impl MonitorState {
    fn new(rules: Vec<AlertRule>) -> MonitorState {
        MonitorState {
            rules: rules.into_iter().map(RuleRt::new).collect(),
            tenants: BTreeMap::new(),
            journal: Journal::default(),
            alerts_fired: 0,
            alerts_resolved: 0,
            bus: None,
        }
    }

    /// Route one feed event into every matching rule's window, then
    /// re-evaluate those rules at sim-time `t` (edge-triggered).
    fn feed(&mut self, t: Nanos, tenant: u16, feed: Feed, sample: u64, inverted: bool) {
        let mut transitions: Vec<(usize, f64)> = Vec::new();
        for (i, rt) in self.rules.iter_mut().enumerate() {
            if rt.rule.tenant != tenant {
                continue;
            }
            let relevant = match (&mut rt.state, rt.rule.metric) {
                (RuleState::Rate { num, den }, AlertMetric::DropRate) => match feed {
                    Feed::Drop => {
                        num.add(t.0, 1);
                        den.add(t.0, 1);
                        true
                    }
                    Feed::Delivered => {
                        den.add(t.0, 1);
                        true
                    }
                    _ => false,
                },
                (RuleState::Rate { num, den }, AlertMetric::InversionRate) => match feed {
                    Feed::Dequeue => {
                        if inverted {
                            num.add(t.0, 1);
                        }
                        den.add(t.0, 1);
                        true
                    }
                    _ => false,
                },
                (RuleState::Quantile { sketch, .. }, m) => {
                    let wants = if m.uses_fct() {
                        feed == Feed::Fct
                    } else {
                        feed == Feed::Dequeue
                    };
                    if wants {
                        sketch.record(t.0, sample);
                    }
                    wants
                }
                _ => false,
            };
            if !relevant {
                continue;
            }
            let value = rt.value(t.0);
            if !rt.firing && value > rt.rule.threshold {
                rt.firing = true;
                transitions.push((i, value));
            } else if rt.firing && value <= rt.rule.threshold {
                rt.firing = false;
                transitions.push((i, value));
            }
        }
        for (i, value) in transitions {
            let rt = &self.rules[i];
            let kind = if rt.firing {
                "alert_fired"
            } else {
                "alert_resolved"
            };
            let event = JournalEvent {
                t,
                kind: kind.to_string(),
                fields: vec![
                    ("metric".to_string(), Value::from(rt.rule.metric.name())),
                    ("tenant".to_string(), Value::from(rt.rule.tenant)),
                    ("window_ns".to_string(), Value::from(rt.rule.window_ns)),
                    ("threshold".to_string(), Value::from(rt.rule.threshold)),
                    ("value".to_string(), Value::from(value)),
                ],
            };
            if rt.firing {
                self.alerts_fired += 1;
            } else {
                self.alerts_resolved += 1;
            }
            if let Some(bus) = &self.bus {
                bus.publish(&event.to_json().to_compact());
            }
            self.journal.push(event);
        }
    }
}

/// Handle to a streaming SLO monitor. Cheap to clone (shared by `Rc`,
/// mirroring [`Telemetry`](crate::Telemetry)); the default handle is
/// disabled and every feed call is one branch.
#[derive(Clone, Debug, Default)]
pub struct SloMonitor {
    inner: Option<Rc<RefCell<MonitorState>>>,
}

impl SloMonitor {
    /// A disabled monitor: records nothing, exports nothing.
    pub fn disabled() -> SloMonitor {
        SloMonitor::default()
    }

    /// An enabled monitor evaluating `rules` (an empty rule set still
    /// collects per-tenant health for the export).
    pub fn enabled(rules: Vec<AlertRule>) -> SloMonitor {
        SloMonitor {
            inner: Some(Rc::new(RefCell::new(MonitorState::new(rules)))),
        }
    }

    /// Attach a [`SnapshotBus`]; alert transitions are published to it as
    /// compact JSON event lines. No-op on a disabled monitor.
    pub fn with_bus(self, bus: &Arc<SnapshotBus>) -> SloMonitor {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().bus = Some(Arc::clone(bus));
        }
        self
    }

    /// True when this handle collects.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Feed: an end-to-end payload-packet drop for `tenant` at sim-time `t`.
    #[inline]
    pub fn on_drop(&self, t: Nanos, tenant: u16) {
        if let Some(inner) = &self.inner {
            let mut st = inner.borrow_mut();
            st.tenants.entry(tenant).or_default().dropped += 1;
            st.feed(t, tenant, Feed::Drop, 0, false);
        }
    }

    /// Feed: a fresh payload delivery for `tenant` at sim-time `t`.
    #[inline]
    pub fn on_delivered(&self, t: Nanos, tenant: u16) {
        if let Some(inner) = &self.inner {
            let mut st = inner.borrow_mut();
            st.tenants.entry(tenant).or_default().delivered += 1;
            st.feed(t, tenant, Feed::Delivered, 0, false);
        }
    }

    /// Feed: a dequeue for `tenant` that waited `wait_ns`; `inverted` marks
    /// a cross-tenant rank inversion (a lower-ranked packet of another
    /// tenant was waiting behind this one).
    #[inline]
    pub fn on_dequeue(&self, t: Nanos, tenant: u16, wait_ns: u64, inverted: bool) {
        if let Some(inner) = &self.inner {
            let mut st = inner.borrow_mut();
            let ts = st.tenants.entry(tenant).or_default();
            ts.dequeues += 1;
            if inverted {
                ts.inversions += 1;
            }
            ts.queue_delay.record(wait_ns);
            st.feed(t, tenant, Feed::Dequeue, wait_ns, inverted);
        }
    }

    /// Feed: a completed flow for `tenant` with completion time `fct_ns`.
    #[inline]
    pub fn on_fct(&self, t: Nanos, tenant: u16, fct_ns: u64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.borrow_mut();
            st.tenants.entry(tenant).or_default().fct.record(fct_ns);
            st.feed(t, tenant, Feed::Fct, fct_ns, false);
        }
    }

    /// Total `alert_fired` transitions so far.
    pub fn alerts_fired(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.borrow().alerts_fired)
    }

    /// Total `alert_resolved` transitions so far.
    pub fn alerts_resolved(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.borrow().alerts_resolved)
    }

    /// All journal events recorded so far (alert transitions), oldest
    /// first.
    pub fn alert_events(&self) -> Vec<JournalEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.borrow().journal.events().cloned().collect())
    }

    /// Serialise the monitor's state as JSON lines using the telemetry
    /// export schema (`meta`, `counter`, `gauge`, `event`), so
    /// [`crate::report::parse`] and [`render_health`] digest it directly.
    /// Returns the empty string when disabled.
    pub fn export_jsonl(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let st = inner.borrow();
        let mut out = String::new();
        let mut push = |v: Value| {
            out.push_str(&v.to_compact());
            out.push('\n');
        };
        push(
            Value::object()
                .set("type", "meta")
                .set("schema", crate::SCHEMA_VERSION)
                .set("monitor", true)
                .set("rules", st.rules.len())
                .set("alerts_fired", st.alerts_fired)
                .set("alerts_resolved", st.alerts_resolved)
                .set("journal_evicted", st.journal.evicted())
                .set("journal_capacity", st.journal.capacity()),
        );
        let labels = |tenant: u16| Value::object().set("tenant", format!("T{tenant}"));
        let metric = |kind: &str, name: &str, tenant: u16, value: Value| {
            Value::object()
                .set("type", kind)
                .set("name", name)
                .set("labels", labels(tenant))
                .set("value", value)
        };
        for (&tenant, s) in &st.tenants {
            push(metric(
                "counter",
                "slo_delivered_pkts",
                tenant,
                Value::from(s.delivered),
            ));
            push(metric(
                "counter",
                "slo_dropped_pkts",
                tenant,
                Value::from(s.dropped),
            ));
            push(metric(
                "counter",
                "slo_dequeues",
                tenant,
                Value::from(s.dequeues),
            ));
            push(metric(
                "counter",
                "slo_rank_inversions",
                tenant,
                Value::from(s.inversions),
            ));
            let ppm = |num: u64, den: u64| -> Value {
                if den == 0 {
                    Value::from(0u64)
                } else {
                    Value::from((num as u128 * 1_000_000 / den as u128) as u64)
                }
            };
            push(metric(
                "gauge",
                "slo_drop_rate_ppm",
                tenant,
                ppm(s.dropped, s.delivered + s.dropped),
            ));
            push(metric(
                "gauge",
                "slo_inversion_rate_ppm",
                tenant,
                ppm(s.inversions, s.dequeues),
            ));
            for (name, sketch) in [("slo_queue_delay", &s.queue_delay), ("slo_fct", &s.fct)] {
                for (suffix, p) in [("p50_ns", 0.5), ("p90_ns", 0.9), ("p99_ns", 0.99)] {
                    if let Some(q) = sketch.quantile(p) {
                        push(metric(
                            "gauge",
                            &format!("{name}_{suffix}"),
                            tenant,
                            Value::from(q),
                        ));
                    }
                }
            }
        }
        for rt in &st.rules {
            push(
                Value::object()
                    .set("type", "gauge")
                    .set("name", "slo_rule_firing")
                    .set(
                        "labels",
                        Value::object()
                            .set("metric", rt.rule.metric.name())
                            .set("tenant", format!("T{}", rt.rule.tenant))
                            .set("threshold", format!("{}", rt.rule.threshold))
                            .set("window_ns", format!("{}", rt.rule.window_ns)),
                    )
                    .set("value", u64::from(rt.firing)),
            );
        }
        for e in st.journal.events() {
            push(e.to_json());
        }
        out
    }
}

fn tenant_sort_key(s: &str) -> (u64, String) {
    let digits: String = s.chars().filter(|c| c.is_ascii_digit()).collect();
    (digits.parse().unwrap_or(u64::MAX), s.to_string())
}

/// Render a parsed export as a deterministic per-tenant health table: one
/// row per `tenant` label value (numerically ordered), one column per
/// tenant-labelled counter/gauge (summed across remaining labels) plus a
/// `<name>_p99` column per tenant-labelled histogram. Returns a note when
/// no metric carries a tenant label.
pub fn render_health(export: &Export) -> String {
    let mut columns: Vec<String> = Vec::new();
    let mut cells: BTreeMap<(u64, String), BTreeMap<String, i128>> = BTreeMap::new();
    let mut add = |name: &str, labels: &[(String, String)], value: i128| {
        let Some((_, tenant)) = labels.iter().find(|(k, _)| k == "tenant") else {
            return;
        };
        if !columns.contains(&name.to_string()) {
            columns.push(name.to_string());
        }
        *cells
            .entry(tenant_sort_key(tenant))
            .or_default()
            .entry(name.to_string())
            .or_default() += value;
    };
    let metrics: Vec<&MetricLine> = export.counters.iter().chain(export.gauges.iter()).collect();
    for m in metrics {
        add(&m.name, &m.labels, m.value);
    }
    let hists: Vec<&HistLine> = export.histograms.iter().collect();
    for h in hists {
        if let Some(p99) = h.p99 {
            add(&format!("{}_p99", h.name), &h.labels, p99 as i128);
        }
    }
    if cells.is_empty() {
        return "no tenant-labelled metrics in export\n".to_string();
    }
    columns.sort();
    let mut headers = vec!["tenant".to_string()];
    headers.extend(columns.iter().cloned());
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|((_, tenant), by_name)| {
            let mut row = vec![tenant.clone()];
            row.extend(columns.iter().map(|n| {
                by_name
                    .get(n)
                    .map_or_else(|| "-".to_string(), |v| v.to_string())
            }));
            row
        })
        .collect();
    let mut out = String::new();
    crate::report::render_table(&mut out, &headers, &rows);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvisor_sim::rng::SimRng;

    fn rule(metric: AlertMetric, tenant: u16, window_ns: u64, threshold: f64) -> AlertRule {
        AlertRule {
            metric,
            tenant,
            window_ns,
            threshold,
        }
    }

    #[test]
    fn sketch_ranges_partition_and_contain() {
        let mut prev_hi: Option<u64> = None;
        for i in 0..=sketch_index(u64::MAX) {
            let (lo, hi) = sketch_range(i);
            assert!(lo <= hi);
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1, "gap/overlap at sketch bucket {i}");
            }
            prev_hi = Some(hi);
        }
        assert_eq!(prev_hi, Some(u64::MAX));
        for v in [0u64, 1, 15, 16, 17, 1000, 1 << 20, u64::MAX / 3, u64::MAX] {
            let (lo, hi) = sketch_range(sketch_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn prop_sketch_quantiles_match_exact_within_pinned_bounds() {
        // Property: on seeded random streams and on adversarial shapes
        // (sorted ascending, reversed, constant), the sketch estimate
        // never undershoots the exact nearest-rank quantile and
        // overshoots by less than one bucket width at that magnitude.
        let root = SimRng::seed_from(0x510_a1e7);
        for case in 0..48u64 {
            let mut rng = root.derive(case);
            let n = 1 + rng.below(2_000) as usize;
            let mut values: Vec<u64> = (0..n)
                .map(|_| match case % 5 {
                    0 => rng.below(64),
                    1 => rng.below(1_000_000_000_000),
                    2 => rng.exponential(50_000.0) as u64,
                    3 => 1u64 << rng.below(50),
                    _ => 42_000, // constant stream
                })
                .collect();
            match case % 3 {
                0 => values.sort_unstable(),                   // sorted
                1 => values.sort_unstable_by(|a, b| b.cmp(a)), // reversed
                _ => {}                                        // as generated
            }
            let mut sketch = QuantileSketch::new();
            for &v in &values {
                sketch.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for p in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
                let rank = ((p * n as f64).ceil() as usize).max(1) - 1;
                let exact = sorted[rank];
                let est = sketch.quantile(p).unwrap();
                let width = QuantileSketch::bucket_width(exact);
                assert!(
                    est >= exact && est - exact < width,
                    "case {case} n {n} p={p}: est {est} vs exact {exact}, width {width}"
                );
            }
        }
    }

    #[test]
    fn sketch_subtract_inverts_merge() {
        let root = SimRng::seed_from(0xdead_5eed);
        let mut rng = root.derive(1);
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for _ in 0..500 {
            a.record(rng.below(1_000_000));
            b.record(rng.below(1_000_000));
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 1000);
        merged.subtract(&b);
        assert_eq!(merged, a);
        merged.subtract(&a);
        assert!(merged.is_empty());
        assert_eq!(merged.quantile(0.5), None);
    }

    #[test]
    fn sliding_counter_expires_by_sim_time() {
        let mut c = SlidingCounter::new(800); // slice = 100ns, ring covers 800ns
        c.add(0, 1);
        c.add(50, 2);
        assert_eq!(c.value(750), 3, "still inside the window");
        assert_eq!(c.value(850), 0, "slice 0 expired once t crosses 800ns");
        c.add(900, 5);
        assert_eq!(c.value(900), 5);
        assert_eq!(c.value(1_000_000), 0, "large gap clears the whole ring");
    }

    #[test]
    fn sliding_sketch_expires_by_sim_time() {
        let mut s = SlidingSketch::new(800);
        s.record(0, 1_000);
        s.record(50, 2_000);
        assert!(s.quantile(750, 1.0).unwrap() >= 2_000);
        assert_eq!(s.quantile(850, 1.0), None, "window drained");
        s.record(900, 7);
        assert_eq!(s.quantile(900, 0.5), Some(7));
    }

    #[test]
    fn drop_rate_alert_fires_and_resolves_edge_triggered() {
        let m = SloMonitor::enabled(vec![rule(AlertMetric::DropRate, 1, 1_000, 0.5)]);
        // Two deliveries, then three drops: rate crosses 0.5 at the 3rd drop.
        m.on_delivered(Nanos(10), 1);
        m.on_delivered(Nanos(20), 1);
        m.on_drop(Nanos(30), 1);
        m.on_drop(Nanos(40), 1);
        assert_eq!(m.alerts_fired(), 0, "rate 2/4 is not above 0.5");
        m.on_drop(Nanos(50), 1);
        assert_eq!(m.alerts_fired(), 1, "rate 3/5 crossed the threshold");
        m.on_drop(Nanos(60), 1);
        assert_eq!(
            m.alerts_fired(),
            1,
            "edge-triggered: no refire while firing"
        );
        for t in 0..10u64 {
            m.on_delivered(Nanos(70 + t), 1);
        }
        assert_eq!(m.alerts_resolved(), 1, "rate fell back under the threshold");
        let events = m.alert_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "alert_fired");
        assert_eq!(events[0].t, Nanos(50));
        assert_eq!(events[1].kind, "alert_resolved");
    }

    #[test]
    fn other_tenants_do_not_trip_a_rule() {
        let m = SloMonitor::enabled(vec![rule(AlertMetric::DropRate, 1, 1_000, 0.0)]);
        m.on_drop(Nanos(5), 2);
        assert_eq!(m.alerts_fired(), 0);
        m.on_drop(Nanos(6), 1);
        assert_eq!(m.alerts_fired(), 1);
    }

    #[test]
    fn latency_quantile_alert_uses_the_sliding_window() {
        let m = SloMonitor::enabled(vec![rule(AlertMetric::QueueDelayP99, 3, 800, 5_000.0)]);
        m.on_dequeue(Nanos(10), 3, 100, false);
        assert_eq!(m.alerts_fired(), 0);
        m.on_dequeue(Nanos(20), 3, 50_000, false);
        assert_eq!(m.alerts_fired(), 1);
        // The slow sample expires out of the window; the next dequeue
        // re-evaluates and resolves.
        m.on_dequeue(Nanos(2_000), 3, 10, false);
        assert_eq!(m.alerts_resolved(), 1);
    }

    #[test]
    fn inversion_rate_alert() {
        let m = SloMonitor::enabled(vec![rule(AlertMetric::InversionRate, 2, 1_000, 0.4)]);
        m.on_dequeue(Nanos(1), 2, 10, false);
        m.on_dequeue(Nanos(2), 2, 10, true);
        assert_eq!(m.alerts_fired(), 1, "1/2 inversions over threshold 0.4");
    }

    #[test]
    fn fired_alerts_are_pushed_over_the_bus() {
        let bus = Arc::new(SnapshotBus::new());
        let rx = bus.subscribe();
        let m =
            SloMonitor::enabled(vec![rule(AlertMetric::DropRate, 1, 1_000, 0.0)]).with_bus(&bus);
        m.on_drop(Nanos(42), 1);
        let lines: Vec<String> = rx.try_iter().collect();
        assert_eq!(lines.len(), 1);
        let v = Value::parse(&lines[0]).unwrap();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("alert_fired"));
        assert_eq!(v.get("t_ns").and_then(Value::as_u64), Some(42));
    }

    #[test]
    fn disabled_monitor_is_inert() {
        let m = SloMonitor::disabled();
        assert!(!m.is_enabled());
        m.on_drop(Nanos(1), 1);
        m.on_delivered(Nanos(2), 1);
        m.on_dequeue(Nanos(3), 1, 10, true);
        m.on_fct(Nanos(4), 1, 100);
        assert_eq!(m.alerts_fired(), 0);
        assert_eq!(m.export_jsonl(), "");
        assert!(m.alert_events().is_empty());
    }

    #[test]
    fn export_parses_and_renders_a_health_table() {
        let m = SloMonitor::enabled(vec![rule(AlertMetric::DropRate, 1, 1_000, 0.0)]);
        m.on_delivered(Nanos(10), 1);
        m.on_drop(Nanos(20), 1);
        m.on_dequeue(Nanos(30), 1, 500, true);
        m.on_fct(Nanos(40), 1, 9_000);
        m.on_delivered(Nanos(50), 2);
        let jsonl = m.export_jsonl();
        let export = crate::report::parse(&jsonl).unwrap();
        assert!(export
            .counters
            .iter()
            .any(|c| c.name == "slo_dropped_pkts" && c.value == 1));
        assert!(export
            .gauges
            .iter()
            .any(|g| g.name == "slo_rule_firing" && g.value == 1));
        assert_eq!(export.events.len(), 1, "one fired alert journaled");
        let table = render_health(&export);
        assert!(table.starts_with("tenant"), "{table}");
        assert!(table.contains("T1"), "{table}");
        assert!(table.contains("T2"), "{table}");
        assert!(table.contains("slo_drop_rate_ppm"), "{table}");
        // Two runs over the same feed produce identical bytes.
        let m2 = SloMonitor::enabled(vec![rule(AlertMetric::DropRate, 1, 1_000, 0.0)]);
        m2.on_delivered(Nanos(10), 1);
        m2.on_drop(Nanos(20), 1);
        m2.on_dequeue(Nanos(30), 1, 500, true);
        m2.on_fct(Nanos(40), 1, 9_000);
        m2.on_delivered(Nanos(50), 2);
        assert_eq!(jsonl, m2.export_jsonl());
    }

    #[test]
    fn health_table_orders_tenants_numerically() {
        let jsonl = concat!(
            r#"{"type":"counter","name":"x","labels":{"tenant":"T2"},"value":2}"#,
            "\n",
            r#"{"type":"counter","name":"x","labels":{"tenant":"T10"},"value":10}"#,
            "\n",
            r#"{"type":"counter","name":"x","labels":{"tenant":"T1"},"value":1}"#,
            "\n",
        );
        let table = render_health(&crate::report::parse(jsonl).unwrap());
        let t1 = table.find("T1\n").or_else(|| table.find("T1 ")).unwrap();
        let t2 = table.find("T2").unwrap();
        let t10 = table.find("T10").unwrap();
        assert!(
            t1 < t2 && t2 < t10,
            "numeric tenant order expected:\n{table}"
        );
    }

    #[test]
    fn metric_names_roundtrip() {
        for &m in ALERT_METRICS {
            assert_eq!(AlertMetric::parse(m.name()), Some(m));
        }
        assert_eq!(AlertMetric::parse("nope"), None);
    }
}
