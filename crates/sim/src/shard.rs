//! Conservative-lookahead shard synchronization primitives.
//!
//! The sharded simulation engine (see `qvisor-netsim`) partitions the
//! topology across shards, each owning its own [`EventQueue`] timing
//! wheel. Shards advance independently inside barrier-synchronized
//! *windows*: given the earliest pending event time across all shards,
//! every event strictly before
//!
//! ```text
//! bound = min_pending + lookahead
//! ```
//!
//! is safe to process, because a cross-shard packet sent at time `t`
//! cannot arrive before `t + lookahead` (the minimum propagation delay of
//! any cut edge — the classic conservative lookahead window of
//! Chandy/Misra-style parallel discrete-event simulation).
//!
//! [`ShardClock`] computes those bounds; [`MailboxGrid`] carries the
//! cross-shard handoffs between windows as per-(sender, receiver) pair
//! SPSC-style mailboxes, drained in canonical sender order so receivers
//! observe a deterministic injection sequence.

use crate::time::Nanos;

/// Computes the conservative window bound shards may advance to.
#[derive(Clone, Copy, Debug)]
pub struct ShardClock {
    lookahead: Nanos,
}

impl ShardClock {
    /// A clock with the given lookahead — the minimum propagation delay
    /// across all cut edges. Must be positive: a zero-delay cut edge
    /// admits no conservative window and is rejected upstream.
    pub fn new(lookahead: Nanos) -> ShardClock {
        assert!(lookahead > Nanos::ZERO, "shard lookahead must be positive");
        ShardClock { lookahead }
    }

    /// The lookahead window width.
    pub fn lookahead(&self) -> Nanos {
        self.lookahead
    }

    /// The next safe bound: every event strictly before the returned time
    /// can be processed without violating cross-shard causality.
    ///
    /// `next_pending` is each shard's earliest pending event time (after
    /// mailbox injection; `None` for an idle shard); `cap` limits the
    /// window (next sample/control tick, or horizon + 1). Returns `None`
    /// when no shard has pending work — the simulation is done advancing.
    pub fn safe_bound(
        &self,
        next_pending: impl IntoIterator<Item = Option<Nanos>>,
        cap: Nanos,
    ) -> Option<Nanos> {
        let min_pending = next_pending.into_iter().flatten().min()?;
        Some(min_pending.saturating_add(self.lookahead).min(cap))
    }
}

/// A single sender→receiver mailbox: an ordered buffer of timestamped
/// handoffs posted during one window and drained at the next barrier.
#[derive(Clone, Debug)]
pub struct Mailbox<T> {
    items: Vec<(Nanos, T)>,
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Mailbox { items: Vec::new() }
    }
}

impl<T> Mailbox<T> {
    /// An empty mailbox.
    pub fn new() -> Mailbox<T> {
        Mailbox::default()
    }

    /// Post a handoff due at absolute time `at`.
    pub fn post(&mut self, at: Nanos, item: T) {
        self.items.push((at, item));
    }

    /// Number of pending handoffs.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Remove and return all pending handoffs in post order.
    pub fn drain(&mut self) -> Vec<(Nanos, T)> {
        std::mem::take(&mut self.items)
    }
}

/// All `n × n` sender→receiver mailboxes of an `n`-shard simulation.
///
/// Receivers drain their column in ascending sender order, so the
/// injection sequence each shard observes is a pure function of what was
/// posted — never of scheduling timing. (With content-keyed event queues
/// even that order is immaterial; the canonical drain order keeps the
/// layer deterministic on its own.)
#[derive(Debug)]
pub struct MailboxGrid<T> {
    shards: usize,
    boxes: Vec<Mailbox<T>>,
}

impl<T> MailboxGrid<T> {
    /// An empty grid for `shards` shards.
    pub fn new(shards: usize) -> MailboxGrid<T> {
        assert!(shards > 0, "mailbox grid needs at least one shard");
        MailboxGrid {
            shards,
            boxes: (0..shards * shards).map(|_| Mailbox::new()).collect(),
        }
    }

    /// Number of shards the grid serves.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Post a handoff from shard `from` to shard `to`, due at `at`.
    pub fn post(&mut self, from: usize, to: usize, at: Nanos, item: T) {
        debug_assert!(from < self.shards && to < self.shards);
        self.boxes[from * self.shards + to].post(at, item);
    }

    /// Drain everything addressed to shard `to`, in ascending sender
    /// order (then post order within a sender).
    pub fn drain_to(&mut self, to: usize) -> Vec<(Nanos, T)> {
        debug_assert!(to < self.shards);
        let mut out = Vec::new();
        for from in 0..self.shards {
            out.append(&mut self.boxes[from * self.shards + to].items);
        }
        out
    }

    /// True when no mailbox holds a pending handoff.
    pub fn is_empty(&self) -> bool {
        self.boxes.iter().all(Mailbox::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_bound_is_min_pending_plus_lookahead() {
        let clock = ShardClock::new(Nanos(50));
        let bound = clock.safe_bound([Some(Nanos(200)), Some(Nanos(120)), None], Nanos(10_000));
        assert_eq!(bound, Some(Nanos(170)));
    }

    #[test]
    fn safe_bound_caps_at_tick() {
        let clock = ShardClock::new(Nanos(1_000));
        let bound = clock.safe_bound([Some(Nanos(980))], Nanos(1_000));
        assert_eq!(bound, Some(Nanos(1_000)));
    }

    #[test]
    fn safe_bound_none_when_all_idle() {
        let clock = ShardClock::new(Nanos(5));
        assert_eq!(clock.safe_bound([None, None], Nanos(100)), None);
    }

    #[test]
    fn safe_bound_saturates_near_the_end_of_time() {
        let clock = ShardClock::new(Nanos::MAX);
        let bound = clock.safe_bound([Some(Nanos(7))], Nanos::MAX);
        assert_eq!(bound, Some(Nanos::MAX));
    }

    #[test]
    #[should_panic(expected = "lookahead must be positive")]
    fn zero_lookahead_panics() {
        ShardClock::new(Nanos::ZERO);
    }

    #[test]
    fn grid_drains_in_sender_order() {
        let mut grid: MailboxGrid<&'static str> = MailboxGrid::new(3);
        grid.post(2, 1, Nanos(30), "from-2");
        grid.post(0, 1, Nanos(10), "from-0a");
        grid.post(0, 1, Nanos(20), "from-0b");
        grid.post(1, 0, Nanos(5), "other-column");
        assert_eq!(
            grid.drain_to(1),
            vec![
                (Nanos(10), "from-0a"),
                (Nanos(20), "from-0b"),
                (Nanos(30), "from-2"),
            ]
        );
        assert!(!grid.is_empty());
        assert_eq!(grid.drain_to(0), vec![(Nanos(5), "other-column")]);
        assert!(grid.is_empty());
    }
}
