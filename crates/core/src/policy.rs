//! The operator's inter-tenant policy language (§3.1).
//!
//! A policy is a string of tenant names separated by three operators:
//!
//! * `>>` — strict priority: everything before is *isolated* above
//!   everything after;
//! * `>`  — best-effort preference: before is favoured over after whenever
//!   possible, without isolation;
//! * `+`  — sharing: both sides share resources fairly.
//!
//! Binding tightness: `+` > `>` > `>>`, so
//! `T1 >> T2 > T3 + T4 >> T5` reads as `T1 >> (T2 > (T3 + T4)) >> T5` —
//! exactly the paper's worked example.
//!
//! Extensions beyond the paper (documented in DESIGN.md): weighted sharing
//! `T3:2 + T4` (T3 gets twice T4's share), and parentheses for explicit
//! grouping as long as the nested operators bind at least as tightly as the
//! context (e.g. `(T2 > T3) + T4` is rejected — a preference cannot nest
//! inside a share group).

use crate::error::{QvisorError, Result};
use std::fmt;

/// A parsed operator policy: strict levels, highest priority first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Policy {
    /// Strict-priority levels separated by `>>`.
    pub levels: Vec<PrefChain>,
}

/// Groups separated by `>` within one strict level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefChain {
    /// Preference order: earlier groups are favoured.
    pub groups: Vec<ShareGroup>,
}

/// Tenants separated by `+`, sharing resources.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShareGroup {
    /// The sharing tenants.
    pub members: Vec<TenantRef>,
}

/// A tenant reference with an optional share weight (`name:weight`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantRef {
    /// Tenant name as written in the policy (matched against specs).
    pub name: String,
    /// Share weight; 1 unless written as `name:w`.
    pub weight: u32,
}

impl Policy {
    /// Parse a policy string.
    pub fn parse(input: &str) -> Result<Policy> {
        Parser::new(input)?.parse_policy()
    }

    /// Every tenant name in the policy, in priority order.
    pub fn tenant_names(&self) -> Vec<&str> {
        self.levels
            .iter()
            .flat_map(|l| &l.groups)
            .flat_map(|g| &g.members)
            .map(|m| m.name.as_str())
            .collect()
    }

    /// Total number of tenants referenced.
    pub fn tenant_count(&self) -> usize {
        self.tenant_names().len()
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let levels: Vec<String> = self
            .levels
            .iter()
            .map(|l| {
                let groups: Vec<String> = l
                    .groups
                    .iter()
                    .map(|g| {
                        let members: Vec<String> = g
                            .members
                            .iter()
                            .map(|m| {
                                if m.weight == 1 {
                                    m.name.clone()
                                } else {
                                    format!("{}:{}", m.name, m.weight)
                                }
                            })
                            .collect();
                        members.join(" + ")
                    })
                    .collect();
                groups.join(" > ")
            })
            .collect();
        write!(f, "{}", levels.join(" >> "))
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Token {
    Ident(String),
    Weight(u32),
    Share,  // +
    Prefer, // >
    Strict, // >>
    LParen,
    RParen,
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Parser> {
        let mut tokens = Vec::new();
        let bytes = input.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            match c {
                ' ' | '\t' | '\n' | '\r' => i += 1,
                '+' => {
                    tokens.push((i, Token::Share));
                    i += 1;
                }
                '(' => {
                    tokens.push((i, Token::LParen));
                    i += 1;
                }
                ')' => {
                    tokens.push((i, Token::RParen));
                    i += 1;
                }
                '>' => {
                    if bytes.get(i + 1) == Some(&b'>') {
                        tokens.push((i, Token::Strict));
                        i += 2;
                    } else {
                        tokens.push((i, Token::Prefer));
                        i += 1;
                    }
                }
                ':' => {
                    let start = i + 1;
                    let mut end = start;
                    while end < bytes.len() && bytes[end].is_ascii_digit() {
                        end += 1;
                    }
                    if end == start {
                        return Err(QvisorError::Parse {
                            at: i,
                            msg: "expected a weight after ':'".into(),
                        });
                    }
                    let w: u32 = input[start..end].parse().map_err(|_| QvisorError::Parse {
                        at: start,
                        msg: "weight does not fit in u32".into(),
                    })?;
                    if w == 0 {
                        return Err(QvisorError::Parse {
                            at: start,
                            msg: "weight must be positive".into(),
                        });
                    }
                    tokens.push((i, Token::Weight(w)));
                    i = end;
                }
                c if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' => {
                    let start = i;
                    while i < bytes.len() {
                        let c = bytes[i] as char;
                        if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' {
                            i += 1;
                        } else {
                            break;
                        }
                    }
                    tokens.push((start, Token::Ident(input[start..i].to_string())));
                }
                other => {
                    return Err(QvisorError::Parse {
                        at: i,
                        msg: format!("unexpected character '{other}'"),
                    });
                }
            }
        }
        if tokens.is_empty() {
            return Err(QvisorError::Parse {
                at: 0,
                msg: "empty policy".into(),
            });
        }
        Ok(Parser { tokens, pos: 0 })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn at(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or(self.tokens.last())
            .map(|(at, _)| *at)
            .unwrap_or(0)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn parse_policy(&mut self) -> Result<Policy> {
        let policy = self.parse_strict_chain()?;
        if self.peek().is_some() {
            return Err(QvisorError::Parse {
                at: self.at(),
                msg: "trailing input after policy".into(),
            });
        }
        Ok(policy)
    }

    fn parse_strict_chain(&mut self) -> Result<Policy> {
        let mut levels = vec![self.parse_pref_chain()?];
        while self.peek() == Some(&Token::Strict) {
            self.bump();
            levels.push(self.parse_pref_chain()?);
        }
        Ok(Policy { levels })
    }

    fn parse_pref_chain(&mut self) -> Result<PrefChain> {
        let mut groups = vec![self.parse_share_group()?];
        while self.peek() == Some(&Token::Prefer) {
            self.bump();
            groups.push(self.parse_share_group()?);
        }
        Ok(PrefChain { groups })
    }

    fn parse_share_group(&mut self) -> Result<ShareGroup> {
        let mut members = self.parse_term_as_members()?;
        while self.peek() == Some(&Token::Share) {
            self.bump();
            members.extend(self.parse_term_as_members()?);
        }
        Ok(ShareGroup { members })
    }

    /// A term is a tenant reference or a parenthesized sub-policy. A nested
    /// policy may only be *flattened into* a share group when it contains no
    /// `>`/`>>` — otherwise priorities would silently leak across the group.
    fn parse_term_as_members(&mut self) -> Result<Vec<TenantRef>> {
        match self.bump() {
            Some(Token::Ident(name)) => {
                let weight = if let Some(Token::Weight(w)) = self.peek() {
                    let w = *w;
                    self.bump();
                    w
                } else {
                    1
                };
                Ok(vec![TenantRef { name, weight }])
            }
            Some(Token::LParen) => {
                let at = self.at();
                let inner = self.parse_strict_chain()?;
                match self.bump() {
                    Some(Token::RParen) => {}
                    _ => {
                        return Err(QvisorError::Parse {
                            at: self.at(),
                            msg: "expected ')'".into(),
                        })
                    }
                }
                if inner.levels.len() != 1 || inner.levels[0].groups.len() != 1 {
                    return Err(QvisorError::Parse {
                        at,
                        msg: "parentheses may only group tenants joined by '+' \
                              (priorities cannot nest inside a share group)"
                            .into(),
                    });
                }
                Ok(inner
                    .levels
                    .into_iter()
                    .next()
                    .expect("just checked")
                    .groups[0]
                    .members
                    .clone())
            }
            other => Err(QvisorError::Parse {
                at: self.at(),
                msg: format!("expected a tenant name, found {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(g: &ShareGroup) -> Vec<&str> {
        g.members.iter().map(|m| m.name.as_str()).collect()
    }

    #[test]
    fn single_tenant() {
        let p = Policy::parse("T1").unwrap();
        assert_eq!(p.levels.len(), 1);
        assert_eq!(p.levels[0].groups.len(), 1);
        assert_eq!(names(&p.levels[0].groups[0]), vec!["T1"]);
    }

    #[test]
    fn paper_example_fig3() {
        // "T1 >> T2 + T3"
        let p = Policy::parse("T1 >> T2 + T3").unwrap();
        assert_eq!(p.levels.len(), 2);
        assert_eq!(names(&p.levels[0].groups[0]), vec!["T1"]);
        assert_eq!(names(&p.levels[1].groups[0]), vec!["T2", "T3"]);
    }

    #[test]
    fn paper_example_full_grammar() {
        // §3.1: "T1 >> T2 > T3 + T4 >> T5"
        let p = Policy::parse("T1 >> T2 > T3 + T4 >> T5").unwrap();
        assert_eq!(p.levels.len(), 3);
        let mid = &p.levels[1];
        assert_eq!(mid.groups.len(), 2);
        assert_eq!(names(&mid.groups[0]), vec!["T2"]);
        assert_eq!(names(&mid.groups[1]), vec!["T3", "T4"]);
        assert_eq!(names(&p.levels[2].groups[0]), vec!["T5"]);
        assert_eq!(p.tenant_count(), 5);
    }

    #[test]
    fn weights_extension() {
        let p = Policy::parse("T1:3 + T2").unwrap();
        assert_eq!(p.levels[0].groups[0].members[0].weight, 3);
        assert_eq!(p.levels[0].groups[0].members[1].weight, 1);
    }

    #[test]
    fn parens_group_shares() {
        let p = Policy::parse("T1 >> (T2 + T3) > T4").unwrap();
        assert_eq!(p.levels.len(), 2);
        assert_eq!(names(&p.levels[1].groups[0]), vec!["T2", "T3"]);
        assert_eq!(names(&p.levels[1].groups[1]), vec!["T4"]);
    }

    #[test]
    fn parens_cannot_nest_priorities() {
        let err = Policy::parse("(T1 >> T2) + T3").unwrap_err();
        assert!(matches!(err, QvisorError::Parse { .. }));
        assert!(err.to_string().contains("cannot nest"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Policy::parse("").is_err());
        assert!(Policy::parse("T1 >>").is_err());
        assert!(Policy::parse(">> T1").is_err());
        assert!(Policy::parse("T1 + + T2").is_err());
        assert!(Policy::parse("T1 & T2").is_err());
        assert!(Policy::parse("T1:0 + T2").is_err());
        assert!(Policy::parse("T1: + T2").is_err());
        assert!(Policy::parse("T1 T2").is_err());
        assert!(Policy::parse("(T1 + T2").is_err());
    }

    #[test]
    fn display_roundtrips() {
        for s in [
            "T1",
            "T1 >> T2 + T3",
            "T1 >> T2 > T3 + T4 >> T5",
            "T1:3 + T2",
        ] {
            let p = Policy::parse(s).unwrap();
            assert_eq!(p.to_string(), s);
            let again = Policy::parse(&p.to_string()).unwrap();
            assert_eq!(p, again);
        }
    }

    #[test]
    fn whitespace_and_identifier_flavours() {
        let p = Policy::parse("  web-frontend>>batch_jobs.v2+T9  ").unwrap();
        assert_eq!(
            p.tenant_names(),
            vec!["web-frontend", "batch_jobs.v2", "T9"]
        );
    }
}
