//! Telemetry snapshot files for the experiment binaries.
//!
//! Every sweep binary takes `--telemetry PREFIX`; each measured point then
//! writes `PREFIX-<tag>.jsonl` (one self-contained registry export per
//! point) that `qvisor telemetry report <file>` renders.

use qvisor_telemetry::{Telemetry, Tracer};

/// A snapshot file could not be written; carries the offending path so a
/// bad `--telemetry`/`--trace` prefix is reported instead of panicking.
#[derive(Debug)]
pub struct SnapshotError {
    /// The path that failed.
    pub path: String,
    /// The underlying I/O error.
    pub source: std::io::Error,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot write snapshot {}: {}", self.path, self.source)
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Reduce a human label (`"QVISOR: pFabric >> EDF"`) to a file-name-safe
/// tag (`"qvisor_pfabric_over_edf"`). Policy operators are spelled out so
/// `A >> B` and `A + B` stay distinct files.
pub fn slug(label: &str) -> String {
    let label = label.replace(">>", " over ").replace('+', " plus ");
    let mut out = String::with_capacity(label.len());
    let mut last_sep = true;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            last_sep = false;
        } else if !last_sep {
            out.push('_');
            last_sep = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

fn write(path: String, contents: String) -> Result<String, SnapshotError> {
    match std::fs::write(&path, contents) {
        Ok(()) => Ok(path),
        Err(source) => Err(SnapshotError { path, source }),
    }
}

/// Write one telemetry export to `PREFIX-<tag>.jsonl`; returns the path
/// written, or the path plus the I/O error when the prefix is unusable.
pub fn write_snapshot(
    telemetry: &Telemetry,
    prefix: &str,
    tag: &str,
) -> Result<String, SnapshotError> {
    write(
        format!("{prefix}-{}.jsonl", slug(tag)),
        telemetry.export_jsonl(),
    )
}

/// Write one packet-lifecycle trace snapshot to `PREFIX-<tag>.trace.jsonl`;
/// returns the path written, or the path plus the I/O error. Render with
/// `qvisor trace report` or convert for Perfetto with `qvisor trace
/// export`.
pub fn write_trace_snapshot(
    tracer: &Tracer,
    prefix: &str,
    tag: &str,
) -> Result<String, SnapshotError> {
    write(
        format!("{prefix}-{}.trace.jsonl", slug(tag)),
        tracer.snapshot().to_jsonl(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_are_file_safe() {
        assert_eq!(slug("QVISOR: pFabric >> EDF"), "qvisor_pfabric_over_edf");
        assert_eq!(slug("QVISOR: pFabric + EDF"), "qvisor_pfabric_plus_edf");
        assert_eq!(slug("8q SP-PIFO"), "8q_sp_pifo");
        assert_eq!(slug("load 0.6"), "load_0_6");
    }

    #[test]
    fn snapshot_round_trips_through_report() {
        let t = Telemetry::enabled();
        t.counter("net_sent_pkts", &[("tenant", "T1")]).add(5);
        let dir = std::env::temp_dir().join("qvisor_bench_snapshot_test");
        let prefix = dir.to_str().unwrap();
        let path = write_snapshot(&t, prefix, "ideal PIFO").unwrap();
        assert!(path.ends_with("-ideal_pifo.jsonl"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(qvisor_telemetry::report::render(&text)
            .unwrap()
            .contains("T1"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_prefix_reports_the_path() {
        let t = Telemetry::enabled();
        let err = write_snapshot(&t, "/nonexistent_dir_qvisor/deep/prefix", "tag").unwrap_err();
        assert!(err.path.starts_with("/nonexistent_dir_qvisor/deep/prefix-"));
        assert!(err.to_string().contains("/nonexistent_dir_qvisor"));
    }
}
