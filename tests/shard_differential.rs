//! Sequential-vs-sharded byte-exactness over real example scenarios: the
//! sharded parallel engine must reproduce the sequential oracle's report
//! JSON *and* sanitized telemetry export byte-for-byte at every shard
//! count, and the topology partitioner must be a pure function of its
//! inputs.

use qvisor::netsim::scenario::{report_json, sanitize_export, Engine, ScenarioSpec};
use qvisor::sim::Nanos;
use qvisor::telemetry::Telemetry;
use qvisor::topology::{FatTree, Partition};

/// Run `scenario` at `shards` with a fresh telemetry sink and return
/// `(report_json_bytes, sanitized_telemetry_jsonl)`.
fn run_at(path: &str, shards: usize) -> (String, String) {
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let mut spec = ScenarioSpec::from_json(&json).unwrap_or_else(|e| panic!("parse {path}: {e}"));
    spec.sim.shards = shards;
    let telemetry = Telemetry::enabled();
    let report = Engine::new()
        .with_telemetry(&telemetry)
        .run(&spec)
        .unwrap_or_else(|e| panic!("{path} at shards={shards}: {e}"));
    (
        report_json(&report).to_pretty(),
        sanitize_export(&telemetry.export_jsonl()),
    )
}

/// The core differential: shard counts above 1 must match the sequential
/// oracle (shards = 1 takes the plain `build().run()` path) byte-for-byte.
fn assert_shard_invariant(path: &str, shard_counts: &[usize]) {
    let (oracle_report, oracle_telemetry) = run_at(path, 1);
    for &shards in shard_counts {
        let (report, telemetry) = run_at(path, shards);
        assert_eq!(
            oracle_report, report,
            "{path}: report diverged from the sequential oracle at shards={shards}"
        );
        assert_eq!(
            oracle_telemetry, telemetry,
            "{path}: telemetry diverged from the sequential oracle at shards={shards}"
        );
    }
}

#[test]
fn shard_fabric_example_is_shard_invariant() {
    // 4x4 leaf-spine: 8 partition units, so the full ladder fits.
    assert_shard_invariant("examples/scenarios/shard_fabric.json", &[2, 4, 8]);
}

#[test]
fn incast_example_is_shard_invariant() {
    // 2x2 leaf-spine: 4 partition units.
    assert_shard_invariant("examples/scenarios/incast.json", &[2, 4]);
}

#[test]
fn fig4_point_example_is_shard_invariant() {
    // Mixed Poisson + CBR-fleet workload under a QVISOR policy.
    assert_shard_invariant("examples/scenarios/fig4_point.json", &[2, 4]);
}

#[test]
fn oversharding_is_rejected_with_a_dotted_path() {
    let json = std::fs::read_to_string("examples/scenarios/incast.json").unwrap();
    let mut spec = ScenarioSpec::from_json(&json).unwrap();
    spec.sim.shards = 64; // 2x2 leaf-spine has only 4 partition units
    let err = Engine::new().run(&spec).unwrap_err().to_string();
    assert!(
        err.contains("sim.shards"),
        "rejection should name the offending field: {err}"
    );
}

#[test]
fn partitioner_is_a_pure_function_of_its_inputs() {
    let ft = FatTree::build(4, 1_000_000_000, Nanos(1000));
    for shards in [1, 2, 4, 8] {
        let a = Partition::new(&ft.topology, shards).unwrap();
        let b = Partition::new(&ft.topology, shards).unwrap();
        assert_eq!(a.owners(), b.owners(), "owners diverged at shards={shards}");
        // Every shard owns at least one node, and every node has an owner.
        for s in 0..shards {
            assert!(
                a.owners().contains(&s),
                "shard {s} owns nothing at shards={shards}"
            );
        }
        assert!(a.owners().iter().all(|&o| o < shards));
    }
}
