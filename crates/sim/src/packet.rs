//! The packet model shared by every layer of the simulator.

use crate::id::{FlowId, NodeId, Rank, TenantId};
use crate::time::Nanos;

/// What a packet carries, as far as the simulator cares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketKind {
    /// A data segment of a reliable flow; `seq` identifies it for ACKing.
    Data,
    /// An acknowledgement for `acked_seq` of the reverse-direction flow.
    /// ACKs are scheduled at the highest priority (rank 0) like in pFabric.
    Ack {
        /// Sequence number being acknowledged.
        acked_seq: u64,
    },
    /// An unreliable datagram (CBR / deadline traffic): never retransmitted.
    Datagram,
}

/// A simulated packet.
///
/// Two rank fields implement the paper's split between *tenants* and the
/// *hypervisor*: `rank` is assigned by the tenant's rank function at the end
/// host; `txf_rank` ("transformed rank") is what QVISOR's pre-processor
/// rewrites it to, and is what the hardware scheduler actually sorts on.
/// For a network without QVISOR the two are identical.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Owning flow.
    pub flow: FlowId,
    /// Owning tenant (traffic segment).
    pub tenant: TenantId,
    /// Sequence number within the flow (data packets), or 0.
    pub seq: u64,
    /// Size on the wire, in bytes (headers included).
    pub size: u32,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Tenant-assigned rank (lower = more urgent).
    pub rank: Rank,
    /// Rank after QVISOR's pre-processor; schedulers sort on this.
    pub txf_rank: Rank,
    /// Payload classification.
    pub kind: PacketKind,
    /// Simulation time at which the packet was first sent.
    pub sent_at: Nanos,
    /// Absolute deadline for deadline-constrained traffic.
    pub deadline: Option<Nanos>,
    /// Simulation time this packet last entered a queue. Stamped by
    /// instrumentation wrappers to measure queueing delay; `Nanos::ZERO`
    /// until then. Never consulted by scheduling logic.
    pub enqueued_at: Nanos,
}

impl Packet {
    /// A data packet with `txf_rank` initialised to `rank`.
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        flow: FlowId,
        tenant: TenantId,
        seq: u64,
        size: u32,
        src: NodeId,
        dst: NodeId,
        rank: Rank,
        sent_at: Nanos,
    ) -> Packet {
        Packet {
            flow,
            tenant,
            seq,
            size,
            src,
            dst,
            rank,
            txf_rank: rank,
            kind: PacketKind::Data,
            sent_at,
            deadline: None,
            enqueued_at: Nanos::ZERO,
        }
    }

    /// The ACK for this data packet, travelling the reverse path at the
    /// highest priority with a minimal wire size.
    pub fn ack_for(&self, size: u32, now: Nanos) -> Packet {
        debug_assert_eq!(self.kind, PacketKind::Data, "only data packets are ACKed");
        Packet {
            flow: self.flow,
            tenant: self.tenant,
            seq: self.seq,
            size,
            src: self.dst,
            dst: self.src,
            rank: 0,
            txf_rank: 0,
            kind: PacketKind::Ack {
                acked_seq: self.seq,
            },
            sent_at: now,
            deadline: None,
            enqueued_at: Nanos::ZERO,
        }
    }

    /// True for data or datagram packets (things that occupy the forward
    /// path and are subject to tenant scheduling).
    pub fn is_payload(&self) -> bool {
        matches!(self.kind, PacketKind::Data | PacketKind::Datagram)
    }
}

/// Handle to a packet parked in a [`PacketArena`].
///
/// Deliberately small and `Copy`: event payloads carry a slot instead of a
/// boxed packet, so the event core moves 4 bytes instead of a heap pointer
/// it had to allocate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PacketSlot(u32);

/// A slab/freelist arena for in-flight packets.
///
/// The netsim's hot path used to heap-allocate a `Box<Packet>` for every
/// link traversal and free it on arrival; over a fig4-scale run that is
/// millions of allocator round trips. The arena recycles slots instead:
/// [`PacketArena::insert`] pops the most-recently-freed slot (LIFO, so the
/// storage stays cache-hot) and [`PacketArena::take`] returns the slot to
/// the freelist. Slot assignment is a pure function of the insert/take
/// sequence, so arena reuse cannot perturb determinism.
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Option<Packet>>,
    free: Vec<u32>,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> PacketArena {
        PacketArena::default()
    }

    /// An empty arena with room for `n` packets before regrowing.
    pub fn with_capacity(n: usize) -> PacketArena {
        PacketArena {
            slots: Vec::with_capacity(n),
            free: Vec::with_capacity(n),
        }
    }

    /// Park a packet, returning its slot.
    pub fn insert(&mut self, p: Packet) -> PacketSlot {
        match self.free.pop() {
            Some(i) => {
                debug_assert!(self.slots[i as usize].is_none(), "freelist slot occupied");
                self.slots[i as usize] = Some(p);
                PacketSlot(i)
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("arena exceeds u32 slots");
                self.slots.push(Some(p));
                PacketSlot(i)
            }
        }
    }

    /// Remove and return the packet in `slot`, recycling the slot.
    ///
    /// # Panics
    /// Panics if the slot is vacant — a use-after-take is a logic error.
    pub fn take(&mut self, slot: PacketSlot) -> Packet {
        let p = self.slots[slot.0 as usize]
            .take()
            .expect("packet slot taken twice");
        self.free.push(slot.0);
        p
    }

    /// Packets currently parked.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// True when no packets are parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots ever allocated (high-water mark of in-flight packets).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        Packet::data(
            FlowId(1),
            TenantId(2),
            7,
            1500,
            NodeId(0),
            NodeId(5),
            42,
            Nanos::from_micros(3),
        )
    }

    #[test]
    fn data_packet_initialises_txf_rank() {
        let p = sample();
        assert_eq!(p.rank, 42);
        assert_eq!(p.txf_rank, 42);
        assert!(p.is_payload());
    }

    #[test]
    fn ack_reverses_direction_and_has_top_priority() {
        let p = sample();
        let ack = p.ack_for(64, Nanos::from_micros(9));
        assert_eq!(ack.src, p.dst);
        assert_eq!(ack.dst, p.src);
        assert_eq!(ack.rank, 0);
        assert_eq!(ack.txf_rank, 0);
        assert_eq!(ack.kind, PacketKind::Ack { acked_seq: 7 });
        assert_eq!(ack.size, 64);
        assert!(!ack.is_payload());
    }

    #[test]
    fn arena_round_trips_packets() {
        let mut arena = PacketArena::new();
        let a = arena.insert(sample());
        let mut second = sample();
        second.seq = 99;
        let b = arena.insert(second);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.take(b).seq, 99);
        assert_eq!(arena.take(a).seq, 7);
        assert!(arena.is_empty());
    }

    #[test]
    fn arena_recycles_slots_lifo() {
        let mut arena = PacketArena::with_capacity(4);
        let a = arena.insert(sample());
        let b = arena.insert(sample());
        arena.take(a);
        arena.take(b);
        // Most recently freed slot comes back first; no growth.
        assert_eq!(arena.insert(sample()), b);
        assert_eq!(arena.insert(sample()), a);
        assert_eq!(arena.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "packet slot taken twice")]
    fn arena_double_take_panics() {
        let mut arena = PacketArena::new();
        let a = arena.insert(sample());
        arena.take(a);
        arena.take(a);
    }
}
