//! Canned topologies used by the paper's evaluation and the examples.

use crate::graph::Topology;
use qvisor_sim::{Nanos, NodeId};

/// Parameters of a two-tier leaf–spine fabric.
///
/// The paper's evaluation (§4) uses 9 leaves × 16 hosts = 144 servers,
/// 4 spines, 1 Gbps access links and 4 Gbps leaf–spine links.
#[derive(Clone, Copy, Debug)]
pub struct LeafSpineConfig {
    /// Number of leaf (top-of-rack) switches.
    pub leaves: usize,
    /// Number of spine switches; every leaf connects to every spine.
    pub spines: usize,
    /// Hosts attached to each leaf.
    pub hosts_per_leaf: usize,
    /// Host-to-leaf link rate (bits/s).
    pub access_bps: u64,
    /// Leaf-to-spine link rate (bits/s).
    pub fabric_bps: u64,
    /// Host-to-leaf propagation delay.
    pub access_delay: Nanos,
    /// Leaf-to-spine propagation delay.
    pub fabric_delay: Nanos,
}

impl LeafSpineConfig {
    /// The paper's evaluation fabric: 144 servers, 9 leaves, 4 spines,
    /// 1 Gbps access and 4 Gbps fabric links.
    pub fn paper() -> LeafSpineConfig {
        LeafSpineConfig {
            leaves: 9,
            spines: 4,
            hosts_per_leaf: 16,
            access_bps: qvisor_sim::gbps(1),
            fabric_bps: qvisor_sim::gbps(4),
            access_delay: Nanos::from_micros(1),
            fabric_delay: Nanos::from_micros(1),
        }
    }

    /// A scaled-down fabric for fast tests and smoke benchmarks.
    pub fn small() -> LeafSpineConfig {
        LeafSpineConfig {
            leaves: 2,
            spines: 2,
            hosts_per_leaf: 4,
            access_bps: qvisor_sim::gbps(1),
            fabric_bps: qvisor_sim::gbps(4),
            access_delay: Nanos::from_micros(1),
            fabric_delay: Nanos::from_micros(1),
        }
    }
}

/// A leaf–spine topology plus the id layout needed to address it.
#[derive(Clone, Debug)]
pub struct LeafSpine {
    /// The underlying graph.
    pub topology: Topology,
    /// Host ids, grouped by leaf: `hosts[leaf][i]`.
    pub hosts: Vec<Vec<NodeId>>,
    /// Leaf switch ids.
    pub leaf_switches: Vec<NodeId>,
    /// Spine switch ids.
    pub spine_switches: Vec<NodeId>,
}

impl LeafSpine {
    /// Build a leaf–spine fabric from `cfg`.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn build(cfg: &LeafSpineConfig) -> LeafSpine {
        assert!(cfg.leaves > 0 && cfg.spines > 0 && cfg.hosts_per_leaf > 0);
        let mut b = Topology::builder();
        let leaf_switches: Vec<NodeId> = (0..cfg.leaves)
            .map(|l| b.add_switch(format!("leaf{l}")))
            .collect();
        let spine_switches: Vec<NodeId> = (0..cfg.spines)
            .map(|s| b.add_switch(format!("spine{s}")))
            .collect();
        let mut hosts = Vec::with_capacity(cfg.leaves);
        for (l, &leaf) in leaf_switches.iter().enumerate() {
            let mut rack = Vec::with_capacity(cfg.hosts_per_leaf);
            for h in 0..cfg.hosts_per_leaf {
                let host = b.add_host(format!("h{l}-{h}"));
                b.add_link(host, leaf, cfg.access_bps, cfg.access_delay);
                rack.push(host);
            }
            hosts.push(rack);
        }
        for &leaf in &leaf_switches {
            for &spine in &spine_switches {
                b.add_link(leaf, spine, cfg.fabric_bps, cfg.fabric_delay);
            }
        }
        LeafSpine {
            topology: b.build(),
            hosts,
            leaf_switches,
            spine_switches,
        }
    }

    /// Flat list of every host.
    pub fn all_hosts(&self) -> Vec<NodeId> {
        self.hosts.iter().flatten().copied().collect()
    }
}

/// A dumbbell: `n` senders and `n` receivers joined by one bottleneck link
/// between two switches. The classic single-bottleneck scheduling testbed.
#[derive(Clone, Debug)]
pub struct Dumbbell {
    /// The underlying graph.
    pub topology: Topology,
    /// Sender hosts (left side).
    pub senders: Vec<NodeId>,
    /// Receiver hosts (right side).
    pub receivers: Vec<NodeId>,
    /// Left switch (owns the bottleneck output port).
    pub left_switch: NodeId,
    /// Right switch.
    pub right_switch: NodeId,
}

impl Dumbbell {
    /// Build a dumbbell with `n` hosts per side, `edge_bps` access links and
    /// a `bottleneck_bps` core link.
    pub fn build(n: usize, edge_bps: u64, bottleneck_bps: u64, delay: Nanos) -> Dumbbell {
        assert!(n > 0);
        let mut b = Topology::builder();
        let left = b.add_switch("left");
        let right = b.add_switch("right");
        b.add_link(left, right, bottleneck_bps, delay);
        let senders: Vec<NodeId> = (0..n)
            .map(|i| {
                let h = b.add_host(format!("s{i}"));
                b.add_link(h, left, edge_bps, delay);
                h
            })
            .collect();
        let receivers: Vec<NodeId> = (0..n)
            .map(|i| {
                let h = b.add_host(format!("r{i}"));
                b.add_link(h, right, edge_bps, delay);
                h
            })
            .collect();
        Dumbbell {
            topology: b.build(),
            senders,
            receivers,
            left_switch: left,
            right_switch: right,
        }
    }
}

/// A `k`-ary fat-tree (Al-Fares et al.): `k` pods, `(k/2)²` core switches,
/// `k²/4 · k` hosts. Provided for experiments beyond the paper's fabric.
#[derive(Clone, Debug)]
pub struct FatTree {
    /// The underlying graph.
    pub topology: Topology,
    /// All host ids in pod order.
    pub hosts: Vec<NodeId>,
    /// Edge switches per pod.
    pub edge_switches: Vec<Vec<NodeId>>,
    /// Aggregation switches per pod.
    pub agg_switches: Vec<Vec<NodeId>>,
    /// Core switches.
    pub core_switches: Vec<NodeId>,
}

impl FatTree {
    /// Build a `k`-ary fat tree with uniform link rate and delay.
    ///
    /// # Panics
    /// Panics unless `k` is even and at least 2.
    pub fn build(k: usize, rate_bps: u64, delay: Nanos) -> FatTree {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat-tree arity must be even and >= 2"
        );
        let half = k / 2;
        let mut b = Topology::builder();
        let core_switches: Vec<NodeId> = (0..half * half)
            .map(|i| b.add_switch(format!("core{i}")))
            .collect();
        let mut edge_switches = Vec::with_capacity(k);
        let mut agg_switches = Vec::with_capacity(k);
        let mut hosts = Vec::new();
        for pod in 0..k {
            let aggs: Vec<NodeId> = (0..half)
                .map(|a| b.add_switch(format!("agg{pod}-{a}")))
                .collect();
            let edges: Vec<NodeId> = (0..half)
                .map(|e| b.add_switch(format!("edge{pod}-{e}")))
                .collect();
            for (e, &edge) in edges.iter().enumerate() {
                for h in 0..half {
                    let host = b.add_host(format!("h{pod}-{e}-{h}"));
                    b.add_link(host, edge, rate_bps, delay);
                    hosts.push(host);
                }
                for &agg in &aggs {
                    b.add_link(edge, agg, rate_bps, delay);
                }
            }
            for (a, &agg) in aggs.iter().enumerate() {
                for c in 0..half {
                    b.add_link(agg, core_switches[a * half + c], rate_bps, delay);
                }
            }
            agg_switches.push(aggs);
            edge_switches.push(edges);
        }
        FatTree {
            topology: b.build(),
            hosts,
            edge_switches,
            agg_switches,
            core_switches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    #[test]
    fn paper_fabric_dimensions() {
        let ls = LeafSpine::build(&LeafSpineConfig::paper());
        assert_eq!(ls.all_hosts().len(), 144);
        assert_eq!(ls.leaf_switches.len(), 9);
        assert_eq!(ls.spine_switches.len(), 4);
        // nodes = 144 hosts + 13 switches
        assert_eq!(ls.topology.node_count(), 157);
        // directed links = 2*(144 access + 9*4 fabric)
        assert_eq!(ls.topology.links().len(), 2 * (144 + 36));
    }

    #[test]
    fn leaf_spine_wiring() {
        let ls = LeafSpine::build(&LeafSpineConfig::small());
        let host = ls.hosts[0][0];
        let leaf = ls.leaf_switches[0];
        assert_eq!(ls.topology.node(host).kind, NodeKind::Host);
        let l = ls.topology.link_between(host, leaf).unwrap();
        assert_eq!(l.rate_bps, qvisor_sim::gbps(1));
        // every leaf connects to every spine at fabric rate
        for &leaf in &ls.leaf_switches {
            for &spine in &ls.spine_switches {
                let l = ls.topology.link_between(leaf, spine).unwrap();
                assert_eq!(l.rate_bps, qvisor_sim::gbps(4));
            }
        }
    }

    #[test]
    fn dumbbell_shape() {
        let d = Dumbbell::build(3, 1_000, 500, Nanos(100));
        assert_eq!(d.senders.len(), 3);
        assert_eq!(d.receivers.len(), 3);
        let l = d
            .topology
            .link_between(d.left_switch, d.right_switch)
            .unwrap();
        assert_eq!(l.rate_bps, 500);
        for &s in &d.senders {
            assert!(d.topology.link_between(s, d.left_switch).is_some());
        }
    }

    #[test]
    fn fat_tree_k4() {
        let ft = FatTree::build(4, 1_000, Nanos(1));
        assert_eq!(ft.hosts.len(), 16); // k^3/4
        assert_eq!(ft.core_switches.len(), 4); // (k/2)^2
        assert_eq!(ft.edge_switches.iter().flatten().count(), 8);
        assert_eq!(ft.agg_switches.iter().flatten().count(), 8);
        // 16 hosts + 20 switches
        assert_eq!(ft.topology.node_count(), 36);
    }

    #[test]
    #[should_panic(expected = "arity must be even")]
    fn fat_tree_rejects_odd_k() {
        let _ = FatTree::build(3, 1_000, Nanos(1));
    }
}
