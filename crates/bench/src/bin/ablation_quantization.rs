//! Ablation: how many quantization levels does normalization need?
//!
//! The synthesizer quantizes each tenant's rank range onto Q levels (§3.2,
//! "rank normalization"). Too few levels erase intra-tenant scheduling
//! (pFabric degenerates toward FIFO); more levels cost rank-space width —
//! and on commodity switches, queues. This sweep runs the Fig. 4 scenario
//! under `pFabric >> EDF` varying Q for the pFabric tenant.
//!
//! Usage: cargo run -p qvisor-bench --release --bin ablation_quantization
//!        [-- --telemetry PREFIX]   write PREFIX-levels<N>.jsonl per point

use qvisor_bench::harness::{
    ablation_scenario, run_labelled, scaled_fcts, telemetry_prefix, ABLATION_SCALE,
};
use qvisor_netsim::scenario::SchedulerSpec;
use qvisor_sim::TenantId;

fn main() {
    println!("Ablation: pFabric quantization levels (policy pFabric >> EDF, load 0.6)");
    println!(
        "{:>8}{:>16}{:>16}",
        "levels", "small FCT (ms)", "large FCT (ms)"
    );
    let points: Vec<_> = [2u64, 4, 8, 32, 128, 512, 2048]
        .into_iter()
        .map(|levels| {
            let spec = ablation_scenario(
                format!("ablation-quantization levels{levels}"),
                1,
                SchedulerSpec::Pifo,
                levels,
            );
            (format!("levels{levels}"), spec)
        })
        .collect();
    run_labelled(&points, telemetry_prefix().as_deref(), |tag, r| {
        let levels: u64 = tag.trim_start_matches("levels").parse().unwrap();
        let (small, large) = scaled_fcts(r, TenantId(1), ABLATION_SCALE);
        println!("{levels:>8}{small:>16.3}{large:>16.2}");
    });
    println!(
        "\nFew levels collapse pFabric's SRPT behaviour (small flows slow \
         down); returns diminish once levels resolve the small-flow sizes."
    );
}
