//! Deterministic greedy minimization of a failing case.
//!
//! Given a case and a predicate (normally "the differential oracle still
//! disagrees"), [`minimize`] repeatedly tries a fixed, ordered list of
//! shrinking edits — drop a tenant, merge strict levels, merge preference
//! groups, reset share weights, drop level overrides, shift and halve
//! rank ranges, push synthesizer options toward their defaults — and
//! keeps the first edit that preserves the predicate. Every candidate
//! strictly decreases a well-founded measure (tenant count, policy node
//! count, weight sum, range magnitudes, non-default synth options), so
//! the greedy fixpoint terminates; the edit list is fixed and the
//! predicate is pure, so the result is a deterministic function of the
//! input case.

use qvisor_core::{Policy, SynthOptions};

use crate::gen::FuzzCase;

/// Replace the case's policy with `ast` rendered canonically.
fn with_policy(case: &FuzzCase, ast: &Policy) -> FuzzCase {
    let mut next = case.clone();
    next.config.policy = ast.to_string();
    next
}

/// Remove `name` from the policy, dropping groups and levels it empties.
/// Returns `None` when the policy would become empty.
fn policy_without(ast: &Policy, name: &str) -> Option<Policy> {
    let mut next = ast.clone();
    for level in &mut next.levels {
        for group in &mut level.groups {
            group.members.retain(|m| m.name != name);
        }
        level.groups.retain(|g| !g.members.is_empty());
    }
    next.levels.retain(|l| !l.groups.is_empty());
    if next.levels.is_empty() {
        None
    } else {
        Some(next)
    }
}

/// All shrinking candidates of `case`, in the fixed order they are tried.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    let Ok(ast) = Policy::parse(&case.config.policy) else {
        return out;
    };

    // 1. Drop a tenant entirely (spec, rank fn, and policy mention).
    if case.config.tenants.len() > 1 {
        for drop in 0..case.config.tenants.len() {
            let name = &case.config.tenants[drop].name;
            let Some(next_ast) = (if ast.tenant_names().contains(&name.as_str()) {
                policy_without(&ast, name)
            } else {
                Some(ast.clone())
            }) else {
                continue;
            };
            let id = case.config.tenants[drop].id;
            let mut next = with_policy(case, &next_ast);
            next.config.tenants.remove(drop);
            next.rank_fns.retain(|(t, _)| *t != id);
            out.push(next);
        }
    }

    // 2. Merge a strict level into its predecessor (shrink `>>` nesting).
    for li in 1..ast.levels.len() {
        let mut next_ast = ast.clone();
        let moved = next_ast.levels.remove(li);
        next_ast.levels[li - 1].groups.extend(moved.groups);
        out.push(with_policy(case, &next_ast));
    }

    // 3. Merge a preference group into its predecessor (shrink `>`).
    for (li, level) in ast.levels.iter().enumerate() {
        for gi in 1..level.groups.len() {
            let mut next_ast = ast.clone();
            let moved = next_ast.levels[li].groups.remove(gi);
            next_ast.levels[li].groups[gi - 1]
                .members
                .extend(moved.members);
            out.push(with_policy(case, &next_ast));
        }
    }

    // 4. Reset a share weight to 1.
    for (li, level) in ast.levels.iter().enumerate() {
        for (gi, group) in level.groups.iter().enumerate() {
            for (mi, member) in group.members.iter().enumerate() {
                if member.weight != 1 {
                    let mut next_ast = ast.clone();
                    next_ast.levels[li].groups[gi].members[mi].weight = 1;
                    out.push(with_policy(case, &next_ast));
                }
            }
        }
    }

    // 5. Per-tenant parameters toward identity.
    for ti in 0..case.config.tenants.len() {
        let t = &case.config.tenants[ti];
        if t.levels.is_some() {
            let mut next = case.clone();
            next.config.tenants[ti].levels = None;
            out.push(next);
        }
        if t.rank_min > 0 {
            // Shift the range to zero, preserving its span.
            let mut next = case.clone();
            next.config.tenants[ti].rank_min = 0;
            next.config.tenants[ti].rank_max = t.rank_max - t.rank_min;
            out.push(next);
        }
        if t.rank_max > t.rank_min {
            let mut next = case.clone();
            next.config.tenants[ti].rank_max = t.rank_min + (t.rank_max - t.rank_min) / 2;
            out.push(next);
        }
    }

    // 6. Synthesizer options toward identity/defaults.
    let synth = &case.config.synth;
    let defaults = SynthOptions::default();
    if synth.first_rank > 0 {
        let mut next = case.clone();
        next.config.synth.first_rank = 0;
        out.push(next);
        let mut next = case.clone();
        next.config.synth.first_rank = synth.first_rank / 2;
        out.push(next);
    }
    if synth.default_levels != defaults.default_levels {
        let mut next = case.clone();
        next.config.synth.default_levels = defaults.default_levels;
        out.push(next);
    }
    if synth.pref_bias_divisor != defaults.pref_bias_divisor {
        let mut next = case.clone();
        next.config.synth.pref_bias_divisor = defaults.pref_bias_divisor;
        out.push(next);
    }

    out
}

/// Greedily shrink `case` while `keep` stays true.
///
/// `keep(case)` must hold on entry (otherwise the case is returned
/// unchanged). The result still satisfies `keep`, and no single further
/// candidate edit can shrink it.
pub fn minimize(case: &FuzzCase, keep: impl Fn(&FuzzCase) -> bool) -> FuzzCase {
    if !keep(case) {
        return case.clone();
    }
    let mut current = case.clone();
    // Every accepted edit strictly decreases the well-founded measure
    // below, so this fixpoint terminates; the bound is a safety net.
    for _ in 0..100_000 {
        let Some(next) = candidates(&current).into_iter().find(|c| keep(c)) else {
            return current;
        };
        debug_assert!(measure(&next) < measure(&current), "edit did not shrink");
        current = next;
    }
    current
}

/// Well-founded shrink measure: strictly decreases under every candidate
/// edit. (Used by debug assertions and the minimizer tests.)
fn measure(case: &FuzzCase) -> u128 {
    let policy_nodes = Policy::parse(&case.config.policy)
        .map(|ast| {
            let levels = ast.levels.len() as u128;
            let groups: u128 = ast.levels.iter().map(|l| l.groups.len() as u128).sum();
            let weight_excess: u128 = ast
                .levels
                .iter()
                .flat_map(|l| &l.groups)
                .flat_map(|g| &g.members)
                .map(|m| u128::from(m.weight) - 1)
                .sum();
            levels + groups + weight_excess
        })
        .unwrap_or(0);
    let tenant_mag: u128 = case
        .config
        .tenants
        .iter()
        .map(|t| {
            u128::from(t.levels.is_some())
                + u128::from(t.rank_min)
                + u128::from(t.rank_max - t.rank_min)
        })
        .sum();
    let defaults = SynthOptions::default();
    let synth = &case.config.synth;
    let synth_mag = u128::from(synth.first_rank)
        + u128::from(synth.default_levels != defaults.default_levels)
        + u128::from(synth.pref_bias_divisor != defaults.pref_bias_divisor);
    (case.config.tenants.len() as u128) * (1u128 << 80)
        + policy_nodes * (1u128 << 70)
        + tenant_mag
        + synth_mag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_case;
    use crate::oracle::{run_case_with, Verdict};
    use qvisor_core::DeploymentConfig;

    fn overflow_case() -> FuzzCase {
        FuzzCase {
            seed: 3,
            index: 0,
            config: DeploymentConfig::from_json(
                r#"{
                  "tenants": [
                    {"id": 1, "name": "A", "algorithm": "pFabric", "rank_min": 5, "rank_max": 2000, "levels": 64},
                    {"id": 2, "name": "B", "algorithm": "EDF", "rank_min": 0, "rank_max": 900},
                    {"id": 3, "name": "C", "algorithm": "STFQ", "rank_min": 10, "rank_max": 500},
                    {"id": 4, "name": "D", "algorithm": "FQ", "rank_min": 0, "rank_max": 100}
                  ],
                  "policy": "A >> B:3 + C > D",
                  "synth": {"first_rank": 18446744073709551610, "default_levels": 32, "pref_bias_divisor": 5}
                }"#,
            )
            .unwrap(),
            rank_fns: Vec::new(),
        }
    }

    fn has_overflow_error(case: &FuzzCase) -> bool {
        let out = run_case_with(case, false);
        out.verdict == Verdict::Errors && out.codes.iter().any(|c| c == "QV-OVERFLOW")
    }

    #[test]
    fn minimization_preserves_the_predicate_and_shrinks_hard() {
        let case = overflow_case();
        assert!(has_overflow_error(&case));
        let min = minimize(&case, has_overflow_error);
        assert!(
            has_overflow_error(&min),
            "predicate lost: {}",
            min.config.to_json()
        );
        // A single saturating tenant suffices to witness QV-OVERFLOW.
        assert_eq!(min.config.tenants.len(), 1, "{}", min.config.to_json());
        let ast = Policy::parse(&min.config.policy).unwrap();
        assert_eq!(ast.levels.len(), 1);
        assert!(ast
            .levels
            .iter()
            .flat_map(|l| &l.groups)
            .flat_map(|g| &g.members)
            .all(|m| m.weight == 1));
        assert!(measure(&min) < measure(&case));
    }

    #[test]
    fn minimization_is_deterministic() {
        let case = overflow_case();
        let a = minimize(&case, has_overflow_error);
        let b = minimize(&case, has_overflow_error);
        assert_eq!(a.config.to_json(), b.config.to_json());
        assert_eq!(a.rank_fns, b.rank_fns);
    }

    #[test]
    fn a_case_failing_the_predicate_is_returned_unchanged() {
        let case = overflow_case();
        let out = minimize(&case, |_| false);
        assert_eq!(out.config.to_json(), case.config.to_json());
    }

    #[test]
    fn every_candidate_edit_strictly_decreases_the_measure() {
        for index in 0..64 {
            let case = generate_case(crate::DEFAULT_SEED, index);
            let m = measure(&case);
            for cand in candidates(&case) {
                assert!(
                    measure(&cand) < m,
                    "case {index} produced a non-shrinking edit"
                );
            }
        }
    }

    #[test]
    fn minimization_terminates_on_generated_cases() {
        // Any predicate that keeps accepting must still hit a fixpoint.
        for index in 0..8 {
            let case = generate_case(crate::DEFAULT_SEED, index);
            let min = minimize(&case, |c| c.config.synthesize().is_ok());
            if case.config.synthesize().is_ok() {
                assert!(min.config.synthesize().is_ok());
                assert!(candidates(&min)
                    .iter()
                    .all(|c| c.config.synthesize().is_err() || measure(c) < measure(&min)));
            }
        }
    }
}
