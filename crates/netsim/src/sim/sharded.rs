//! The sharded parallel engine: conservative-lookahead windows over
//! shard-local [`Simulation`] instances, with a coordinator that merges
//! per-shard results into the byte-identical sequential report.
//!
//! ## Execution model
//!
//! The topology is cut into rack-granularity units by
//! [`Partition`](qvisor_topology::Partition) and dealt round-robin onto
//! shards. Each worker thread builds its *own* complete `Simulation` via
//! the caller's closures — topology, routes, queues, and flow state exist
//! on every shard; only *event scheduling* is gated on node ownership, so
//! a shard pops exactly the events of the nodes it owns. A packet crossing
//! a cut link leaves through the sender shard's `outbox` and is injected
//! into the receiver shard's event queue at the next window barrier.
//!
//! Windows follow classic Chandy/Misra conservative synchronization (see
//! `qvisor_sim`'s `ShardClock`): with `L` the minimum cut-edge propagation
//! delay, every event strictly before `min_pending + L` is safe to
//! process, because a handoff emitted inside the window cannot be due
//! before that bound.
//!
//! ## Byte-exactness
//!
//! The merged [`SimReport`] must be byte-identical to the sequential
//! engine's at every shard count. Three mechanisms make that hold:
//!
//! * **Content-keyed event ordering** ([`EventKey`]): same-instant events
//!   pop in an order derived from event *content*, never from scheduling
//!   history, so barrier injection cannot reorder anything observable.
//! * **Coordinator-driven sampling ticks**: shards never schedule `Sample`
//!   events. The coordinator caps windows at tick instants and instructs
//!   every shard to flush its goodput window at the barrier — exactly
//!   where the sequential engine's class-0 tick sorts (before same-instant
//!   packet events). Flush outputs are matched across shards *by flush
//!   instance* (every shard performs the same flush sequence), so merged
//!   samples reproduce the sequential series even when two flushes share a
//!   timestamp.
//! * **The quiescence rewind**: shards overrun the sequential stop point —
//!   they cannot observe global quiescence mid-window. Each shard logs the
//!   `(time, key)` of its last *progress* event (one that changed a
//!   doneness counter: `reliable_done`, `cbr_live`, `in_flight`) plus the
//!   counted events after it. Progress events are totally ordered across
//!   shards (keys embed the owned node), the done state is absorbing, and
//!   overrun events are report-invisible no-ops (port frees over empty
//!   queues, stale timers), so the maximum last-progress point across
//!   shards *is* where the sequential loop broke: counted events past it
//!   are subtracted and `end_time` rewinds to it.

use super::{EventKey, Simulation};
use crate::report::SimReport;
use qvisor_core::QvisorError;
use qvisor_sim::{Nanos, NodeId, Packet, TenantId};
use qvisor_telemetry::{Telemetry, TelemetrySnapshot};
use qvisor_topology::{Partition, Topology};
use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};

/// The ownership view a worker's `Simulation` runs under.
pub(in crate::sim) struct ShardView {
    /// This shard's index.
    pub index: usize,
    /// Node index → owning shard (from `Partition::owners`).
    pub owner: Vec<usize>,
}

/// A packet crossing a shard boundary: due at `at` on node `to`.
#[derive(Clone, Debug)]
pub(in crate::sim) struct Handoff {
    pub at: Nanos,
    pub to: NodeId,
    pub packet: Packet,
}

/// Per-shard bookkeeping feeding the coordinator's quiescence rewind.
#[derive(Clone, Debug)]
pub(in crate::sim) struct ShardBook {
    /// Counted (non-stale) events processed so far.
    pub counted: u64,
    /// Time of the latest counted event.
    pub end_time: Nanos,
    /// `(time, key)` of the last progress event — one that changed a
    /// doneness counter.
    pub last_progress: Option<(Nanos, EventKey)>,
    /// Counted events processed after `last_progress`, oldest first.
    /// Cleared on every progress event, so it only ever holds the
    /// trailing no-op run (bounded in practice by a handful of port
    /// frees and dead timers).
    pub tail: Vec<(Nanos, EventKey)>,
}

impl Default for ShardBook {
    fn default() -> ShardBook {
        ShardBook {
            counted: 0,
            end_time: Nanos::ZERO,
            last_progress: None,
            tail: Vec::new(),
        }
    }
}

impl ShardBook {
    /// Log one counted event.
    pub fn record(&mut self, t: Nanos, key: EventKey, progress: bool) {
        self.counted += 1;
        self.end_time = self.end_time.max(t);
        if progress {
            self.last_progress = Some((t, key));
            self.tail.clear();
        } else {
            self.tail.push((t, key));
        }
    }

    /// Counted events at or before the global progress cut. (`None < Some`
    /// for the cut, so with no progress anywhere every tail entry — i.e.
    /// every counted event — is beyond the cut.)
    fn kept_below(&self, cut: Option<(Nanos, EventKey)>) -> u64 {
        let beyond = self.tail.iter().filter(|&&e| Some(e) > cut).count() as u64;
        self.counted - beyond
    }
}

/// Doneness counters, summed across shards at every barrier.
#[derive(Clone, Copy, Debug, Default)]
struct Counters {
    total: u64,
    done: u64,
    cbr_live: u64,
    in_flight: i64,
}

/// One shard's state at a barrier.
struct Stepped {
    next_pending: Option<Nanos>,
    outbox: Vec<Handoff>,
    counters: Counters,
    book: ShardBook,
}

/// A worker's first message: config the coordinator needs, plus the
/// initial barrier state.
struct Hello {
    horizon: Nanos,
    sample_interval: Option<Nanos>,
    has_adapter: bool,
    has_monitor: bool,
    state: Stepped,
}

enum ToWorker {
    /// Flush the goodput window (if instructed), inject the handoffs,
    /// then advance through every event strictly before `bound`.
    Step {
        bound: Nanos,
        flush_before: Option<Nanos>,
        inject: Vec<Handoff>,
    },
    /// Perform the trailing flushes and return the report.
    Finish {
        flush_before: Option<Nanos>,
        flush_at: Option<Nanos>,
    },
}

enum FromWorker {
    Ready(Box<Hello>),
    Stepped(Box<Stepped>),
    Finished(Box<Finished>),
    Failed(QvisorError),
}

struct Finished {
    report: SimReport,
    /// `report.samples.len()` at the instant each flush began, in flush
    /// order — the alignment key for merging samples across shards.
    flush_marks: Vec<usize>,
    /// Everything the shard's thread-local telemetry registry collected,
    /// absorbed into the caller's sink in shard order.
    telemetry: TelemetrySnapshot,
}

/// Why the coordinator stopped advancing.
enum Outcome {
    /// All traffic completed: rewind to the last progress event.
    Quiesced,
    /// Nothing left at or before the horizon.
    Exhausted,
}

/// Run a sharded simulation over `topo`, split `shards` ways.
///
/// `build` constructs one shard's [`Simulation`]; it runs once per worker
/// thread, so per-run state (telemetry hubs, tracers) must be created
/// inside it. `populate` registers rank functions and adds traffic — it
/// must add the same traffic in the same order on every shard, because
/// flow ids are global; the ownership gating inside `add_flow`/`add_cbr`
/// selects each shard's slice.
///
/// Every worker's thread-local telemetry registry is snapshotted at
/// finish and absorbed into `telemetry` in shard order, so the sink's
/// `export_jsonl` matches a sequential run's byte-for-byte (modulo
/// wall-clock `profile` lines, and provided no journal ring evicted —
/// see [`Telemetry::absorb`]).
///
/// The merged [`SimReport`] is byte-identical to
/// `build()` + `populate()` + [`Simulation::run`] at any shard count,
/// including 1. Runtime adaptation is rejected (control ticks act on
/// global state), and the runtime monitor is rejected above one shard
/// (its observation state is global).
pub fn run_sharded<B, P>(
    topo: &Topology,
    shards: usize,
    telemetry: &Telemetry,
    build: B,
    populate: P,
) -> Result<SimReport, QvisorError>
where
    B: Fn() -> Result<Simulation, QvisorError> + Sync,
    P: Fn(&mut Simulation) -> Result<(), QvisorError> + Sync,
{
    let partition = Partition::new(topo, shards)
        .map_err(|e| QvisorError::Deployment(format!("cannot shard the topology: {e}")))?;
    if partition.lookahead() == Some(Nanos::ZERO) {
        return Err(QvisorError::Deployment(
            "sharded runs require positive propagation delay on every cut link \
             (zero lookahead admits no conservative window)"
                .into(),
        ));
    }
    std::thread::scope(|scope| {
        let build = &build;
        let populate = &populate;
        let mut to: Vec<Sender<ToWorker>> = Vec::with_capacity(shards);
        let mut from: Vec<Receiver<FromWorker>> = Vec::with_capacity(shards);
        for index in 0..shards {
            let (to_tx, to_rx) = channel();
            let (from_tx, from_rx) = channel();
            let owner = partition.owners().to_vec();
            // The one sanctioned thread-spawn site in the workspace:
            // workers are barrier-synchronized and merged canonically, so
            // scheduling timing never reaches any observable output.
            scope.spawn(move || worker(index, owner, build, populate, to_rx, from_tx));
            to.push(to_tx);
            from.push(from_rx);
        }
        coordinate(&partition, telemetry, &to, &from)
    })
}

/// One worker thread: build the shard's simulation, then serve barrier
/// commands until told to finish.
fn worker<B, P>(
    index: usize,
    owner: Vec<usize>,
    build: &B,
    populate: &P,
    rx: Receiver<ToWorker>,
    tx: Sender<FromWorker>,
) where
    B: Fn() -> Result<Simulation, QvisorError> + Sync,
    P: Fn(&mut Simulation) -> Result<(), QvisorError> + Sync,
{
    let mut sim = match build() {
        Ok(sim) => sim,
        Err(e) => {
            let _ = tx.send(FromWorker::Failed(e));
            return;
        }
    };
    // The view must be in place before traffic lands: add_flow/add_cbr
    // gate their scheduling on ownership.
    sim.shard = Some(ShardView { index, owner });
    if let Err(e) = populate(&mut sim) {
        let _ = tx.send(FromWorker::Failed(e));
        return;
    }
    let mut book = ShardBook::default();
    let mut flush_marks = Vec::new();
    let hello = Hello {
        horizon: sim.cfg.horizon,
        sample_interval: sim.cfg.sample_interval,
        has_adapter: sim.adapter.is_some() || sim.cfg.adaptation_interval.is_some(),
        has_monitor: sim.monitor.is_some(),
        state: barrier_state(&mut sim, &book),
    };
    if tx.send(FromWorker::Ready(Box::new(hello))).is_err() {
        return;
    }
    while let Ok(msg) = rx.recv() {
        match msg {
            ToWorker::Step {
                bound,
                flush_before,
                inject,
            } => {
                if let Some(at) = flush_before {
                    flush(&mut sim, &mut flush_marks, at);
                }
                for h in inject {
                    sim.inject_arrival(h.at, h.to, h.packet);
                }
                sim.advance_below(bound, &mut book);
                let state = barrier_state(&mut sim, &book);
                if tx.send(FromWorker::Stepped(Box::new(state))).is_err() {
                    return;
                }
            }
            ToWorker::Finish {
                flush_before,
                flush_at,
            } => {
                if let Some(at) = flush_before {
                    flush(&mut sim, &mut flush_marks, at);
                }
                if let Some(at) = flush_at {
                    flush(&mut sim, &mut flush_marks, at);
                }
                let report = std::mem::take(&mut sim.report);
                let telemetry = sim.cfg.telemetry.snapshot();
                let _ = tx.send(FromWorker::Finished(Box::new(Finished {
                    report,
                    flush_marks,
                    telemetry,
                })));
                return;
            }
        }
    }
}

fn flush(sim: &mut Simulation, marks: &mut Vec<usize>, at: Nanos) {
    marks.push(sim.report.samples.len());
    sim.flush_window(at);
}

fn barrier_state(sim: &mut Simulation, book: &ShardBook) -> Stepped {
    Stepped {
        next_pending: sim.events.peek_time(),
        outbox: std::mem::take(&mut sim.outbox),
        counters: Counters {
            total: sim.reliable_total,
            done: sim.reliable_done,
            cbr_live: sim.cbr_live,
            in_flight: sim.in_flight,
        },
        book: book.clone(),
    }
}

fn worker_died<E>(_: E) -> QvisorError {
    QvisorError::Deployment("a shard worker exited unexpectedly".into())
}

fn min_opt(a: Option<Nanos>, b: Option<Nanos>) -> Option<Nanos> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

fn quiesced(states: &[Stepped]) -> bool {
    let mut c = Counters::default();
    for s in states {
        c.total += s.counters.total;
        c.done += s.counters.done;
        c.cbr_live += s.counters.cbr_live;
        c.in_flight += s.counters.in_flight;
    }
    c.done == c.total && c.cbr_live == 0 && c.in_flight == 0
}

/// The barrier loop: compute conservative bounds, relay handoffs, drive
/// sampling ticks, detect quiescence, and merge the final reports.
fn coordinate(
    partition: &Partition,
    telemetry: &Telemetry,
    to: &[Sender<ToWorker>],
    from: &[Receiver<FromWorker>],
) -> Result<SimReport, QvisorError> {
    let shards = to.len();
    let mut states: Vec<Stepped> = Vec::with_capacity(shards);
    let mut horizon = Nanos::ZERO;
    let mut sample_interval = None;
    for (i, rx) in from.iter().enumerate() {
        match rx.recv().map_err(worker_died)? {
            FromWorker::Ready(h) => {
                if h.has_adapter {
                    return Err(QvisorError::Deployment(
                        "sharded runs do not support runtime adaptation \
                         (control ticks act on global state)"
                            .into(),
                    ));
                }
                if h.has_monitor && shards > 1 {
                    return Err(QvisorError::Deployment(
                        "the runtime monitor requires a single shard \
                         (its observation state is global)"
                            .into(),
                    ));
                }
                if i == 0 {
                    horizon = h.horizon;
                    sample_interval = h.sample_interval;
                }
                states.push(h.state);
            }
            FromWorker::Failed(e) => return Err(e),
            _ => unreachable!("worker spoke before Ready"),
        }
    }
    if let Some(interval) = sample_interval {
        assert!(interval > Nanos::ZERO, "sample interval must be positive");
    }

    let cap = horizon.saturating_add(Nanos(1));
    let lookahead = partition.lookahead();
    let mut staged: Vec<Vec<Handoff>> = (0..shards).map(|_| Vec::new()).collect();
    // Sampling ticks, mirroring the sequential engine's self-rescheduling
    // `Sample` event: first at `interval`, then every `interval` while at
    // or under the horizon.
    let mut next_tick = sample_interval;
    let mut ticks: u64 = 0;
    let mut tick_end = Nanos::ZERO;
    // A tick's flush is performed by the workers at the *next* barrier
    // command (Step or Finish), matching the class-0 sort: the window
    // closes before any same-instant packet event runs.
    let mut pending_flush: Option<Nanos> = None;

    let outcome = loop {
        // Done-state at this barrier. The sequential engine checks before
        // every pop; barriers are where the sharded engine can.
        if quiesced(&states) {
            break Outcome::Quiesced;
        }
        let pend = states
            .iter()
            .map(|s| s.next_pending)
            .chain(staged.iter().flat_map(|v| v.iter().map(|h| Some(h.at))))
            .flatten()
            .min();
        let tick = next_tick.filter(|&t| t <= horizon);
        let Some(first) = min_opt(pend, tick) else {
            break Outcome::Exhausted;
        };
        if first > horizon {
            break Outcome::Exhausted;
        }
        let mut bound = match (pend, lookahead) {
            (Some(p), Some(l)) => p.saturating_add(l).min(cap),
            // No cut edges (one shard) or no pending events: only the
            // horizon — or the tick below — bounds the window.
            _ => cap,
        };
        let mut will_tick = false;
        if let Some(t) = tick {
            if t <= bound {
                bound = t;
                will_tick = true;
            }
        }
        for (i, tx) in to.iter().enumerate() {
            let inject = std::mem::take(&mut staged[i]);
            tx.send(ToWorker::Step {
                bound,
                flush_before: pending_flush,
                inject,
            })
            .map_err(worker_died)?;
        }
        pending_flush = None;
        for (i, rx) in from.iter().enumerate() {
            match rx.recv().map_err(worker_died)? {
                FromWorker::Stepped(s) => {
                    let mut s = *s;
                    for h in s.outbox.drain(..) {
                        staged[partition.owner(h.to)].push(h);
                    }
                    states[i] = s;
                }
                FromWorker::Failed(e) => return Err(e),
                _ => unreachable!("worker out of step"),
            }
        }
        if will_tick {
            // The sequential engine checks doneness before popping the
            // tick, with every pre-tick event already processed — which
            // is exactly this barrier's counter state.
            if !quiesced(&states) {
                ticks += 1;
                tick_end = bound;
                pending_flush = Some(bound);
                let interval = sample_interval.expect("tick implies interval");
                next_tick = Some(bound + interval).filter(|&t| t <= horizon);
            }
        }
    };

    // Where the sequential engine stopped, and what it counted.
    let (events, end_time) = match outcome {
        Outcome::Quiesced => {
            let cut = states.iter().map(|s| s.book.last_progress).max().flatten();
            let kept: u64 = states.iter().map(|s| s.book.kept_below(cut)).sum();
            let progress_end = cut.map(|(t, _)| t).unwrap_or(Nanos::ZERO);
            (ticks + kept, tick_end.max(progress_end))
        }
        Outcome::Exhausted => {
            let counted: u64 = states.iter().map(|s| s.book.counted).sum();
            let local_end = states
                .iter()
                .map(|s| s.book.end_time)
                .max()
                .unwrap_or(Nanos::ZERO);
            (ticks + counted, tick_end.max(local_end))
        }
    };

    let final_flush = sample_interval.map(|_| end_time);
    for tx in to {
        tx.send(ToWorker::Finish {
            flush_before: pending_flush,
            flush_at: final_flush,
        })
        .map_err(worker_died)?;
    }
    let mut finished: Vec<Finished> = Vec::with_capacity(shards);
    for rx in from {
        match rx.recv().map_err(worker_died)? {
            FromWorker::Finished(f) => finished.push(*f),
            FromWorker::Failed(e) => return Err(e),
            _ => unreachable!("worker out of step"),
        }
    }

    let mut merged = SimReport {
        events,
        end_time,
        ..SimReport::default()
    };
    let total: u64 = states.iter().map(|s| s.counters.total).sum();
    let done: u64 = states.iter().map(|s| s.counters.done).sum();
    merged.incomplete_flows = total - done;
    merged.samples = merge_samples(&finished);
    for f in finished {
        telemetry.absorb(f.telemetry);
        let r = f.report;
        merged.preproc_dropped += r.preproc_dropped;
        merged.monitor_violations += r.monitor_violations;
        merged.random_losses += r.random_losses;
        merged.reconfigurations += r.reconfigurations;
        for (node, drops) in r.node_drops {
            *merged.node_drops.entry(node).or_insert(0) += drops;
        }
        for (tenant, t) in r.tenants {
            let e = merged.tenants.entry(tenant).or_default();
            e.sent_pkts += t.sent_pkts;
            e.delivered_pkts += t.delivered_pkts;
            e.delivered_bytes += t.delivered_bytes;
            e.dropped_pkts += t.dropped_pkts;
            e.deadline_met += t.deadline_met;
            e.deadline_missed += t.deadline_missed;
        }
        merged.fct.merge(r.fct);
    }
    merged.fct.sort_canonical();
    Ok(merged)
}

/// Merge per-shard goodput samples flush-by-flush. Every shard performed
/// the identical flush sequence, so the k-th flush's entries (delimited
/// by `flush_marks`) across shards are partial sums of the sequential
/// engine's k-th flush: sum per tenant, emit in ascending tenant order.
/// Alignment is by flush *instance*, not timestamp — the sequential
/// series can legitimately contain two flushes at one instant (a tick
/// coinciding with the final flush).
fn merge_samples(finished: &[Finished]) -> Vec<(Nanos, TenantId, u64)> {
    let flushes = finished.first().map_or(0, |f| f.flush_marks.len());
    debug_assert!(finished.iter().all(|f| f.flush_marks.len() == flushes));
    let mut merged = Vec::new();
    for k in 0..flushes {
        let mut acc: BTreeMap<TenantId, u64> = BTreeMap::new();
        let mut at = Nanos::ZERO;
        for f in finished {
            let lo = f.flush_marks[k];
            let hi = f
                .flush_marks
                .get(k + 1)
                .copied()
                .unwrap_or(f.report.samples.len());
            for &(t, tenant, bytes) in &f.report.samples[lo..hi] {
                at = t; // every entry of one flush shares the flush time
                *acc.entry(tenant).or_insert(0) += bytes;
            }
        }
        merged.extend(acc.into_iter().map(|(tenant, bytes)| (at, tenant, bytes)));
    }
    merged
}
