//! Microbenchmarks: enqueue/dequeue throughput of every scheduler model.
//!
//! These bound the per-packet cost of the software scheduler substrate —
//! the denominator of every simulated experiment.

use qvisor_bench::harness::{bench_batched, print_header};
use qvisor_scheduler::{
    AifoQueue, CalendarQueue, Capacity, FifoQueue, PacketQueue, PathStep, PifoQueue, PifoTree,
    SpPifoMapper, StaticRangeMapper, StrictPriorityBank, TreePath, TreeShape,
};
use qvisor_sim::{FlowId, Nanos, NodeId, Packet, SimRng, TenantId};

const N: usize = 1_024;

fn packets() -> Vec<Packet> {
    let mut rng = SimRng::seed_from(7);
    (0..N)
        .map(|i| {
            let mut p = Packet::data(
                FlowId(i as u64),
                TenantId(0),
                i as u64,
                1_500,
                NodeId(0),
                NodeId(1),
                rng.below(100_000),
                Nanos::ZERO,
            );
            p.txf_rank = p.rank;
            p
        })
        .collect()
}

fn bench_queue<Q: PacketQueue, F: Fn() -> Q>(name: &str, make: F) {
    let pkts = packets();
    bench_batched(
        name,
        || (make(), pkts.clone()),
        |(mut q, pkts)| {
            for p in pkts {
                q.enqueue(p, Nanos::ZERO);
            }
            while q.dequeue(Nanos::ZERO).is_some() {}
            q.len()
        },
    );
}

fn main() {
    print_header("scheduler_micro: enqueue+drain 1k packets per backend");
    let cap = Capacity::packets(256, 1_500);
    bench_queue("fifo_1k_pkts", move || FifoQueue::new(cap));
    bench_queue("pifo_1k_pkts", move || PifoQueue::new(cap));
    bench_queue("sp_pifo8_1k_pkts", move || {
        StrictPriorityBank::new(SpPifoMapper::new(8), cap)
    });
    bench_queue("strict_static8_1k_pkts", move || {
        StrictPriorityBank::new(StaticRangeMapper::new(0, 100_000, 8), cap)
    });
    bench_queue("aifo_1k_pkts", move || AifoQueue::new(cap, 64, 0.1));
    bench_queue("calendar64_1k_pkts", move || {
        CalendarQueue::new(64, 2_000, cap)
    });
    bench_queue("pifo_tree4_1k_pkts", move || {
        let shape = TreeShape::Internal(vec![
            TreeShape::Leaf,
            TreeShape::Leaf,
            TreeShape::Leaf,
            TreeShape::Leaf,
        ]);
        let mut vt = [0u64; 4];
        PifoTree::new(
            &shape,
            move |p: &qvisor_sim::Packet| {
                let class = (p.flow.0 % 4) as usize;
                vt[class] += 1;
                TreePath {
                    steps: vec![PathStep {
                        child: class,
                        rank: vt[class],
                    }],
                    leaf_rank: p.txf_rank,
                }
            },
            cap,
        )
    });
}
