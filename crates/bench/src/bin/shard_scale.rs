//! Shard scaling: the parallel discrete-event engine on a fat-tree.
//!
//! One fixed scenario (arity-4 fat-tree, 20 partition units, Poisson
//! pFabric traffic) run at 1, 2, 4, and 8 shards. Reports wall time per
//! shard count, the speedup over the sequential engine, and — the point
//! of the exercise — verifies that every report is byte-identical to the
//! sequential oracle's.
//!
//! Usage: cargo run -p qvisor-bench --release --bin shard_scale
//!        [-- --flows N]   workload size (default 400)

use qvisor_netsim::scenario::{
    report_json, ArrivalSpec, Engine, ScenarioSpec, SchedulerSpec, SimSpec, SizeDistSpec, TimeRef,
    TopologySpec, WorkloadSpec,
};
use qvisor_ranking::RankFnSpec;
use std::time::Instant;

fn scenario(flows: usize) -> ScenarioSpec {
    ScenarioSpec {
        name: "shard-scale".into(),
        seed: 3,
        topology: TopologySpec::FatTree {
            arity: 4,
            rate_bps: 1_000_000_000,
            delay_ns: 1000,
        },
        sim: SimSpec {
            horizon: TimeRef::AfterLastArrival(200_000_000),
            sample_interval_ns: Some(10_000_000),
            ..SimSpec::default()
        },
        scheduler: SchedulerSpec::Pifo,
        rank_fns: vec![(
            1,
            RankFnSpec::PFabric {
                unit_bytes: 1000,
                max_rank: 100_000,
            },
        )],
        host_scheduler: None,
        qvisor: None,
        workloads: vec![WorkloadSpec::Poisson {
            tenant: 1,
            flows,
            sizes: SizeDistSpec::WebSearch { scale_den: 20 },
            arrival: ArrivalSpec::Load(0.5),
            rng_stream: 1,
        }],
        alerts: Vec::new(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut flows = 400usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--flows" => {
                flows = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--flows needs a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }

    println!("Shard scaling: arity-4 fat-tree (20 partition units), {flows} Poisson flows");
    println!(
        "{:<10}{:>14}{:>12}{:>16}",
        "shards", "wall (ms)", "speedup", "report"
    );
    let mut oracle: Option<String> = None;
    let mut base_ms = 0.0f64;
    for shards in [1usize, 2, 4, 8] {
        let mut spec = scenario(flows);
        spec.sim.shards = shards;
        let start = Instant::now();
        let report = Engine::new().run(&spec).unwrap_or_else(|e| {
            eprintln!("shards={shards}: {e}");
            std::process::exit(1);
        });
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let bytes = report_json(&report).to_pretty();
        let verdict = match &oracle {
            None => {
                oracle = Some(bytes);
                base_ms = ms;
                "oracle".to_string()
            }
            Some(expect) if *expect == bytes => "byte-identical".to_string(),
            Some(_) => {
                eprintln!("shards={shards}: report DIVERGED from the sequential oracle");
                std::process::exit(1);
            }
        };
        println!("{shards:<10}{ms:>14.1}{:>12.2}{verdict:>16}", base_ms / ms);
    }
    println!(
        "\nEvery row reproduces the sequential oracle byte-for-byte; the \
         speedup column is honest wall time (barrier-synchronized \
         conservative windows, so single-core hosts see overhead, not gain)."
    );
}
