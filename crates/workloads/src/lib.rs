#![deny(missing_docs)]

//! # qvisor-workloads — traffic generation
//!
//! Flow-size distributions (the pFabric *data-mining* and DCTCP
//! *web-search* CDFs plus synthetic ones), Poisson flow arrival processes
//! parameterized by target link load, and the paper's CBR/EDF tenant
//! generator.

pub mod dist;
pub mod gen;
pub mod trace;

pub use dist::{EmpiricalCdf, FixedSize, FlowSizeDist, UniformSize};
pub use gen::{arrival_rate_for_load, cbr_tenant, GeneratedCbr, GeneratedFlow, PoissonFlowGen};
pub use trace::{CbrTraceEntry, FlowTraceEntry, WorkloadTrace};
