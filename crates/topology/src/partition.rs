//! Deterministic topology partitioning for the sharded simulation engine.
//!
//! A *partition unit* is one switch together with every host whose first
//! switch neighbor (in port order) is that switch — the natural
//! "rack"-granularity cut for the canned fabrics (a leaf plus its hosts,
//! a dumbbell side, a fat-tree edge switch plus its servers). Units are
//! ordered canonically by switch node id and dealt round-robin onto
//! shards, so the assignment is a total, pure function of
//! `(topology, shard count)` — the property the byte-exactness oracle
//! relies on.
//!
//! Cut edges (directed links whose endpoints land on different shards)
//! are enumerated with their per-edge lookahead (the propagation delay);
//! the minimum over all cut edges is the conservative lookahead window
//! the shard clock advances by.

use crate::graph::{NodeKind, Topology};
use qvisor_sim::{Nanos, NodeId};
use std::fmt;

/// A directed link crossing a shard boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CutEdge {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Shard owning the transmitting node.
    pub from_shard: usize,
    /// Shard owning the receiving node.
    pub to_shard: usize,
    /// This edge's lookahead contribution: its propagation delay.
    pub lookahead: Nanos,
}

/// Why a partition could not be formed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// `shards` was zero.
    ZeroShards,
    /// More shards requested than partition units exist.
    TooManyShards {
        /// Requested shard count.
        shards: usize,
        /// Available partition units (switches, roughly).
        units: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::ZeroShards => write!(f, "shard count must be at least 1"),
            PartitionError::TooManyShards { shards, units } => write!(
                f,
                "{shards} shards exceed the {units} partitionable units of this topology"
            ),
        }
    }
}

/// A deterministic node→shard assignment with its cut-edge set.
#[derive(Clone, Debug)]
pub struct Partition {
    shards: usize,
    /// Node index → owning shard.
    owner: Vec<usize>,
    cut_edges: Vec<CutEdge>,
    /// Minimum cut-edge delay; `None` when no edge is cut (shards = 1).
    lookahead: Option<Nanos>,
}

/// Number of partition units in `topo`: one per switch, plus one per
/// host with no switch neighbor (degenerate host-only graphs).
pub fn unit_count(topo: &Topology) -> usize {
    let switches = topo.switches().count();
    let orphan_hosts = topo
        .hosts()
        .filter(|&h| home_switch(topo, h).is_none())
        .count();
    switches + orphan_hosts
}

/// The switch a host belongs to: its first switch neighbor in port order.
fn home_switch(topo: &Topology, host: NodeId) -> Option<NodeId> {
    topo.neighbors(host)
        .find(|&n| topo.node(n).kind == NodeKind::Switch)
}

impl Partition {
    /// Partition `topo` into `shards` shards.
    ///
    /// Units (each switch plus the hosts homed on it, plus any orphan
    /// hosts) are sorted by their lowest member node id and assigned
    /// round-robin: unit `i` goes to shard `i % shards`. Deterministic by
    /// construction — no randomness, no iteration-order dependence.
    pub fn new(topo: &Topology, shards: usize) -> Result<Partition, PartitionError> {
        if shards == 0 {
            return Err(PartitionError::ZeroShards);
        }
        let units = unit_count(topo);
        if shards > units {
            return Err(PartitionError::TooManyShards { shards, units });
        }
        // Unit anchors in canonical order: switches and orphan hosts, by
        // node id (node ids are dense indices, so a simple sort).
        let mut anchors: Vec<NodeId> = topo
            .nodes()
            .iter()
            .filter(|n| match n.kind {
                NodeKind::Switch => true,
                NodeKind::Host => home_switch(topo, n.id).is_none(),
            })
            .map(|n| n.id)
            .collect();
        anchors.sort_by_key(|id| id.index());
        let mut anchor_shard = vec![usize::MAX; topo.node_count()];
        for (i, a) in anchors.iter().enumerate() {
            anchor_shard[a.index()] = i % shards;
        }
        let mut owner = vec![usize::MAX; topo.node_count()];
        for node in topo.nodes() {
            let anchor = match node.kind {
                NodeKind::Switch => node.id,
                NodeKind::Host => home_switch(topo, node.id).unwrap_or(node.id),
            };
            owner[node.id.index()] = anchor_shard[anchor.index()];
        }
        let cut_edges: Vec<CutEdge> = topo
            .links()
            .iter()
            .filter(|l| owner[l.from.index()] != owner[l.to.index()])
            .map(|l| CutEdge {
                from: l.from,
                to: l.to,
                from_shard: owner[l.from.index()],
                to_shard: owner[l.to.index()],
                lookahead: l.delay,
            })
            .collect();
        let lookahead = cut_edges.iter().map(|e| e.lookahead).min();
        Ok(Partition {
            shards,
            owner,
            cut_edges,
            lookahead,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `node`.
    pub fn owner(&self, node: NodeId) -> usize {
        self.owner[node.index()]
    }

    /// Node index → owning shard, for bulk consumption.
    pub fn owners(&self) -> &[usize] {
        &self.owner
    }

    /// Every directed link crossing a shard boundary, in topology link
    /// order.
    pub fn cut_edges(&self) -> &[CutEdge] {
        &self.cut_edges
    }

    /// The conservative lookahead window: the minimum cut-edge
    /// propagation delay. `None` when nothing is cut (single shard).
    pub fn lookahead(&self) -> Option<Nanos> {
        self.lookahead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{Dumbbell, FatTree, LeafSpine, LeafSpineConfig};

    #[test]
    fn unit_counts_match_fabric_shapes() {
        let d = Dumbbell::build(4, 1_000, 500, Nanos(100));
        assert_eq!(unit_count(&d.topology), 2);
        let ls = LeafSpine::build(&LeafSpineConfig::small());
        assert_eq!(unit_count(&ls.topology), 4); // 2 leaves + 2 spines
        let ft = FatTree::build(4, 1_000, Nanos(1));
        assert_eq!(unit_count(&ft.topology), 20);
    }

    #[test]
    fn dumbbell_splits_left_and_right() {
        let d = Dumbbell::build(3, 1_000, 500, Nanos(100));
        let p = Partition::new(&d.topology, 2).unwrap();
        assert_eq!(p.owner(d.left_switch), 0);
        assert_eq!(p.owner(d.right_switch), 1);
        for &s in &d.senders {
            assert_eq!(p.owner(s), 0);
        }
        for &r in &d.receivers {
            assert_eq!(p.owner(r), 1);
        }
        // Only the bottleneck is cut: two directed links.
        assert_eq!(p.cut_edges().len(), 2);
        assert_eq!(p.lookahead(), Some(Nanos(100)));
    }

    #[test]
    fn single_shard_has_no_cut() {
        let d = Dumbbell::build(2, 1_000, 500, Nanos(50));
        let p = Partition::new(&d.topology, 1).unwrap();
        assert!(p.cut_edges().is_empty());
        assert_eq!(p.lookahead(), None);
        assert!(p.owners().iter().all(|&s| s == 0));
    }

    #[test]
    fn assignment_is_total_and_deterministic() {
        let ls = LeafSpine::build(&LeafSpineConfig::small());
        for shards in 1..=4 {
            let a = Partition::new(&ls.topology, shards).unwrap();
            let b = Partition::new(&ls.topology, shards).unwrap();
            assert_eq!(a.owners(), b.owners(), "shards={shards}");
            assert!(a.owners().iter().all(|&s| s < shards));
            // Every shard is non-empty (round-robin over >= shards units).
            for s in 0..shards {
                assert!(a.owners().contains(&s), "shard {s} empty");
            }
        }
    }

    #[test]
    fn hosts_follow_their_first_switch_neighbor() {
        let ls = LeafSpine::build(&LeafSpineConfig::small());
        let p = Partition::new(&ls.topology, 4).unwrap();
        for (leaf_idx, rack) in ls.hosts.iter().enumerate() {
            for &h in rack {
                assert_eq!(p.owner(h), p.owner(ls.leaf_switches[leaf_idx]));
            }
        }
    }

    #[test]
    fn rejects_more_shards_than_units() {
        let d = Dumbbell::build(2, 1_000, 500, Nanos(50));
        let err = Partition::new(&d.topology, 3).unwrap_err();
        assert_eq!(
            err,
            PartitionError::TooManyShards {
                shards: 3,
                units: 2
            }
        );
        assert_eq!(
            Partition::new(&d.topology, 0).unwrap_err(),
            PartitionError::ZeroShards
        );
    }

    #[test]
    fn cut_edge_lookahead_is_min_cut_delay() {
        // Mixed delays: access 1 µs, fabric 2 µs. At 2 shards over the
        // small leaf-spine, leaves land on shard 0, spines on shard 1
        // (anchor order: leaf0, leaf1, spine0, spine1 -> 0,1,0,1)…
        let cfg = LeafSpineConfig {
            fabric_delay: Nanos(2_000),
            ..LeafSpineConfig::small()
        };
        let ls = LeafSpine::build(&cfg);
        let p = Partition::new(&ls.topology, 2).unwrap();
        // leaf1 and spine1 share shard 1; leaf0/spine0 shard 0. Cut edges
        // are leaf-spine fabric links across shards plus nothing else
        // (hosts follow their leaf), so lookahead = fabric delay.
        assert_eq!(p.lookahead(), Some(Nanos(2_000)));
        for e in p.cut_edges() {
            assert_eq!(e.lookahead, Nanos(2_000));
            assert_ne!(e.from_shard, e.to_shard);
        }
    }
}
