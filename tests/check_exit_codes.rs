//! Pins the scripting-stable process exit codes of the `qvisor` binary.
//!
//! The contract (documented in `qvisor --help` and the binary's crate
//! docs): `0` = success, `2` = `check` failed with error-severity
//! findings, `3` = `check` failed only because `--deny-warnings`
//! promoted warnings, `1` = any other error (usage mistakes included).
//! CI scripts branch on these values, so a change here is a breaking
//! interface change — update the docs if you update this test.

use std::path::PathBuf;
use std::process::Command;

/// Write `text` to a unique temp file and return its path.
fn temp_config(name: &str, text: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("qvisor_exit_{}_{name}.json", std::process::id()));
    std::fs::write(&path, text).expect("temp config is writable");
    path
}

fn qvisor(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_qvisor"))
        .args(args)
        .output()
        .expect("qvisor binary runs")
}

/// Single scheduled tenant, one level over a wide range: verdict clean
/// (the quantization finding is info-level and never gates).
const CLEAN: &str = r#"{
  "tenants": [
    {"id": 1, "name": "bulk", "algorithm": "STFQ", "rank_min": 0, "rank_max": 1000, "levels": 1}
  ],
  "policy": "bulk",
  "synth": {"default_levels": 8, "first_rank": 0, "pref_bias_divisor": 2}
}"#;

/// Two point-range tenants sharing a band: QV-SHARE-BAND warnings, no
/// errors — gates only under `--deny-warnings`.
const WARNINGS: &str = r#"{
  "tenants": [
    {"id": 1, "name": "A", "algorithm": "EDF", "rank_min": 0, "rank_max": 0},
    {"id": 2, "name": "B", "algorithm": "FQ", "rank_min": 0, "rank_max": 0}
  ],
  "policy": "A + B",
  "synth": {"default_levels": 8, "first_rank": 0, "pref_bias_divisor": 2}
}"#;

/// `first_rank` near `u64::MAX` saturates the chain: witnessed
/// QV-OVERFLOW at error severity.
const ERRORS: &str = r#"{
  "tenants": [
    {"id": 1, "name": "A", "algorithm": "EDF", "rank_min": 0, "rank_max": 519, "levels": 933}
  ],
  "policy": "A",
  "synth": {"default_levels": 8, "first_rank": 18446744073709551155, "pref_bias_divisor": 2}
}"#;

#[test]
fn a_clean_config_exits_zero() {
    let path = temp_config("clean", CLEAN);
    let out = qvisor(&["check", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn warnings_pass_by_default_but_deny_warnings_exits_three() {
    let path = temp_config("warnings", WARNINGS);
    let lenient = qvisor(&["check", path.to_str().unwrap()]);
    assert_eq!(lenient.status.code(), Some(0), "{:?}", lenient);
    let strict = qvisor(&["check", path.to_str().unwrap(), "--deny-warnings"]);
    assert_eq!(strict.status.code(), Some(3), "{:?}", strict);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn error_severity_findings_exit_two_regardless_of_strictness() {
    let path = temp_config("errors", ERRORS);
    let lenient = qvisor(&["check", path.to_str().unwrap()]);
    assert_eq!(lenient.status.code(), Some(2), "{:?}", lenient);
    let strict = qvisor(&["check", path.to_str().unwrap(), "--deny-warnings"]);
    assert_eq!(strict.status.code(), Some(2), "{:?}", strict);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn usage_errors_exit_one() {
    let unknown = qvisor(&["definitely-not-a-subcommand"]);
    assert_eq!(unknown.status.code(), Some(1), "{:?}", unknown);
    let missing_file = qvisor(&["check"]);
    assert_eq!(missing_file.status.code(), Some(1), "{:?}", missing_file);
}

#[test]
fn a_matching_fuzz_corpus_document_exits_zero() {
    let corpus = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/overflow.json");
    let out = qvisor(&["check", corpus.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fuzz replay"), "{stdout}");
}
