//! The declarative scenario model: every experiment — topology, schedulers,
//! QVISOR deployment, rank functions, workload mix, faults, seeds, and
//! measurement windows — as plain data with strict validation.

use super::{field_err, ScenarioError};
use qvisor_ranking::RankFnSpec;
use qvisor_telemetry::{AlertMetric, AlertRule, ALERT_METRICS};

/// A simulation time reference used where experiments traditionally write
/// "two seconds past the last flow arrival".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimeRef {
    /// An absolute simulation time in nanoseconds.
    At(u64),
    /// `last_arrival + offset` nanoseconds, where `last_arrival` is the
    /// latest start time over every reliable flow in the scenario (zero
    /// when there are none).
    AfterLastArrival(u64),
}

/// Topology builder parameters (mirrors `qvisor_topology::builders`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologySpec {
    /// A leaf–spine fabric.
    LeafSpine {
        /// Top-of-rack switch count.
        leaves: usize,
        /// Spine switch count.
        spines: usize,
        /// Hosts per leaf.
        hosts_per_leaf: usize,
        /// Host-to-leaf link rate (bits/s).
        access_bps: u64,
        /// Leaf-to-spine link rate (bits/s).
        fabric_bps: u64,
        /// Host-to-leaf propagation delay (ns).
        access_delay_ns: u64,
        /// Leaf-to-spine propagation delay (ns).
        fabric_delay_ns: u64,
    },
    /// A dumbbell: `pairs` senders and receivers around one bottleneck.
    Dumbbell {
        /// Hosts per side.
        pairs: usize,
        /// Access link rate (bits/s).
        edge_bps: u64,
        /// Bottleneck link rate (bits/s).
        bottleneck_bps: u64,
        /// Uniform propagation delay (ns).
        delay_ns: u64,
    },
    /// A `k`-ary fat tree.
    FatTree {
        /// Arity `k` (even, >= 2); hosts = `k^3/4`.
        arity: usize,
        /// Uniform link rate (bits/s).
        rate_bps: u64,
        /// Uniform propagation delay (ns).
        delay_ns: u64,
    },
}

impl TopologySpec {
    /// Number of hosts the built topology will expose, in canonical order
    /// (leaf–spine: rack-major; dumbbell: senders then receivers; fat
    /// tree: pod order).
    pub fn host_count(&self) -> usize {
        match *self {
            TopologySpec::LeafSpine {
                leaves,
                hosts_per_leaf,
                ..
            } => leaves * hosts_per_leaf,
            TopologySpec::Dumbbell { pairs, .. } => pairs * 2,
            TopologySpec::FatTree { arity, .. } => arity * arity * arity / 4,
        }
    }

    /// The host access-link rate, used to convert a target load into a
    /// flow arrival rate.
    pub fn access_bps(&self) -> u64 {
        match *self {
            TopologySpec::LeafSpine { access_bps, .. } => access_bps,
            TopologySpec::Dumbbell { edge_bps, .. } => edge_bps,
            TopologySpec::FatTree { rate_bps, .. } => rate_bps,
        }
    }

    /// Number of partition units the built topology offers the sharded
    /// engine — one per switch (hosts follow their home switch; see
    /// `qvisor_topology::Partition`). `sim.shards` may not exceed this.
    pub fn unit_count(&self) -> usize {
        match *self {
            TopologySpec::LeafSpine { leaves, spines, .. } => leaves + spines,
            TopologySpec::Dumbbell { .. } => 2,
            // (k/2)^2 core switches plus k pods of k switches each.
            TopologySpec::FatTree { arity, .. } => arity * arity / 4 + arity * arity,
        }
    }

    /// The switch-to-switch propagation delay — the sharded engine's
    /// conservative lookahead comes from cut links, which are always
    /// switch-to-switch (hosts are co-located with their home switch).
    pub fn fabric_delay_ns(&self) -> u64 {
        match *self {
            TopologySpec::LeafSpine {
                fabric_delay_ns, ..
            } => fabric_delay_ns,
            TopologySpec::Dumbbell { delay_ns, .. } => delay_ns,
            TopologySpec::FatTree { delay_ns, .. } => delay_ns,
        }
    }
}

/// Scalar simulation parameters (mirrors the plain fields of
/// [`crate::SimConfig`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimSpec {
    /// Maximum application payload per packet.
    pub mss: u32,
    /// Header overhead added to every data packet, bytes.
    pub header_bytes: u32,
    /// ACK size on the wire, bytes.
    pub ack_bytes: u32,
    /// Fixed sender window, packets.
    pub cwnd: u32,
    /// Retransmission timeout, nanoseconds.
    pub rto_ns: u64,
    /// Per-port buffer capacity, bytes.
    pub buffer_bytes: u64,
    /// Hard stop time.
    pub horizon: TimeRef,
    /// Uniform random packet loss applied at link arrival (fault
    /// injection; 0.0 = none).
    pub random_loss: f64,
    /// Sample per-tenant delivered bytes every interval (ns).
    pub sample_interval_ns: Option<u64>,
    /// Run the QVISOR runtime controller every interval (ns).
    pub adaptation_interval_ns: Option<u64>,
    /// Worker shards for the parallel engine; 1 (the default) runs the
    /// sequential engine. Any value produces byte-identical reports — the
    /// sequential engine is the sharded engine's differential oracle.
    pub shards: usize,
}

impl Default for SimSpec {
    fn default() -> SimSpec {
        let d = crate::SimConfig::default();
        SimSpec {
            mss: d.mss,
            header_bytes: d.header_bytes,
            ack_bytes: d.ack_bytes,
            cwnd: d.cwnd,
            rto_ns: d.rto.as_nanos(),
            buffer_bytes: d.buffer.bytes,
            horizon: TimeRef::At(d.horizon.as_nanos()),
            random_loss: 0.0,
            sample_interval_ns: None,
            adaptation_interval_ns: None,
            shards: 1,
        }
    }
}

/// A per-port scheduler model (mirrors [`crate::SchedulerKind`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SchedulerSpec {
    /// Rank-oblivious FIFO.
    Fifo,
    /// Ideal PIFO.
    Pifo,
    /// Strict-priority bank with SP-PIFO adaptive mapping.
    SpPifo {
        /// Hardware queues.
        queues: usize,
    },
    /// Strict-priority bank with a static rank split over `[span_min,
    /// span_max]` (QVISOR's banded allocator takes over when deployed).
    StrictStatic {
        /// Hardware queues.
        queues: usize,
        /// Smallest rank of the static split.
        span_min: u64,
        /// Largest rank of the static split.
        span_max: u64,
    },
    /// AIFO admission-controlled FIFO.
    Aifo {
        /// Rank window size.
        window: usize,
        /// Burst tolerance in `[0, 1)`.
        burst: f64,
    },
    /// Idealized per-tenant fair PIFO tree.
    FairTree {
        /// Tenant classes.
        tenants: u16,
    },
}

/// One tenant declaration inside a QVISOR deployment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantDecl {
    /// Tenant id carried in packet labels.
    pub id: u16,
    /// Name used in the operator policy string.
    pub name: String,
    /// Human-readable algorithm name.
    pub algorithm: String,
    /// Smallest declared rank.
    pub rank_min: u64,
    /// Largest declared rank.
    pub rank_max: u64,
    /// Quantization levels; `None` lets the synthesizer pick.
    pub levels: Option<u64>,
}

/// Runtime monitor configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonitorSpec {
    /// Response to declared-range violations: `"clamp"`, `"alarm_only"`,
    /// or `"drop"`.
    pub violation_action: ViolationSpec,
    /// A tenant is idle when unseen for this long (ns).
    pub idle_after_ns: u64,
    /// Range-tightening drift threshold.
    pub drift_ratio: f64,
}

/// Monitor response to a declared-range violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationSpec {
    /// Clamp into the declared range and forward.
    Clamp,
    /// Forward unchanged, count only.
    AlarmOnly,
    /// Drop the packet.
    Drop,
}

/// Synthesizer knobs (mirrors `qvisor_core::SynthConfig`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SynthSpec {
    /// Default quantization levels per tenant.
    pub default_levels: u64,
    /// Smallest rank the joint policy may emit.
    pub first_rank: u64,
    /// Best-effort preference bias divisor for `>`-chained groups.
    pub pref_bias_divisor: u64,
}

/// A QVISOR deployment as data (mirrors [`crate::QvisorSetup`]).
#[derive(Clone, Debug, PartialEq)]
pub struct QvisorSpec {
    /// Tenant declarations.
    pub tenants: Vec<TenantDecl>,
    /// Operator policy string, e.g. `"T1 >> T2 + T3"`.
    pub policy: String,
    /// Unknown-tenant handling: `"best_effort"` or `"drop"`.
    pub unknown_drop: bool,
    /// Pre-processor scope: `"everywhere"`, `"switches_only"`, or
    /// `"first_hop_only"`.
    pub scope: ScopeSpec,
    /// Runtime monitor, if any.
    pub monitor: Option<MonitorSpec>,
    /// Synthesizer overrides; `None` = defaults.
    pub synth: Option<SynthSpec>,
}

/// One declarative SLO alert rule for the streaming monitor (mirrors
/// `qvisor_telemetry::AlertRule`). Rules watch one tenant's sliding
/// sim-time window and fire edge-triggered `alert_fired` /
/// `alert_resolved` journal events.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertSpec {
    /// Watched metric: one of `drop_rate`, `inversion_rate`,
    /// `queue_delay_p50`/`p90`/`p99`, or `fct_p50`/`p90`/`p99`.
    pub metric: String,
    /// Tenant id the rule watches.
    pub tenant: u16,
    /// Sliding window length, sim-time nanoseconds.
    pub window_ns: u64,
    /// Firing threshold: a fraction in `[0, 1]` for rate metrics,
    /// nanoseconds for latency quantiles.
    pub threshold: f64,
}

/// Where the pre-processor runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScopeSpec {
    /// Every egress port.
    Everywhere,
    /// Switch egress ports only.
    SwitchesOnly,
    /// The sending host only.
    FirstHopOnly,
}

/// Flow size distribution for generated workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizeDistSpec {
    /// The paper's data-mining CDF, sizes divided by `scale_den`.
    DataMining {
        /// Size scale denominator (1 = unscaled).
        scale_den: u64,
    },
    /// The web-search CDF, sizes divided by `scale_den`.
    WebSearch {
        /// Size scale denominator (1 = unscaled).
        scale_den: u64,
    },
    /// Every flow the same size.
    Fixed {
        /// Flow size, bytes.
        bytes: u64,
    },
    /// Uniform over `[min, max]`.
    Uniform {
        /// Smallest size, bytes.
        min: u64,
        /// Largest size, bytes.
        max: u64,
    },
}

/// Arrival process intensity for Poisson workloads.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalSpec {
    /// Target fraction of aggregate access bandwidth in `(0, ..)`.
    Load(f64),
    /// Explicit mean arrival rate.
    RateFlowsPerSec(f64),
}

/// One explicitly placed reliable flow. Hosts are indices into the
/// topology's canonical host order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowDecl {
    /// Owning tenant.
    pub tenant: u16,
    /// Source host index.
    pub src_host: usize,
    /// Destination host index.
    pub dst_host: usize,
    /// Bytes to transfer.
    pub size: u64,
    /// Start time (ns).
    pub start_ns: u64,
    /// Optional absolute deadline (ns).
    pub deadline_ns: Option<u64>,
    /// Fair-queueing weight.
    pub weight: u32,
}

/// One explicitly placed CBR stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CbrDecl {
    /// Owning tenant.
    pub tenant: u16,
    /// Source host index.
    pub src_host: usize,
    /// Destination host index.
    pub dst_host: usize,
    /// Rate, bits per second.
    pub rate_bps: u64,
    /// Datagram wire size, bytes.
    pub pkt_size: u32,
    /// Start time (ns).
    pub start_ns: u64,
    /// Stop time.
    pub stop: TimeRef,
    /// Deadline = emission + offset (ns).
    pub deadline_offset_ns: u64,
}

/// One workload in the scenario's traffic mix. Workloads are materialized
/// in declaration order, so flow ids (and thus ECMP decisions) are stable.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// Poisson arrivals of reliable flows over all hosts.
    Poisson {
        /// Owning tenant.
        tenant: u16,
        /// Flows to generate.
        flows: usize,
        /// Size distribution.
        sizes: SizeDistSpec,
        /// Arrival intensity.
        arrival: ArrivalSpec,
        /// RNG stream label (`seed_from(seed).derive(rng_stream)`).
        rng_stream: u64,
    },
    /// A fleet of CBR streams between random host pairs.
    CbrFleet {
        /// Owning tenant.
        tenant: u16,
        /// Stream count.
        streams: usize,
        /// Per-stream rate, bits per second.
        rate_bps: u64,
        /// Datagram wire size, bytes.
        pkt_size: u32,
        /// Start time (ns).
        start_ns: u64,
        /// Stop time.
        stop: TimeRef,
        /// Deadline = emission + offset (ns).
        deadline_offset_ns: u64,
        /// RNG stream label.
        rng_stream: u64,
    },
    /// Explicitly placed reliable flows.
    Flows {
        /// The flows.
        list: Vec<FlowDecl>,
    },
    /// Explicitly placed CBR streams.
    Cbr {
        /// The streams.
        list: Vec<CbrDecl>,
    },
}

/// A complete, serializable experiment description. Parse with
/// [`ScenarioSpec::from_json`], execute with
/// [`super::Engine::run`].
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (used in sweep output labels).
    pub name: String,
    /// Root seed; every random decision derives from it.
    pub seed: u64,
    /// The fabric.
    pub topology: TopologySpec,
    /// Scalar simulation parameters.
    pub sim: SimSpec,
    /// Scheduler at switch output ports.
    pub scheduler: SchedulerSpec,
    /// Scheduler at host NIC ports; `None` uses `scheduler` everywhere.
    pub host_scheduler: Option<SchedulerSpec>,
    /// QVISOR deployment, if any.
    pub qvisor: Option<QvisorSpec>,
    /// Per-tenant rank functions, registered in order.
    pub rank_fns: Vec<(u16, RankFnSpec)>,
    /// The traffic mix, materialized in order.
    pub workloads: Vec<WorkloadSpec>,
    /// Streaming SLO alert rules, evaluated when a monitor is attached.
    pub alerts: Vec<AlertSpec>,
}

fn check_scheduler(s: &SchedulerSpec, path: &str, buffer_bytes: u64) -> Result<(), ScenarioError> {
    match *s {
        SchedulerSpec::Fifo | SchedulerSpec::Pifo => Ok(()),
        SchedulerSpec::SpPifo { queues } => {
            if queues == 0 {
                return Err(field_err(format!("{path}.sp_pifo.queues"), "must be >= 1"));
            }
            Ok(())
        }
        SchedulerSpec::StrictStatic {
            queues,
            span_min,
            span_max,
        } => {
            if queues == 0 {
                return Err(field_err(
                    format!("{path}.strict_static.queues"),
                    "must be >= 1",
                ));
            }
            if span_min > span_max {
                return Err(field_err(
                    format!("{path}.strict_static.span_min"),
                    "must be <= span_max",
                ));
            }
            Ok(())
        }
        SchedulerSpec::Aifo { window, burst } => {
            if window == 0 {
                return Err(field_err(format!("{path}.aifo.window"), "must be >= 1"));
            }
            if !(0.0..1.0).contains(&burst) {
                return Err(field_err(
                    format!("{path}.aifo.burst"),
                    "must be in [0.0, 1.0)",
                ));
            }
            if buffer_bytes == u64::MAX {
                return Err(field_err(
                    format!("{path}.aifo"),
                    "requires a finite sim.buffer_bytes",
                ));
            }
            Ok(())
        }
        SchedulerSpec::FairTree { tenants } => {
            if tenants == 0 {
                return Err(field_err(
                    format!("{path}.fair_tree.tenants"),
                    "must be >= 1",
                ));
            }
            Ok(())
        }
    }
}

impl ScenarioSpec {
    /// Check every cross-field constraint, naming the offending field on
    /// failure. [`ScenarioSpec::from_json`] validates automatically.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        match self.topology {
            TopologySpec::LeafSpine {
                leaves,
                spines,
                hosts_per_leaf,
                access_bps,
                fabric_bps,
                ..
            } => {
                if leaves == 0 {
                    return Err(field_err("topology.leaf_spine.leaves", "must be >= 1"));
                }
                if spines == 0 {
                    return Err(field_err("topology.leaf_spine.spines", "must be >= 1"));
                }
                if hosts_per_leaf == 0 {
                    return Err(field_err(
                        "topology.leaf_spine.hosts_per_leaf",
                        "must be >= 1",
                    ));
                }
                if access_bps == 0 || fabric_bps == 0 {
                    return Err(field_err(
                        "topology.leaf_spine.access_bps",
                        "link rates must be positive",
                    ));
                }
            }
            TopologySpec::Dumbbell {
                pairs,
                edge_bps,
                bottleneck_bps,
                ..
            } => {
                if pairs == 0 {
                    return Err(field_err("topology.dumbbell.pairs", "must be >= 1"));
                }
                if edge_bps == 0 || bottleneck_bps == 0 {
                    return Err(field_err(
                        "topology.dumbbell.edge_bps",
                        "link rates must be positive",
                    ));
                }
            }
            TopologySpec::FatTree {
                arity, rate_bps, ..
            } => {
                if arity < 2 || arity % 2 != 0 {
                    return Err(field_err(
                        "topology.fat_tree.arity",
                        "must be even and >= 2",
                    ));
                }
                if rate_bps == 0 {
                    return Err(field_err("topology.fat_tree.rate_bps", "must be positive"));
                }
            }
        }
        if self.sim.mss == 0 {
            return Err(field_err("sim.mss", "must be >= 1"));
        }
        if self.sim.cwnd == 0 {
            return Err(field_err("sim.cwnd", "must be >= 1"));
        }
        if self.sim.rto_ns == 0 {
            return Err(field_err("sim.rto_ns", "must be positive"));
        }
        if self.sim.buffer_bytes == 0 {
            return Err(field_err("sim.buffer_bytes", "must be positive"));
        }
        if !(0.0..1.0).contains(&self.sim.random_loss) {
            return Err(field_err("sim.random_loss", "must be in [0.0, 1.0)"));
        }
        let horizon_val = match self.sim.horizon {
            TimeRef::At(ns) | TimeRef::AfterLastArrival(ns) => ns,
        };
        if horizon_val == 0 {
            return Err(field_err("sim.horizon", "must be positive"));
        }
        if self.sim.sample_interval_ns == Some(0) {
            return Err(field_err("sim.sample_interval_ns", "must be positive"));
        }
        if self.sim.adaptation_interval_ns == Some(0) {
            return Err(field_err("sim.adaptation_interval_ns", "must be positive"));
        }
        self.check_shards()?;
        check_scheduler(&self.scheduler, "scheduler", self.sim.buffer_bytes)?;
        if let Some(hs) = &self.host_scheduler {
            check_scheduler(hs, "host_scheduler", self.sim.buffer_bytes)?;
        }
        if let Some(q) = &self.qvisor {
            if q.tenants.is_empty() {
                return Err(field_err("qvisor.tenants", "must not be empty"));
            }
            if q.policy.is_empty() {
                return Err(field_err("qvisor.policy", "must not be empty"));
            }
            let mut seen = std::collections::BTreeSet::new();
            for (i, t) in q.tenants.iter().enumerate() {
                if t.rank_min > t.rank_max {
                    return Err(field_err(
                        format!("qvisor.tenants.{i}.rank_min"),
                        "must be <= rank_max",
                    ));
                }
                if t.levels == Some(0) {
                    return Err(field_err(
                        format!("qvisor.tenants.{i}.levels"),
                        "must be >= 1",
                    ));
                }
                if !seen.insert(t.id) {
                    return Err(field_err(
                        format!("qvisor.tenants.{i}.id"),
                        "duplicate tenant id",
                    ));
                }
            }
            if let Some(m) = &q.monitor {
                if m.drift_ratio <= 0.0 {
                    return Err(field_err("qvisor.monitor.drift_ratio", "must be positive"));
                }
            }
            if let Some(s) = &q.synth {
                if s.default_levels == 0 {
                    return Err(field_err("qvisor.synth.default_levels", "must be >= 1"));
                }
                if s.pref_bias_divisor == 0 {
                    return Err(field_err("qvisor.synth.pref_bias_divisor", "must be >= 1"));
                }
            }
        }
        if self.sim.adaptation_interval_ns.is_some() {
            match &self.qvisor {
                None => {
                    return Err(field_err(
                        "sim.adaptation_interval_ns",
                        "requires a qvisor deployment",
                    ))
                }
                Some(q) if q.monitor.is_none() => {
                    return Err(field_err(
                        "sim.adaptation_interval_ns",
                        "requires qvisor.monitor",
                    ))
                }
                Some(_) => {}
            }
        }
        let mut rank_tenants = std::collections::BTreeSet::new();
        for (i, (tenant, _)) in self.rank_fns.iter().enumerate() {
            if !rank_tenants.insert(*tenant) {
                return Err(field_err(
                    format!("rank_fns.{i}.tenant"),
                    "duplicate rank function for tenant",
                ));
            }
        }
        let hosts = self.topology.host_count();
        for (w, workload) in self.workloads.iter().enumerate() {
            self.check_workload(w, workload, hosts)?;
        }
        for (i, a) in self.alerts.iter().enumerate() {
            if AlertMetric::parse(&a.metric).is_none() {
                let allowed: Vec<&str> = ALERT_METRICS.iter().map(|m| m.name()).collect();
                return Err(field_err(
                    format!("alerts.{i}.metric"),
                    format!(
                        "unknown metric '{}' (allowed: {})",
                        a.metric,
                        allowed.join(", ")
                    ),
                ));
            }
            if a.window_ns == 0 {
                return Err(field_err(
                    format!("alerts.{i}.window_ns"),
                    "must be positive",
                ));
            }
            if !a.threshold.is_finite() || a.threshold < 0.0 {
                return Err(field_err(
                    format!("alerts.{i}.threshold"),
                    "must be finite and >= 0",
                ));
            }
        }
        Ok(())
    }

    /// The `sim.shards` constraints: the topology must offer enough
    /// partition units and positive cut-link lookahead, and every feature
    /// whose state is global to the run — runtime adaptation, the runtime
    /// monitor, streaming SLO alerts, STFQ's virtual clock — requires a
    /// single shard.
    fn check_shards(&self) -> Result<(), ScenarioError> {
        if self.sim.shards == 0 {
            return Err(field_err("sim.shards", "must be >= 1"));
        }
        if self.sim.shards == 1 {
            return Ok(());
        }
        let units = self.topology.unit_count();
        if self.sim.shards > units {
            return Err(field_err(
                "sim.shards",
                format!("exceeds the topology's {units} partition units (one per switch)"),
            ));
        }
        if self.topology.fabric_delay_ns() == 0 {
            return Err(field_err(
                "sim.shards",
                "sharded runs need positive switch-to-switch propagation delay \
                 (zero lookahead admits no conservative window)",
            ));
        }
        if self.sim.adaptation_interval_ns.is_some() {
            return Err(field_err(
                "sim.shards",
                "runtime adaptation requires a single shard \
                 (control ticks act on global state)",
            ));
        }
        if self.qvisor.as_ref().is_some_and(|q| q.monitor.is_some()) {
            return Err(field_err(
                "sim.shards",
                "the runtime monitor requires a single shard \
                 (its observation state is global)",
            ));
        }
        if !self.alerts.is_empty() {
            return Err(field_err(
                "sim.shards",
                "streaming SLO alerts require a single shard \
                 (sliding windows span all tenants' traffic)",
            ));
        }
        for (i, (_, f)) in self.rank_fns.iter().enumerate() {
            if matches!(f, RankFnSpec::Stfq { .. }) {
                return Err(field_err(
                    "sim.shards",
                    format!(
                        "rank_fns.{i}: STFQ keeps a cross-flow virtual clock \
                         that shards cannot replicate; use a single shard"
                    ),
                ));
            }
        }
        Ok(())
    }

    /// The scenario's alert rules in monitor form. [`ScenarioSpec::validate`]
    /// guarantees every metric name parses, so unknown names are skipped
    /// rather than panicking when called on an unvalidated spec.
    pub fn alert_rules(&self) -> Vec<AlertRule> {
        self.alerts
            .iter()
            .filter_map(|a| {
                Some(AlertRule {
                    metric: AlertMetric::parse(&a.metric)?,
                    tenant: a.tenant,
                    window_ns: a.window_ns,
                    threshold: a.threshold,
                })
            })
            .collect()
    }

    fn check_workload(
        &self,
        w: usize,
        workload: &WorkloadSpec,
        hosts: usize,
    ) -> Result<(), ScenarioError> {
        let p = |rest: &str| format!("workloads.{w}.{rest}");
        match workload {
            WorkloadSpec::Poisson {
                flows,
                sizes,
                arrival,
                ..
            } => {
                if *flows == 0 {
                    return Err(field_err(p("poisson.flows"), "must be >= 1"));
                }
                if hosts < 2 {
                    return Err(field_err(p("poisson"), "needs at least two hosts"));
                }
                match sizes {
                    SizeDistSpec::DataMining { scale_den }
                    | SizeDistSpec::WebSearch { scale_den } => {
                        if *scale_den == 0 {
                            return Err(field_err(p("poisson.sizes.scale_den"), "must be >= 1"));
                        }
                    }
                    SizeDistSpec::Fixed { bytes } => {
                        if *bytes == 0 {
                            return Err(field_err(p("poisson.sizes.fixed.bytes"), "must be >= 1"));
                        }
                    }
                    SizeDistSpec::Uniform { min, max } => {
                        if *min == 0 || min > max {
                            return Err(field_err(
                                p("poisson.sizes.uniform.min"),
                                "must be >= 1 and <= max",
                            ));
                        }
                    }
                }
                match arrival {
                    ArrivalSpec::Load(l) if *l <= 0.0 => {
                        return Err(field_err(p("poisson.arrival.load"), "must be positive"));
                    }
                    ArrivalSpec::RateFlowsPerSec(r) if *r <= 0.0 => {
                        return Err(field_err(
                            p("poisson.arrival.rate_flows_per_sec"),
                            "must be positive",
                        ));
                    }
                    _ => {}
                }
            }
            WorkloadSpec::CbrFleet {
                streams,
                rate_bps,
                pkt_size,
                start_ns,
                stop,
                ..
            } => {
                if *streams == 0 {
                    return Err(field_err(p("cbr_fleet.streams"), "must be >= 1"));
                }
                if hosts < 2 {
                    return Err(field_err(p("cbr_fleet"), "needs at least two hosts"));
                }
                if *rate_bps == 0 {
                    return Err(field_err(p("cbr_fleet.rate_bps"), "must be positive"));
                }
                if *pkt_size == 0 {
                    return Err(field_err(p("cbr_fleet.pkt_size"), "must be positive"));
                }
                if let TimeRef::At(stop_ns) = stop {
                    if stop_ns <= start_ns {
                        return Err(field_err(p("cbr_fleet.stop"), "must be after start_ns"));
                    }
                }
            }
            WorkloadSpec::Flows { list } => {
                for (i, f) in list.iter().enumerate() {
                    let fp = |rest: &str| format!("workloads.{w}.flows.list.{i}.{rest}");
                    for (field, host) in [("src_host", f.src_host), ("dst_host", f.dst_host)] {
                        if host >= hosts {
                            return Err(field_err(
                                fp(field),
                                format!("host index out of range (topology has {hosts} hosts)"),
                            ));
                        }
                    }
                    if f.src_host == f.dst_host {
                        return Err(field_err(fp("dst_host"), "must differ from src_host"));
                    }
                    if f.size == 0 {
                        return Err(field_err(fp("size"), "must be >= 1"));
                    }
                    if f.weight == 0 {
                        return Err(field_err(fp("weight"), "must be >= 1"));
                    }
                }
            }
            WorkloadSpec::Cbr { list } => {
                for (i, c) in list.iter().enumerate() {
                    let cp = |rest: &str| format!("workloads.{w}.cbr.list.{i}.{rest}");
                    for (field, host) in [("src_host", c.src_host), ("dst_host", c.dst_host)] {
                        if host >= hosts {
                            return Err(field_err(
                                cp(field),
                                format!("host index out of range (topology has {hosts} hosts)"),
                            ));
                        }
                    }
                    if c.src_host == c.dst_host {
                        return Err(field_err(cp("dst_host"), "must differ from src_host"));
                    }
                    if c.rate_bps == 0 {
                        return Err(field_err(cp("rate_bps"), "must be positive"));
                    }
                    if c.pkt_size == 0 {
                        return Err(field_err(cp("pkt_size"), "must be positive"));
                    }
                    if let TimeRef::At(stop_ns) = c.stop {
                        if stop_ns <= c.start_ns {
                            return Err(field_err(cp("stop"), "must be after start_ns"));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}
