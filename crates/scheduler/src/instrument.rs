//! Telemetry wrapper: reports every queue's behaviour through the unified
//! [`qvisor_telemetry`] subsystem.
//!
//! This is the single metrics path for scheduler models. It counts offered,
//! admitted, dropped, and dequeued packets, tracks occupancy gauges,
//! detects *rank inversions* per dequeue (the standard fidelity metric for
//! PIFO approximations — a dequeue is an inversion when some queued packet
//! has a strictly lower rank), and records per-packet queueing delay.
//!
//! When the supplied [`Telemetry`] handle is disabled the wrapper keeps no
//! mirror state and each operation adds only a branch.

use crate::queue::{Enqueue, PacketQueue};
use qvisor_sim::{Nanos, Packet, Rank};
use qvisor_telemetry::{Counter, Gauge, Histogram, Telemetry};
use std::collections::BTreeMap;

/// Wraps any [`PacketQueue`] and reports its behaviour as telemetry.
///
/// Metrics are labelled with the queue's name (`queue`) and discipline
/// (`kind`, from [`PacketQueue::kind`]):
///
/// | metric | type | meaning |
/// |---|---|---|
/// | `sched_offered_pkts` | counter | packets offered to the queue |
/// | `sched_admitted_pkts` | counter | packets admitted |
/// | `sched_dropped_pkts` | counter | rejected arrivals + evicted residents |
/// | `sched_dequeued_pkts` | counter | packets dequeued |
/// | `sched_rank_inversions` | counter | dequeues that were rank inversions |
/// | `sched_depth_pkts` | gauge | current occupancy in packets |
/// | `sched_depth_bytes` | gauge | current occupancy in bytes |
/// | `sched_sojourn_ns` | histogram | per-packet queueing delay |
pub struct InstrumentedQueue<Q: PacketQueue> {
    inner: Q,
    enabled: bool,
    /// Multiset of resident ranks: rank -> count. Mirrors the queue
    /// contents so inversion detection is O(log n) per operation and
    /// independent of the inner model. Empty when disabled.
    ranks: BTreeMap<Rank, u64>,
    offered: Counter,
    admitted: Counter,
    dropped: Counter,
    dequeued: Counter,
    inversions: Counter,
    depth_pkts: Gauge,
    depth_bytes: Gauge,
    sojourn_ns: Histogram,
}

impl<Q: PacketQueue> InstrumentedQueue<Q> {
    /// Wrap `inner`, registering metrics labelled `queue=queue_label` on
    /// `telemetry`.
    pub fn new(inner: Q, telemetry: &Telemetry, queue_label: &str) -> InstrumentedQueue<Q> {
        let labels = [("queue", queue_label), ("kind", inner.kind())];
        InstrumentedQueue {
            enabled: telemetry.is_enabled(),
            ranks: BTreeMap::new(),
            offered: telemetry.counter("sched_offered_pkts", &labels),
            admitted: telemetry.counter("sched_admitted_pkts", &labels),
            dropped: telemetry.counter("sched_dropped_pkts", &labels),
            dequeued: telemetry.counter("sched_dequeued_pkts", &labels),
            inversions: telemetry.counter("sched_rank_inversions", &labels),
            depth_pkts: telemetry.gauge("sched_depth_pkts", &labels),
            depth_bytes: telemetry.gauge("sched_depth_bytes", &labels),
            sojourn_ns: telemetry.histogram("sched_sojourn_ns", &labels),
            inner,
        }
    }

    /// The wrapped queue.
    pub fn inner(&self) -> &Q {
        &self.inner
    }

    /// Dequeues counted so far (0 when the telemetry handle is disabled).
    pub fn dequeued_count(&self) -> u64 {
        self.dequeued.get()
    }

    /// Rank inversions counted so far.
    pub fn inversion_count(&self) -> u64 {
        self.inversions.get()
    }

    fn note_resident(&mut self, rank: Rank) {
        *self.ranks.entry(rank).or_insert(0) += 1;
    }

    fn forget_resident(&mut self, rank: Rank) {
        match self.ranks.get_mut(&rank) {
            Some(1) => {
                self.ranks.remove(&rank);
            }
            Some(n) => *n -= 1,
            None => debug_assert!(false, "rank {rank} not resident"),
        }
    }

    fn update_depth(&self) {
        self.depth_pkts.set(self.inner.len() as i64);
        self.depth_bytes.set(self.inner.bytes() as i64);
    }
}

impl<Q: PacketQueue> PacketQueue for InstrumentedQueue<Q> {
    fn enqueue(&mut self, mut p: Packet, now: Nanos) -> Enqueue {
        if !self.enabled {
            return self.inner.enqueue(p, now);
        }
        self.offered.inc();
        p.enqueued_at = now;
        let rank = p.txf_rank;
        let outcome = self.inner.enqueue(p, now);
        match &outcome {
            Enqueue::Accepted => {
                self.admitted.inc();
                self.note_resident(rank);
            }
            Enqueue::AcceptedDropped(dropped) => {
                self.admitted.inc();
                self.note_resident(rank);
                self.dropped.add(dropped.len() as u64);
                // Evicted packets were residents; drop them from the mirror.
                for d in dropped {
                    self.forget_resident(d.txf_rank);
                }
            }
            Enqueue::Rejected(_) => {
                self.dropped.inc();
            }
        }
        self.update_depth();
        outcome
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        if !self.enabled {
            return self.inner.dequeue(now);
        }
        let p = self.inner.dequeue(now)?;
        self.forget_resident(p.txf_rank);
        self.dequeued.inc();
        if let Some((&best, _)) = self.ranks.first_key_value() {
            if best < p.txf_rank {
                self.inversions.inc();
            }
        }
        self.sojourn_ns
            .record(now.saturating_sub(p.enqueued_at).as_nanos());
        self.update_depth();
        Some(p)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn bytes(&self) -> u64 {
        self.inner.bytes()
    }

    fn head_rank(&self) -> Option<Rank> {
        self.inner.head_rank()
    }

    fn kind(&self) -> &'static str {
        self.inner.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::FifoQueue;
    use crate::pifo::PifoQueue;
    use crate::queue::Capacity;
    use qvisor_sim::{FlowId, NodeId, TenantId};

    fn pkt(seq: u64, rank: Rank) -> Packet {
        let mut p = Packet::data(
            FlowId(1),
            TenantId(0),
            seq,
            100,
            NodeId(0),
            NodeId(1),
            rank,
            Nanos::ZERO,
        );
        p.txf_rank = rank;
        p
    }

    fn counter(t: &Telemetry, name: &str, q: &str, kind: &str) -> u64 {
        t.counter(name, &[("queue", q), ("kind", kind)]).get()
    }

    #[test]
    fn counts_flow_through_telemetry() {
        let t = Telemetry::enabled();
        let mut q = InstrumentedQueue::new(FifoQueue::new(Capacity::UNBOUNDED), &t, "q0");
        q.enqueue(pkt(0, 9), Nanos::ZERO);
        q.enqueue(pkt(1, 1), Nanos::ZERO);
        q.dequeue(Nanos(500)); // rank 9 leaves while rank 1 waits: inversion
        assert_eq!(counter(&t, "sched_offered_pkts", "q0", "fifo"), 2);
        assert_eq!(counter(&t, "sched_admitted_pkts", "q0", "fifo"), 2);
        assert_eq!(counter(&t, "sched_dequeued_pkts", "q0", "fifo"), 1);
        assert_eq!(counter(&t, "sched_rank_inversions", "q0", "fifo"), 1);
        assert_eq!(
            t.gauge("sched_depth_pkts", &[("queue", "q0"), ("kind", "fifo")])
                .get(),
            1
        );
        // Sojourn: one sample of 500 ns.
        let h = t.histogram("sched_sojourn_ns", &[("queue", "q0"), ("kind", "fifo")]);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(1.0), Some(500));
    }

    #[test]
    fn pifo_has_zero_inversions() {
        let t = Telemetry::enabled();
        let mut q = InstrumentedQueue::new(PifoQueue::new(Capacity::UNBOUNDED), &t, "q0");
        for (i, r) in [5u64, 1, 9, 3, 7].into_iter().enumerate() {
            q.enqueue(pkt(i as u64, r), Nanos::ZERO);
        }
        while q.dequeue(Nanos::ZERO).is_some() {}
        assert_eq!(q.inversion_count(), 0);
        assert_eq!(q.dequeued_count(), 5);
    }

    #[test]
    fn drop_accounting_covers_rejects_and_evictions() {
        let t = Telemetry::enabled();
        let mut q = InstrumentedQueue::new(PifoQueue::new(Capacity::bytes(200)), &t, "q0");
        q.enqueue(pkt(0, 5), Nanos::ZERO);
        q.enqueue(pkt(1, 6), Nanos::ZERO);
        q.enqueue(pkt(2, 1), Nanos::ZERO); // evicts rank 6
        q.enqueue(pkt(3, 9), Nanos::ZERO); // rejected
        assert_eq!(counter(&t, "sched_offered_pkts", "q0", "pifo"), 4);
        assert_eq!(counter(&t, "sched_admitted_pkts", "q0", "pifo"), 3);
        assert_eq!(counter(&t, "sched_dropped_pkts", "q0", "pifo"), 2);
        // Mirror stays consistent: drain without panic.
        while q.dequeue(Nanos::ZERO).is_some() {}
        assert_eq!(counter(&t, "sched_dequeued_pkts", "q0", "pifo"), 2);
    }

    #[test]
    fn disabled_handle_is_transparent() {
        let t = Telemetry::disabled();
        let mut q = InstrumentedQueue::new(FifoQueue::new(Capacity::UNBOUNDED), &t, "q0");
        q.enqueue(pkt(0, 9), Nanos::ZERO);
        assert_eq!(q.len(), 1);
        assert!(q.ranks.is_empty(), "no mirror state when disabled");
        let p = q.dequeue(Nanos(5)).unwrap();
        // Disabled instrumentation must not stamp packets.
        assert_eq!(p.enqueued_at, Nanos::ZERO);
        assert_eq!(q.dequeued_count(), 0);
    }
}
