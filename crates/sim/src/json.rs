//! A small, dependency-free JSON tree: parser, writers, and builders.
//!
//! The repo is built to compile offline, so instead of `serde` every
//! serializable type converts itself to and from [`Value`] explicitly.
//! Integers are kept as `i128` so the full `u64` range round-trips without
//! the precision loss a float-only representation would introduce (ranks
//! and nanosecond timestamps both live near the top of `u64`).

use std::fmt::Write as _;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without a fractional part or exponent.
    Int(i128),
    /// A number with a fractional part or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved so output is deterministic.
    Object(Vec<(String, Value)>),
}

/// Where and why parsing failed. `at` is a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for ParseError {}

impl Value {
    /// Parse a JSON document (must consume the whole input).
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// An empty object (builder entry point).
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Insert or replace a key in an object; panics on non-objects.
    pub fn set(mut self, key: &str, value: impl Into<Value>) -> Value {
        match &mut self {
            Value::Object(entries) => {
                if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
                    e.1 = value.into();
                } else {
                    entries.push((key.to_string(), value.into()));
                }
            }
            other => panic!("Value::set on non-object {other:?}"),
        }
        self
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As `u64`, if this is a non-negative in-range integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// As `i64`, if this is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// As `f64` (integers convert; large magnitudes round).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// True if `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // `{}` omits ".0" for integral floats; keep the float
                    // shape so the value re-parses as a Float.
                    let text = format!("{f}");
                    out.push_str(&text);
                    if !text.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Int(v as i128)
    }
}
impl From<crate::Nanos> for Value {
    fn from(v: crate::Nanos) -> Value {
        Value::Int(v.0 as i128)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Int(v as i128)
    }
}
impl From<u16> for Value {
    fn from(v: u16) -> Value {
        Value::Int(v as i128)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Int(v as i128)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v as i128)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy the whole run up to the next quote, escape, or
                    // control byte, validating only the run as UTF-8 —
                    // validating from here to end-of-input per character
                    // made parsing quadratic on large documents.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

/// Convenience: required-field lookup with a contextual error message.
pub fn field<'v>(obj: &'v Value, key: &str) -> Result<&'v Value, ParseError> {
    obj.get(key).ok_or(ParseError {
        at: 0,
        msg: format!("missing field '{key}'"),
    })
}

/// Convenience: required `u64` field.
pub fn field_u64(obj: &Value, key: &str) -> Result<u64, ParseError> {
    field(obj, key)?.as_u64().ok_or(ParseError {
        at: 0,
        msg: format!("field '{key}' must be a non-negative integer"),
    })
}

/// Convenience: required string field.
pub fn field_str<'v>(obj: &'v Value, key: &str) -> Result<&'v str, ParseError> {
    field(obj, key)?.as_str().ok_or(ParseError {
        at: 0,
        msg: format!("field '{key}' must be a string"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::Int(42));
        assert_eq!(Value::parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(Value::parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(
            Value::parse("\"hi\\nthere\"").unwrap(),
            Value::Str("hi\nthere".into())
        );
    }

    #[test]
    fn u64_range_roundtrips() {
        let v = Value::parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let back = Value::parse(&v.to_compact()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert!(arr[2].get("b").unwrap().is_null());
    }

    #[test]
    fn string_runs_copy_correctly() {
        // Unescaped runs are copied in bulk; escapes, multi-byte UTF-8,
        // and adjacent content must all survive the fast path.
        let v = Value::parse("\"plain µ run \\t tab ü end\"").unwrap();
        assert_eq!(v.as_str(), Some("plain µ run \t tab ü end"));
        let v = Value::parse("[\"a\",\"béta\",\"c\\\\d\"]").unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr[1].as_str(), Some("béta"));
        assert_eq!(arr[2].as_str(), Some("c\\d"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "{oops", "[1,", "\"unterminated", "12x", "", "{}{}"] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn error_carries_offset() {
        let e = Value::parse("[1, oops]").unwrap_err();
        assert!(e.at >= 4, "offset {} should point at the bad token", e.at);
    }

    #[test]
    fn builder_and_writers() {
        let v = Value::object()
            .set("name", "q\"1\"")
            .set("count", 3u64)
            .set("rate", 0.5)
            .set("items", Value::Array(vec![Value::Int(1), Value::Int(2)]));
        let compact = v.to_compact();
        assert_eq!(Value::parse(&compact).unwrap(), v);
        let pretty = v.to_pretty();
        assert!(pretty.contains("\n  \"count\": 3"));
        assert_eq!(Value::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn float_shape_survives_roundtrip() {
        let v = Value::Float(2.0);
        let text = v.to_compact();
        assert_eq!(Value::parse(&text).unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn set_replaces_existing_key() {
        let v = Value::object().set("a", 1u64).set("a", 2u64);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Value::parse(r#""Aé""#).unwrap(), Value::Str("Aé".into()));
        // Surrogate pair: U+1F600.
        assert_eq!(Value::parse(r#""😀""#).unwrap(), Value::Str("😀".into()));
    }

    #[test]
    fn option_conversion() {
        let v = Value::object()
            .set("some", Some(5u64))
            .set("none", Option::<u64>::None);
        assert_eq!(v.get("some").and_then(Value::as_u64), Some(5));
        assert!(v.get("none").unwrap().is_null());
    }
}
