//! Deployment backends (§3.4): realizing the joint policy on an actual
//! scheduler.
//!
//! On a PIFO the transformed ranks deploy directly. On a commodity switch
//! with `K` strict-priority FIFO queues, QVISOR must *allocate queues to
//! strict levels* (so isolation survives the approximation) and map ranks
//! to queues within each level — either statically (range split) or with
//! SP-PIFO's adaptive bounds. A plain FIFO and AIFO round out the targets.

use crate::error::{QvisorError, Result};
use crate::synth::JointPolicy;
use qvisor_scheduler::{
    AifoQueue, Capacity, FifoQueue, PacketQueue, PifoQueue, QueueMapper, SpPifoMapper,
    StrictPriorityBank,
};
use qvisor_sim::Rank;

/// How a strict-priority bank adapts its rank→queue mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpAdaptation {
    /// Queues are allocated to strict levels proportionally to band width,
    /// and ranks split statically within each level. Guarantees inter-level
    /// isolation on the bank.
    BandedStatic,
    /// One global SP-PIFO over the whole joint rank space (no structural
    /// isolation guarantee, better intra-level fidelity under drift).
    SpPifo,
}

/// A deployment target.
#[derive(Clone, Copy, Debug)]
pub enum Backend {
    /// An ideal PIFO queue (the paper's primary target).
    Pifo {
        /// Buffer size.
        capacity: Capacity,
    },
    /// A single FIFO queue (rank-oblivious baseline).
    Fifo {
        /// Buffer size.
        capacity: Capacity,
    },
    /// A bank of strict-priority FIFO queues.
    StrictPriority {
        /// Number of hardware queues available.
        queues: usize,
        /// Shared buffer size.
        capacity: Capacity,
        /// Mapping strategy.
        adaptation: SpAdaptation,
    },
    /// AIFO: single FIFO with rank-aware admission.
    Aifo {
        /// Buffer size (must be finite).
        capacity: Capacity,
        /// Rank-distribution window size.
        window: usize,
        /// Burst tolerance in `[0, 1)`.
        burst: f64,
    },
}

impl Backend {
    /// Instantiate the scheduler for `joint`.
    ///
    /// Fails when the hardware cannot express the policy (e.g. fewer queues
    /// than strict levels under [`SpAdaptation::BandedStatic`]).
    pub fn build(&self, joint: &JointPolicy) -> Result<Box<dyn PacketQueue>> {
        match *self {
            Backend::Pifo { capacity } => Ok(Box::new(PifoQueue::new(capacity))),
            Backend::Fifo { capacity } => Ok(Box::new(FifoQueue::new(capacity))),
            Backend::Aifo {
                capacity,
                window,
                burst,
            } => {
                if capacity.bytes == u64::MAX {
                    return Err(QvisorError::Deployment(
                        "AIFO requires a finite buffer capacity".into(),
                    ));
                }
                Ok(Box::new(AifoQueue::new(capacity, window, burst)))
            }
            Backend::StrictPriority {
                queues,
                capacity,
                adaptation,
            } => match adaptation {
                SpAdaptation::SpPifo => {
                    if queues == 0 {
                        return Err(QvisorError::Deployment("need at least one queue".into()));
                    }
                    Ok(Box::new(StrictPriorityBank::new(
                        SpPifoMapper::new(queues),
                        capacity,
                    )))
                }
                SpAdaptation::BandedStatic => {
                    let mapper = BandedMapper::from_joint(joint, queues)?;
                    Ok(Box::new(StrictPriorityBank::new(mapper, capacity)))
                }
            },
        }
    }
}

/// One strict level's queue allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct BandAlloc {
    /// Absolute first rank of the level's band.
    base: Rank,
    /// Band width in ranks.
    width: u64,
    /// First hardware queue serving this band.
    first_queue: usize,
    /// Queues allocated to this band.
    queue_count: usize,
}

/// Static rank→queue mapper honouring the joint policy's strict bands.
///
/// Queues are handed to levels top-down: one each, then the remainder
/// proportionally to band width (largest-remainder). Within a level, the
/// band is split into equal rank ranges. Ranks beyond the last band (e.g.
/// unknown-tenant best-effort traffic) map to the last queue.
#[derive(Clone, Debug)]
pub struct BandedMapper {
    bands: Vec<BandAlloc>,
    queues: usize,
}

impl BandedMapper {
    /// Allocate `queues` hardware queues across `joint`'s strict levels.
    pub fn from_joint(joint: &JointPolicy, queues: usize) -> Result<BandedMapper> {
        let levels = &joint.layout;
        if levels.is_empty() {
            return Err(QvisorError::Deployment("empty policy layout".into()));
        }
        if queues < levels.len() {
            return Err(QvisorError::Deployment(format!(
                "policy has {} strict levels but only {} queues are available",
                levels.len(),
                queues
            )));
        }
        // One queue per level guaranteed; distribute the rest by width
        // (largest remainder method).
        let spare = queues - levels.len();
        let total_width: u64 = levels.iter().map(|l| l.width).sum::<u64>().max(1);
        let mut alloc: Vec<usize> = Vec::with_capacity(levels.len());
        let mut remainders: Vec<(usize, u64)> = Vec::with_capacity(levels.len());
        let mut used = 0usize;
        for (i, l) in levels.iter().enumerate() {
            let exact = l.width as u128 * spare as u128;
            let share = (exact / total_width as u128) as usize;
            let rem = (exact % total_width as u128) as u64;
            alloc.push(1 + share);
            remainders.push((i, rem));
            used += 1 + share;
        }
        remainders.sort_by_key(|&(i, rem)| (std::cmp::Reverse(rem), i));
        let mut left = queues - used;
        for &(i, _) in &remainders {
            if left == 0 {
                break;
            }
            alloc[i] += 1;
            left -= 1;
        }

        let mut bands = Vec::with_capacity(levels.len());
        let mut first_queue = 0usize;
        for (l, &count) in levels.iter().zip(&alloc) {
            bands.push(BandAlloc {
                base: l.base,
                width: l.width.max(1),
                first_queue,
                queue_count: count,
            });
            first_queue += count;
        }
        Ok(BandedMapper { bands, queues })
    }

    /// The queue allocation per level, for reports: `(first_queue, count)`.
    pub fn allocations(&self) -> Vec<(usize, usize)> {
        self.bands
            .iter()
            .map(|b| (b.first_queue, b.queue_count))
            .collect()
    }
}

impl QueueMapper for BandedMapper {
    fn queue_count(&self) -> usize {
        self.queues
    }

    fn map(&mut self, rank: Rank) -> usize {
        // Find the band containing the rank (bands are sorted by base).
        let band = match self.bands.iter().rev().find(|b| rank >= b.base) {
            Some(b) => b,
            // Below the first band (control traffic): top queue.
            None => return 0,
        };
        let offset = rank - band.base;
        if offset >= band.width {
            // Beyond the last band: lowest-priority queue.
            return self.queues - 1;
        }
        let idx = (offset as u128 * band.queue_count as u128 / band.width as u128) as usize;
        band.first_queue + idx.min(band.queue_count - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::spec::{SynthConfig, TenantSpec};
    use crate::synth::synthesize;
    use qvisor_ranking::RankRange;
    use qvisor_sim::TenantId;

    fn joint(policy: &str) -> JointPolicy {
        let specs = vec![
            TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(0, 1000)).with_levels(8),
            TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(0, 500)).with_levels(8),
            TenantSpec::new(TenantId(3), "T3", "FQ", RankRange::new(0, 50)).with_levels(4),
        ];
        let policy = Policy::parse(policy).unwrap();
        synthesize(&specs, &policy, SynthConfig::default()).unwrap()
    }

    #[test]
    fn banded_mapper_respects_levels() {
        let j = joint("T1 >> T2 + T3");
        let mut m = BandedMapper::from_joint(&j, 8).unwrap();
        // Level 0: ranks [0,8) (8 levels); level 1: [8, 8+16).
        let top = &j.layout[0];
        let bottom = &j.layout[1];
        let q_top = m.map(top.base);
        let q_bottom = m.map(bottom.base);
        assert!(q_top < q_bottom, "higher band maps to higher priority");
        // Every rank of level 0 maps strictly above every rank of level 1.
        let max_top_q = (top.base..top.base + top.width).map(|r| m.map(r)).max();
        let min_bot_q = (bottom.base..bottom.base + bottom.width)
            .map(|r| m.map(r))
            .min();
        assert!(max_top_q.unwrap() < min_bot_q.unwrap());
    }

    #[test]
    fn banded_mapper_is_monotone() {
        let j = joint("T1 >> T2 >> T3");
        let span = j.output_span();
        let mut m = BandedMapper::from_joint(&j, 6).unwrap();
        let mut prev = 0;
        for r in span.min..=span.max {
            let q = m.map(r);
            assert!(q >= prev, "queue index must not decrease with rank");
            assert!(q < 6);
            prev = q;
        }
    }

    #[test]
    fn out_of_band_ranks_clamp() {
        let j = joint("T1 >> T2");
        let mut m = BandedMapper::from_joint(&j, 4).unwrap();
        assert_eq!(m.map(0), 0);
        let span = j.output_span();
        assert_eq!(m.map(span.max + 100), 3, "unknown traffic to last queue");
    }

    #[test]
    fn queue_allocation_proportional() {
        let j = joint("T1 >> T2 + T3");
        // Level widths: 8 and 16 -> with 9 queues expect roughly 1:2 split.
        let m = BandedMapper::from_joint(&j, 9).unwrap();
        let alloc = m.allocations();
        assert_eq!(alloc.len(), 2);
        let (first, second) = (alloc[0].1, alloc[1].1);
        assert_eq!(first + second, 9);
        assert!(second > first, "wider band gets more queues: {alloc:?}");
    }

    #[test]
    fn too_few_queues_is_a_deployment_error() {
        let j = joint("T1 >> T2 >> T3");
        let err = BandedMapper::from_joint(&j, 2).unwrap_err();
        assert!(matches!(err, QvisorError::Deployment(_)));
        assert!(err.to_string().contains("3 strict levels"));
    }

    #[test]
    fn backends_build() {
        let j = joint("T1 >> T2 + T3");
        let cap = Capacity::packets(64, 1500);
        assert!(Backend::Pifo { capacity: cap }.build(&j).is_ok());
        assert!(Backend::Fifo { capacity: cap }.build(&j).is_ok());
        assert!(Backend::StrictPriority {
            queues: 8,
            capacity: cap,
            adaptation: SpAdaptation::BandedStatic
        }
        .build(&j)
        .is_ok());
        assert!(Backend::StrictPriority {
            queues: 8,
            capacity: cap,
            adaptation: SpAdaptation::SpPifo
        }
        .build(&j)
        .is_ok());
        assert!(Backend::Aifo {
            capacity: cap,
            window: 32,
            burst: 0.1
        }
        .build(&j)
        .is_ok());
        assert!(Backend::Aifo {
            capacity: Capacity::UNBOUNDED,
            window: 32,
            burst: 0.1
        }
        .build(&j)
        .is_err());
    }

    #[test]
    fn built_pifo_schedules_by_transformed_rank() {
        use qvisor_sim::{FlowId, Nanos, NodeId, Packet};
        let j = joint("T1 >> T2");
        let mut q = Backend::Pifo {
            capacity: Capacity::UNBOUNDED,
        }
        .build(&j)
        .unwrap();
        let mk = |tenant: u16, txf: u64| {
            let mut p = Packet::data(
                FlowId(1),
                TenantId(tenant),
                0,
                100,
                NodeId(0),
                NodeId(1),
                txf,
                Nanos::ZERO,
            );
            p.txf_rank = txf;
            p
        };
        q.enqueue(mk(2, 9), Nanos::ZERO);
        q.enqueue(mk(1, 2), Nanos::ZERO);
        assert_eq!(q.dequeue(Nanos::ZERO).unwrap().tenant, TenantId(1));
    }
}
