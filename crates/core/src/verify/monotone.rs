//! Per-chain order-preservation checking with concrete witnesses.
//!
//! The interval analysis ([`super::interval`]) decides *structurally*
//! whether a chain can invert or collapse input order. This module turns a
//! structural refutation into a concrete witness — a pair of input ranks
//! that demonstrably misbehaves when pushed through the real
//! [`TransformChain::apply`] — before reporting an error. A structural
//! suspicion for which no witness is reachable from the declared range is
//! downgraded to a warning, so every error-severity refutation is
//! re-checkable by construction.

use super::diag::{DiagCode, Diagnostic, Severity, Witness};
use super::interval::{analyze_chain, ChainAnalysis};
use crate::transform::{RankTransform, TransformChain};
use qvisor_ranking::RankRange;
use qvisor_sim::Rank;

/// Sampled-scan resolution for witness searches on huge ranges.
const SCAN_POINTS: u64 = 2048;
/// How many stride cycle boundaries to probe from each end of the range.
const BOUNDARY_PROBES: u64 = 64;

/// The verifier's verdict on one tenant's chain.
#[derive(Clone, Debug)]
pub struct ChainCheck {
    /// The abstract execution.
    pub analysis: ChainAnalysis,
    /// Findings, most severe first.
    pub diagnostics: Vec<Diagnostic>,
    /// The chain is *proven* order-preserving on the declared range:
    /// inversions are impossible (ties from quantization remain allowed).
    pub proved_order_preserving: bool,
    /// Concrete `(input, output)` attaining the smallest observed output.
    pub observed_min: (Rank, Rank),
    /// Concrete `(input, output)` attaining the largest observed output.
    pub observed_max: (Rank, Rank),
}

/// Check one chain against its declared input range. `span` is the dotted
/// spec path blamed in diagnostics and `subject` names the chain's owner
/// in messages (e.g. `tenant 'T1'`).
pub fn check_chain(
    chain: &TransformChain,
    declared: RankRange,
    span: &str,
    subject: &str,
) -> ChainCheck {
    let analysis = analyze_chain(chain, declared);
    let mut diagnostics = Vec::new();

    if analysis.saturates {
        let op = analysis.first_saturating().expect("saturating op exists");
        let detail = format!(
            "{subject}: op {} ({}) saturates at Rank::MAX on declared inputs {}",
            op, analysis.ops[op].op, declared
        );
        match saturation_witness(chain, declared, analysis.monotone) {
            Some(w) => diagnostics.push(Diagnostic {
                code: DiagCode::Overflow,
                severity: Severity::Error,
                span: span.to_string(),
                message: format!("{detail}; distinct inputs collapse at the ceiling"),
                witness: Some(w),
            }),
            None => diagnostics.push(Diagnostic {
                code: DiagCode::Overflow,
                severity: Severity::Warning,
                span: span.to_string(),
                message: format!("{detail}; no collapsing pair is reachable"),
                witness: None,
            }),
        }
    }

    if analysis.clamps {
        let op = analysis
            .ops
            .iter()
            .find(|o| o.clamps)
            .expect("clamping op exists");
        diagnostics.push(Diagnostic {
            code: DiagCode::ClampEngaged,
            severity: Severity::Warning,
            span: span.to_string(),
            message: format!(
                "{subject}: op {} ({}) clamps part of the declared range {} \
                 (clamped inputs lose their relative order granularity)",
                op.index, op.op, declared
            ),
            witness: None,
        });
    }

    if !analysis.monotone {
        let op = analysis
            .first_non_monotone()
            .expect("non-monotone op exists");
        let detail = format!(
            "{subject}: op {} ({}) is not order-preserving on its input interval {}",
            op, analysis.ops[op].op, analysis.ops[op].input
        );
        match inversion_witness(chain, declared, &analysis) {
            Some(w) if w.output_a > w.output_b => diagnostics.push(Diagnostic {
                code: DiagCode::NonMonotone,
                severity: Severity::Error,
                span: span.to_string(),
                message: format!("{detail}; inputs invert"),
                witness: Some(w),
            }),
            Some(w) => diagnostics.push(Diagnostic {
                code: DiagCode::OrderCollapse,
                severity: Severity::Error,
                span: span.to_string(),
                message: format!("{detail}; distinct inputs collapse outside quantization"),
                witness: Some(w),
            }),
            None => diagnostics.push(Diagnostic {
                code: DiagCode::NonMonotone,
                severity: Severity::Warning,
                span: span.to_string(),
                message: format!("{detail}; no violating pair reachable from {declared}"),
                witness: None,
            }),
        }
    } else if let Some(op) = analysis.ops.iter().find(|o| {
        matches!(o.op, RankTransform::Stride { .. })
            && o.monotone
            && !o.strictly_monotone
            && !o.saturates
    }) {
        // `every == width - 1`: each cycle top glues to the next cycle
        // bottom — a collapse no quantize step accounts for.
        let detail = format!(
            "{subject}: op {} ({}) glues adjacent stride cycles together",
            op.index, op.op
        );
        match inversion_witness(chain, declared, &analysis) {
            Some(w) => diagnostics.push(Diagnostic {
                code: DiagCode::OrderCollapse,
                severity: Severity::Error,
                span: span.to_string(),
                message: detail,
                witness: Some(w),
            }),
            None => diagnostics.push(Diagnostic {
                code: DiagCode::OrderCollapse,
                severity: Severity::Warning,
                span: span.to_string(),
                message: format!("{detail}; no colliding pair reachable from {declared}"),
                witness: None,
            }),
        }
    }

    if analysis.monotone && !analysis.strictly_monotone && !analysis.saturates && !analysis.clamps {
        // Pure quantization loss: expected whenever a tenant declares more
        // distinct ranks than it gets levels. Informational, with the
        // computed bound.
        if diagnostics.is_empty() {
            diagnostics.push(Diagnostic {
                code: DiagCode::QuantCollision,
                severity: Severity::Info,
                span: span.to_string(),
                message: format!(
                    "{subject}: up to {} distinct input ranks collapse onto one \
                     output rank (quantization)",
                    analysis.collision_bound
                ),
                witness: None,
            });
        }
    }

    let (observed_min, observed_max) = observed_extremes(chain, declared, analysis.monotone);
    ChainCheck {
        proved_order_preserving: analysis.monotone,
        analysis,
        diagnostics,
        observed_min,
        observed_max,
    }
}

/// Apply only the first `k` ops of the chain.
fn prefix_apply(chain: &TransformChain, k: usize, rank: Rank) -> Rank {
    chain.ops()[..k].iter().fold(rank, |r, op| op.apply(r))
}

/// Largest `x` in `declared` with `prefix(x) <= target`, assuming the
/// prefix is monotone non-decreasing.
fn preimage_le(
    chain: &TransformChain,
    k: usize,
    declared: RankRange,
    target: Rank,
) -> Option<Rank> {
    if prefix_apply(chain, k, declared.min) > target {
        return None;
    }
    let (mut lo, mut hi) = (declared.min, declared.max);
    while lo < hi {
        // Round up so the loop converges onto the largest qualifying x.
        let mid = hi - (hi - lo) / 2;
        if prefix_apply(chain, k, mid) <= target {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Some(lo)
}

/// Smallest `x` in `declared` with `prefix(x) >= target`, assuming the
/// prefix is monotone non-decreasing.
fn preimage_ge(
    chain: &TransformChain,
    k: usize,
    declared: RankRange,
    target: Rank,
) -> Option<Rank> {
    if prefix_apply(chain, k, declared.max) < target {
        return None;
    }
    let (mut lo, mut hi) = (declared.min, declared.max);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if prefix_apply(chain, k, mid) >= target {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

fn witness_for(chain: &TransformChain, a: Rank, b: Rank) -> Witness {
    Witness {
        input_a: a,
        output_a: chain.apply(a),
        input_b: b,
        output_b: chain.apply(b),
    }
}

/// Find a concrete pair `a < b` whose outputs invert (preferred) or
/// collapse across a misbehaving stride boundary. Returns an inverting
/// witness when one exists among the probes, else a collapsing one.
fn inversion_witness(
    chain: &TransformChain,
    declared: RankRange,
    analysis: &ChainAnalysis,
) -> Option<Witness> {
    let mut collapse: Option<Witness> = None;
    // Targeted probe: walk cycle boundaries of the first misbehaving
    // stride op, pulling each boundary back through the (monotone) prefix.
    let suspect = analysis
        .ops
        .iter()
        .find(|o| !o.strictly_monotone && matches!(o.op, RankTransform::Stride { .. }));
    if let Some(op) = suspect {
        let prefix_monotone = analysis.ops[..op.index].iter().all(|o| o.monotone);
        if prefix_monotone {
            if let RankTransform::Stride { width, .. } = op.op {
                let w = width.max(1);
                let (ilo, ihi) = (op.input.min, op.input.max);
                let first_cycle = ilo / w + 1;
                let last_cycle = ihi / w;
                let probe = |cycle: u64| -> Option<Witness> {
                    let boundary = cycle.checked_mul(w)?;
                    let a = preimage_le(chain, op.index, declared, boundary - 1)?;
                    let b = preimage_ge(chain, op.index, declared, boundary)?;
                    if a >= b {
                        return None;
                    }
                    let w = witness_for(chain, a, b);
                    (w.output_a >= w.output_b).then_some(w)
                };
                if last_cycle >= first_cycle {
                    let probes = (last_cycle - first_cycle)
                        .saturating_add(1)
                        .min(BOUNDARY_PROBES);
                    for i in 0..probes {
                        for cycle in [first_cycle + i, last_cycle - i] {
                            if let Some(w) = probe(cycle) {
                                if w.output_a > w.output_b {
                                    return Some(w);
                                }
                                collapse.get_or_insert(w);
                            }
                        }
                    }
                }
            }
        }
    }
    // Fallback: sampled scan over the declared range (plus each sample's
    // successor, so dense boundary effects are not stepped over).
    let span = declared.max - declared.min;
    let mut prev: Option<(Rank, Rank)> = None;
    let points = span.min(SCAN_POINTS);
    for i in 0..=points {
        let base = declared.min + ((span as u128 * i as u128) / points.max(1) as u128) as u64;
        for x in [base, base.saturating_add(1).min(declared.max)] {
            let y = chain.apply(x);
            if let Some((px, py)) = prev {
                if px < x && py > y {
                    return Some(witness_for(chain, px, x));
                }
            }
            prev = Some((x, y));
        }
    }
    collapse
}

/// Find two declared inputs that both pin at the saturation ceiling.
fn saturation_witness(
    chain: &TransformChain,
    declared: RankRange,
    monotone: bool,
) -> Option<Witness> {
    let top = chain.apply(declared.max);
    if monotone {
        // Binary-search the first input reaching the ceiling value.
        let mut lo = declared.min;
        let mut hi = declared.max;
        if chain.apply(lo) == top {
            return (lo < hi).then(|| witness_for(chain, lo, hi));
        }
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if chain.apply(mid) >= top {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        return (lo < declared.max).then(|| witness_for(chain, lo, declared.max));
    }
    // Non-monotone chain: sampled scan for any two inputs at the ceiling.
    let span = declared.max - declared.min;
    let points = span.min(SCAN_POINTS);
    let mut first: Option<Rank> = None;
    for i in 0..=points {
        let x = declared.min + ((span as u128 * i as u128) / points.max(1) as u128) as u64;
        if chain.apply(x) == Rank::MAX {
            match first {
                Some(a) if a < x => return Some(witness_for(chain, a, x)),
                None => first = Some(x),
                _ => {}
            }
        }
    }
    None
}

/// Concrete `(input, output)` pairs attaining the smallest and largest
/// observed outputs. Exact for monotone chains (the endpoints); a sampled
/// scan otherwise.
fn observed_extremes(
    chain: &TransformChain,
    declared: RankRange,
    monotone: bool,
) -> ((Rank, Rank), (Rank, Rank)) {
    if monotone {
        return (
            (declared.min, chain.apply(declared.min)),
            (declared.max, chain.apply(declared.max)),
        );
    }
    let span = declared.max - declared.min;
    let points = span.min(SCAN_POINTS);
    let mut min = (declared.min, chain.apply(declared.min));
    let mut max = min;
    for i in 0..=points {
        let x = declared.min + ((span as u128 * i as u128) / points.max(1) as u128) as u64;
        let y = chain.apply(x);
        if y < min.1 {
            min = (x, y);
        }
        if y > max.1 {
            max = (x, y);
        }
    }
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm(min: u64, max: u64, levels: u64) -> RankTransform {
        RankTransform::Normalize {
            input: RankRange::new(min, max),
            levels,
        }
    }

    #[test]
    fn clean_chain_has_no_findings() {
        let chain =
            TransformChain::from_ops(vec![norm(7, 9, 3), RankTransform::Shift { offset: 1 }]);
        let check = check_chain(&chain, RankRange::new(7, 9), "tenants.0", "tenant 'T1'");
        assert!(check.diagnostics.is_empty());
        assert!(check.proved_order_preserving);
        assert_eq!(check.observed_min, (7, 1));
        assert_eq!(check.observed_max, (9, 3));
    }

    #[test]
    fn quantization_reported_as_info_with_bound() {
        let chain = TransformChain::from_ops(vec![norm(0, 2000, 512)]);
        let check = check_chain(&chain, RankRange::new(0, 2000), "tenants.0", "tenant 'T1'");
        assert_eq!(check.diagnostics.len(), 1);
        let d = &check.diagnostics[0];
        assert_eq!(d.code, DiagCode::QuantCollision);
        assert_eq!(d.severity, Severity::Info);
        assert!(d.message.contains("up to 4"), "{}", d.message);
        assert!(check.proved_order_preserving);
    }

    #[test]
    fn non_monotone_stride_yields_verified_inversion_witness() {
        let chain = TransformChain::from_ops(vec![RankTransform::Stride {
            every: 1,
            width: 4,
            offset: 0,
        }]);
        let check = check_chain(&chain, RankRange::new(0, 63), "tenants.0", "tenant 'T1'");
        let d = check
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::NonMonotone)
            .expect("inversion reported");
        assert_eq!(d.severity, Severity::Error);
        let w = d.witness.expect("witness attached");
        assert!(w.input_a < w.input_b);
        assert!(w.output_a > w.output_b, "witness must invert: {w}");
        assert_eq!(chain.apply(w.input_a), w.output_a);
        assert_eq!(chain.apply(w.input_b), w.output_b);
        assert!(!check.proved_order_preserving);
    }

    #[test]
    fn non_monotone_behind_prefix_still_witnessed() {
        // Normalize first, then the bad stride: witness search must pull
        // boundaries back through the prefix.
        let chain = TransformChain::from_ops(vec![
            norm(0, 100_000, 64),
            RankTransform::Stride {
                every: 2,
                width: 8,
                offset: 0,
            },
        ]);
        let check = check_chain(
            &chain,
            RankRange::new(0, 100_000),
            "tenants.0",
            "tenant 'T1'",
        );
        let d = check
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::NonMonotone)
            .expect("inversion reported");
        let w = d.witness.expect("witness attached");
        assert!(w.input_a < w.input_b && w.output_a > w.output_b);
    }

    #[test]
    fn cycle_glue_reported_as_collapse() {
        // every == width - 1: monotone but glues cycle tops to bottoms.
        let chain = TransformChain::from_ops(vec![RankTransform::Stride {
            every: 3,
            width: 4,
            offset: 0,
        }]);
        let check = check_chain(&chain, RankRange::new(0, 63), "tenants.0", "tenant 'T1'");
        let d = check
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::OrderCollapse)
            .expect("collapse reported");
        assert_eq!(d.severity, Severity::Error);
        let w = d.witness.expect("witness attached");
        assert!(w.input_a < w.input_b);
        assert_eq!(w.output_a, w.output_b, "collapse witness collides: {w}");
    }

    #[test]
    fn unreachable_violation_downgraded_to_warning() {
        // The bad stride boundary sits outside what the declared range can
        // reach: range [10, 20] stays inside one 100-wide cycle.
        let chain = TransformChain::from_ops(vec![RankTransform::Stride {
            every: 1,
            width: 100,
            offset: 0,
        }]);
        let check = check_chain(&chain, RankRange::new(10, 20), "tenants.0", "tenant 'T1'");
        // Inside one cycle the op is strict: no findings at all.
        assert!(check.diagnostics.is_empty());
        assert!(check.proved_order_preserving);
    }

    #[test]
    fn saturating_shift_yields_collapse_witness() {
        let chain = TransformChain::from_ops(vec![RankTransform::Shift {
            offset: Rank::MAX - 10,
        }]);
        let check = check_chain(&chain, RankRange::new(0, 100), "tenants.0", "tenant 'T1'");
        let d = check
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::Overflow)
            .expect("overflow reported");
        assert_eq!(d.severity, Severity::Error);
        let w = d.witness.expect("witness attached");
        assert!(w.input_a < w.input_b);
        assert_eq!(w.output_a, Rank::MAX);
        assert_eq!(w.output_b, Rank::MAX);
        // Saturation keeps order (ties only): still order-preserving.
        assert!(check.proved_order_preserving);
    }

    #[test]
    fn clamp_into_declared_range_warns() {
        let chain = TransformChain::from_ops(vec![RankTransform::Clamp {
            range: RankRange::new(10, 20),
        }]);
        let check = check_chain(&chain, RankRange::new(0, 100), "tenants.0", "tenant 'T1'");
        let d = check
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::ClampEngaged)
            .expect("clamp reported");
        assert_eq!(d.severity, Severity::Warning);
    }
}
