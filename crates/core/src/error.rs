//! Error types for policy parsing and synthesis.

use std::fmt;

/// Any error QVISOR's control plane can produce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QvisorError {
    /// The operator policy string failed to parse.
    Parse {
        /// Byte offset of the offending token.
        at: usize,
        /// What went wrong.
        msg: String,
    },
    /// The policy references a tenant with no registered specification.
    UnknownTenant(String),
    /// A tenant appears more than once in the policy.
    DuplicateTenant(String),
    /// Specs/policy combination that cannot be synthesized.
    Synthesis(String),
    /// A deployment target cannot realize the synthesized policy.
    Deployment(String),
}

impl fmt::Display for QvisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QvisorError::Parse { at, msg } => write!(f, "policy parse error at byte {at}: {msg}"),
            QvisorError::UnknownTenant(name) => {
                write!(
                    f,
                    "policy references tenant '{name}' with no registered spec"
                )
            }
            QvisorError::DuplicateTenant(name) => {
                write!(f, "tenant '{name}' appears more than once in the policy")
            }
            QvisorError::Synthesis(msg) => write!(f, "synthesis failed: {msg}"),
            QvisorError::Deployment(msg) => write!(f, "deployment failed: {msg}"),
        }
    }
}

impl std::error::Error for QvisorError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, QvisorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_usefully() {
        let e = QvisorError::Parse {
            at: 4,
            msg: "unexpected '('".into(),
        };
        assert!(e.to_string().contains("byte 4"));
        assert!(QvisorError::UnknownTenant("T9".into())
            .to_string()
            .contains("T9"));
        assert!(QvisorError::DuplicateTenant("T1".into())
            .to_string()
            .contains("more than once"));
    }
}
