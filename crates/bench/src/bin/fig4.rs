//! Regenerates the paper's Fig. 4: mean FCT of the pFabric tenant's small
//! (4a) and large (4b) flows across loads 0.2–0.8 under six schemes.
//!
//! Usage:
//!   cargo run -p qvisor-bench --release --bin fig4 [-- OPTIONS]
//!
//! Options:
//!   --smoke            small fabric, tiny workload (seconds)
//!   --flows N          pFabric flows per point   (default 2000)
//!   --scale N          divide flow sizes by N    (default 10)
//!   --loads a,b,c      loads to sweep            (default 0.2..=0.8)
//!   --workload W       datamining | websearch    (default datamining)
//!   --seed N           root seed                 (default 1)
//!   --json PATH        also dump machine-readable results
//!   --telemetry PREFIX write a telemetry snapshot PREFIX-<scheme>-<load>.jsonl
//!                      per point (render with `qvisor telemetry report`)
//!   --trace PREFIX     write a packet-lifecycle trace
//!                      PREFIX-<scheme>-<load>.trace.jsonl per point
//!                      (render with `qvisor trace report`, convert for
//!                      Perfetto with `qvisor trace export`)
//!   --trace-sample N   trace one flow in N (default 1 = every flow)

use qvisor_bench::{run_point_instrumented, snapshot, Fig4Config, Fig4Point, Scheme};
use qvisor_telemetry::{Telemetry, TraceConfig, Tracer};
use std::io::Write;

struct Outputs {
    json: Option<String>,
    telemetry: Option<String>,
    trace: Option<String>,
    trace_sample: u64,
}

fn parse_args() -> (Fig4Config, Vec<f64>, Outputs) {
    let mut cfg = Fig4Config::paper_scaled();
    let mut loads: Vec<f64> = (2..=8).map(|l| l as f64 / 10.0).collect();
    let mut json = None;
    let mut telemetry = None;
    let mut trace = None;
    let mut trace_sample = 1u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value after {}", args[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--smoke" => {
                let keep_seed = cfg.seed;
                cfg = Fig4Config::smoke();
                cfg.seed = keep_seed;
            }
            "--flows" => cfg.flows = value(&mut i).parse().expect("--flows N"),
            "--scale" => cfg.size_scale_den = value(&mut i).parse().expect("--scale N"),
            "--seed" => cfg.seed = value(&mut i).parse().expect("--seed N"),
            "--loads" => {
                loads = value(&mut i)
                    .split(',')
                    .map(|s| s.parse().expect("--loads a,b,c"))
                    .collect();
            }
            "--json" => json = Some(value(&mut i)),
            "--telemetry" => telemetry = Some(value(&mut i)),
            "--trace" => trace = Some(value(&mut i)),
            "--trace-sample" => {
                trace_sample = value(&mut i).parse().expect("--trace-sample N");
            }
            "--workload" => {
                cfg.workload = match value(&mut i).as_str() {
                    "datamining" => qvisor_bench::Workload::DataMining,
                    "websearch" => qvisor_bench::Workload::WebSearch,
                    other => {
                        eprintln!("unknown workload {other}");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    (
        cfg,
        loads,
        Outputs {
            json,
            telemetry,
            trace,
            trace_sample,
        },
    )
}

/// Exit with the snapshot error's message (which names the path) instead
/// of panicking on a bad `--telemetry`/`--trace` prefix.
fn written(result: Result<String, snapshot::SnapshotError>) -> String {
    result.unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    })
}

/// Run one (scheme, load) point with whatever instrumentation the flags
/// ask for, writing per-point snapshots as we go.
fn run_point(scheme: Scheme, load: f64, cfg: &Fig4Config, outputs: &Outputs) -> Fig4Point {
    let t0 = std::time::Instant::now();
    let telemetry = match outputs.telemetry {
        Some(_) => Telemetry::enabled(),
        None => Telemetry::disabled(),
    };
    let tracer = match outputs.trace {
        Some(_) => Tracer::enabled(TraceConfig {
            sample_one_in: outputs.trace_sample,
            seed: cfg.seed,
            ..TraceConfig::default()
        }),
        None => Tracer::disabled(),
    };
    let p = run_point_instrumented(scheme, load, cfg, &telemetry, &tracer);
    let tag = format!("{}-load{load}", scheme.label());
    if let Some(prefix) = &outputs.telemetry {
        eprintln!(
            "    wrote {}",
            written(snapshot::write_snapshot(&telemetry, prefix, &tag))
        );
    }
    if let Some(prefix) = &outputs.trace {
        eprintln!(
            "    wrote {}",
            written(snapshot::write_trace_snapshot(&tracer, prefix, &tag))
        );
    }
    eprintln!(
        "  {:<26} load {:.1}: small {:>8} ms, large {:>9} ms, \
         {}/{} flows, {:>4.1}s wall",
        scheme.label(),
        load,
        p.small_fct_ms.map_or("-".into(), |v| format!("{v:.3}")),
        p.large_fct_ms.map_or("-".into(), |v| format!("{v:.2}")),
        p.completed,
        p.completed as u64 + p.incomplete,
        t0.elapsed().as_secs_f64(),
    );
    p
}

fn print_tables(results: &[Vec<Fig4Point>], loads: &[f64]) {
    for (title, pick) in [
        (
            "Figure 4a: (0,100KB) mean FCTs of pFabric traffic (ms)",
            0usize,
        ),
        (
            "Figure 4b: [1MB,inf) mean FCTs of pFabric traffic (ms)",
            1usize,
        ),
    ] {
        println!("\n{title}");
        print!("{:<26}", "scheme \\ load");
        for l in loads {
            print!("{l:>9.1}");
        }
        println!();
        for (si, scheme) in Scheme::ALL.iter().enumerate() {
            print!("{:<26}", scheme.label());
            for p in &results[si] {
                let v = if pick == 0 {
                    p.small_fct_ms
                } else {
                    p.large_fct_ms
                };
                match v {
                    Some(v) if pick == 0 => print!("{v:>9.3}"),
                    Some(v) => print!("{v:>9.2}"),
                    None => print!("{:>9}", "-"),
                }
            }
            println!();
        }
    }
}

fn write_json(results: &[Vec<Fig4Point>], path: &str) {
    use qvisor_sim::json::Value;
    let rows: Vec<Value> = Scheme::ALL
        .iter()
        .enumerate()
        .flat_map(|(si, s)| {
            results[si].iter().map(move |p| {
                Value::object()
                    .set("scheme", s.label())
                    .set("load", p.load)
                    .set("small_fct_ms", p.small_fct_ms)
                    .set("large_fct_ms", p.large_fct_ms)
                    .set("completed", p.completed)
                    .set("incomplete", p.incomplete)
                    .set("deadline_hit", p.deadline_hit)
            })
        })
        .collect();
    let fail = |e: std::io::Error| -> ! {
        eprintln!("cannot write results {path}: {e}");
        std::process::exit(1);
    };
    let mut f = std::fs::File::create(path).unwrap_or_else(|e| fail(e));
    writeln!(f, "{}", Value::from(rows).to_pretty()).unwrap_or_else(|e| fail(e));
    eprintln!("wrote {path}");
}

fn main() {
    let (cfg, loads, outputs) = parse_args();
    eprintln!(
        "fig4: {} hosts, {} flows/point, sizes /{}, {} CBR x {} Mbps, loads {loads:?}",
        cfg.fabric.leaves * cfg.fabric.hosts_per_leaf,
        cfg.flows,
        cfg.size_scale_den,
        cfg.cbr_streams,
        cfg.cbr_rate_bps / 1_000_000,
    );
    // results[scheme][load index]
    let results: Vec<Vec<Fig4Point>> = Scheme::ALL
        .iter()
        .map(|&scheme| {
            loads
                .iter()
                .map(|&load| run_point(scheme, load, &cfg, &outputs))
                .collect()
        })
        .collect();
    print_tables(&results, &loads);
    if let Some(path) = &outputs.json {
        write_json(&results, path);
    }
}
