//! Measurement wrapper: counts drops, throughput, and *rank inversions* —
//! the standard fidelity metric for PIFO approximations (a dequeue is an
//! inversion when some queued packet has a strictly lower rank).
//!
//! Since the introduction of [`crate::instrument::InstrumentedQueue`] this
//! type is a thin convenience wrapper over it: it owns a private
//! [`Telemetry`] registry so callers get self-contained [`QueueStats`]
//! without wiring a registry themselves. There is exactly one metrics path —
//! the telemetry subsystem; `AuditedQueue` merely reads it back.
//!
//! Note: when the `qvisor-telemetry` crate is built with its `enabled`
//! feature off, all counters compile to no-ops and [`QueueStats`] stays
//! zero. The workspace default keeps the feature on.

use crate::instrument::InstrumentedQueue;
use crate::queue::{Enqueue, PacketQueue};
use qvisor_sim::{Nanos, Packet, Rank};
use qvisor_telemetry::Telemetry;

/// Label used for the private registry behind an [`AuditedQueue`].
const QUEUE_LABEL: &str = "audit";

/// Counters exported by [`AuditedQueue`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Packets offered.
    pub offered: u64,
    /// Packets admitted.
    pub admitted: u64,
    /// Packets lost (rejected arrivals + evicted residents).
    pub dropped: u64,
    /// Packets dequeued.
    pub dequeued: u64,
    /// Dequeues that were rank inversions.
    pub inversions: u64,
}

impl QueueStats {
    /// Fraction of dequeues that were inversions (0 if none yet).
    pub fn inversion_rate(&self) -> f64 {
        if self.dequeued == 0 {
            0.0
        } else {
            self.inversions as f64 / self.dequeued as f64
        }
    }

    /// Fraction of offered packets that were lost.
    pub fn loss_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }
}

/// Wraps any [`PacketQueue`] and audits its behaviour through a private
/// telemetry registry.
pub struct AuditedQueue<Q: PacketQueue> {
    inner: InstrumentedQueue<Q>,
    telemetry: Telemetry,
}

impl<Q: PacketQueue> AuditedQueue<Q> {
    /// Wrap `inner`.
    pub fn new(inner: Q) -> AuditedQueue<Q> {
        let telemetry = Telemetry::enabled();
        AuditedQueue {
            inner: InstrumentedQueue::new(inner, &telemetry, QUEUE_LABEL),
            telemetry,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> QueueStats {
        let get = |name: &str| {
            self.telemetry
                .counter(name, &[("queue", QUEUE_LABEL), ("kind", self.kind())])
                .get()
        };
        QueueStats {
            offered: get("sched_offered_pkts"),
            admitted: get("sched_admitted_pkts"),
            dropped: get("sched_dropped_pkts"),
            dequeued: get("sched_dequeued_pkts"),
            inversions: get("sched_rank_inversions"),
        }
    }

    /// The wrapped queue.
    pub fn inner(&self) -> &Q {
        self.inner.inner()
    }
}

impl<Q: PacketQueue> PacketQueue for AuditedQueue<Q> {
    fn enqueue(&mut self, p: Packet, now: Nanos) -> Enqueue {
        self.inner.enqueue(p, now)
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        self.inner.dequeue(now)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn bytes(&self) -> u64 {
        self.inner.bytes()
    }

    fn head_rank(&self) -> Option<Rank> {
        self.inner.head_rank()
    }

    fn kind(&self) -> &'static str {
        self.inner.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::FifoQueue;
    use crate::pifo::PifoQueue;
    use crate::queue::Capacity;
    use qvisor_sim::{FlowId, NodeId, TenantId};

    fn pkt(seq: u64, rank: Rank) -> Packet {
        let mut p = Packet::data(
            FlowId(1),
            TenantId(0),
            seq,
            100,
            NodeId(0),
            NodeId(1),
            rank,
            Nanos::ZERO,
        );
        p.txf_rank = rank;
        p
    }

    #[test]
    fn pifo_has_zero_inversions() {
        let mut q = AuditedQueue::new(PifoQueue::new(Capacity::UNBOUNDED));
        for (i, r) in [5u64, 1, 9, 3, 7].into_iter().enumerate() {
            q.enqueue(pkt(i as u64, r), Nanos::ZERO);
        }
        while q.dequeue(Nanos::ZERO).is_some() {}
        assert_eq!(q.stats().inversions, 0);
        assert_eq!(q.stats().dequeued, 5);
    }

    #[test]
    fn fifo_inversions_are_counted() {
        let mut q = AuditedQueue::new(FifoQueue::new(Capacity::UNBOUNDED));
        // rank 9 dequeues first while rank 1 waits -> inversion.
        q.enqueue(pkt(0, 9), Nanos::ZERO);
        q.enqueue(pkt(1, 1), Nanos::ZERO);
        q.dequeue(Nanos::ZERO);
        assert_eq!(q.stats().inversions, 1);
        q.dequeue(Nanos::ZERO);
        assert_eq!(q.stats().inversions, 1);
        assert!((q.stats().inversion_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn drop_accounting_covers_rejects_and_evictions() {
        let mut q = AuditedQueue::new(PifoQueue::new(Capacity::bytes(200)));
        q.enqueue(pkt(0, 5), Nanos::ZERO);
        q.enqueue(pkt(1, 6), Nanos::ZERO);
        // Eviction: rank 1 pushes out rank 6.
        q.enqueue(pkt(2, 1), Nanos::ZERO);
        // Rejection: rank 9 bounces.
        q.enqueue(pkt(3, 9), Nanos::ZERO);
        let s = q.stats();
        assert_eq!(s.offered, 4);
        assert_eq!(s.admitted, 3);
        assert_eq!(s.dropped, 2);
        assert!((s.loss_rate() - 0.5).abs() < 1e-12);
        // Mirror stays consistent: drain without panic.
        while q.dequeue(Nanos::ZERO).is_some() {}
        assert_eq!(q.stats().dequeued, 2);
    }

    #[test]
    fn duplicate_ranks_tracked_correctly() {
        let mut q = AuditedQueue::new(FifoQueue::new(Capacity::UNBOUNDED));
        q.enqueue(pkt(0, 4), Nanos::ZERO);
        q.enqueue(pkt(1, 4), Nanos::ZERO);
        q.dequeue(Nanos::ZERO); // equal rank remains: not an inversion
        assert_eq!(q.stats().inversions, 0);
    }
}
