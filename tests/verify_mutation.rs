//! Seeded-mutation tests for the static policy verifier.
//!
//! Baseline: every checked-in example (scenario, sweep, and config alike)
//! verifies clean even under `--deny-warnings` semantics. Then each test
//! corrupts one spec field of a known-good example — through the same
//! dotted-path patch mechanism the sweep runner uses — and asserts the
//! verifier reports the *expected diagnostic code at the expected spec
//! path*, not merely "something failed". Violation classes that the
//! synthesizer can never emit from scenario JSON (a compressing stride, an
//! engaged clamp) are injected at the chain level via `check_chain`.

use qvisor_core::verify::check_chain;
use qvisor_core::{DiagCode, RankTransform, Severity, SpecPaths, TransformChain, VerifyReport};
use qvisor_netsim::scenario::{Engine, ScenarioSpec, SweepSpec};
use qvisor_ranking::RankRange;
use qvisor_sim::json::Value;
use std::path::Path;

/// A `first_rank` close enough to `Rank::MAX` that every synthesized
/// band is glued to the rank ceiling: each tenant's shift saturates and
/// the strict levels can no longer be disjoint.
const SATURATING_FIRST_RANK: u64 = u64::MAX - 1;

fn example(rel: &str) -> Value {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join(rel);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    Value::parse(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

/// Patch `value` into `scenario` at dotted `path` via the sweep-runner's
/// own patch mechanism (a one-axis, one-value sweep), then strictly
/// re-parse the result.
fn mutate(scenario: &Value, path: &str, value: Value) -> ScenarioSpec {
    let axis = Value::object()
        .set("path", path)
        .set("values", Value::from(vec![value]));
    let sweep = Value::object()
        .set("base", scenario.clone())
        .set("axes", Value::from(vec![axis]));
    let spec = SweepSpec::from_value(&sweep).unwrap_or_else(|e| panic!("wrap {path}: {e}"));
    let mut points = spec
        .points()
        .unwrap_or_else(|e| panic!("patch {path}: {e}"));
    assert_eq!(points.len(), 1);
    points.remove(0).spec
}

fn verify_scenario(spec: &ScenarioSpec) -> VerifyReport {
    Engine::new().check(spec).expect("spec must stay valid")
}

fn find<'r>(report: &'r VerifyReport, code: DiagCode, span: &str) -> &'r qvisor_core::Diagnostic {
    report
        .diagnostics
        .iter()
        .find(|d| d.code == code && d.span == span)
        .unwrap_or_else(|| panic!("no {code:?} at '{span}' in:\n{}", report.render_text()))
}

#[test]
fn checked_in_examples_verify_clean() {
    for rel in [
        "scenarios/fig4_point.json",
        "scenarios/fault_injection.json",
        "scenarios/weighted_share.json",
        "scenarios/incast.json",
        "scenarios/fairtree_bound.json",
    ] {
        let spec = ScenarioSpec::from_value(&example(rel)).unwrap_or_else(|e| panic!("{rel}: {e}"));
        let report = verify_scenario(&spec);
        assert!(
            !report.gate_fails(true),
            "{rel} must verify clean under deny-warnings:\n{}",
            report.render_text()
        );
    }
    let sweep = SweepSpec::from_value(&example("sweeps/fig4_grid.json")).unwrap();
    for point in sweep.points().unwrap() {
        let report = verify_scenario(&point.spec);
        assert!(
            !report.gate_fails(true),
            "fig4_grid point '{}' must verify clean:\n{}",
            point.label,
            report.render_text()
        );
    }
}

/// A saturating `first_rank` pushes every tenant band against the rank
/// ceiling: each chain overflows (with a collapsing witness) and the
/// strict levels can no longer be disjoint.
#[test]
fn saturating_synth_mutant_refutes_overflow_and_isolation() {
    let synth = Value::object()
        .set("default_levels", 8u64)
        .set("first_rank", SATURATING_FIRST_RANK)
        .set("pref_bias_divisor", 2u64);
    let spec = mutate(&example("scenarios/fig4_point.json"), "qvisor.synth", synth);
    let report = verify_scenario(&spec);
    assert!(report.has_errors() && report.gate_fails(false));

    // Both tenants' chains saturate, and the error carries a concrete
    // collapsing pair.
    for tenant in ["qvisor.tenants.0", "qvisor.tenants.1"] {
        let d = find(&report, DiagCode::Overflow, tenant);
        assert_eq!(d.severity, Severity::Error);
        let w = d.witness.expect("overflow error must carry a witness");
        assert!(w.input_a < w.input_b && w.output_a == w.output_b);
    }

    // With every band glued to the ceiling the strict levels overlap,
    // with a concrete cross-tenant pair colliding at Rank::MAX.
    let d = find(&report, DiagCode::StrictOverlap, "qvisor.policy");
    assert_eq!(d.severity, Severity::Error);
    let w = d.witness.expect("overlap error must carry a witness");
    assert_eq!(w.output_a, w.output_b);
}

/// Removing a tenant from the policy string leaves its spec unscheduled:
/// a warning at that tenant's path, fatal only under deny-warnings.
#[test]
fn policy_dropping_a_tenant_warns_unscheduled() {
    let spec = mutate(
        &example("scenarios/fig4_point.json"),
        "qvisor.policy",
        Value::from("EDF"),
    );
    let report = verify_scenario(&spec);
    let d = find(&report, DiagCode::Unscheduled, "qvisor.tenants.0");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("pFabric"));
    assert!(!report.gate_fails(false) && report.gate_fails(true));
}

/// Collapsing a tenant's levels to 2 is legal but lossy: the verifier
/// reports the exact quantization collision bound at the tenant's path.
#[test]
fn coarse_quantization_mutant_reports_collision_bound() {
    let spec = mutate(
        &example("scenarios/fault_injection.json"),
        "qvisor.tenants.0.levels",
        Value::from(2u64),
    );
    let report = verify_scenario(&spec);
    let d = find(&report, DiagCode::QuantCollision, "qvisor.tenants.0");
    assert_eq!(d.severity, Severity::Info);
    // Declared [0, 2000] over 2 levels: at least ~1000 distinct inputs
    // per bucket, and the message embeds the tenant's computed bound.
    let row = report
        .tenants
        .iter()
        .find(|t| t.path == "qvisor.tenants.0")
        .expect("tenant row present");
    assert!(row.collision_bound >= 1001, "bound {}", row.collision_bound);
    assert!(
        d.message
            .contains(&format!("up to {}", row.collision_bound)),
        "message '{}' must embed bound {}",
        d.message,
        row.collision_bound
    );
    // Info never gates, even under deny-warnings.
    assert!(!report.gate_fails(true));
}

/// The same mutation applied through a sweep document roots diagnostics
/// under `base.qvisor.` so they point into the sweep file, not the
/// resolved point.
#[test]
fn sweep_point_mutants_root_diagnostics_under_base() {
    let grid = example("sweeps/fig4_grid.json");
    let synth = Value::object()
        .set("default_levels", 8u64)
        .set("first_rank", SATURATING_FIRST_RANK)
        .set("pref_bias_divisor", 2u64);
    let axis = Value::object()
        .set("path", "qvisor.synth")
        .set("values", Value::from(vec![synth]));
    let sweep = Value::object()
        .set("base", grid.get("base").expect("sweep has a base").clone())
        .set("axes", Value::from(vec![axis]));
    let spec = SweepSpec::from_value(&sweep).unwrap();
    let points = spec.points().unwrap();
    assert_eq!(points.len(), 1);
    for point in points {
        let report = Engine::new()
            .check_with_paths(&point.spec, &SpecPaths::with_prefix("base.qvisor."))
            .unwrap();
        let d = find(&report, DiagCode::Overflow, "base.qvisor.tenants.0");
        assert_eq!(d.severity, Severity::Error);
        let d = find(&report, DiagCode::StrictOverlap, "base.qvisor.policy");
        assert_eq!(d.severity, Severity::Error);
    }
}

/// Scenario JSON can never synthesize a compressing stride or an engaged
/// clamp, so those violation classes are injected at the chain level.
#[test]
fn chain_level_mutants_are_caught_with_witnesses() {
    let declared = RankRange::new(0, 1000);

    // Stride with `every < width` wraps outputs and inverts input order.
    let compressing = TransformChain::from_ops(vec![RankTransform::Stride {
        every: 3,
        width: 10,
        offset: 0,
    }]);
    let check = check_chain(&compressing, declared, "tenants.0", "tenant 'M'");
    assert!(!check.proved_order_preserving);
    let d = check
        .diagnostics
        .iter()
        .find(|d| d.code == DiagCode::NonMonotone && d.severity == Severity::Error)
        .expect("compressing stride must refute as non-monotone");
    let w = d.witness.expect("refutation carries an inverting witness");
    assert!(w.input_a < w.input_b && w.output_a > w.output_b);
    assert_eq!(compressing.apply(w.input_a), w.output_a);
    assert_eq!(compressing.apply(w.input_b), w.output_b);

    // A clamp that truncates the declared range loses order granularity.
    let clamped = TransformChain::from_ops(vec![RankTransform::Clamp {
        range: RankRange::new(0, 10),
    }]);
    let check = check_chain(&clamped, declared, "tenants.1", "tenant 'C'");
    let d = check
        .diagnostics
        .iter()
        .find(|d| d.code == DiagCode::ClampEngaged)
        .expect("engaged clamp must warn");
    assert_eq!(d.severity, Severity::Warning);
}
