//! Parallel fuzz campaigns with byte-deterministic summaries.
//!
//! A campaign runs `cases` generated deployments through the full
//! differential oracle, fanned over OS threads with the same atomic
//! work-index pattern as the parallel sweep runner: workers claim case
//! indices from an `AtomicUsize`, send `(index, outcome)` down a channel,
//! and the results are merged back in case order. Every case is a pure
//! function of `(seed, index)` and every worker builds its own (Rc-based)
//! telemetry world, so the merged report — and therefore the rendered
//! summary — is byte-identical at any `--jobs` level.
//!
//! Disagreeing cases are minimized inside the worker (minimization is
//! itself deterministic) and surface as [`CaseFailure`]s carrying a
//! replayable corpus document.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use qvisor_sim::json::Value;
use std::collections::BTreeMap;

use crate::corpus::corpus_value;
use crate::gen::generate_case;
use crate::minimize::minimize;
use crate::oracle::{run_case, run_case_with, CaseOutcome, Verdict};

/// Campaign parameters.
#[derive(Clone, Copy, Debug)]
pub struct CampaignOpts {
    /// Campaign seed; every case derives from `(seed, index)`.
    pub seed: u64,
    /// Number of cases to generate and check.
    pub cases: u64,
    /// Worker threads (the summary is identical at any value).
    pub jobs: usize,
}

/// One disagreeing case, minimized.
#[derive(Clone, Debug)]
pub struct CaseFailure {
    /// Index of the original failing case.
    pub index: u64,
    /// The original case's disagreements.
    pub disagreements: Vec<String>,
    /// Replayable corpus document for the *minimized* case.
    pub minimized: Value,
}

/// Merged results of a campaign, in case order.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// The parameters the campaign ran with.
    pub opts: CampaignOpts,
    /// Per-case outcomes, index order.
    pub outcomes: Vec<CaseOutcome>,
    /// Minimized disagreements, index order (empty = conformant).
    pub failures: Vec<CaseFailure>,
}

/// Run one case and, if it disagrees, minimize it into a failure record.
fn run_indexed(seed: u64, index: u64) -> (CaseOutcome, Option<CaseFailure>) {
    let case = generate_case(seed, index);
    let outcome = run_case(&case);
    if outcome.disagreements.is_empty() {
        return (outcome, None);
    }
    // Shrink while *any* disagreement persists; the scenario stage is
    // part of the predicate so scenario-found disagreements survive.
    let minimized = minimize(&case, |c| !run_case(c).disagreements.is_empty());
    let min_outcome = run_case_with(&minimized, false);
    let failure = CaseFailure {
        index,
        disagreements: outcome.disagreements.clone(),
        minimized: corpus_value(&minimized, &min_outcome),
    };
    (outcome, Some(failure))
}

/// Run a campaign. The returned report (and its summary rendering) is a
/// pure function of `(seed, cases)` — `jobs` only changes wall-clock.
pub fn run_campaign(opts: &CampaignOpts) -> CampaignReport {
    let total = opts.cases as usize;
    let jobs = opts.jobs.max(1);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, (CaseOutcome, Option<CaseFailure>))>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= total {
                    break;
                }
                let result = run_indexed(opts.seed, idx as u64);
                if tx.send((idx, result)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<(CaseOutcome, Option<CaseFailure>)>> =
        (0..total).map(|_| None).collect();
    for (idx, result) in rx {
        slots[idx] = Some(result);
    }
    let mut outcomes = Vec::with_capacity(total);
    let mut failures = Vec::new();
    for slot in slots {
        let (outcome, failure) = slot.expect("every case reports exactly once");
        outcomes.push(outcome);
        failures.extend(failure);
    }
    CampaignReport {
        opts: *opts,
        outcomes,
        failures,
    }
}

impl CampaignReport {
    /// Did every case agree with the verifier?
    pub fn conformant(&self) -> bool {
        self.failures.is_empty()
    }

    /// Render the deterministic campaign summary.
    pub fn summary(&self) -> String {
        let mut verdicts: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut codes: BTreeMap<&str, u64> = BTreeMap::new();
        let mut witnesses = 0usize;
        let mut scenario_runs = 0u64;
        let mut inversions = 0u64;
        for o in &self.outcomes {
            *verdicts.entry(o.verdict.as_str()).or_default() += 1;
            for c in &o.codes {
                *codes.entry(c.as_str()).or_default() += 1;
            }
            witnesses += o.witnesses_checked;
            scenario_runs += u64::from(o.scenario_ran);
            inversions += o.cross_inversions;
        }
        let mut out = String::new();
        out.push_str("qvisor fuzz campaign\n");
        out.push_str("====================\n");
        out.push_str(&format!(
            "seed  : {} (0x{:x})\ncases : {}\n",
            self.opts.seed, self.opts.seed, self.opts.cases
        ));
        for verdict in [Verdict::Clean, Verdict::Warnings, Verdict::Errors] {
            out.push_str(&format!(
                "  {:<9}: {}\n",
                verdict.as_str(),
                verdicts.get(verdict.as_str()).copied().unwrap_or(0)
            ));
        }
        out.push_str("diagnostic codes (cases containing each):\n");
        if codes.is_empty() {
            out.push_str("  (none)\n");
        }
        for (code, count) in &codes {
            out.push_str(&format!("  {code:<18}: {count}\n"));
        }
        out.push_str(&format!("witnesses replayed      : {witnesses}\n"));
        out.push_str(&format!("scenario-oracle runs    : {scenario_runs}\n"));
        out.push_str(&format!("cross-level inversions  : {inversions}\n"));
        out.push_str(&format!(
            "disagreements           : {}\n",
            self.failures.len()
        ));
        for f in &self.failures {
            out.push_str(&format!("  case {}:\n", f.index));
            for d in &f.disagreements {
                out.push_str(&format!("    - {d}\n"));
            }
            out.push_str(&format!("    minimized: {}\n", f.minimized.to_compact()));
        }
        out.push_str(if self.conformant() {
            "result: AGREE (verifier and simulation agree on every case)\n"
        } else {
            "result: DISAGREE (see minimized cases above)\n"
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_are_byte_identical_at_any_jobs_level() {
        let base = CampaignOpts {
            seed: 11,
            cases: 24,
            jobs: 1,
        };
        let one = run_campaign(&base).summary();
        let four = run_campaign(&CampaignOpts { jobs: 4, ..base }).summary();
        assert_eq!(one, four);
    }

    #[test]
    fn a_short_default_seed_campaign_is_conformant() {
        let report = run_campaign(&CampaignOpts {
            seed: crate::DEFAULT_SEED,
            cases: 16,
            jobs: 2,
        });
        assert!(report.conformant(), "{}", report.summary());
        assert_eq!(report.outcomes.len(), 16);
        let summary = report.summary();
        assert!(summary.contains("result: AGREE"), "{summary}");
    }
}
