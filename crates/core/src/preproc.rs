//! QVISOR's data-plane pre-processor (§3.3).
//!
//! For each incoming packet: parse the tenant id and rank labels, look up
//! the tenant's transformation chain, rewrite the rank, and forward to the
//! hardware scheduler. The lookup is a dense array indexed by tenant id and
//! each chain is a few integer ops — the "line rate" budget.

use crate::synth::JointPolicy;
use crate::transform::TransformChain;
use qvisor_sim::{Packet, Rank, TenantId};

/// What to do with packets from tenants the joint policy doesn't know.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnknownTenantAction {
    /// Forward at the worst (largest) rank of the joint span: unknown
    /// traffic rides along at the lowest priority.
    BestEffort,
    /// Drop the packet.
    Drop,
}

/// Verdict for one processed packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Forward to the scheduler.
    Forward,
    /// Drop at the pre-processor.
    Drop,
}

/// Per-tenant pre-processor counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreprocTenantStats {
    /// Packets transformed.
    pub processed: u64,
}

/// The packet pre-processor: applies the synthesized transformation chains.
#[derive(Clone, Debug)]
pub struct PreProcessor {
    /// Dense chain table indexed by `TenantId::index()`.
    chains: Vec<Option<TransformChain>>,
    stats: Vec<PreprocTenantStats>,
    /// Rank assigned to unknown-tenant traffic under `BestEffort`.
    worst_rank: Rank,
    unknown_action: UnknownTenantAction,
    /// Packets from unknown tenants seen.
    pub unknown_seen: u64,
}

impl PreProcessor {
    /// Build the pre-processor table from a synthesized joint policy.
    pub fn new(joint: &JointPolicy, unknown_action: UnknownTenantAction) -> PreProcessor {
        let max_id = joint
            .chains()
            .map(|(t, _)| t.index())
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        let mut chains = vec![None; max_id];
        for (tenant, chain) in joint.chains() {
            chains[tenant.index()] = Some(chain.clone());
        }
        let stats = vec![PreprocTenantStats::default(); max_id];
        PreProcessor {
            chains,
            stats,
            // One past the joint span: strictly below every scheduled tenant.
            worst_rank: joint.output_span().max.saturating_add(1),
            unknown_action,
            unknown_seen: 0,
        }
    }

    /// Transform the rank of a raw rank value for `tenant` (pure lookup,
    /// used by tests and benches).
    pub fn transform(&self, tenant: TenantId, rank: Rank) -> Option<Rank> {
        self.chains
            .get(tenant.index())
            .and_then(|c| c.as_ref())
            .map(|c| c.apply(rank))
    }

    /// Process one packet in place: set `txf_rank` and return the verdict.
    ///
    /// Only payload packets are transformed; control traffic (ACKs) passes
    /// through at its existing (highest) priority.
    pub fn process(&mut self, p: &mut Packet) -> Verdict {
        if !p.is_payload() {
            return Verdict::Forward;
        }
        match self.chains.get(p.tenant.index()).and_then(|c| c.as_ref()) {
            Some(chain) => {
                p.txf_rank = chain.apply(p.rank);
                self.stats[p.tenant.index()].processed += 1;
                Verdict::Forward
            }
            None => {
                self.unknown_seen += 1;
                match self.unknown_action {
                    UnknownTenantAction::BestEffort => {
                        p.txf_rank = self.worst_rank;
                        Verdict::Forward
                    }
                    UnknownTenantAction::Drop => Verdict::Drop,
                }
            }
        }
    }

    /// Counters for `tenant` (zeros if never seen / not in policy).
    pub fn tenant_stats(&self, tenant: TenantId) -> PreprocTenantStats {
        self.stats.get(tenant.index()).copied().unwrap_or_default()
    }

    /// Replace the transformation table with a newly synthesized policy
    /// (runtime reconfiguration, §5 "optimizing configurations at
    /// runtime"). Statistics are preserved where tenant ids persist.
    pub fn reload(&mut self, joint: &JointPolicy) {
        let fresh = PreProcessor::new(joint, self.unknown_action);
        let mut stats = fresh.stats.clone();
        for (i, s) in self.stats.iter().enumerate() {
            if i < stats.len() {
                stats[i] = *s;
            }
        }
        self.chains = fresh.chains;
        self.worst_rank = fresh.worst_rank;
        self.stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::spec::{SynthConfig, TenantSpec};
    use crate::synth::synthesize;
    use qvisor_ranking::RankRange;
    use qvisor_sim::{FlowId, Nanos, NodeId, PacketKind};

    fn fig3_joint() -> JointPolicy {
        let specs = vec![
            TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(7, 9)).with_levels(3),
            TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(1, 3)).with_levels(2),
            TenantSpec::new(TenantId(3), "T3", "FQ", RankRange::new(3, 5)).with_levels(2),
        ];
        let policy = Policy::parse("T1 >> T2 + T3").unwrap();
        let config = SynthConfig {
            first_rank: 1,
            ..SynthConfig::default()
        };
        synthesize(&specs, &policy, config).unwrap()
    }

    fn pkt(tenant: u16, rank: Rank) -> Packet {
        Packet::data(
            FlowId(1),
            TenantId(tenant),
            0,
            1500,
            NodeId(0),
            NodeId(1),
            rank,
            Nanos::ZERO,
        )
    }

    #[test]
    fn fig3_packet_stream() {
        // The exact packet sequence of Fig. 3.
        let mut pre = PreProcessor::new(&fig3_joint(), UnknownTenantAction::BestEffort);
        let inputs = [(1u16, 7u64), (1, 8), (1, 9), (2, 1), (2, 3), (3, 3), (3, 5)];
        let expect = [1u64, 2, 3, 4, 6, 5, 7];
        for ((tenant, rank), want) in inputs.into_iter().zip(expect) {
            let mut p = pkt(tenant, rank);
            assert_eq!(pre.process(&mut p), Verdict::Forward);
            assert_eq!(p.txf_rank, want, "{tenant} rank {rank}");
        }
        assert_eq!(pre.tenant_stats(TenantId(1)).processed, 3);
        assert_eq!(pre.tenant_stats(TenantId(2)).processed, 2);
        assert_eq!(pre.tenant_stats(TenantId(3)).processed, 2);
    }

    #[test]
    fn unknown_tenant_best_effort_goes_last() {
        let mut pre = PreProcessor::new(&fig3_joint(), UnknownTenantAction::BestEffort);
        let mut p = pkt(42, 0);
        assert_eq!(pre.process(&mut p), Verdict::Forward);
        assert_eq!(p.txf_rank, 8, "one past the joint span [1,7]");
        assert_eq!(pre.unknown_seen, 1);
    }

    #[test]
    fn unknown_tenant_drop_policy() {
        let mut pre = PreProcessor::new(&fig3_joint(), UnknownTenantAction::Drop);
        let mut p = pkt(42, 0);
        assert_eq!(pre.process(&mut p), Verdict::Drop);
    }

    #[test]
    fn acks_bypass_transformation() {
        let mut pre = PreProcessor::new(&fig3_joint(), UnknownTenantAction::Drop);
        let data = pkt(1, 9);
        let mut ack = data.ack_for(64, Nanos::ZERO);
        assert_eq!(pre.process(&mut ack), Verdict::Forward);
        assert_eq!(ack.txf_rank, 0, "ACKs keep top priority");
        assert_eq!(ack.kind, PacketKind::Ack { acked_seq: 0 });
    }

    #[test]
    fn transform_lookup() {
        let pre = PreProcessor::new(&fig3_joint(), UnknownTenantAction::Drop);
        assert_eq!(pre.transform(TenantId(1), 8), Some(2));
        assert_eq!(pre.transform(TenantId(42), 8), None);
    }

    #[test]
    fn reload_swaps_chains_and_keeps_stats() {
        let mut pre = PreProcessor::new(&fig3_joint(), UnknownTenantAction::BestEffort);
        let mut p = pkt(1, 7);
        pre.process(&mut p);
        assert_eq!(p.txf_rank, 1);

        // Re-synthesize with the priorities flipped: T2+T3 >> T1.
        let specs = vec![
            TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(7, 9)).with_levels(3),
            TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(1, 3)).with_levels(2),
            TenantSpec::new(TenantId(3), "T3", "FQ", RankRange::new(3, 5)).with_levels(2),
        ];
        let policy = Policy::parse("T2 + T3 >> T1").unwrap();
        let joint = synthesize(&specs, &policy, SynthConfig::default()).unwrap();
        pre.reload(&joint);

        let mut p2 = pkt(1, 7);
        pre.process(&mut p2);
        assert!(p2.txf_rank > 3, "T1 now ranks below the share group");
        assert_eq!(pre.tenant_stats(TenantId(1)).processed, 2, "stats kept");
    }
}
