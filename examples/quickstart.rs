//! Quickstart: the paper's Fig. 3 worked example, end to end.
//!
//! Three tenants rank their traffic with pFabric, EDF, and Fair Queueing;
//! the operator wants `T1 >> T2 + T3`. QVISOR synthesizes per-tenant rank
//! transformations, the pre-processor rewrites packet ranks at line rate,
//! and a PIFO emits the packets in the joint order.
//!
//! Along the way a [`Tracer`] flight-records every packet's lifecycle
//! (rank computed, transform, enqueue/dequeue, delivery) and exports it as
//! Chrome trace-event JSON — load `quickstart_trace.json` at
//! <https://ui.perfetto.dev> to see Fig. 3 as a timeline.
//!
//! Run with: `cargo run --example quickstart`

use qvisor::core::{
    analyze, synthesize, Policy, PreProcessor, SynthConfig, TenantSpec, UnknownTenantAction,
};
use qvisor::ranking::RankRange;
use qvisor::scheduler::{Capacity, InstrumentedQueue, PacketQueue, PifoQueue};
use qvisor::sim::{FlowId, Nanos, NodeId, Packet, TenantId};
use qvisor::telemetry::{perfetto, Telemetry, TraceConfig, TraceKind, TraceRecord, Tracer};

fn main() {
    // 1. Tenant specifications (§3.1): traffic subset + declared ranks.
    let specs = vec![
        TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(7, 9)).with_levels(3),
        TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(1, 3)).with_levels(2),
        TenantSpec::new(TenantId(3), "T3", "FQ", RankRange::new(3, 5)).with_levels(2),
    ];

    // 2. Operator policy: T1 isolated on top; T2 and T3 share.
    let policy = Policy::parse("T1 >> T2 + T3").expect("valid policy");
    println!("operator policy : {policy}");

    // 3. Synthesize the joint scheduling function (§3.2).
    let config = SynthConfig {
        first_rank: 1, // the paper's example numbers ranks from 1
        ..SynthConfig::default()
    };
    let joint = synthesize(&specs, &policy, config).expect("synthesis");
    for spec in &specs {
        let chain = joint.chain(spec.id).expect("scheduled tenant");
        println!("  {:<3} {:<8} chain: {chain}", spec.name, spec.algorithm);
    }

    // 4. Static analysis (§2, Idea 2): verify the guarantees.
    let report = analyze(&joint);
    println!("\n{report}");

    // 5. Pre-process the exact packet sequence of Fig. 3 and schedule it
    //    on a PIFO, flight-recording every packet's lifecycle. Packet i
    //    arrives at i µs; the PIFO drains one packet per µs afterwards.
    let tracer = Tracer::enabled(TraceConfig::default());
    let mut pre = PreProcessor::new(&joint, UnknownTenantAction::BestEffort);
    let arrivals: [(u16, u64); 7] = [(3, 5), (2, 3), (1, 9), (3, 3), (2, 1), (1, 8), (1, 7)];
    let mut pifo = InstrumentedQueue::with_tracer(
        PifoQueue::new(Capacity::UNBOUNDED),
        &Telemetry::disabled(),
        &tracer,
        "fig3.pifo",
    );
    println!("pre-processor:");
    for (i, (tenant, rank)) in arrivals.into_iter().enumerate() {
        let now = Nanos::from_micros(i as u64);
        let mut p = Packet::data(
            FlowId(i as u64),
            TenantId(tenant),
            i as u64,
            1500,
            NodeId(0),
            NodeId(1),
            rank,
            now,
        );
        tracer.record(TraceRecord::new(
            now,
            p.flow.0,
            p.seq,
            tenant,
            TraceKind::RankComputed { rank },
        ));
        pre.process(&mut p);
        tracer.record(TraceRecord::new(
            now,
            p.flow.0,
            p.seq,
            tenant,
            TraceKind::Transform {
                pre: rank,
                post: p.txf_rank,
            },
        ));
        println!("  T{tenant} rank {rank} -> {}", p.txf_rank);
        pifo.enqueue(p, now);
    }

    print!("PIFO output     : ");
    let mut slot = arrivals.len() as u64;
    while let Some(p) = pifo.dequeue(Nanos::from_micros(slot)) {
        let now = Nanos::from_micros(slot + 1);
        tracer.record(TraceRecord::new(
            now,
            p.flow.0,
            p.seq,
            p.tenant.0,
            TraceKind::Deliver {
                latency_ns: now.as_nanos() - p.flow.0 * 1_000,
            },
        ));
        print!("T{}({}) ", p.tenant.0, p.txf_rank);
        slot += 1;
    }
    println!();
    println!("\nT1's packets lead; T2 and T3 interleave — the Fig. 3 outcome.");

    // 6. Export the flight recording for Perfetto.
    let chrome = perfetto::export_chrome(&tracer.snapshot());
    std::fs::write("quickstart_trace.json", &chrome).expect("write quickstart_trace.json");
    println!("wrote quickstart_trace.json — open it at https://ui.perfetto.dev");
}
