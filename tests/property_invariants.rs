//! Randomized property tests on the core data structures and the
//! invariants the whole system rests on.
//!
//! Each property is exercised over many cases drawn from a seeded
//! [`SimRng`], so failures reproduce exactly; on failure the case index
//! and inputs are in the panic message.

use qvisor::core::{synthesize, Policy, RankTransform, SynthConfig, TenantSpec, TransformChain};
use qvisor::ranking::RankRange;
use qvisor::scheduler::{
    AifoQueue, CalendarQueue, Capacity, Enqueue, FifoQueue, InstrumentedQueue, PacketQueue,
    PathStep, PifoQueue, PifoTree, QueueMapper, SpPifoMapper, StrictPriorityBank, TreePath,
    TreeShape,
};
use qvisor::sim::{EventQueue, FlowId, Nanos, NodeId, Packet, SimRng, TenantId};
use qvisor::telemetry::Telemetry;
use std::collections::BTreeMap;

const CASES: u64 = 64;

fn packet(seq: u64, rank: u64, size: u32) -> Packet {
    let mut p = Packet::data(
        FlowId(1),
        TenantId(0),
        seq,
        size,
        NodeId(0),
        NodeId(1),
        rank,
        Nanos::ZERO,
    );
    p.txf_rank = rank;
    p
}

/// `len` uniform draws below `bound`.
fn rand_vec(rng: &mut SimRng, len: u64, bound: u64) -> Vec<u64> {
    (0..len).map(|_| rng.below(bound)).collect()
}

/// Uniform in `[lo, hi)`.
fn between(rng: &mut SimRng, lo: u64, hi: u64) -> u64 {
    lo + rng.below(hi - lo)
}

/// A PIFO must always emit packets in non-decreasing rank order, whatever
/// the arrival order and capacity pressure.
#[test]
fn pifo_dequeue_order_is_sorted() {
    let mut rng = SimRng::seed_from(0xA1);
    for case in 0..CASES {
        let len = between(&mut rng, 1, 200);
        let ranks = rand_vec(&mut rng, len, 1_000);
        let cap_pkts = between(&mut rng, 1, 64);
        let mut q = PifoQueue::new(Capacity::packets(cap_pkts, 100));
        for (i, &r) in ranks.iter().enumerate() {
            q.enqueue(packet(i as u64, r, 100), Nanos::ZERO);
        }
        let out: Vec<u64> = std::iter::from_fn(|| q.dequeue(Nanos::ZERO))
            .map(|p| p.txf_rank)
            .collect();
        assert!(
            out.windows(2).all(|w| w[0] <= w[1]),
            "case {case}: unsorted {out:?}"
        );
        assert!(out.len() <= cap_pkts as usize, "case {case}");
    }
}

/// PIFO conservation: every offered packet is either still queued,
/// dequeued, or reported dropped — none vanish, none duplicate.
#[test]
fn pifo_conserves_packets() {
    let mut rng = SimRng::seed_from(0xA2);
    for case in 0..CASES {
        let n = between(&mut rng, 1, 300);
        let mut q = PifoQueue::new(Capacity::packets(16, 100));
        let mut offered = 0u64;
        let mut dropped = 0u64;
        let mut dequeued = 0u64;
        for i in 0..n {
            let rank = rng.below(500);
            offered += 1;
            dropped += q.enqueue(packet(i, rank, 100), Nanos::ZERO).dropped().len() as u64;
            if rng.below(2) == 1 && q.dequeue(Nanos::ZERO).is_some() {
                dequeued += 1;
            }
        }
        assert_eq!(
            offered,
            dropped + dequeued + q.len() as u64,
            "case {case}: packets not conserved"
        );
    }
}

/// FIFO byte accounting never drifts.
#[test]
fn fifo_byte_accounting() {
    let mut rng = SimRng::seed_from(0xA3);
    for case in 0..CASES {
        let len = between(&mut rng, 1, 100);
        let sizes: Vec<u32> = (0..len)
            .map(|_| between(&mut rng, 1, 2_000) as u32)
            .collect();
        let mut q = FifoQueue::new(Capacity::bytes(10_000));
        let mut expect = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            if let Enqueue::Accepted = q.enqueue(packet(i as u64, 0, s), Nanos::ZERO) {
                expect += s as u64;
            }
            if i % 3 == 0 {
                if let Some(p) = q.dequeue(Nanos::ZERO) {
                    expect -= p.size as u64;
                }
            }
            assert_eq!(q.bytes(), expect, "case {case} after packet {i}");
        }
    }
}

/// SP-PIFO bounds stay sorted under arbitrary rank streams.
#[test]
fn sp_pifo_bounds_sorted() {
    let mut rng = SimRng::seed_from(0xA4);
    for case in 0..CASES {
        let len = between(&mut rng, 1, 500);
        let ranks = rand_vec(&mut rng, len, 100_000);
        let queues = between(&mut rng, 2, 12) as usize;
        let mut m = SpPifoMapper::new(queues);
        for r in ranks {
            let q = m.map(r);
            assert!(q < queues, "case {case}");
            let b = m.bounds();
            assert!(
                b.windows(2).all(|w| w[0] <= w[1]),
                "case {case}: bounds {b:?}"
            );
        }
    }
}

/// Every transform is monotone: it can never invert the relative order of
/// two ranks of the same tenant (intra-tenant scheduling must survive the
/// pre-processor, §3.2).
#[test]
fn transforms_are_monotone() {
    let mut rng = SimRng::seed_from(0xA5);
    for case in 0..CASES * 4 {
        let a = rng.below(1_000_000);
        let b = rng.below(1_000_000);
        let min = rng.below(1_000);
        let width = between(&mut rng, 1, 100_000);
        let levels = between(&mut rng, 1, 512);
        let every = between(&mut rng, 1, 16);
        let offset = rng.below(1_000);
        let ops = vec![
            RankTransform::Normalize {
                input: RankRange::new(min, min + width),
                levels,
            },
            RankTransform::Stride {
                every,
                width: 1,
                offset: offset % every,
            },
            RankTransform::Shift { offset },
        ];
        let chain = TransformChain::from_ops(ops);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(
            chain.apply(lo) <= chain.apply(hi),
            "case {case}: chain inverts {lo} vs {hi}"
        );
    }
}

/// Chain output ranges are exact for monotone chains: applying the chain
/// to anything in the declared input range lands within the computed
/// output range.
#[test]
fn chain_output_range_is_sound() {
    let mut rng = SimRng::seed_from(0xA6);
    for case in 0..CASES * 4 {
        let min = rng.below(1_000);
        let width = between(&mut rng, 1, 10_000);
        let levels = between(&mut rng, 1, 64);
        let shift = rng.below(10_000);
        let sample = rng.below(20_000);
        let input = RankRange::new(min, min + width);
        let chain = TransformChain::from_ops(vec![
            RankTransform::Normalize { input, levels },
            RankTransform::Shift { offset: shift },
        ]);
        let out = chain.output_range(input);
        let x = input.clamp(sample);
        let y = chain.apply(x);
        assert!(out.contains(y), "case {case}: {y} outside {out}");
    }
}

/// The event queue pops in time order with FIFO tie-breaks, for any
/// schedule of pushes.
#[test]
fn event_queue_total_order() {
    let mut rng = SimRng::seed_from(0xA7);
    for case in 0..CASES {
        let len = between(&mut rng, 1, 200);
        let times = rand_vec(&mut rng, len, 1_000);
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Nanos(t), i);
        }
        let mut last: Option<(Nanos, usize)> = None;
        while let Some((at, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                assert!(at >= lt, "case {case}");
                if at == lt {
                    assert!(idx > lidx, "case {case}: FIFO tie-break violated");
                }
            }
            assert_eq!(Nanos(times[idx]), at, "case {case}");
            last = Some((at, idx));
        }
    }
}

/// A calendar queue with monotone (virtual-clock) arrivals dequeues in
/// exact rank order, however enqueues and dequeues interleave.
#[test]
fn calendar_exact_for_monotone_ranks() {
    let mut rng = SimRng::seed_from(0xA8);
    for case in 0..CASES {
        let len = between(&mut rng, 1, 300);
        let increments = rand_vec(&mut rng, len, 100);
        let buckets = between(&mut rng, 2, 32) as usize;
        let width = between(&mut rng, 1, 200);
        let drain_every = between(&mut rng, 1, 6) as usize;
        let mut q = CalendarQueue::new(buckets, width, Capacity::UNBOUNDED);
        let mut rank = 0u64;
        let mut expect = std::collections::VecDeque::new();
        for (i, inc) in increments.iter().enumerate() {
            rank += inc;
            q.enqueue(packet(i as u64, rank, 100), Nanos::ZERO);
            expect.push_back(rank);
            if i % drain_every == 0 {
                let got = q.dequeue(Nanos::ZERO).unwrap().txf_rank;
                assert_eq!(got, expect.pop_front().unwrap(), "case {case}");
            }
        }
        while let Some(p) = q.dequeue(Nanos::ZERO) {
            assert_eq!(p.txf_rank, expect.pop_front().unwrap(), "case {case}");
        }
        assert!(expect.is_empty(), "case {case}");
    }
}

/// PIFO trees conserve packets and never emit more than admitted.
#[test]
fn pifo_tree_conserves_packets() {
    let mut rng = SimRng::seed_from(0xA9);
    for case in 0..CASES {
        let n = between(&mut rng, 1, 200);
        let shape = TreeShape::Internal(vec![
            TreeShape::Leaf,
            TreeShape::Leaf,
            TreeShape::Leaf,
            TreeShape::Leaf,
        ]);
        let mut vt = [0u64; 4];
        let classifier = move |p: &qvisor::sim::Packet| {
            let class = (p.flow.0 % 4) as usize;
            vt[class] += 1;
            TreePath {
                steps: vec![PathStep {
                    child: class,
                    rank: vt[class],
                }],
                leaf_rank: p.txf_rank,
            }
        };
        let mut tree = PifoTree::new(&shape, classifier, Capacity::packets(32, 100));
        let mut admitted = 0u64;
        let mut evicted = 0u64;
        let mut dequeued = 0u64;
        for i in 0..n {
            let rank = rng.below(100);
            let class = rng.below(4);
            let drain = rng.below(2) == 1;
            let mut p = packet(i, rank, 100);
            p.flow = qvisor::sim::FlowId(class);
            let outcome = tree.enqueue(p, Nanos::ZERO);
            if outcome.accepted() {
                admitted += 1;
            }
            // Priority drop may evict residents to admit the arrival; they
            // were admitted once but will never dequeue.
            evicted += outcome.dropped().iter().filter(|d| d.seq != i).count() as u64;
            if drain && tree.dequeue(Nanos::ZERO).is_some() {
                dequeued += 1;
            }
        }
        while tree.dequeue(Nanos::ZERO).is_some() {
            dequeued += 1;
        }
        assert_eq!(admitted, dequeued + evicted, "case {case}");
        assert_eq!(tree.len(), 0, "case {case}");
        assert_eq!(tree.bytes(), 0, "case {case}");
    }
}

/// A PIFO is *exactly* a stable sorted vector: for any interleaving of
/// enqueues and dequeues (unbounded capacity, so admission never differs),
/// the dequeue stream equals the model's `(rank, arrival)` minimum — not
/// just nondecreasing, but the identical packet every time.
#[test]
fn pifo_matches_stable_sorted_vec_model() {
    let mut rng = SimRng::seed_from(0xB1);
    for case in 0..CASES {
        let n = between(&mut rng, 1, 300);
        let mut q = PifoQueue::new(Capacity::UNBOUNDED);
        // Model: Vec of (rank, arrival-seq), popped by minimum.
        let mut model: Vec<(u64, u64)> = Vec::new();
        for i in 0..n {
            let rank = rng.below(50); // small domain => many rank ties
            q.enqueue(packet(i, rank, 100), Nanos::ZERO);
            model.push((rank, i));
            if rng.below(3) == 0 {
                if let Some(p) = q.dequeue(Nanos::ZERO) {
                    let min = *model.iter().min().unwrap();
                    assert_eq!((p.txf_rank, p.seq), min, "case {case}");
                    model.retain(|&e| e != min);
                }
            }
        }
        // Final drain: with no further arrivals the stream must be exactly
        // the model's sorted order, hence nondecreasing in rank.
        let mut drain: Vec<u64> = Vec::new();
        while let Some(p) = q.dequeue(Nanos::ZERO) {
            let min = *model.iter().min().unwrap();
            assert_eq!((p.txf_rank, p.seq), min, "case {case}");
            model.retain(|&e| e != min);
            drain.push(p.txf_rank);
        }
        assert!(model.is_empty(), "case {case}: model retained packets");
        assert!(
            drain.windows(2).all(|w| w[0] <= w[1]),
            "case {case}: unsorted drain {drain:?}"
        );
    }
}

/// Independent rank-inversion oracle: mirrors queue residency in a
/// multiset and recounts inversions exactly the way the exact-PIFO
/// definition states — a dequeue is an inversion iff some still-queued
/// packet has a strictly lower rank.
#[derive(Default)]
struct InversionOracle {
    resident: BTreeMap<u64, u64>,
    inversions: u64,
    dequeues: u64,
}

impl InversionOracle {
    fn add(&mut self, rank: u64) {
        *self.resident.entry(rank).or_insert(0) += 1;
    }

    fn remove(&mut self, rank: u64) {
        match self.resident.get_mut(&rank) {
            Some(1) => {
                self.resident.remove(&rank);
            }
            Some(n) => *n -= 1,
            None => panic!("oracle desync: rank {rank} not resident"),
        }
    }

    fn on_enqueue(&mut self, rank: u64, outcome: Enqueue) {
        match outcome {
            Enqueue::Accepted => self.add(rank),
            Enqueue::AcceptedDropped(victims) => {
                self.add(rank);
                for v in victims {
                    self.remove(v.txf_rank);
                }
            }
            Enqueue::Rejected(_) => {}
        }
    }

    fn on_dequeue(&mut self, rank: u64) {
        self.remove(rank);
        self.dequeues += 1;
        if self
            .resident
            .first_key_value()
            .is_some_and(|(&r, _)| r < rank)
        {
            self.inversions += 1;
        }
    }
}

/// Drive `queue` (wrapped in an [`InstrumentedQueue`]) and the oracle with
/// the same trace; return (instrumented inversions, oracle inversions,
/// dequeues).
fn inversion_trace<Q: PacketQueue>(queue: Q, rng: &mut SimRng, n: u64) -> (u64, u64, u64) {
    let telemetry = Telemetry::enabled();
    let mut q = InstrumentedQueue::new(queue, &telemetry, "prop");
    let mut oracle = InversionOracle::default();
    for i in 0..n {
        let rank = rng.below(10_000);
        let outcome = q.enqueue(packet(i, rank, 100), Nanos::ZERO);
        oracle.on_enqueue(rank, outcome);
        if rng.below(2) == 0 {
            if let Some(p) = q.dequeue(Nanos(i)) {
                oracle.on_dequeue(p.txf_rank);
            }
        }
    }
    while let Some(p) = q.dequeue(Nanos(n)) {
        oracle.on_dequeue(p.txf_rank);
    }
    (q.inversion_count(), oracle.inversions, oracle.dequeues)
}

/// SP-PIFO's reported inversion count must equal the independent
/// exact-PIFO-mirror oracle on the same trace (and can never exceed the
/// trivial bound of one per dequeue); the exact PIFO itself reports zero.
#[test]
fn sp_pifo_inversions_match_exact_mirror_bound() {
    let mut rng = SimRng::seed_from(0xB2);
    for case in 0..CASES {
        let n = between(&mut rng, 1, 400);
        let queues = between(&mut rng, 2, 12) as usize;
        let cap = Capacity::packets(between(&mut rng, 8, 64), 100);
        let (reported, oracle, dequeues) = inversion_trace(
            StrictPriorityBank::new(SpPifoMapper::new(queues), cap),
            &mut rng,
            n,
        );
        assert_eq!(reported, oracle, "case {case}: mirror disagrees");
        assert!(reported <= dequeues, "case {case}: bound exceeded");

        let (pifo_reported, pifo_oracle, _) = inversion_trace(PifoQueue::new(cap), &mut rng, n);
        assert_eq!(pifo_reported, 0, "case {case}: exact PIFO inverted");
        assert_eq!(pifo_oracle, 0, "case {case}: oracle saw PIFO invert");
        assert!(
            pifo_reported <= reported || reported == 0,
            "case {case}: approximation beat the exact mirror's floor"
        );
    }
}

/// AIFO admits-or-drops but never reorders; its inversion count must also
/// match the exact mirror oracle on every trace.
#[test]
fn aifo_inversions_match_exact_mirror_bound() {
    let mut rng = SimRng::seed_from(0xB3);
    for case in 0..CASES {
        let n = between(&mut rng, 1, 400);
        let cap = Capacity::packets(between(&mut rng, 8, 64), 100);
        let window = between(&mut rng, 4, 128) as usize;
        let burst = rng.below(90) as f64 / 100.0;
        let (reported, oracle, dequeues) =
            inversion_trace(AifoQueue::new(cap, window, burst), &mut rng, n);
        assert_eq!(reported, oracle, "case {case}: mirror disagrees");
        assert!(reported <= dequeues, "case {case}: bound exceeded");
    }
}

/// Policy parsing round-trips through Display for arbitrary shapes.
#[test]
fn policy_display_roundtrip() {
    let mut rng = SimRng::seed_from(0xAA);
    for case in 0..CASES {
        // Build a policy string from a random shape: levels of groups of
        // weighted tenants with unique names.
        let mut name = 0usize;
        let n_levels = between(&mut rng, 1, 4);
        let levels: Vec<String> = (0..n_levels)
            .map(|_| {
                let n_groups = between(&mut rng, 1, 4);
                let gs: Vec<String> = (0..n_groups)
                    .map(|_| {
                        name += 1;
                        let w = between(&mut rng, 1, 5);
                        if w == 1 {
                            format!("t{name}")
                        } else {
                            format!("t{name}:{w}")
                        }
                    })
                    .collect();
                gs.join(" + ")
            })
            .collect();
        let text = levels.join(" >> ");
        let p = Policy::parse(&text).unwrap();
        assert_eq!(p.to_string(), text, "case {case}");
        let p2 = Policy::parse(&p.to_string()).unwrap();
        assert_eq!(p, p2, "case {case}");
    }
}

/// Synthesis invariant: for any number of strictly-stacked tenants with
/// random ranges, adjacent bands never overlap and every tenant's output
/// stays inside the joint span.
#[test]
fn strict_synthesis_always_isolates() {
    let mut rng = SimRng::seed_from(0xAB);
    for case in 0..CASES {
        let n_tenants = between(&mut rng, 1, 6);
        let ranges: Vec<(u64, u64)> = (0..n_tenants)
            .map(|_| (rng.below(10_000), between(&mut rng, 1, 100_000)))
            .collect();
        let default_levels = between(&mut rng, 1, 64);
        let specs: Vec<TenantSpec> = ranges
            .iter()
            .enumerate()
            .map(|(i, &(min, width))| {
                TenantSpec::new(
                    TenantId(i as u16 + 1),
                    format!("T{}", i + 1),
                    "alg",
                    RankRange::new(min, min + width),
                )
            })
            .collect();
        let text = specs
            .iter()
            .map(|s| s.name.clone())
            .collect::<Vec<_>>()
            .join(" >> ");
        let policy = Policy::parse(&text).unwrap();
        let config = SynthConfig {
            default_levels,
            ..SynthConfig::default()
        };
        let joint = synthesize(&specs, &policy, config).unwrap();
        let span = joint.output_span();
        let mut prev_max: Option<u64> = None;
        for spec in &specs {
            let out = joint.chain(spec.id).unwrap().output_range(spec.range);
            assert!(
                span.contains(out.min) && span.contains(out.max),
                "case {case}"
            );
            if let Some(pm) = prev_max {
                assert!(pm < out.min, "case {case}: bands overlap: {pm} vs {out}");
            }
            prev_max = Some(out.max);
        }
        assert!(
            qvisor::core::analyze(&joint).all_guarantees_hold(),
            "case {case}"
        );
    }
}
