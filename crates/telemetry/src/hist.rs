//! Log-linear (HDR-style) histogram over `u64` values.
//!
//! Values below 2^SUB_BITS get exact unit buckets; above that, each
//! power-of-two range is split into 2^SUB_BITS linear sub-buckets, so the
//! relative quantile error is bounded by `2^-SUB_BITS` (~3.1%) and the
//! absolute error by one bucket width. Compared with the coarse
//! `qvisor_sim::Log2Histogram` the monitor uses on the data path, this
//! trades a fixed ~15 KB table for per-bucket resolution good enough to
//! report latency percentiles.

/// Sub-bucket resolution: each power-of-two range has `2^SUB_BITS` buckets.
pub const SUB_BITS: u32 = 5;
const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count for the full `u64` range: unit buckets below
/// `2^SUB_BITS`, then `SUBS` sub-buckets for each exponent up to 63.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUBS;

/// A log-bucketed histogram with bounded relative error.
#[derive(Clone)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.total)
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

/// One occupied bucket: the closed value range `[lo, hi]` and its count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bucket {
    /// Smallest value mapping to this bucket.
    pub lo: u64,
    /// Largest value mapping to this bucket.
    pub hi: u64,
    /// Recorded values in the range.
    pub count: u64,
}

fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = ((v >> (exp - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    ((exp - SUB_BITS + 1) as usize) * SUBS + sub
}

/// The closed `[lo, hi]` range of values mapping to bucket `index`.
fn bucket_range(index: usize) -> (u64, u64) {
    if index < SUBS {
        return (index as u64, index as u64);
    }
    let block = (index / SUBS) as u32;
    let sub = (index % SUBS) as u64;
    let exp = block + SUB_BITS - 1;
    let width = 1u64 << (exp - SUB_BITS);
    let lo = (1u64 << exp) + sub * width;
    (lo, lo + (width - 1))
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: vec![0u64; BUCKETS].into_boxed_slice().try_into().unwrap(),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact smallest recorded value (`None` if empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Exact largest recorded value (`None` if empty).
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Exact arithmetic mean (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// Nearest-rank `p`-quantile estimate (`p` in `[0, 1]`; `None` if
    /// empty). Returns the upper bound of the bucket holding the target
    /// rank, clamped to the exact observed maximum — so the estimate is
    /// never below the true quantile and overshoots by at most one bucket
    /// width.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = ((p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(bucket_range(i).1.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Width of the bucket that `v` falls in (the quantile error bound at
    /// that magnitude).
    pub fn bucket_width(v: u64) -> u64 {
        let (lo, hi) = bucket_range(bucket_index(v));
        hi - lo + 1
    }

    /// Occupied buckets in ascending value order.
    pub fn buckets(&self) -> Vec<Bucket> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_range(i);
                Bucket { lo, hi, count: c }
            })
            .collect()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        for b in h.buckets() {
            assert_eq!(b.lo, b.hi, "unit bucket expected below 2^SUB_BITS");
            assert_eq!(b.count, 1);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(31));
    }

    #[test]
    fn bucket_ranges_partition_the_u64_line() {
        // Every value maps into a bucket whose range contains it, and
        // consecutive buckets tile without gaps or overlap.
        let mut prev_hi: Option<u64> = None;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert!(lo <= hi);
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1, "gap/overlap at bucket {i}");
            }
            prev_hi = Some(hi);
            if hi == u64::MAX {
                break;
            }
        }
        for v in [0u64, 1, 31, 32, 33, 1000, 1 << 20, u64::MAX / 3, u64::MAX] {
            let (lo, hi) = bucket_range(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut h = LogHistogram::new();
        for v in [10u64, 20, 30, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(1000));
        assert!((h.mean().unwrap() - 265.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_error_is_bounded_by_bucket_width() {
        // Deterministic pseudo-random sample with a heavy tail; compare
        // against the exact sorted quantiles.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let values: Vec<u64> = (0..50_000).map(|_| next() % 10_000_000).collect();
        let mut h = LogHistogram::new();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &v in &values {
            h.record(v);
        }
        for p in [0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((p * sorted.len() as f64).ceil() as usize).max(1) - 1;
            let exact = sorted[rank];
            let est = h.quantile(p).unwrap();
            let width = LogHistogram::bucket_width(exact);
            assert!(
                est >= exact && est - exact <= width,
                "p={p}: est {est} vs exact {exact}, width {width}"
            );
        }
    }

    #[test]
    fn prop_quantile_lands_in_true_quantiles_bucket() {
        // Property: for any input stream, the quantile estimate falls
        // within the bounds of the bucket that contains the true
        // (nearest-rank) quantile. Exercised over many randomized streams
        // spanning dense small values, wide uniforms, exponential tails,
        // and power-of-two spikes.
        use qvisor_sim::rng::SimRng;
        let root = SimRng::seed_from(0x5eed_0123);
        for case in 0..48u64 {
            let mut rng = root.derive(case);
            let n = 1 + rng.below(3_000) as usize;
            let values: Vec<u64> = (0..n)
                .map(|_| match case % 4 {
                    0 => rng.below(100),
                    1 => rng.below(1_000_000_000_000),
                    2 => rng.exponential(50_000.0) as u64,
                    _ => 1u64 << rng.below(50),
                })
                .collect();
            let mut h = LogHistogram::new();
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for &v in &values {
                h.record(v);
            }
            for p in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
                let rank = ((p * n as f64).ceil() as usize).max(1) - 1;
                let exact = sorted[rank];
                let (lo, hi) = bucket_range(bucket_index(exact));
                let est = h.quantile(p).unwrap();
                assert!(
                    est >= lo && est <= hi,
                    "case {case} n {n} p={p}: estimate {est} outside \
                     [{lo}, {hi}], the bucket of true quantile {exact}"
                );
                assert!(est >= exact, "estimate must never undershoot");
            }
        }
    }

    #[test]
    fn quantile_never_exceeds_observed_max() {
        let mut h = LogHistogram::new();
        h.record(1_000_003);
        assert_eq!(h.quantile(1.0), Some(1_000_003));
        assert_eq!(h.quantile(0.5), Some(1_000_003));
    }

    #[test]
    fn merge_matches_sequential() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for v in 0..1000u64 {
            let x = v * v % 70_001;
            whole.record(x);
            if v % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.quantile(0.5), whole.quantile(0.5));
        assert_eq!(a.buckets(), whole.buckets());
    }

    #[test]
    fn clear_resets() {
        let mut h = LogHistogram::new();
        h.record(7);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
    }
}
