//! The chain registry: immutable, versioned snapshots of the deployed
//! transform chains behind an atomic pointer swap.
//!
//! The control thread is the only writer; every committed reconfiguration
//! builds a fresh [`ChainSnapshot`], serialises it once, and swaps it into
//! the shared [`SnapshotCell`]. Reader sessions clone the `Arc` out of the
//! cell — a pointer copy under a short mutex, never a data copy and never
//! a wait on resynthesis — so `get-chain`/`status`/`snapshot` requests are
//! served from a consistent world even while a new joint policy is being
//! synthesized.
//!
//! Every snapshot carries an FNV-1a fingerprint of its canonical JSON.
//! Clients (and the `serve_load` harness) recompute the fingerprint from
//! the bytes they received: a mismatch would prove a torn read.

use std::sync::{Arc, Mutex};

use qvisor_core::{JointPolicy, TenantSpec};
use qvisor_sim::json::Value;

/// One tenant's deployed transform chain, as published to clients.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainEntry {
    /// Tenant identifier carried in packet labels.
    pub id: u16,
    /// Name used in the policy string.
    pub name: String,
    /// Declared scheduling algorithm.
    pub algorithm: String,
    /// Human-readable transform chain (`normalize ∘ stride ∘ shift …`).
    pub chain: String,
    /// Smallest output rank the chain can produce for declared inputs.
    pub output_min: u64,
    /// Largest output rank the chain can produce for declared inputs.
    pub output_max: u64,
}

impl ChainEntry {
    fn to_value(&self) -> Value {
        Value::object()
            .set("id", u64::from(self.id))
            .set("name", self.name.as_str())
            .set("algorithm", self.algorithm.as_str())
            .set("chain", self.chain.as_str())
            .set("output_min", self.output_min)
            .set("output_max", self.output_max)
    }
}

/// An immutable snapshot of the control plane's published state.
///
/// `canonical` is the compact JSON serialisation (fingerprint included)
/// that every reader hands out; byte-comparing two snapshots is the
/// daemon's replay-determinism check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainSnapshot {
    /// Transform-table version from [`RuntimeAdapter::transform_version`].
    ///
    /// [`RuntimeAdapter::transform_version`]: qvisor_core::RuntimeAdapter::transform_version
    pub version: u64,
    /// The operator policy projected onto the live tenant set (empty
    /// string when no tenant is live).
    pub policy: String,
    /// Names of live tenants, in tenant-universe order.
    pub live: Vec<String>,
    /// Number of accepted mutations in the log that produced this state.
    pub accepted: u64,
    /// Published chains, one per scheduled live tenant.
    pub chains: Vec<ChainEntry>,
    /// FNV-1a 64 fingerprint of the canonical JSON minus this field,
    /// rendered as 16 lowercase hex digits.
    pub fingerprint: String,
    /// Compact canonical JSON of the full snapshot (fingerprint included).
    pub canonical: String,
}

/// FNV-1a 64-bit hash; tiny, dependency-free, and stable across runs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ChainSnapshot {
    /// The initial (version-1, nothing deployed) snapshot.
    pub fn empty() -> ChainSnapshot {
        ChainSnapshot::build(1, String::new(), Vec::new(), 0, Vec::new())
    }

    /// Assemble a snapshot: computes the fingerprint over the canonical
    /// JSON without the fingerprint field, then freezes the canonical
    /// serialisation with it included.
    pub fn build(
        version: u64,
        policy: String,
        live: Vec<String>,
        accepted: u64,
        chains: Vec<ChainEntry>,
    ) -> ChainSnapshot {
        let mut snap = ChainSnapshot {
            version,
            policy,
            live,
            accepted,
            chains,
            fingerprint: String::new(),
            canonical: String::new(),
        };
        let unfingerprinted = snap.value_with(None).to_compact();
        snap.fingerprint = format!("{:016x}", fnv1a(unfingerprinted.as_bytes()));
        snap.canonical = snap.value_with(Some(&snap.fingerprint)).to_compact();
        snap
    }

    /// Publishable chain entries for the scheduled live tenants of `joint`,
    /// in `specs` order (`specs` must be the synthesized tenant specs).
    pub fn entries_from(joint: &JointPolicy, specs: &[TenantSpec]) -> Vec<ChainEntry> {
        specs
            .iter()
            .filter_map(|spec| {
                let chain = joint.chain(spec.id)?;
                let out = chain.output_range(spec.range);
                Some(ChainEntry {
                    id: spec.id.0,
                    name: spec.name.clone(),
                    algorithm: spec.algorithm.clone(),
                    chain: chain.to_string(),
                    output_min: out.min,
                    output_max: out.max,
                })
            })
            .collect()
    }

    fn value_with(&self, fingerprint: Option<&str>) -> Value {
        let live: Vec<Value> = self.live.iter().map(|n| Value::from(n.as_str())).collect();
        let chains: Vec<Value> = self.chains.iter().map(ChainEntry::to_value).collect();
        let v = Value::object()
            .set("version", self.version)
            .set("policy", self.policy.as_str())
            .set("live", Value::from(live))
            .set("accepted", self.accepted)
            .set("chains", Value::from(chains));
        match fingerprint {
            Some(fp) => v.set("fingerprint", fp),
            None => v,
        }
    }

    /// The canonical snapshot as a JSON value (parses `canonical`).
    pub fn to_value(&self) -> Value {
        Value::parse(&self.canonical).expect("canonical snapshot JSON is well-formed")
    }

    /// Verify a received canonical snapshot line: recompute the FNV-1a
    /// fingerprint of the object minus its `fingerprint` field and compare.
    /// Returns the claimed `(version, fingerprint)` on success.
    pub fn verify_canonical(text: &str) -> Result<(u64, String), String> {
        let v = Value::parse(text).map_err(|e| format!("snapshot is not JSON: {e}"))?;
        let claimed = v
            .get("fingerprint")
            .and_then(Value::as_str)
            .ok_or("snapshot has no fingerprint")?
            .to_string();
        let version = v
            .get("version")
            .and_then(Value::as_u64)
            .ok_or("snapshot has no version")?;
        let fields = v.as_object().ok_or("snapshot is not an object")?;
        let mut stripped = Value::object();
        for (k, val) in fields {
            if k != "fingerprint" {
                stripped = stripped.set(k, val.clone());
            }
        }
        let expect = format!("{:016x}", fnv1a(stripped.to_compact().as_bytes()));
        if expect != claimed {
            return Err(format!(
                "torn snapshot: fingerprint {claimed} but content hashes to {expect}"
            ));
        }
        Ok((version, claimed))
    }
}

/// Shared cell holding the current snapshot; swapped atomically by the
/// control thread, cloned (pointer-only) by reader sessions.
#[derive(Debug)]
pub struct SnapshotCell {
    inner: Mutex<Arc<ChainSnapshot>>,
}

impl Default for SnapshotCell {
    fn default() -> SnapshotCell {
        SnapshotCell::new(ChainSnapshot::empty())
    }
}

impl SnapshotCell {
    /// A cell initially holding `snap`.
    pub fn new(snap: ChainSnapshot) -> SnapshotCell {
        SnapshotCell {
            inner: Mutex::new(Arc::new(snap)),
        }
    }

    /// Clone the current snapshot pointer (readers never block on
    /// resynthesis: this holds the lock only for an `Arc` clone).
    pub fn load(&self) -> Arc<ChainSnapshot> {
        Arc::clone(&self.inner.lock().expect("snapshot cell poisoned"))
    }

    /// Publish a new snapshot (single writer: the control thread).
    pub fn store(&self, snap: ChainSnapshot) {
        *self.inner.lock().expect("snapshot cell poisoned") = Arc::new(snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_version_one_and_self_consistent() {
        let snap = ChainSnapshot::empty();
        assert_eq!(snap.version, 1);
        assert!(snap.chains.is_empty());
        let (version, fp) = ChainSnapshot::verify_canonical(&snap.canonical).unwrap();
        assert_eq!(version, 1);
        assert_eq!(fp, snap.fingerprint);
    }

    #[test]
    fn fingerprint_detects_tampered_bytes() {
        let snap = ChainSnapshot::build(
            7,
            "A >> B".into(),
            vec!["A".into(), "B".into()],
            3,
            vec![ChainEntry {
                id: 1,
                name: "A".into(),
                algorithm: "SJF".into(),
                chain: "shift+1".into(),
                output_min: 1,
                output_max: 9,
            }],
        );
        ChainSnapshot::verify_canonical(&snap.canonical).unwrap();
        // A torn read interleaving versions shows up as a hash mismatch.
        let torn = snap.canonical.replace("\"version\":7", "\"version\":8");
        assert!(ChainSnapshot::verify_canonical(&torn)
            .unwrap_err()
            .contains("torn"));
    }

    /// A reference snapshot with every field populated, shared by the
    /// exhaustive-corruption and fingerprint-stability tests below.
    fn reference_snapshot() -> ChainSnapshot {
        ChainSnapshot::build(
            7,
            "A >> B".into(),
            vec!["A".into(), "B".into()],
            3,
            vec![ChainEntry {
                id: 1,
                name: "A".into(),
                algorithm: "SJF".into(),
                chain: "shift+1".into(),
                output_min: 1,
                output_max: 9,
            }],
        )
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let snap = reference_snapshot();
        ChainSnapshot::verify_canonical(&snap.canonical).unwrap();
        // Flip one bit of every byte in turn: whatever a torn read (or a
        // corrupted transport) does to a single byte, verification must
        // refuse — either the JSON no longer parses, a required field
        // vanished, or the recomputed FNV-1a hash disagrees.
        for pos in 0..snap.canonical.len() {
            let mut bytes = snap.canonical.clone().into_bytes();
            bytes[pos] ^= 0x01;
            let Ok(corrupt) = String::from_utf8(bytes) else {
                continue; // non-UTF-8 can never reach the verifier
            };
            assert!(
                ChainSnapshot::verify_canonical(&corrupt).is_err(),
                "byte {pos} flipped ({:?} -> {:?}) was accepted",
                &snap.canonical[pos..=pos],
                &corrupt[pos..=pos],
            );
        }
    }

    #[test]
    fn the_fingerprint_algorithm_is_pinned() {
        // Clients recompute this hash from received bytes, so the FNV-1a
        // parameters and the canonical field order are wire contracts. If
        // this snapshot test fails, you changed the protocol: bump the
        // serve protocol docs and every stored fingerprint, or revert.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(format!("{:016x}", fnv1a(b"qvisor")), "12da56763934b6af");
        let snap = reference_snapshot();
        assert_eq!(snap.fingerprint, "565de8ebb4e063bf");
    }

    #[test]
    fn builds_are_deterministic() {
        let a = ChainSnapshot::build(2, "A".into(), vec!["A".into()], 1, vec![]);
        let b = ChainSnapshot::build(2, "A".into(), vec!["A".into()], 1, vec![]);
        assert_eq!(a.canonical, b.canonical);
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn cell_swap_is_visible_to_readers() {
        let cell = SnapshotCell::default();
        assert_eq!(cell.load().version, 1);
        let held = cell.load();
        cell.store(ChainSnapshot::build(2, String::new(), vec![], 1, vec![]));
        // Old readers keep their immutable world; new loads see the swap.
        assert_eq!(held.version, 1);
        assert_eq!(cell.load().version, 2);
    }
}
