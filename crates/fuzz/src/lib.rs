#![deny(missing_docs)]

//! # qvisor-fuzz — policy fuzzing + differential conformance harness
//!
//! The static verifier (`qvisor-core::verify`) is the admission gate for
//! `qvisor run`, `qvisor sweep`, and the serve daemon. This crate closes
//! the loop at scale: it generates random operator deployments over the
//! full `>>`/`>`/`+` grammar and *differentially* checks every verifier
//! verdict against what actually happens on an exact PIFO.
//!
//! The pipeline, per generated case ([`run_case`]):
//!
//! 1. **Generate** ([`gen`]): a random [`DeploymentConfig`] — tenant
//!    count, rank ranges (wide/narrow/degenerate/huge), per-tenant level
//!    overrides, a random policy string with weights and share groups,
//!    adversarial synthesizer options (`first_rank` near `u64::MAX`
//!    forces saturation) — plus a random rank-function mix. All
//!    randomness flows from `SimRng::seed_from(seed).derive(case)`;
//!    there is no ambient RNG anywhere, so a campaign is a pure function
//!    of `(seed, cases)`.
//! 2. **Verify**: the case is synthesized and run through the static
//!    verifier exactly like `qvisor check` would.
//! 3. **Replay witnesses** ([`oracle`]): every diagnostic that carries a
//!    concrete [`Witness`] is re-executed through the real
//!    `TransformChain::apply`; error-severity refutations must reproduce
//!    the claimed misbehavior (non-monotone pairs must actually invert on
//!    a PIFO, collapse/overflow pairs must actually collide, cross-tenant
//!    overlap pairs must actually misorder).
//! 4. **Queue oracle**: sampled tenant traffic is pushed through an
//!    `InstrumentedQueue<PifoQueue>` (the exact-PIFO inversion mirror)
//!    and the drain order is re-checked for cross-tenant strict-level
//!    inversions. A policy the verifier proved clean must show zero.
//! 5. **Scenario oracle**: for non-error verdicts the deployment is
//!    materialized into a dumbbell [`ScenarioSpec`] and run end-to-end
//!    through the scenario `Engine` with the flight recorder on; the
//!    trace is scanned for cross-tenant strict-level inversions.
//!
//! Any disagreement is auto-[minimized](minimize::minimize) — tenants
//! dropped, levels merged, weights and transform parameters pushed toward
//! identity — while preserving the disagreement, and emitted as a
//! self-contained JSON document (see [`corpus`]) that `qvisor check` and
//! the `tests/fuzz_regressions.rs` suite can replay bit-for-bit.
//!
//! Campaigns ([`campaign`]) fan cases over OS threads with the sweep
//! runner's atomic work-index pattern and merge results in case order, so
//! the summary report is byte-identical at any `--jobs`.
//!
//! [`DeploymentConfig`]: qvisor_core::DeploymentConfig
//! [`Witness`]: qvisor_core::Witness
//! [`ScenarioSpec`]: qvisor_netsim::ScenarioSpec

pub mod campaign;
pub mod corpus;
pub mod gen;
pub mod minimize;
pub mod oracle;

pub use campaign::{run_campaign, CampaignOpts, CampaignReport, CaseFailure};
pub use corpus::{corpus_value, is_corpus_doc, replay_corpus, ReplayOutcome};
pub use gen::{generate_case, FuzzCase, DEFAULT_SEED};
pub use minimize::minimize;
pub use oracle::{run_case, run_case_with, CaseOutcome, Verdict};
