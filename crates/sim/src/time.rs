//! Simulation time.
//!
//! All simulation time is kept in integer nanoseconds ([`Nanos`]). Integer
//! time makes event ordering exact and runs bit-reproducible across
//! platforms, which the whole test suite relies on.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulation time (or a duration), in nanoseconds.
///
/// `Nanos` is deliberately a single type for both instants and durations:
/// the simulator only ever adds offsets to the current clock and subtracts
/// instants to obtain durations, and a separate duration type would double
/// the API surface for no safety gain at this scale.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Time zero — the start of every simulation.
    pub const ZERO: Nanos = Nanos(0);
    /// The maximum representable time; used as an "infinite" horizon.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// Construct from nanoseconds (identity; for symmetry with the others).
    pub const fn from_nanos(ns: u64) -> Nanos {
        Nanos(ns)
    }

    /// This time expressed as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time expressed as (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time expressed as (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    ///
    /// Useful for slack computations (`deadline - now`) where the deadline
    /// may already have passed.
    pub const fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition: `self + rhs`, clamped at [`Nanos::MAX`].
    ///
    /// Used for horizon arithmetic (`now + delay`) where the delay may be
    /// an "infinite" sentinel near [`Nanos::MAX`]: the sum must never wrap
    /// back into the past.
    pub const fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    pub const fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Nanos(v)),
            None => None,
        }
    }

    /// The larger of two times.
    pub fn max(self, other: Nanos) -> Nanos {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    pub fn min(self, other: Nanos) -> Nanos {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// Time to serialize `bytes` onto a link of `bits_per_sec`, rounded up to the
/// next nanosecond so a queued packet never finishes "early".
///
/// # Panics
/// Panics if `bits_per_sec` is zero.
pub fn transmission_time(bytes: u64, bits_per_sec: u64) -> Nanos {
    assert!(bits_per_sec > 0, "link rate must be positive");
    let bits = bytes as u128 * 8;
    let ns = (bits * 1_000_000_000).div_ceil(bits_per_sec as u128);
    Nanos(u64::try_from(ns).expect("transmission time overflows u64 nanoseconds"))
}

/// Convenience: gigabits per second expressed in bits per second.
pub const fn gbps(g: u64) -> u64 {
    g * 1_000_000_000
}

/// Convenience: megabits per second expressed in bits per second.
pub const fn mbps(m: u64) -> u64 {
    m * 1_000_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_secs(1), Nanos(1_000_000_000));
        assert_eq!(Nanos::from_millis(1), Nanos(1_000_000));
        assert_eq!(Nanos::from_micros(1), Nanos(1_000));
        assert_eq!(Nanos::from_nanos(7), Nanos(7));
    }

    #[test]
    fn arithmetic() {
        let a = Nanos::from_micros(3);
        let b = Nanos::from_micros(1);
        assert_eq!(a + b, Nanos::from_micros(4));
        assert_eq!(a - b, Nanos::from_micros(2));
        assert_eq!(b * 3, a);
        assert_eq!(a / 3, b);
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.saturating_sub(b), Nanos::from_micros(2));
    }

    #[test]
    fn min_max() {
        let a = Nanos(1);
        let b = Nanos(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn transmission_time_exact() {
        // 1500 bytes at 1 Gbps = 12 microseconds.
        assert_eq!(transmission_time(1500, gbps(1)), Nanos::from_micros(12));
        // 1 byte at 8 Gbps = 1 ns.
        assert_eq!(transmission_time(1, gbps(8)), Nanos(1));
    }

    #[test]
    fn transmission_time_rounds_up() {
        // 1 byte at 3 bps: 8/3 * 1e9 ns = 2666666666.67 -> rounds up.
        assert_eq!(transmission_time(1, 3), Nanos(2_666_666_667));
    }

    #[test]
    #[should_panic(expected = "link rate must be positive")]
    fn zero_rate_panics() {
        let _ = transmission_time(1, 0);
    }

    #[test]
    fn display_units() {
        assert_eq!(Nanos(500).to_string(), "500ns");
        assert_eq!(Nanos::from_micros(12).to_string(), "12.000us");
        assert_eq!(Nanos::from_millis(3).to_string(), "3.000ms");
        assert_eq!(Nanos::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_iterator() {
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
    }

    #[test]
    fn checked_add_overflow() {
        assert_eq!(Nanos::MAX.checked_add(Nanos(1)), None);
        assert_eq!(Nanos(1).checked_add(Nanos(2)), Some(Nanos(3)));
    }

    #[test]
    fn saturating_add_clamps_at_max() {
        assert_eq!(Nanos::MAX.saturating_add(Nanos(1)), Nanos::MAX);
        assert_eq!(Nanos(5).saturating_add(Nanos::MAX), Nanos::MAX);
        assert_eq!(Nanos(1).saturating_add(Nanos(2)), Nanos(3));
    }
}
