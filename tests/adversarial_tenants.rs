//! Adversarial workloads (§2): a tenant that lies about its ranks to grab
//! priority must be detected and contained by the runtime monitor.

use qvisor::core::{MonitorConfig, SynthConfig, TenantSpec, UnknownTenantAction, ViolationAction};
use qvisor::netsim::{
    NewCbr, NewFlow, QvisorSetup, SchedulerKind, SimConfig, SimReport, Simulation,
};
use qvisor::ranking::{Constant, PFabric, RankRange};
use qvisor::sim::{gbps, Nanos, TenantId};
use qvisor::topology::Dumbbell;
use qvisor::transport::SizeBucket;

const HONEST: TenantId = TenantId(1);
const EVIL: TenantId = TenantId(2);

/// The honest tenant runs pFabric flows; the adversary declared the rank
/// range [1000, 2000] (a low-priority band under HONEST >> EVIL ... the
/// synthesizer normalizes whatever it declares) but actually emits rank 0
/// on every packet, trying to jump the whole hierarchy.
fn run(action: Option<ViolationAction>) -> SimReport {
    let d = Dumbbell::build(3, gbps(1), gbps(1), Nanos::from_micros(1));
    let specs = vec![
        TenantSpec::new(HONEST, "honest", "pFabric", RankRange::new(0, 100)).with_levels(64),
        TenantSpec::new(EVIL, "evil", "EDF", RankRange::new(1_000, 2_000)).with_levels(16),
    ];
    let cfg = SimConfig {
        seed: 21,
        horizon: Nanos::from_millis(200),
        scheduler: SchedulerKind::Pifo,
        qvisor: Some(QvisorSetup {
            specs,
            policy: "honest >> evil".into(),
            synth: SynthConfig::default(),
            unknown: UnknownTenantAction::BestEffort,
            scope: Default::default(),
            monitor: action.map(|violation_action| MonitorConfig {
                violation_action,
                ..MonitorConfig::default()
            }),
        }),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(HONEST, Box::new(PFabric::new(1_000, 100)));
    // The adversary's *actual* rank function: always claim top priority.
    sim.register_rank_fn(EVIL, Box::new(Constant(0)));

    for i in 0..30u64 {
        sim.add_flow(NewFlow::new(
            HONEST,
            d.senders[(i % 2) as usize],
            d.receivers[(i % 2) as usize],
            100_000,
            Nanos::from_millis(2 * i),
        ));
    }
    sim.add_cbr(NewCbr {
        tenant: EVIL,
        src: d.senders[2],
        dst: d.receivers[2],
        rate_bps: 900_000_000,
        pkt_size: 1_500,
        start: Nanos::ZERO,
        stop: Nanos::from_millis(60),
        deadline_offset: Nanos::from_millis(10),
    });
    sim.run()
}

fn honest_fct(r: &SimReport) -> f64 {
    r.fct.mean_fct_ms(Some(HONEST), SizeBucket::ALL).unwrap()
}

#[test]
fn unmonitored_adversary_defeats_the_hierarchy() {
    // Without the monitor the adversary's rank-0 packets are normalized
    // from *below* its declared range — clamped by Normalize to the range
    // minimum, i.e. the top of EVIL's own band, not above HONEST. The
    // hierarchy holds structurally! The interesting contrast is against a
    // *declared-range* attack instead: EVIL declares [0, 0].
    // Here we simply pin the structural containment.
    let r = run(None);
    assert_eq!(r.monitor_violations, 0, "no monitor, no counting");
    assert_eq!(r.incomplete_flows, 0);
}

#[test]
fn monitor_counts_and_clamps_violations() {
    let r = run(Some(ViolationAction::Clamp));
    assert!(
        r.monitor_violations > 1_000,
        "every adversarial packet is a violation, got {}",
        r.monitor_violations
    );
    assert_eq!(r.incomplete_flows, 0);
}

#[test]
fn monitor_drop_action_removes_adversarial_traffic() {
    let dropped = run(Some(ViolationAction::Drop));
    let clamped = run(Some(ViolationAction::Clamp));
    // Under Drop the adversary delivers nothing at all.
    assert_eq!(dropped.tenant(EVIL).delivered_pkts, 0);
    assert!(clamped.tenant(EVIL).delivered_pkts > 0);
    // And the honest tenant is at least as fast.
    assert!(honest_fct(&dropped) <= honest_fct(&clamped) * 1.05);
}

#[test]
fn normalization_contains_out_of_band_ranks_structurally() {
    // Even with no monitor, EVIL's rank-0 packets cannot outrank HONEST:
    // Normalize clamps below-range inputs to the band floor of EVIL's own
    // (lower) band. Verify via the joint policy's chains directly.
    let specs = vec![
        TenantSpec::new(HONEST, "honest", "pFabric", RankRange::new(0, 100)).with_levels(64),
        TenantSpec::new(EVIL, "evil", "EDF", RankRange::new(1_000, 2_000)).with_levels(16),
    ];
    let policy = qvisor::core::Policy::parse("honest >> evil").unwrap();
    let joint = qvisor::core::synthesize(&specs, &policy, SynthConfig::default()).unwrap();
    let evil_zero = joint.chain(EVIL).unwrap().apply(0);
    let honest_worst = joint.chain(HONEST).unwrap().apply(100);
    assert!(
        evil_zero > honest_worst,
        "clamped adversarial rank {evil_zero} must stay below honest worst {honest_worst}"
    );
}
