//! Ablation: how many quantization levels does normalization need?
//!
//! The synthesizer quantizes each tenant's rank range onto Q levels (§3.2,
//! "rank normalization"). Too few levels erase intra-tenant scheduling
//! (pFabric degenerates toward FIFO); more levels cost rank-space width —
//! and on commodity switches, queues. This sweep runs the Fig. 4 scenario
//! under `pFabric >> EDF` varying Q for the pFabric tenant.
//!
//! Usage: cargo run -p qvisor-bench --release --bin ablation_quantization
//!        [-- --telemetry PREFIX]   write PREFIX-levels<N>.jsonl per point

use qvisor_bench::snapshot;
use qvisor_core::{SynthConfig, TenantSpec, UnknownTenantAction};
use qvisor_netsim::{QvisorSetup, SchedulerKind, SimConfig, Simulation};
use qvisor_ranking::{Edf, PFabric, RankRange};
use qvisor_sim::{Nanos, SimRng, TenantId};
use qvisor_telemetry::Telemetry;
use qvisor_topology::{LeafSpine, LeafSpineConfig};
use qvisor_transport::SizeBucket;
use qvisor_workloads::{
    arrival_rate_for_load, cbr_tenant, EmpiricalCdf, FlowSizeDist, PoissonFlowGen,
};

const PF: TenantId = TenantId(1);
const ED: TenantId = TenantId(2);

fn run(levels: u64, telemetry: &Telemetry) -> (f64, f64) {
    let fabric = LeafSpine::build(&LeafSpineConfig::paper());
    let hosts = fabric.all_hosts();
    let scale = 10u64;
    let sizes = EmpiricalCdf::data_mining().scaled(1, scale);
    let max_rank = 100_000_000 / scale / 1_000;

    let specs = vec![
        TenantSpec::new(PF, "pFabric", "pFabric", RankRange::new(0, max_rank)).with_levels(levels),
        TenantSpec::new(ED, "EDF", "EDF", RankRange::new(0, 10)).with_levels(8),
    ];
    let cfg = SimConfig {
        seed: 1,
        horizon: Nanos::from_secs(3),
        scheduler: SchedulerKind::Pifo,
        qvisor: Some(QvisorSetup {
            specs,
            policy: "pFabric >> EDF".into(),
            synth: SynthConfig::default(),
            unknown: UnknownTenantAction::BestEffort,
            scope: Default::default(),
            monitor: None,
        }),
        telemetry: telemetry.clone(),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(fabric.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(PF, Box::new(PFabric::new(1_000, max_rank)));
    sim.register_rank_fn(ED, Box::new(Edf::new(Nanos::from_micros(60), 10)));

    let rng = SimRng::seed_from(1);
    let rate = arrival_rate_for_load(0.6, hosts.len(), qvisor_sim::gbps(1), sizes.mean_bytes());
    let flows = PoissonFlowGen {
        tenant: PF,
        hosts: &hosts,
        sizes: &sizes,
        rate_flows_per_sec: rate,
    }
    .generate(800, &mut rng.derive(1));
    let last = flows.last().unwrap().start;
    for f in &flows {
        sim.add_generated(f);
    }
    for s in &cbr_tenant(
        ED,
        &hosts,
        50,
        500_000_000,
        1_500,
        Nanos::ZERO,
        last + Nanos::from_millis(10),
        Nanos::from_micros(300),
        &mut rng.derive(2),
    ) {
        sim.add_generated_cbr(s);
    }
    let r = sim.run();
    let small = SizeBucket {
        lo: 1,
        hi: 100_000 / scale,
    };
    let large = SizeBucket {
        lo: 1_000_000 / scale,
        hi: u64::MAX,
    };
    (
        r.fct.mean_fct_ms(Some(PF), small).unwrap_or(f64::NAN),
        r.fct.mean_fct_ms(Some(PF), large).unwrap_or(f64::NAN),
    )
}

fn main() {
    println!("Ablation: pFabric quantization levels (policy pFabric >> EDF, load 0.6)");
    println!(
        "{:>8}{:>16}{:>16}",
        "levels", "small FCT (ms)", "large FCT (ms)"
    );
    let args: Vec<String> = std::env::args().skip(1).collect();
    let prefix = args.iter().position(|a| a == "--telemetry").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("missing value after --telemetry");
            std::process::exit(2);
        })
    });
    for levels in [2u64, 4, 8, 32, 128, 512, 2048] {
        let telemetry = match prefix {
            Some(_) => Telemetry::enabled(),
            None => Telemetry::disabled(),
        };
        let (small, large) = run(levels, &telemetry);
        println!("{levels:>8}{small:>16.3}{large:>16.2}");
        if let Some(prefix) = &prefix {
            let tag = format!("levels{levels}");
            eprintln!(
                "  wrote {}",
                snapshot::write_snapshot(&telemetry, prefix, &tag)
            );
        }
    }
    println!(
        "\nFew levels collapse pFabric's SRPT behaviour (small flows slow \
         down); returns diminish once levels resolve the small-flow sizes."
    );
}
