//! Interval abstract interpretation over transformation chains.
//!
//! The abstract domain is the inclusive rank interval `[lo, hi]` plus, per
//! op, a small set of facts: does the op saturate at `Rank::MAX` anywhere
//! on the interval, does a clamp cut into it, is it (strictly) monotone on
//! it, and how many distinct inputs can collapse onto one output (the
//! *collision bound*).
//!
//! Interval propagation is exact for monotone ops (endpoints map to
//! endpoints). The one op that can be non-monotone — a malformed `Stride`
//! with `every < width` — is handled by evaluating the op in `u128` at the
//! interval endpoints *and* at the cycle boundaries adjacent to them, which
//! are the only points where a stride's local extrema can occur; the
//! resulting bounds are sound.

use crate::transform::{RankTransform, TransformChain};
use qvisor_ranking::RankRange;
use qvisor_sim::Rank;

/// What one op does to the interval flowing through it.
#[derive(Clone, Debug)]
pub struct OpReport {
    /// Position in the chain.
    pub index: usize,
    /// The op itself.
    pub op: RankTransform,
    /// Interval flowing in.
    pub input: RankRange,
    /// Sound output interval.
    pub output: RankRange,
    /// Some input in the interval hits the `Rank::MAX` saturation ceiling
    /// with actual precision loss (at least one value pinned).
    pub saturates: bool,
    /// A clamp boundary (explicit `Clamp` or `Normalize`'s input range)
    /// cuts into the interval.
    pub clamps: bool,
    /// Non-decreasing on the input interval.
    pub monotone: bool,
    /// Strictly increasing on the input interval (no two inputs collide).
    pub strictly_monotone: bool,
    /// Upper bound on how many distinct inputs map to one output (>= 1).
    pub collision_bound: u64,
}

/// The whole chain's abstract execution on a declared input range.
#[derive(Clone, Debug)]
pub struct ChainAnalysis {
    /// The declared input interval.
    pub input: RankRange,
    /// Sound final output interval.
    pub output: RankRange,
    /// Per-op reports, in application order.
    pub ops: Vec<OpReport>,
    /// Every op is non-decreasing on its interval — the chain is proven
    /// order-preserving (ties possible, inversions impossible).
    pub monotone: bool,
    /// Every op is strictly increasing — distinct inputs stay distinct.
    pub strictly_monotone: bool,
    /// Some op saturates at `Rank::MAX` on the declared range.
    pub saturates: bool,
    /// Some clamp cuts into the declared range.
    pub clamps: bool,
    /// Upper bound on inputs collapsing to one output across the whole
    /// chain (saturating product of per-op bounds).
    pub collision_bound: u64,
}

impl ChainAnalysis {
    /// Index of the first op that is not monotone on its interval, if any.
    pub fn first_non_monotone(&self) -> Option<usize> {
        self.ops.iter().position(|o| !o.monotone)
    }

    /// Index of the first op that saturates, if any.
    pub fn first_saturating(&self) -> Option<usize> {
        self.ops.iter().position(|o| o.saturates)
    }
}

/// Number of integers in `[lo, hi]` (saturating).
fn count(lo: Rank, hi: Rank) -> u64 {
    (hi - lo).saturating_add(1)
}

/// Evaluate a stride in `u128` (no saturation) — used to detect overflow.
fn stride_exact(every: u64, width: u64, offset: u64, rank: Rank) -> u128 {
    let width = width.max(1);
    (rank / width) as u128 * every as u128 + offset as u128 + (rank % width) as u128
}

fn analyze_op(index: usize, op: RankTransform, input: RankRange) -> OpReport {
    let (lo, hi) = (input.min, input.max);
    match op {
        RankTransform::Normalize {
            input: decl,
            levels,
        } => {
            // Tail counts: inputs clamped to the declared min/max.
            let below = if lo < decl.min {
                count(lo, hi.min(decl.min - 1))
            } else {
                0
            };
            let above = if hi > decl.max {
                count(lo.max(decl.max + 1), hi)
            } else {
                0
            };
            let span = decl.max - decl.min;
            let output = RankRange::new(op.apply(lo), op.apply(hi));
            // Quantize bucket size: with L-1 output steps over `span`
            // inputs, at most floor(span/(L-1)) + 1 inputs share a level.
            let inner = if levels <= 1 || span == 0 {
                // Everything maps to level 0.
                count(lo, hi)
            } else if span < levels {
                1
            } else {
                span / (levels - 1) + 1
            };
            let collision_bound = inner.saturating_add(below.max(above));
            OpReport {
                index,
                op,
                input,
                output,
                saturates: false,
                clamps: below > 0 || above > 0,
                monotone: true,
                strictly_monotone: lo == hi || (inner == 1 && below == 0 && above == 0),
                collision_bound,
            }
        }
        RankTransform::Shift { offset } => {
            // Inputs above `MAX - offset` pin at MAX; the first pinned
            // value (== MAX - offset) is still exact, so precision is lost
            // only when the interval extends strictly past the threshold.
            let threshold = Rank::MAX - offset;
            let saturates = hi > threshold;
            let pinned = if hi >= threshold {
                count(lo.max(threshold), hi)
            } else {
                1
            };
            OpReport {
                index,
                op,
                input,
                output: RankRange::new(lo.saturating_add(offset), hi.saturating_add(offset)),
                saturates,
                clamps: false,
                monotone: true,
                strictly_monotone: pinned <= 1,
                collision_bound: pinned.max(1),
            }
        }
        RankTransform::Stride {
            every,
            width,
            offset,
        } => analyze_stride(index, op, input, every, width, offset),
        RankTransform::Clamp { range } => {
            let below = if lo < range.min {
                count(lo, hi.min(range.min - 1))
            } else {
                0
            };
            let above = if hi > range.max {
                count(lo.max(range.max + 1), hi)
            } else {
                0
            };
            // A clamped tail collapses together with the boundary value
            // itself when that value is also in the interval.
            let at_min = below.saturating_add(u64::from(below > 0 && hi >= range.min));
            let at_max = above.saturating_add(u64::from(above > 0 && lo <= range.max));
            OpReport {
                index,
                op,
                input,
                output: RankRange::new(range.clamp(lo), range.clamp(hi)),
                saturates: false,
                clamps: below > 0 || above > 0,
                monotone: true,
                strictly_monotone: lo == hi || (below == 0 && above == 0),
                collision_bound: at_min.max(at_max).max(1),
            }
        }
    }
}

fn analyze_stride(
    index: usize,
    op: RankTransform,
    input: RankRange,
    every: u64,
    width: u64,
    offset: u64,
) -> OpReport {
    let (lo, hi) = (input.min, input.max);
    let w = width.max(1);
    let crosses_cycle = lo / w != hi / w;
    // Within a single cycle the op is `+1` steps (strict); across cycle
    // boundaries the step is `every - width + 1`, so monotonicity depends
    // on `every` vs `width`.
    let monotone = !crosses_cycle || every >= w - 1;
    // Candidate extremal inputs: the endpoints, the last cycle top <= hi,
    // and the first cycle bottom >= lo. A stride's restriction to any
    // cycle is `+1` steps, so its extrema over the interval are always
    // attained at one of these points.
    let mut candidates = [lo, hi, lo, hi];
    if crosses_cycle {
        // First cycle bottom strictly above lo's position.
        candidates[2] = (lo / w + 1) * w;
        // Top of the cycle below hi's cycle, or hi's own cycle top if
        // inside the interval.
        let hi_top = hi - hi % w + (w - 1);
        candidates[3] = if hi_top <= hi {
            hi_top
        } else {
            hi - hi % w - 1
        };
    }
    let mut min128 = u128::MAX;
    let mut max128 = 0u128;
    for &c in &candidates {
        let c = c.clamp(lo, hi);
        let v = stride_exact(every, width, offset, c);
        min128 = min128.min(v);
        max128 = max128.max(v);
    }
    let saturates = max128 > Rank::MAX as u128;
    let clamp128 = |v: u128| -> Rank { v.min(Rank::MAX as u128) as Rank };
    // Collision bound: cycle-boundary collisions (`every == width - 1`
    // glues each cycle top to the next bottom) and saturation pinning.
    let mut bound = 1u64;
    if crosses_cycle && every < w {
        bound = bound.max(w - every);
    }
    if saturates {
        // Count pinned inputs: the stride is monotone per-cycle, so
        // binary-search the first input whose exact value exceeds MAX.
        let pinned = if monotone {
            let (mut a, mut b) = (lo, hi);
            while a < b {
                let mid = a + (b - a) / 2;
                if stride_exact(every, width, offset, mid) >= Rank::MAX as u128 {
                    b = mid;
                } else {
                    a = mid + 1;
                }
            }
            count(a, hi)
        } else {
            count(lo, hi)
        };
        bound = bound.max(pinned);
    }
    OpReport {
        index,
        op,
        input,
        output: RankRange::new(clamp128(min128), clamp128(max128)),
        saturates,
        clamps: false,
        monotone,
        strictly_monotone: !saturates && (!crosses_cycle || every >= w),
        collision_bound: bound,
    }
}

/// Run the abstract interpretation over a whole chain for inputs drawn
/// from `input`.
pub fn analyze_chain(chain: &TransformChain, input: RankRange) -> ChainAnalysis {
    let mut ops = Vec::with_capacity(chain.ops().len());
    let mut interval = input;
    for (index, &op) in chain.ops().iter().enumerate() {
        let report = analyze_op(index, op, interval);
        interval = report.output;
        ops.push(report);
    }
    ChainAnalysis {
        input,
        output: interval,
        monotone: ops.iter().all(|o| o.monotone),
        strictly_monotone: ops.iter().all(|o| o.strictly_monotone),
        saturates: ops.iter().any(|o| o.saturates),
        clamps: ops.iter().any(|o| o.clamps),
        collision_bound: ops
            .iter()
            .fold(1u64, |acc, o| acc.saturating_mul(o.collision_bound)),
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_chain_is_strict() {
        let a = analyze_chain(&TransformChain::identity(), RankRange::new(0, 99));
        assert!(a.monotone && a.strictly_monotone && !a.saturates && !a.clamps);
        assert_eq!(a.collision_bound, 1);
        assert_eq!(a.output, RankRange::new(0, 99));
    }

    #[test]
    fn normalize_collision_bound_matches_reality() {
        // 2001 inputs onto 512 levels: buckets of floor(2000/511)+1 = 4.
        let chain = TransformChain::from_ops(vec![RankTransform::Normalize {
            input: RankRange::new(0, 2000),
            levels: 512,
        }]);
        let a = analyze_chain(&chain, RankRange::new(0, 2000));
        assert!(a.monotone && !a.strictly_monotone);
        assert_eq!(a.collision_bound, 4);
        // Check against a concrete maximum bucket size.
        let mut counts = std::collections::BTreeMap::new();
        for r in 0..=2000u64 {
            *counts.entry(chain.apply(r)).or_insert(0u64) += 1;
        }
        let max_bucket = counts.values().copied().max().unwrap();
        assert!(max_bucket <= a.collision_bound);
    }

    #[test]
    fn normalize_exact_fit_is_strict() {
        let chain = TransformChain::from_ops(vec![RankTransform::Normalize {
            input: RankRange::new(7, 9),
            levels: 3,
        }]);
        let a = analyze_chain(&chain, RankRange::new(7, 9));
        assert!(a.strictly_monotone);
        assert_eq!(a.collision_bound, 1);
    }

    #[test]
    fn normalize_clamp_flagged_on_wider_inputs() {
        let chain = TransformChain::from_ops(vec![RankTransform::Normalize {
            input: RankRange::new(10, 20),
            levels: 11,
        }]);
        let a = analyze_chain(&chain, RankRange::new(0, 30));
        assert!(a.clamps);
        // 10 inputs below + the boundary bucket.
        assert!(a.collision_bound >= 10);
    }

    #[test]
    fn shift_saturation_detected_and_counted() {
        let chain = TransformChain::from_ops(vec![RankTransform::Shift {
            offset: Rank::MAX - 10,
        }]);
        let a = analyze_chain(&chain, RankRange::new(0, 20));
        assert!(a.saturates);
        assert!(a.monotone && !a.strictly_monotone);
        // Inputs 10..=20 pin at MAX: 11 of them.
        assert_eq!(a.collision_bound, 11);
        assert_eq!(a.output.max, Rank::MAX);
    }

    #[test]
    fn shift_exact_threshold_is_lossless() {
        let chain = TransformChain::from_ops(vec![RankTransform::Shift {
            offset: Rank::MAX - 20,
        }]);
        let a = analyze_chain(&chain, RankRange::new(0, 20));
        assert!(!a.saturates, "input 20 maps exactly to MAX — no loss");
        assert!(a.strictly_monotone);
    }

    #[test]
    fn stride_overflow_detected() {
        let chain = TransformChain::from_ops(vec![RankTransform::Stride {
            every: 1 << 40,
            width: 1,
            offset: 0,
        }]);
        let a = analyze_chain(&chain, RankRange::new(0, 1 << 30));
        assert!(a.saturates);
        assert_eq!(a.output.max, Rank::MAX);
    }

    #[test]
    fn malformed_stride_is_non_monotone_with_sound_bounds() {
        // every=1 < width=4: cycle boundaries step backwards.
        let op = RankTransform::Stride {
            every: 1,
            width: 4,
            offset: 0,
        };
        let chain = TransformChain::from_ops(vec![op]);
        let a = analyze_chain(&chain, RankRange::new(0, 15));
        assert!(!a.monotone);
        // Sound bounds must cover every concrete output.
        for r in 0..=15u64 {
            assert!(a.output.contains(chain.apply(r)), "r={r}");
        }
    }

    #[test]
    fn stride_inside_one_cycle_is_strict_even_if_malformed() {
        let op = RankTransform::Stride {
            every: 1,
            width: 100,
            offset: 0,
        };
        let a = analyze_chain(
            &TransformChain::from_ops(vec![op]),
            RankRange::new(10, 20), // one cycle: 0..99
        );
        assert!(a.monotone && a.strictly_monotone);
    }

    #[test]
    fn clamp_tail_collisions_counted() {
        let chain = TransformChain::from_ops(vec![RankTransform::Clamp {
            range: RankRange::new(5, 10),
        }]);
        let a = analyze_chain(&chain, RankRange::new(0, 20));
        assert!(a.clamps && a.monotone && !a.strictly_monotone);
        // 0..=4 plus 5 itself collapse onto 5; 11..=20 plus 10 onto 10.
        assert_eq!(a.collision_bound, 11);
    }

    #[test]
    fn synthesized_style_chain_composes() {
        let chain = TransformChain::from_ops(vec![
            RankTransform::Normalize {
                input: RankRange::new(0, 10_000),
                levels: 8,
            },
            RankTransform::Stride {
                every: 2,
                width: 1,
                offset: 1,
            },
            RankTransform::Shift { offset: 100 },
        ]);
        let a = analyze_chain(&chain, RankRange::new(0, 10_000));
        assert!(a.monotone && !a.strictly_monotone);
        assert!(!a.saturates && !a.clamps);
        assert_eq!(a.output, RankRange::new(101, 115));
    }
}
