//! Declared rank bounds.

use qvisor_sim::Rank;

/// Inclusive bounds `[min, max]` on the ranks a tenant's rank function
/// emits.
///
/// The paper's synthesizer assumes "rank distributions are bounded and
/// known in advance" (§3.2); this type is that declaration. The static
/// analyzer checks synthesized policies against it, and the runtime monitor
/// flags packets violating it as adversarial.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RankRange {
    /// Smallest (most urgent) rank.
    pub min: Rank,
    /// Largest (least urgent) rank.
    pub max: Rank,
}

impl RankRange {
    /// A range; `min` and `max` are inclusive.
    ///
    /// # Panics
    /// Panics if `min > max`.
    pub fn new(min: Rank, max: Rank) -> RankRange {
        assert!(min <= max, "rank range is empty: [{min}, {max}]");
        RankRange { min, max }
    }

    /// Number of distinct ranks in the range (saturating at `u64::MAX`).
    pub fn width(&self) -> u64 {
        (self.max - self.min).saturating_add(1)
    }

    /// Does `rank` fall inside the declared bounds?
    pub fn contains(&self, rank: Rank) -> bool {
        (self.min..=self.max).contains(&rank)
    }

    /// Clamp `rank` into the range.
    pub fn clamp(&self, rank: Rank) -> Rank {
        rank.clamp(self.min, self.max)
    }

    /// Do two ranges overlap?
    pub fn overlaps(&self, other: &RankRange) -> bool {
        self.min <= other.max && other.min <= self.max
    }
}

impl std::fmt::Display for RankRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_and_contains() {
        let r = RankRange::new(3, 7);
        assert_eq!(r.width(), 5);
        assert!(r.contains(3));
        assert!(r.contains(7));
        assert!(!r.contains(2));
        assert!(!r.contains(8));
    }

    #[test]
    fn singleton_range() {
        let r = RankRange::new(5, 5);
        assert_eq!(r.width(), 1);
        assert!(r.contains(5));
    }

    #[test]
    fn clamping() {
        let r = RankRange::new(10, 20);
        assert_eq!(r.clamp(5), 10);
        assert_eq!(r.clamp(15), 15);
        assert_eq!(r.clamp(99), 20);
    }

    #[test]
    fn overlap_detection() {
        let a = RankRange::new(0, 10);
        let b = RankRange::new(10, 20);
        let c = RankRange::new(11, 20);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn full_range_width_saturates() {
        let r = RankRange::new(0, u64::MAX);
        assert_eq!(r.width(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "rank range is empty")]
    fn inverted_range_panics() {
        let _ = RankRange::new(2, 1);
    }

    #[test]
    fn display() {
        assert_eq!(RankRange::new(1, 9).to_string(), "[1, 9]");
    }
}
