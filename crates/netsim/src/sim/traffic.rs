//! Traffic sources: reliable flows and CBR streams, packet emission, and
//! retransmission timers.

use super::{Event, EventKey, Simulation};
use qvisor_ranking::RankCtx;
use qvisor_sim::{FlowId, Nanos, NodeId, Packet, PacketKind, TenantId};
use qvisor_telemetry::TraceKind;
use qvisor_topology::NodeKind;
use qvisor_transport::{
    CbrDef, CbrSource, DatagramSink, FlowDef, ReliableReceiver, ReliableSender, SendReq,
};
use qvisor_workloads::{GeneratedCbr, GeneratedFlow};

/// A reliable flow to add to the simulation.
#[derive(Clone, Copy, Debug)]
pub struct NewFlow {
    /// Owning tenant.
    pub tenant: TenantId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Bytes to transfer.
    pub size: u64,
    /// Start time.
    pub start: Nanos,
    /// Optional absolute deadline (rank-function input only).
    pub deadline: Option<Nanos>,
    /// Fair-queueing weight.
    pub weight: u32,
}

impl NewFlow {
    /// A flow with weight 1 and no deadline.
    pub fn new(tenant: TenantId, src: NodeId, dst: NodeId, size: u64, start: Nanos) -> NewFlow {
        NewFlow {
            tenant,
            src,
            dst,
            size,
            start,
            deadline: None,
            weight: 1,
        }
    }
}

/// A CBR stream to add to the simulation.
#[derive(Clone, Copy, Debug)]
pub struct NewCbr {
    /// Owning tenant.
    pub tenant: TenantId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Rate in bits per second.
    pub rate_bps: u64,
    /// Datagram wire size, bytes.
    pub pkt_size: u32,
    /// Start time.
    pub start: Nanos,
    /// Stop time.
    pub stop: Nanos,
    /// Deadline = emission + offset.
    pub deadline_offset: Nanos,
}

pub(in crate::sim) enum FlowState {
    Reliable {
        sender: ReliableSender,
        receiver: ReliableReceiver,
    },
    Cbr {
        source: CbrSource,
        sink: DatagramSink,
    },
}

impl Simulation {
    fn assert_host(&self, n: NodeId) {
        assert_eq!(self.topo.node(n).kind, NodeKind::Host, "{n} is not a host");
    }

    /// Add a reliable flow; returns its id.
    pub fn add_flow(&mut self, f: NewFlow) -> FlowId {
        self.assert_host(f.src);
        self.assert_host(f.dst);
        assert_ne!(f.src, f.dst, "flow cannot target its own source");
        assert!(f.size > 0, "empty flow");
        let id = FlowId(self.flows.len() as u64);
        let def = FlowDef {
            id,
            tenant: f.tenant,
            src: f.src,
            dst: f.dst,
            size: f.size,
            start: f.start,
            deadline: f.deadline,
            weight: f.weight,
        };
        self.flows.push(FlowState::Reliable {
            sender: ReliableSender::new(def, self.cfg.mss, self.cfg.cwnd),
            receiver: ReliableReceiver::new(),
        });
        // Every engine instance records the flow state (the receiver half
        // runs on the destination's shard), but only the source's owner
        // schedules the start event and counts the flow toward doneness.
        if self.owns(f.src) {
            self.reliable_total += 1;
            self.events.schedule_keyed(
                f.start,
                EventKey::flow_event(f.src, id),
                (Event::FlowStart(id), None),
            );
        }
        id
    }

    /// Add a CBR stream; returns its id.
    pub fn add_cbr(&mut self, c: NewCbr) -> FlowId {
        self.assert_host(c.src);
        self.assert_host(c.dst);
        assert_ne!(c.src, c.dst, "stream cannot target its own source");
        let id = FlowId(self.flows.len() as u64);
        let def = CbrDef {
            id,
            tenant: c.tenant,
            src: c.src,
            dst: c.dst,
            rate_bps: c.rate_bps,
            pkt_size: c.pkt_size,
            start: c.start,
            stop: c.stop,
            deadline_offset: c.deadline_offset,
        };
        let source = CbrSource::new(def);
        let first = source.next_at().expect("fresh CBR source has emissions");
        self.flows.push(FlowState::Cbr {
            source,
            sink: DatagramSink::new(),
        });
        // As with reliable flows: the sink exists everywhere, but only the
        // source's owner emits and counts the stream as live.
        if self.owns(c.src) {
            self.cbr_live += 1;
            self.events.schedule_keyed(
                first,
                EventKey::flow_event(c.src, id),
                (Event::CbrEmit(id), None),
            );
        }
        id
    }

    /// Add a generated reliable flow (from `qvisor-workloads`).
    pub fn add_generated(&mut self, g: &GeneratedFlow) -> FlowId {
        self.add_flow(NewFlow {
            tenant: g.tenant,
            src: g.src,
            dst: g.dst,
            size: g.size,
            start: g.start,
            deadline: g.deadline,
            weight: 1,
        })
    }

    /// Add a generated CBR stream (from `qvisor-workloads`).
    pub fn add_generated_cbr(&mut self, g: &GeneratedCbr) -> FlowId {
        self.add_cbr(NewCbr {
            tenant: g.tenant,
            src: g.src,
            dst: g.dst,
            rate_bps: g.rate_bps,
            pkt_size: g.pkt_size,
            start: g.start,
            stop: g.stop,
            deadline_offset: g.deadline_offset,
        })
    }

    /// Retransmission timeout for `attempt` (exponential backoff, capped
    /// at 16x the base RTO) — bounds spurious retransmissions of packets
    /// starved behind their own flow's lower-ranked successors.
    fn rto_for(&self, attempt: u32) -> Nanos {
        self.cfg.rto * (1u64 << attempt.min(4))
    }

    /// Emit one data packet of a reliable flow. `attempt` is 0 for fresh
    /// sends and increments per retransmission of the same sequence.
    pub(in crate::sim) fn send_data(
        &mut self,
        flow: FlowId,
        req: SendReq,
        attempt: u32,
        now: Nanos,
    ) {
        let (def, acked) = match &self.flows[flow.index()] {
            FlowState::Reliable { sender, .. } => {
                (*sender.def(), sender.def().size - sender.remaining_bytes())
            }
            FlowState::Cbr { .. } => unreachable!("send_data on a CBR flow"),
        };
        let ctx = RankCtx {
            now,
            flow,
            flow_size: def.size,
            bytes_sent: acked,
            pkt_size: req.payload,
            deadline: def.deadline,
            weight: def.weight,
        };
        let rank = self.compute_rank(def.tenant, &ctx);
        let mut p = Packet::data(
            flow,
            def.tenant,
            req.seq,
            req.payload + self.cfg.header_bytes,
            def.src,
            def.dst,
            rank,
            now,
        );
        p.deadline = def.deadline;
        self.trace_pkt(&p, now, TraceKind::RankComputed { rank });
        self.tenant_mut(def.tenant).sent_pkts += 1;
        self.metrics(def.tenant).sent_pkts.inc();
        self.in_flight += 1;
        let rto = self.rto_for(attempt);
        self.events.schedule_keyed(
            now + rto,
            EventKey::timeout(def.src, flow, req.seq, attempt),
            (
                Event::Timeout {
                    flow,
                    seq: req.seq,
                    attempt,
                },
                None,
            ),
        );
        self.forward(def.src, p, now);
    }

    /// Emit one CBR datagram.
    pub(in crate::sim) fn emit_cbr(&mut self, flow: FlowId, now: Nanos) {
        let (def, emission) = match &mut self.flows[flow.index()] {
            FlowState::Cbr { source, .. } => (*source.def(), source.emit(now)),
            FlowState::Reliable { .. } => unreachable!("emit_cbr on a reliable flow"),
        };
        let Some((seq, deadline)) = emission else {
            self.cbr_live -= 1;
            return;
        };
        let ctx = RankCtx {
            now,
            flow,
            flow_size: u64::MAX / 2, // open-ended stream
            bytes_sent: seq * def.pkt_size as u64,
            pkt_size: def.pkt_size,
            deadline: Some(deadline),
            weight: 1,
        };
        let rank = self.compute_rank(def.tenant, &ctx);
        let mut p = Packet::data(
            flow,
            def.tenant,
            seq,
            def.pkt_size,
            def.src,
            def.dst,
            rank,
            now,
        );
        p.kind = PacketKind::Datagram;
        p.deadline = Some(deadline);
        if seq == 0 {
            self.trace_pkt(
                &p,
                now,
                TraceKind::FlowStart {
                    size: def.pkt_size as u64,
                },
            );
        }
        self.trace_pkt(&p, now, TraceKind::RankComputed { rank });
        self.tenant_mut(def.tenant).sent_pkts += 1;
        self.metrics(def.tenant).sent_pkts.inc();
        self.in_flight += 1;
        self.forward(def.src, p, now);

        // Schedule the next emission or retire the stream.
        match match &self.flows[flow.index()] {
            FlowState::Cbr { source, .. } => source.next_at(),
            FlowState::Reliable { .. } => unreachable!(),
        } {
            Some(at) => self.events.schedule_keyed(
                at,
                EventKey::flow_event(def.src, flow),
                (Event::CbrEmit(flow), None),
            ),
            None => self.cbr_live -= 1,
        }
    }
}
