//! Per-packet context handed to rank functions.

use qvisor_sim::{FlowId, Nanos};

/// Everything a rank function may look at when ranking one packet.
///
/// Built by the transport layer at the end host (the paper requires ranks
/// to be assigned *before* packets reach QVISOR's pre-processor, §3.1).
#[derive(Clone, Copy, Debug)]
pub struct RankCtx {
    /// Current simulation time.
    pub now: Nanos,
    /// The packet's flow.
    pub flow: FlowId,
    /// Total size of the flow in bytes (∞-like for unbounded streams).
    pub flow_size: u64,
    /// Bytes of the flow already handed to the network before this packet.
    pub bytes_sent: u64,
    /// This packet's size in bytes.
    pub pkt_size: u32,
    /// Absolute deadline, for deadline-constrained traffic.
    pub deadline: Option<Nanos>,
    /// Flow weight for fair-queueing policies (1 = default).
    pub weight: u32,
}

impl RankCtx {
    /// A minimal context for tests and simple sources.
    pub fn simple(now: Nanos, flow: FlowId, flow_size: u64, bytes_sent: u64) -> RankCtx {
        RankCtx {
            now,
            flow,
            flow_size,
            bytes_sent,
            pkt_size: 1500,
            deadline: None,
            weight: 1,
        }
    }

    /// Bytes of the flow not yet handed to the network (including this
    /// packet).
    pub fn bytes_remaining(&self) -> u64 {
        self.flow_size.saturating_sub(self.bytes_sent)
    }

    /// Time remaining until the deadline (zero if passed or absent).
    pub fn slack(&self) -> Nanos {
        match self.deadline {
            Some(d) => d.saturating_sub(self.now),
            None => Nanos::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_bytes() {
        let c = RankCtx::simple(Nanos::ZERO, FlowId(1), 10_000, 4_000);
        assert_eq!(c.bytes_remaining(), 6_000);
        let done = RankCtx::simple(Nanos::ZERO, FlowId(1), 10_000, 12_000);
        assert_eq!(done.bytes_remaining(), 0);
    }

    #[test]
    fn slack_saturates() {
        let mut c = RankCtx::simple(Nanos::from_micros(10), FlowId(1), 1, 0);
        assert_eq!(c.slack(), Nanos::ZERO); // no deadline
        c.deadline = Some(Nanos::from_micros(25));
        assert_eq!(c.slack(), Nanos::from_micros(15));
        c.deadline = Some(Nanos::from_micros(5)); // already passed
        assert_eq!(c.slack(), Nanos::ZERO);
    }
}
