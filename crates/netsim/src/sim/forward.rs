//! Device/port forwarding: the runtime monitor and pre-processor hookup,
//! queueing, link serialization, and arrival-side loss.

use super::{EventKey, Simulation};
use qvisor_core::Verdict;
use qvisor_sim::{stable_hash, transmission_time, Nanos, NodeId, Packet, PacketKind};
use qvisor_telemetry::{TraceKind, TraceRecord};
use qvisor_topology::NodeKind;

impl Simulation {
    /// Move a packet sitting at `at` one hop toward its destination.
    pub(in crate::sim) fn forward(&mut self, at: NodeId, mut p: Packet, now: Nanos) {
        // Runtime monitor polices raw ranks once, at the first hop.
        if at == p.src {
            if let Some(m) = self.monitor.as_mut() {
                use qvisor_core::{Observation, ViolationAction};
                if let Observation::Violation(action) = m.observe(&mut p, now) {
                    self.report.monitor_violations += 1;
                    if action == ViolationAction::Drop {
                        self.trace_pkt(&p, now, TraceKind::Drop { rank: p.txf_rank });
                        self.drop_packet(&p, at, now);
                        return;
                    }
                }
            }
        }
        // Pre-processor at the configured scope (idempotent: transforms
        // the original tenant rank, so re-applying per hop is safe).
        let scope = self
            .cfg
            .qvisor
            .as_ref()
            .map(|q| q.scope)
            .unwrap_or_default();
        let apply_here = match scope {
            crate::config::PreprocScope::Everywhere => true,
            crate::config::PreprocScope::SwitchesOnly => {
                self.topo.node(at).kind == NodeKind::Switch
            }
            crate::config::PreprocScope::FirstHopOnly => at == p.src,
        };
        if apply_here {
            let raw_rank = p.rank;
            if let Some(pre) = self.preproc.as_mut() {
                if pre.process(&mut p) == Verdict::Drop {
                    self.report.preproc_dropped += 1;
                    self.trace_pkt(&p, now, TraceKind::Drop { rank: p.txf_rank });
                    self.drop_packet(&p, at, now);
                    return;
                }
                self.trace_pkt(
                    &p,
                    now,
                    TraceKind::Transform {
                        pre: raw_rank,
                        post: p.txf_rank,
                    },
                );
            }
        }
        let next = self.routes.ecmp_next_hop(at, p.dst, p.flow);
        let port = self.port_of[at.index()][&next.0];
        let outcome = self.ports[at.index()][port].queue.enqueue(p, now);
        for victim in outcome.dropped() {
            self.drop_packet(&victim, at, now);
        }
        self.try_transmit(at, port, now);
    }

    pub(in crate::sim) fn drop_packet(&mut self, p: &Packet, at: NodeId, now: Nanos) {
        // Shards decrement for packets whose increment happened on the
        // sending shard, so local in-flight counts legitimately go
        // negative; only the sequential engine's must stay positive.
        debug_assert!(self.shard.is_some() || self.in_flight > 0);
        self.in_flight -= 1;
        *self.report.node_drops.entry(at).or_insert(0) += 1;
        if p.is_payload() {
            self.tenant_mut(p.tenant).dropped_pkts += 1;
            self.metrics(p.tenant).dropped_pkts.inc();
            self.cfg.monitor.on_drop(now, p.tenant.0);
        }
    }

    pub(in crate::sim) fn try_transmit(&mut self, node: NodeId, port: usize, now: Nanos) {
        let p = {
            let port_ref = &mut self.ports[node.index()][port];
            if port_ref.busy {
                return;
            }
            match port_ref.queue.dequeue(now) {
                Some(p) => p,
                None => return,
            }
        };
        let (rate, delay, to, trace_label) = {
            let port_ref = &mut self.ports[node.index()][port];
            port_ref.busy = true;
            port_ref.tx_pkts.inc();
            port_ref.tx_bytes.add(p.size as u64);
            (
                port_ref.rate_bps,
                port_ref.delay,
                port_ref.to,
                port_ref.trace_label,
            )
        };
        let tx = transmission_time(p.size as u64, rate);
        if self.cfg.tracer.sampled(p.flow.0) {
            self.cfg.tracer.record(
                TraceRecord::new(
                    now,
                    p.flow.0,
                    p.seq,
                    p.tenant.0,
                    TraceKind::TxStart {
                        bytes: p.size as u64,
                        tx_ns: tx.as_nanos(),
                        prop_ns: delay.as_nanos(),
                    },
                )
                .at_label(trace_label)
                .as_ack(matches!(p.kind, PacketKind::Ack { .. })),
            );
        }
        self.events.schedule_keyed(
            now + tx,
            EventKey::port_free(node, port),
            (super::Event::PortFree { node, port }, None),
        );
        let arrive_at = now + tx + delay;
        if !self.owns(to) {
            // The receiving node lives on another shard: hand the packet
            // to the coordinator instead of the local event queue. Cut
            // edges have delay >= the partition lookahead, so `arrive_at`
            // is always at or past the destination's window bound.
            self.outbox.push(super::sharded::Handoff {
                at: arrive_at,
                to,
                packet: p,
            });
            return;
        }
        let arrive_key = EventKey::arrive(to, &p);
        let slot = self.arena.insert(p);
        self.events.schedule_keyed(
            arrive_at,
            arrive_key,
            (super::Event::Arrive { node: to }, Some(slot)),
        );
    }

    /// Pure per-packet loss draw in `[0, 1)`: a deterministic hash of the
    /// packet instance's identity. Unlike a stateful RNG stream, the draw
    /// is independent of arrival-processing order, so the sequential and
    /// sharded engines make identical loss decisions.
    fn loss_draw(&self, node: NodeId, p: &Packet) -> f64 {
        const LOSS_SALT: u64 = 0x5157_4953_4C4F_5353; // "QWISLOSS"
        let h = stable_hash(&[
            LOSS_SALT,
            self.cfg.seed,
            p.flow.0,
            super::kind_tag(&p.kind),
            p.seq,
            p.sent_at.as_nanos(),
            node.index() as u64,
        ]);
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub(in crate::sim) fn on_arrive(&mut self, node: NodeId, p: Packet, now: Nanos) {
        if self.cfg.random_loss > 0.0 && self.loss_draw(node, &p) < self.cfg.random_loss {
            self.report.random_losses += 1;
            self.trace_pkt(&p, now, TraceKind::Drop { rank: p.txf_rank });
            self.drop_packet(&p, node, now);
            return;
        }
        if node == p.dst {
            self.deliver(p, now);
        } else {
            self.forward(node, p, now);
        }
    }
}
