//! Render a telemetry JSONL export in Prometheus text exposition format
//! (version 0.0.4).
//!
//! Like [`crate::report`] this is a pure read-side transform over the JSONL
//! schema: it compiles and works identically whether the `enabled` feature
//! is on or off, and whether the lines came from a live registry export,
//! an [`SloMonitor`](crate::monitor::SloMonitor) export, or a file on
//! disk. Counters and gauges map 1:1; log-bucketed histograms become
//! cumulative `_bucket{le="..."}` series (each bucket's upper bound is its
//! `le`) plus `_sum`/`_count`. Journal events and wall-clock profiles have
//! no exposition equivalent and are skipped.
//!
//! All metric names are prefixed `qvisor_` and sanitised to the exposition
//! grammar; label values are escaped per the spec.

use crate::report::{Export, HistLine, MetricLine};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Sanitise a name to the exposition grammar `[a-zA-Z0-9_:]+`.
fn sanitise(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Sanitise a metric name and prefix it with the `qvisor_` namespace.
fn metric_name(name: &str) -> String {
    format!("qvisor_{}", sanitise(name))
}

/// Escape a label value per the exposition format.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a label set (plus optional extra pair) as `{k="v",...}`, or the
/// empty string when there are no labels.
fn label_set(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitise(k), escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Format a float the exposition grammar accepts (integral values render
/// without an exponent; non-finite values per the spec).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

fn render_scalars(out: &mut String, metrics: &[MetricLine], kind: &str) {
    let mut by_name: BTreeMap<String, Vec<&MetricLine>> = BTreeMap::new();
    for m in metrics {
        by_name.entry(metric_name(&m.name)).or_default().push(m);
    }
    for (name, lines) in by_name {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for m in lines {
            let _ = writeln!(out, "{name}{} {}", label_set(&m.labels, None), m.value);
        }
    }
}

fn render_histograms(out: &mut String, hists: &[HistLine]) {
    let mut by_name: BTreeMap<String, Vec<&HistLine>> = BTreeMap::new();
    for h in hists {
        by_name.entry(metric_name(&h.name)).or_default().push(h);
    }
    for (name, lines) in by_name {
        let _ = writeln!(out, "# TYPE {name} histogram");
        for h in lines {
            let mut cum = 0u64;
            for &(_, hi, count) in &h.buckets {
                cum += count;
                let le = hi.to_string();
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cum}",
                    label_set(&h.labels, Some(("le", &le)))
                );
            }
            let _ = writeln!(
                out,
                "{name}_bucket{} {}",
                label_set(&h.labels, Some(("le", "+Inf"))),
                h.count
            );
            let sum = h.mean.map_or(0.0, |m| m * h.count as f64);
            let _ = writeln!(
                out,
                "{name}_sum{} {}",
                label_set(&h.labels, None),
                fmt_f64(sum)
            );
            let _ = writeln!(
                out,
                "{name}_count{} {}",
                label_set(&h.labels, None),
                h.count
            );
        }
    }
}

/// Render a parsed export as Prometheus text exposition.
pub fn render_export(export: &Export) -> String {
    let mut out = String::new();
    render_scalars(&mut out, &export.counters, "counter");
    render_scalars(&mut out, &export.gauges, "gauge");
    render_histograms(&mut out, &export.histograms);
    out
}

/// Parse a JSONL export and render it as Prometheus text exposition.
pub fn render(jsonl: &str) -> Result<String, String> {
    Ok(render_export(&crate::report::parse(jsonl)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        r#"{"type":"meta","schema":1,"journal_evicted":0,"journal_capacity":4096}"#,
        "\n",
        r#"{"type":"counter","name":"pkts_tx","labels":{"tenant":"0"},"value":10}"#,
        "\n",
        r#"{"type":"counter","name":"pkts_tx","labels":{"tenant":"1"},"value":20}"#,
        "\n",
        r#"{"type":"gauge","name":"depth","labels":{},"value":-1}"#,
        "\n",
        r#"{"type":"histogram","name":"fct_ns","labels":{"tenant":"0"},"count":3,"min":5,"max":9,"mean":7.0,"p50":5,"p90":9,"p99":9,"buckets":[[5,5,1],[9,9,2]]}"#,
        "\n",
        r#"{"type":"event","t_ns":7,"kind":"recompile","fields":{"version":2}}"#,
        "\n",
    );

    #[test]
    fn counters_and_gauges_expose_with_type_lines() {
        let text = render(SAMPLE).unwrap();
        assert!(text.contains("# TYPE qvisor_pkts_tx counter"), "{text}");
        assert!(text.contains("qvisor_pkts_tx{tenant=\"0\"} 10"), "{text}");
        assert!(text.contains("qvisor_pkts_tx{tenant=\"1\"} 20"), "{text}");
        assert!(text.contains("# TYPE qvisor_depth gauge"), "{text}");
        assert!(text.contains("\nqvisor_depth -1\n"), "{text}");
    }

    #[test]
    fn histograms_expose_cumulative_le_buckets() {
        let text = render(SAMPLE).unwrap();
        assert!(text.contains("# TYPE qvisor_fct_ns histogram"), "{text}");
        assert!(
            text.contains("qvisor_fct_ns_bucket{tenant=\"0\",le=\"5\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("qvisor_fct_ns_bucket{tenant=\"0\",le=\"9\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("qvisor_fct_ns_bucket{tenant=\"0\",le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("qvisor_fct_ns_sum{tenant=\"0\"} 21"),
            "{text}"
        );
        assert!(
            text.contains("qvisor_fct_ns_count{tenant=\"0\"} 3"),
            "{text}"
        );
    }

    #[test]
    fn events_and_meta_are_skipped() {
        let text = render(SAMPLE).unwrap();
        assert!(!text.contains("recompile"), "{text}");
        assert!(!text.contains("meta"), "{text}");
    }

    #[test]
    fn names_are_sanitised_and_labels_escaped() {
        let jsonl = concat!(
            r#"{"type":"counter","name":"weird.name-x","labels":{"q":"a\"b\\c"},"value":1}"#,
            "\n",
        );
        let text = render(jsonl).unwrap();
        assert!(text.contains("qvisor_weird_name_x"), "{text}");
        assert!(text.contains("q=\"a\\\"b\\\\c\""), "{text}");
    }

    #[test]
    fn empty_export_is_an_error_but_blank_render_is_empty() {
        assert!(render("").is_err());
        let text = render(r#"{"type":"meta","schema":1}"#).unwrap();
        assert_eq!(text, "");
    }

    #[test]
    fn every_line_matches_the_exposition_grammar() {
        // Cheap structural validation mirroring what the CI python check
        // does: every non-comment line is `name{labels} value`.
        let text = render(SAMPLE).unwrap();
        for line in text.lines() {
            if line.starts_with("# TYPE ") {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("{line}"));
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad name in {line}"
            );
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
                "bad value in {line}"
            );
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn live_export_renders_cleanly() {
        let t = crate::Telemetry::enabled();
        t.counter("pkts_tx", &[("tenant", "7")]).add(5);
        t.histogram("wait_ns", &[("queue", "n0.p0")]).record(1234);
        let text = render(&t.export_jsonl()).unwrap();
        assert!(text.contains("qvisor_pkts_tx{tenant=\"7\"} 5"), "{text}");
        assert!(text.contains("qvisor_wait_ns_bucket"), "{text}");
    }
}
