//! JSON round-trip for [`ScenarioSpec`] over `qvisor_sim::json`.
//!
//! Parsing is strict: unknown keys anywhere in the document are rejected
//! with the offending field's dotted path, and
//! [`ScenarioSpec::validate`] runs automatically so a parsed spec is
//! always runnable. Serialization always writes the full form (every
//! default made explicit), so parse → serialize → parse is the identity.

use super::spec::{
    AlertSpec, ArrivalSpec, CbrDecl, FlowDecl, MonitorSpec, QvisorSpec, ScenarioSpec,
    SchedulerSpec, SimSpec, SizeDistSpec, SynthSpec, TenantDecl, TimeRef, TopologySpec,
    ViolationSpec, WorkloadSpec,
};
use super::{field_err, ScenarioError, ScopeSpec};
use qvisor_ranking::RankFnSpec;
use qvisor_sim::json::Value;

fn check_keys(v: &Value, path: &str, allowed: &[&str]) -> Result<(), ScenarioError> {
    let obj = v
        .as_object()
        .ok_or_else(|| field_err(path, "must be an object"))?;
    for (key, _) in obj {
        if !allowed.contains(&key.as_str()) {
            return Err(field_err(
                format!("{path}.{key}"),
                format!("unknown field (allowed: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

/// The single key of an externally tagged enum object.
fn sole_key<'v>(
    v: &'v Value,
    path: &str,
    allowed: &[&str],
) -> Result<(&'v str, &'v Value), ScenarioError> {
    let obj = v
        .as_object()
        .ok_or_else(|| field_err(path, "must be a single-key object"))?;
    if obj.len() != 1 {
        return Err(field_err(
            path,
            format!("must have exactly one key of: {}", allowed.join(", ")),
        ));
    }
    let (key, inner) = &obj[0];
    if !allowed.contains(&key.as_str()) {
        return Err(field_err(
            format!("{path}.{key}"),
            format!("unknown variant (allowed: {})", allowed.join(", ")),
        ));
    }
    Ok((key.as_str(), inner))
}

fn get_u64(v: &Value, path: &str, key: &str) -> Result<u64, ScenarioError> {
    v.get(key)
        .ok_or_else(|| field_err(format!("{path}.{key}"), "missing required field"))?
        .as_u64()
        .ok_or_else(|| field_err(format!("{path}.{key}"), "must be an unsigned integer"))
}

fn get_usize(v: &Value, path: &str, key: &str) -> Result<usize, ScenarioError> {
    Ok(get_u64(v, path, key)? as usize)
}

fn get_u32(v: &Value, path: &str, key: &str) -> Result<u32, ScenarioError> {
    u32::try_from(get_u64(v, path, key)?)
        .map_err(|_| field_err(format!("{path}.{key}"), "must fit a u32"))
}

fn get_u16(v: &Value, path: &str, key: &str) -> Result<u16, ScenarioError> {
    u16::try_from(get_u64(v, path, key)?)
        .map_err(|_| field_err(format!("{path}.{key}"), "must fit a u16"))
}

fn get_f64(v: &Value, path: &str, key: &str) -> Result<f64, ScenarioError> {
    v.get(key)
        .ok_or_else(|| field_err(format!("{path}.{key}"), "missing required field"))?
        .as_f64()
        .ok_or_else(|| field_err(format!("{path}.{key}"), "must be a number"))
}

fn get_str<'v>(v: &'v Value, path: &str, key: &str) -> Result<&'v str, ScenarioError> {
    v.get(key)
        .ok_or_else(|| field_err(format!("{path}.{key}"), "missing required field"))?
        .as_str()
        .ok_or_else(|| field_err(format!("{path}.{key}"), "must be a string"))
}

fn opt_u64(v: &Value, path: &str, key: &str) -> Result<Option<u64>, ScenarioError> {
    match v.get(key) {
        None => Ok(None),
        Some(val) if val.is_null() => Ok(None),
        Some(val) => val
            .as_u64()
            .map(Some)
            .ok_or_else(|| field_err(format!("{path}.{key}"), "must be an unsigned integer")),
    }
}

fn time_ref_value(t: TimeRef) -> Value {
    match t {
        TimeRef::At(ns) => Value::object().set("at_ns", ns),
        TimeRef::AfterLastArrival(ns) => Value::object().set("after_last_arrival_ns", ns),
    }
}

fn time_ref_from(v: &Value, path: &str) -> Result<TimeRef, ScenarioError> {
    let (key, _) = sole_key(v, path, &["at_ns", "after_last_arrival_ns"])?;
    let ns = get_u64(v, path, key)?;
    Ok(match key {
        "at_ns" => TimeRef::At(ns),
        _ => TimeRef::AfterLastArrival(ns),
    })
}

fn scheduler_value(s: &SchedulerSpec) -> Value {
    match *s {
        SchedulerSpec::Fifo => Value::object().set("fifo", Value::object()),
        SchedulerSpec::Pifo => Value::object().set("pifo", Value::object()),
        SchedulerSpec::SpPifo { queues } => {
            Value::object().set("sp_pifo", Value::object().set("queues", queues))
        }
        SchedulerSpec::StrictStatic {
            queues,
            span_min,
            span_max,
        } => Value::object().set(
            "strict_static",
            Value::object()
                .set("queues", queues)
                .set("span_min", span_min)
                .set("span_max", span_max),
        ),
        SchedulerSpec::Aifo { window, burst } => Value::object().set(
            "aifo",
            Value::object().set("window", window).set("burst", burst),
        ),
        SchedulerSpec::FairTree { tenants } => {
            Value::object().set("fair_tree", Value::object().set("tenants", tenants))
        }
    }
}

fn scheduler_from(v: &Value, path: &str) -> Result<SchedulerSpec, ScenarioError> {
    let variants = [
        "fifo",
        "pifo",
        "sp_pifo",
        "strict_static",
        "aifo",
        "fair_tree",
    ];
    let (key, inner) = sole_key(v, path, &variants)?;
    let ipath = format!("{path}.{key}");
    Ok(match key {
        "fifo" => {
            check_keys(inner, &ipath, &[])?;
            SchedulerSpec::Fifo
        }
        "pifo" => {
            check_keys(inner, &ipath, &[])?;
            SchedulerSpec::Pifo
        }
        "sp_pifo" => {
            check_keys(inner, &ipath, &["queues"])?;
            SchedulerSpec::SpPifo {
                queues: get_usize(inner, &ipath, "queues")?,
            }
        }
        "strict_static" => {
            check_keys(inner, &ipath, &["queues", "span_min", "span_max"])?;
            SchedulerSpec::StrictStatic {
                queues: get_usize(inner, &ipath, "queues")?,
                span_min: get_u64(inner, &ipath, "span_min")?,
                span_max: get_u64(inner, &ipath, "span_max")?,
            }
        }
        "aifo" => {
            check_keys(inner, &ipath, &["window", "burst"])?;
            SchedulerSpec::Aifo {
                window: get_usize(inner, &ipath, "window")?,
                burst: get_f64(inner, &ipath, "burst")?,
            }
        }
        _ => {
            check_keys(inner, &ipath, &["tenants"])?;
            SchedulerSpec::FairTree {
                tenants: get_u16(inner, &ipath, "tenants")?,
            }
        }
    })
}

/// Allowed keys per rank-function algorithm, so unknown fields inside
/// `rank_fns[i].fn` are rejected before `RankFnSpec::from_value` (which
/// ignores extras).
fn check_rank_fn_keys(v: &Value, path: &str) -> Result<(), ScenarioError> {
    let algorithm = get_str(v, path, "algorithm")?;
    let allowed: &[&str] = match algorithm {
        "p_fabric" | "byte_count_fq" => &["algorithm", "unit_bytes", "max_rank"],
        "edf" | "arrival_time" => &["algorithm", "unit_ns", "max_rank"],
        "lstf" => &["algorithm", "unit_ns", "max_rank", "line_rate_bps"],
        "stfq" => &["algorithm", "max_rank"],
        "constant" => &["algorithm", "rank"],
        "multi_objective" => &["algorithm", "components", "resolution"],
        other => {
            return Err(field_err(
                format!("{path}.algorithm"),
                format!("unknown algorithm '{other}'"),
            ))
        }
    };
    check_keys(v, path, allowed)
}

fn topology_value(t: &TopologySpec) -> Value {
    match *t {
        TopologySpec::LeafSpine {
            leaves,
            spines,
            hosts_per_leaf,
            access_bps,
            fabric_bps,
            access_delay_ns,
            fabric_delay_ns,
        } => Value::object().set(
            "leaf_spine",
            Value::object()
                .set("leaves", leaves)
                .set("spines", spines)
                .set("hosts_per_leaf", hosts_per_leaf)
                .set("access_bps", access_bps)
                .set("fabric_bps", fabric_bps)
                .set("access_delay_ns", access_delay_ns)
                .set("fabric_delay_ns", fabric_delay_ns),
        ),
        TopologySpec::Dumbbell {
            pairs,
            edge_bps,
            bottleneck_bps,
            delay_ns,
        } => Value::object().set(
            "dumbbell",
            Value::object()
                .set("pairs", pairs)
                .set("edge_bps", edge_bps)
                .set("bottleneck_bps", bottleneck_bps)
                .set("delay_ns", delay_ns),
        ),
        TopologySpec::FatTree {
            arity,
            rate_bps,
            delay_ns,
        } => Value::object().set(
            "fat_tree",
            Value::object()
                .set("arity", arity)
                .set("rate_bps", rate_bps)
                .set("delay_ns", delay_ns),
        ),
    }
}

fn topology_from(v: &Value, path: &str) -> Result<TopologySpec, ScenarioError> {
    let (key, inner) = sole_key(v, path, &["leaf_spine", "dumbbell", "fat_tree"])?;
    let ipath = format!("{path}.{key}");
    Ok(match key {
        "leaf_spine" => {
            check_keys(
                inner,
                &ipath,
                &[
                    "leaves",
                    "spines",
                    "hosts_per_leaf",
                    "access_bps",
                    "fabric_bps",
                    "access_delay_ns",
                    "fabric_delay_ns",
                ],
            )?;
            TopologySpec::LeafSpine {
                leaves: get_usize(inner, &ipath, "leaves")?,
                spines: get_usize(inner, &ipath, "spines")?,
                hosts_per_leaf: get_usize(inner, &ipath, "hosts_per_leaf")?,
                access_bps: get_u64(inner, &ipath, "access_bps")?,
                fabric_bps: get_u64(inner, &ipath, "fabric_bps")?,
                access_delay_ns: get_u64(inner, &ipath, "access_delay_ns")?,
                fabric_delay_ns: get_u64(inner, &ipath, "fabric_delay_ns")?,
            }
        }
        "dumbbell" => {
            check_keys(
                inner,
                &ipath,
                &["pairs", "edge_bps", "bottleneck_bps", "delay_ns"],
            )?;
            TopologySpec::Dumbbell {
                pairs: get_usize(inner, &ipath, "pairs")?,
                edge_bps: get_u64(inner, &ipath, "edge_bps")?,
                bottleneck_bps: get_u64(inner, &ipath, "bottleneck_bps")?,
                delay_ns: get_u64(inner, &ipath, "delay_ns")?,
            }
        }
        _ => {
            check_keys(inner, &ipath, &["arity", "rate_bps", "delay_ns"])?;
            TopologySpec::FatTree {
                arity: get_usize(inner, &ipath, "arity")?,
                rate_bps: get_u64(inner, &ipath, "rate_bps")?,
                delay_ns: get_u64(inner, &ipath, "delay_ns")?,
            }
        }
    })
}

fn sim_value(s: &SimSpec) -> Value {
    let mut v = Value::object()
        .set("mss", s.mss)
        .set("header_bytes", s.header_bytes)
        .set("ack_bytes", s.ack_bytes)
        .set("cwnd", s.cwnd)
        .set("rto_ns", s.rto_ns)
        .set("buffer_bytes", s.buffer_bytes)
        .set("horizon", time_ref_value(s.horizon))
        .set("random_loss", s.random_loss);
    if let Some(ns) = s.sample_interval_ns {
        v = v.set("sample_interval_ns", ns);
    }
    if let Some(ns) = s.adaptation_interval_ns {
        v = v.set("adaptation_interval_ns", ns);
    }
    if s.shards != 1 {
        v = v.set("shards", s.shards as u64);
    }
    v
}

fn sim_from(v: &Value, path: &str) -> Result<SimSpec, ScenarioError> {
    check_keys(
        v,
        path,
        &[
            "mss",
            "header_bytes",
            "ack_bytes",
            "cwnd",
            "rto_ns",
            "buffer_bytes",
            "horizon",
            "random_loss",
            "sample_interval_ns",
            "adaptation_interval_ns",
            "shards",
        ],
    )?;
    let d = SimSpec::default();
    let opt_or = |key: &str, fallback: u64| -> Result<u64, ScenarioError> {
        Ok(opt_u64(v, path, key)?.unwrap_or(fallback))
    };
    Ok(SimSpec {
        mss: opt_or("mss", d.mss as u64)? as u32,
        header_bytes: opt_or("header_bytes", d.header_bytes as u64)? as u32,
        ack_bytes: opt_or("ack_bytes", d.ack_bytes as u64)? as u32,
        cwnd: opt_or("cwnd", d.cwnd as u64)? as u32,
        rto_ns: opt_or("rto_ns", d.rto_ns)?,
        buffer_bytes: opt_or("buffer_bytes", d.buffer_bytes)?,
        horizon: match v.get("horizon") {
            Some(h) => time_ref_from(h, &format!("{path}.horizon"))?,
            None => d.horizon,
        },
        random_loss: match v.get("random_loss") {
            Some(_) => get_f64(v, path, "random_loss")?,
            None => 0.0,
        },
        sample_interval_ns: opt_u64(v, path, "sample_interval_ns")?,
        adaptation_interval_ns: opt_u64(v, path, "adaptation_interval_ns")?,
        shards: opt_u64(v, path, "shards")?.map_or(1, |n| n as usize),
    })
}

fn qvisor_value(q: &QvisorSpec) -> Value {
    let tenants: Vec<Value> = q
        .tenants
        .iter()
        .map(|t| {
            let mut v = Value::object()
                .set("id", t.id)
                .set("name", t.name.as_str())
                .set("algorithm", t.algorithm.as_str())
                .set("rank_min", t.rank_min)
                .set("rank_max", t.rank_max);
            if let Some(levels) = t.levels {
                v = v.set("levels", levels);
            }
            v
        })
        .collect();
    let mut v = Value::object()
        .set("tenants", Value::from(tenants))
        .set("policy", q.policy.as_str())
        .set(
            "unknown",
            if q.unknown_drop {
                "drop"
            } else {
                "best_effort"
            },
        )
        .set(
            "scope",
            match q.scope {
                ScopeSpec::Everywhere => "everywhere",
                ScopeSpec::SwitchesOnly => "switches_only",
                ScopeSpec::FirstHopOnly => "first_hop_only",
            },
        );
    if let Some(m) = &q.monitor {
        v = v.set(
            "monitor",
            Value::object()
                .set(
                    "violation_action",
                    match m.violation_action {
                        ViolationSpec::Clamp => "clamp",
                        ViolationSpec::AlarmOnly => "alarm_only",
                        ViolationSpec::Drop => "drop",
                    },
                )
                .set("idle_after_ns", m.idle_after_ns)
                .set("drift_ratio", m.drift_ratio),
        );
    }
    if let Some(s) = &q.synth {
        v = v.set(
            "synth",
            Value::object()
                .set("default_levels", s.default_levels)
                .set("first_rank", s.first_rank)
                .set("pref_bias_divisor", s.pref_bias_divisor),
        );
    }
    v
}

fn qvisor_from(v: &Value, path: &str) -> Result<QvisorSpec, ScenarioError> {
    check_keys(
        v,
        path,
        &["tenants", "policy", "unknown", "scope", "monitor", "synth"],
    )?;
    let tenants_v = v
        .get("tenants")
        .and_then(|t| t.as_array())
        .ok_or_else(|| field_err(format!("{path}.tenants"), "must be an array"))?;
    let mut tenants = Vec::with_capacity(tenants_v.len());
    for (i, t) in tenants_v.iter().enumerate() {
        let tp = format!("{path}.tenants.{i}");
        check_keys(
            t,
            &tp,
            &["id", "name", "algorithm", "rank_min", "rank_max", "levels"],
        )?;
        tenants.push(TenantDecl {
            id: get_u16(t, &tp, "id")?,
            name: get_str(t, &tp, "name")?.to_string(),
            algorithm: get_str(t, &tp, "algorithm")?.to_string(),
            rank_min: get_u64(t, &tp, "rank_min")?,
            rank_max: get_u64(t, &tp, "rank_max")?,
            levels: opt_u64(t, &tp, "levels")?,
        });
    }
    let unknown_drop = match v.get("unknown").and_then(|u| u.as_str()) {
        None => false,
        Some("best_effort") => false,
        Some("drop") => true,
        Some(other) => {
            return Err(field_err(
                format!("{path}.unknown"),
                format!("unknown value '{other}' (allowed: best_effort, drop)"),
            ))
        }
    };
    let scope = match v.get("scope").and_then(|s| s.as_str()) {
        None => ScopeSpec::Everywhere,
        Some("everywhere") => ScopeSpec::Everywhere,
        Some("switches_only") => ScopeSpec::SwitchesOnly,
        Some("first_hop_only") => ScopeSpec::FirstHopOnly,
        Some(other) => {
            return Err(field_err(
                format!("{path}.scope"),
                format!(
                    "unknown value '{other}' (allowed: everywhere, switches_only, first_hop_only)"
                ),
            ))
        }
    };
    let monitor = match v.get("monitor") {
        None => None,
        Some(m) if m.is_null() => None,
        Some(m) => {
            let mp = format!("{path}.monitor");
            check_keys(
                m,
                &mp,
                &["violation_action", "idle_after_ns", "drift_ratio"],
            )?;
            let violation_action = match get_str(m, &mp, "violation_action")? {
                "clamp" => ViolationSpec::Clamp,
                "alarm_only" => ViolationSpec::AlarmOnly,
                "drop" => ViolationSpec::Drop,
                other => {
                    return Err(field_err(
                        format!("{mp}.violation_action"),
                        format!("unknown value '{other}' (allowed: clamp, alarm_only, drop)"),
                    ))
                }
            };
            Some(MonitorSpec {
                violation_action,
                idle_after_ns: get_u64(m, &mp, "idle_after_ns")?,
                drift_ratio: get_f64(m, &mp, "drift_ratio")?,
            })
        }
    };
    let synth = match v.get("synth") {
        None => None,
        Some(s) if s.is_null() => None,
        Some(s) => {
            let sp = format!("{path}.synth");
            check_keys(
                s,
                &sp,
                &["default_levels", "first_rank", "pref_bias_divisor"],
            )?;
            Some(SynthSpec {
                default_levels: get_u64(s, &sp, "default_levels")?,
                first_rank: get_u64(s, &sp, "first_rank")?,
                pref_bias_divisor: get_u64(s, &sp, "pref_bias_divisor")?,
            })
        }
    };
    Ok(QvisorSpec {
        tenants,
        policy: get_str(v, path, "policy")?.to_string(),
        unknown_drop,
        scope,
        monitor,
        synth,
    })
}

fn sizes_value(s: SizeDistSpec) -> Value {
    match s {
        SizeDistSpec::DataMining { scale_den } => {
            Value::object().set("data_mining", Value::object().set("scale_den", scale_den))
        }
        SizeDistSpec::WebSearch { scale_den } => {
            Value::object().set("web_search", Value::object().set("scale_den", scale_den))
        }
        SizeDistSpec::Fixed { bytes } => {
            Value::object().set("fixed", Value::object().set("bytes", bytes))
        }
        SizeDistSpec::Uniform { min, max } => {
            Value::object().set("uniform", Value::object().set("min", min).set("max", max))
        }
    }
}

fn sizes_from(v: &Value, path: &str) -> Result<SizeDistSpec, ScenarioError> {
    let (key, inner) = sole_key(v, path, &["data_mining", "web_search", "fixed", "uniform"])?;
    let ipath = format!("{path}.{key}");
    Ok(match key {
        "data_mining" => {
            check_keys(inner, &ipath, &["scale_den"])?;
            SizeDistSpec::DataMining {
                scale_den: get_u64(inner, &ipath, "scale_den")?,
            }
        }
        "web_search" => {
            check_keys(inner, &ipath, &["scale_den"])?;
            SizeDistSpec::WebSearch {
                scale_den: get_u64(inner, &ipath, "scale_den")?,
            }
        }
        "fixed" => {
            check_keys(inner, &ipath, &["bytes"])?;
            SizeDistSpec::Fixed {
                bytes: get_u64(inner, &ipath, "bytes")?,
            }
        }
        _ => {
            check_keys(inner, &ipath, &["min", "max"])?;
            SizeDistSpec::Uniform {
                min: get_u64(inner, &ipath, "min")?,
                max: get_u64(inner, &ipath, "max")?,
            }
        }
    })
}

fn workload_value(w: &WorkloadSpec) -> Value {
    match w {
        WorkloadSpec::Poisson {
            tenant,
            flows,
            sizes,
            arrival,
            rng_stream,
        } => Value::object().set(
            "poisson",
            Value::object()
                .set("tenant", *tenant)
                .set("flows", *flows)
                .set("sizes", sizes_value(*sizes))
                .set(
                    "arrival",
                    match arrival {
                        ArrivalSpec::Load(l) => Value::object().set("load", *l),
                        ArrivalSpec::RateFlowsPerSec(r) => {
                            Value::object().set("rate_flows_per_sec", *r)
                        }
                    },
                )
                .set("rng_stream", *rng_stream),
        ),
        WorkloadSpec::CbrFleet {
            tenant,
            streams,
            rate_bps,
            pkt_size,
            start_ns,
            stop,
            deadline_offset_ns,
            rng_stream,
        } => Value::object().set(
            "cbr_fleet",
            Value::object()
                .set("tenant", *tenant)
                .set("streams", *streams)
                .set("rate_bps", *rate_bps)
                .set("pkt_size", *pkt_size)
                .set("start_ns", *start_ns)
                .set("stop", time_ref_value(*stop))
                .set("deadline_offset_ns", *deadline_offset_ns)
                .set("rng_stream", *rng_stream),
        ),
        WorkloadSpec::Flows { list } => {
            let items: Vec<Value> = list
                .iter()
                .map(|f| {
                    let mut v = Value::object()
                        .set("tenant", f.tenant)
                        .set("src_host", f.src_host)
                        .set("dst_host", f.dst_host)
                        .set("size", f.size)
                        .set("start_ns", f.start_ns);
                    if let Some(d) = f.deadline_ns {
                        v = v.set("deadline_ns", d);
                    }
                    v.set("weight", f.weight)
                })
                .collect();
            Value::object().set("flows", Value::object().set("list", Value::from(items)))
        }
        WorkloadSpec::Cbr { list } => {
            let items: Vec<Value> = list
                .iter()
                .map(|c| {
                    Value::object()
                        .set("tenant", c.tenant)
                        .set("src_host", c.src_host)
                        .set("dst_host", c.dst_host)
                        .set("rate_bps", c.rate_bps)
                        .set("pkt_size", c.pkt_size)
                        .set("start_ns", c.start_ns)
                        .set("stop", time_ref_value(c.stop))
                        .set("deadline_offset_ns", c.deadline_offset_ns)
                })
                .collect();
            Value::object().set("cbr", Value::object().set("list", Value::from(items)))
        }
    }
}

fn workload_from(v: &Value, path: &str) -> Result<WorkloadSpec, ScenarioError> {
    let (key, inner) = sole_key(v, path, &["poisson", "cbr_fleet", "flows", "cbr"])?;
    let ipath = format!("{path}.{key}");
    Ok(match key {
        "poisson" => {
            check_keys(
                inner,
                &ipath,
                &["tenant", "flows", "sizes", "arrival", "rng_stream"],
            )?;
            let arrival_v = inner
                .get("arrival")
                .ok_or_else(|| field_err(format!("{ipath}.arrival"), "missing required field"))?;
            let apath = format!("{ipath}.arrival");
            let (akey, _) = sole_key(arrival_v, &apath, &["load", "rate_flows_per_sec"])?;
            let arrival = match akey {
                "load" => ArrivalSpec::Load(get_f64(arrival_v, &apath, "load")?),
                _ => {
                    ArrivalSpec::RateFlowsPerSec(get_f64(arrival_v, &apath, "rate_flows_per_sec")?)
                }
            };
            WorkloadSpec::Poisson {
                tenant: get_u16(inner, &ipath, "tenant")?,
                flows: get_usize(inner, &ipath, "flows")?,
                sizes: sizes_from(
                    inner.get("sizes").ok_or_else(|| {
                        field_err(format!("{ipath}.sizes"), "missing required field")
                    })?,
                    &format!("{ipath}.sizes"),
                )?,
                arrival,
                rng_stream: get_u64(inner, &ipath, "rng_stream")?,
            }
        }
        "cbr_fleet" => {
            check_keys(
                inner,
                &ipath,
                &[
                    "tenant",
                    "streams",
                    "rate_bps",
                    "pkt_size",
                    "start_ns",
                    "stop",
                    "deadline_offset_ns",
                    "rng_stream",
                ],
            )?;
            WorkloadSpec::CbrFleet {
                tenant: get_u16(inner, &ipath, "tenant")?,
                streams: get_usize(inner, &ipath, "streams")?,
                rate_bps: get_u64(inner, &ipath, "rate_bps")?,
                pkt_size: get_u32(inner, &ipath, "pkt_size")?,
                start_ns: get_u64(inner, &ipath, "start_ns")?,
                stop: time_ref_from(
                    inner.get("stop").ok_or_else(|| {
                        field_err(format!("{ipath}.stop"), "missing required field")
                    })?,
                    &format!("{ipath}.stop"),
                )?,
                deadline_offset_ns: get_u64(inner, &ipath, "deadline_offset_ns")?,
                rng_stream: get_u64(inner, &ipath, "rng_stream")?,
            }
        }
        "flows" => {
            check_keys(inner, &ipath, &["list"])?;
            let items = inner
                .get("list")
                .and_then(|l| l.as_array())
                .ok_or_else(|| field_err(format!("{ipath}.list"), "must be an array"))?;
            let mut list = Vec::with_capacity(items.len());
            for (i, f) in items.iter().enumerate() {
                let fp = format!("{ipath}.list.{i}");
                check_keys(
                    f,
                    &fp,
                    &[
                        "tenant",
                        "src_host",
                        "dst_host",
                        "size",
                        "start_ns",
                        "deadline_ns",
                        "weight",
                    ],
                )?;
                list.push(FlowDecl {
                    tenant: get_u16(f, &fp, "tenant")?,
                    src_host: get_usize(f, &fp, "src_host")?,
                    dst_host: get_usize(f, &fp, "dst_host")?,
                    size: get_u64(f, &fp, "size")?,
                    start_ns: get_u64(f, &fp, "start_ns")?,
                    deadline_ns: opt_u64(f, &fp, "deadline_ns")?,
                    weight: match f.get("weight") {
                        Some(_) => get_u32(f, &fp, "weight")?,
                        None => 1,
                    },
                });
            }
            WorkloadSpec::Flows { list }
        }
        _ => {
            check_keys(inner, &ipath, &["list"])?;
            let items = inner
                .get("list")
                .and_then(|l| l.as_array())
                .ok_or_else(|| field_err(format!("{ipath}.list"), "must be an array"))?;
            let mut list = Vec::with_capacity(items.len());
            for (i, c) in items.iter().enumerate() {
                let cp = format!("{ipath}.list.{i}");
                check_keys(
                    c,
                    &cp,
                    &[
                        "tenant",
                        "src_host",
                        "dst_host",
                        "rate_bps",
                        "pkt_size",
                        "start_ns",
                        "stop",
                        "deadline_offset_ns",
                    ],
                )?;
                list.push(CbrDecl {
                    tenant: get_u16(c, &cp, "tenant")?,
                    src_host: get_usize(c, &cp, "src_host")?,
                    dst_host: get_usize(c, &cp, "dst_host")?,
                    rate_bps: get_u64(c, &cp, "rate_bps")?,
                    pkt_size: get_u32(c, &cp, "pkt_size")?,
                    start_ns: get_u64(c, &cp, "start_ns")?,
                    stop: time_ref_from(
                        c.get("stop").ok_or_else(|| {
                            field_err(format!("{cp}.stop"), "missing required field")
                        })?,
                        &format!("{cp}.stop"),
                    )?,
                    deadline_offset_ns: get_u64(c, &cp, "deadline_offset_ns")?,
                });
            }
            WorkloadSpec::Cbr { list }
        }
    })
}

fn alert_value(a: &AlertSpec) -> Value {
    Value::object()
        .set("metric", a.metric.as_str())
        .set("tenant", a.tenant)
        .set("window_ns", a.window_ns)
        .set("threshold", a.threshold)
}

fn alert_from(v: &Value, path: &str) -> Result<AlertSpec, ScenarioError> {
    check_keys(v, path, &["metric", "tenant", "window_ns", "threshold"])?;
    Ok(AlertSpec {
        metric: get_str(v, path, "metric")?.to_string(),
        tenant: get_u16(v, path, "tenant")?,
        window_ns: get_u64(v, path, "window_ns")?,
        threshold: get_f64(v, path, "threshold")?,
    })
}

impl ScenarioSpec {
    /// Render as a JSON value (full form: every default explicit).
    pub fn to_value(&self) -> Value {
        let rank_fns: Vec<Value> = self
            .rank_fns
            .iter()
            .map(|(tenant, spec)| {
                Value::object()
                    .set("tenant", *tenant)
                    .set("fn", spec.to_value())
            })
            .collect();
        let workloads: Vec<Value> = self.workloads.iter().map(workload_value).collect();
        let mut v = Value::object()
            .set("name", self.name.as_str())
            .set("seed", self.seed)
            .set("topology", topology_value(&self.topology))
            .set("sim", sim_value(&self.sim))
            .set("scheduler", scheduler_value(&self.scheduler));
        if let Some(hs) = &self.host_scheduler {
            v = v.set("host_scheduler", scheduler_value(hs));
        }
        if let Some(q) = &self.qvisor {
            v = v.set("qvisor", qvisor_value(q));
        }
        v = v
            .set("rank_fns", Value::from(rank_fns))
            .set("workloads", Value::from(workloads));
        if !self.alerts.is_empty() {
            let alerts: Vec<Value> = self.alerts.iter().map(alert_value).collect();
            v = v.set("alerts", Value::from(alerts));
        }
        v
    }

    /// Parse from a JSON value; strict about unknown keys and validates
    /// every cross-field constraint.
    pub fn from_value(v: &Value) -> Result<ScenarioSpec, ScenarioError> {
        check_keys(
            v,
            "scenario",
            &[
                "name",
                "seed",
                "topology",
                "sim",
                "scheduler",
                "host_scheduler",
                "qvisor",
                "rank_fns",
                "workloads",
                "alerts",
            ],
        )?;
        let topology = topology_from(
            v.get("topology")
                .ok_or_else(|| field_err("topology", "missing required field"))?,
            "topology",
        )?;
        let sim = match v.get("sim") {
            Some(s) => sim_from(s, "sim")?,
            None => SimSpec::default(),
        };
        let scheduler = match v.get("scheduler") {
            Some(s) => scheduler_from(s, "scheduler")?,
            None => SchedulerSpec::Pifo,
        };
        let host_scheduler = match v.get("host_scheduler") {
            None => None,
            Some(s) if s.is_null() => None,
            Some(s) => Some(scheduler_from(s, "host_scheduler")?),
        };
        let qvisor = match v.get("qvisor") {
            None => None,
            Some(q) if q.is_null() => None,
            Some(q) => Some(qvisor_from(q, "qvisor")?),
        };
        let mut rank_fns = Vec::new();
        if let Some(list) = v.get("rank_fns") {
            let items = list
                .as_array()
                .ok_or_else(|| field_err("rank_fns", "must be an array"))?;
            for (i, item) in items.iter().enumerate() {
                let rp = format!("rank_fns.{i}");
                check_keys(item, &rp, &["tenant", "fn"])?;
                let f = item
                    .get("fn")
                    .ok_or_else(|| field_err(format!("{rp}.fn"), "missing required field"))?;
                check_rank_fn_keys(f, &format!("{rp}.fn"))?;
                let spec = RankFnSpec::from_value(f).map_err(ScenarioError::Json)?;
                rank_fns.push((get_u16(item, &rp, "tenant")?, spec));
            }
        }
        let mut workloads = Vec::new();
        if let Some(list) = v.get("workloads") {
            let items = list
                .as_array()
                .ok_or_else(|| field_err("workloads", "must be an array"))?;
            for (i, item) in items.iter().enumerate() {
                workloads.push(workload_from(item, &format!("workloads.{i}"))?);
            }
        }
        let mut alerts = Vec::new();
        if let Some(list) = v.get("alerts") {
            let items = list
                .as_array()
                .ok_or_else(|| field_err("alerts", "must be an array"))?;
            for (i, item) in items.iter().enumerate() {
                alerts.push(alert_from(item, &format!("alerts.{i}"))?);
            }
        }
        let spec = ScenarioSpec {
            name: match v.get("name") {
                Some(n) => n
                    .as_str()
                    .ok_or_else(|| field_err("name", "must be a string"))?
                    .to_string(),
                None => String::new(),
            },
            seed: match v.get("seed") {
                Some(_) => get_u64(v, "scenario", "seed")?,
                None => 1,
            },
            topology,
            sim,
            scheduler,
            host_scheduler,
            qvisor,
            rank_fns,
            workloads,
            alerts,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_pretty()
    }

    /// Parse and validate a JSON document.
    pub fn from_json(text: &str) -> Result<ScenarioSpec, ScenarioError> {
        ScenarioSpec::from_value(&Value::parse(text).map_err(ScenarioError::Json)?)
    }
}
