//! Hierarchical PIFO trees (Sivaraman et al., SIGCOMM '16; the §5
//! "increasing specification expressivity" direction of the QVISOR paper).
//!
//! A PIFO tree schedules hierarchically: each internal node is a PIFO over
//! its *children*, each leaf a PIFO over packets. A packet enqueues with a
//! rank for every node on its root-to-leaf path; dequeue pops the root's
//! best child, recursing until a packet emerges. This expresses policies
//! flat PIFOs cannot, e.g. "fair-share between tenant groups, SRPT within
//! each" with per-group isolation of the fair shares.

use crate::queue::{Capacity, Enqueue, PacketQueue};
use qvisor_sim::{Nanos, Packet, Rank};
use std::collections::BTreeMap;

/// One step of a packet's path: the rank to use at that tree level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathStep {
    /// Child index to descend into (at the root: index into the root's
    /// children; and so on).
    pub child: usize,
    /// Rank for the PIFO at the *parent* of that child.
    pub rank: Rank,
}

/// A packet's full scheduling path: one step per tree level, ending at a
/// leaf, plus the rank within the leaf PIFO.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreePath {
    /// Steps from the root downwards.
    pub steps: Vec<PathStep>,
    /// Rank inside the leaf PIFO.
    pub leaf_rank: Rank,
}

/// Assigns a [`TreePath`] to each packet (the "scheduling transaction" of
/// the PIFO-tree model).
pub trait TreeClassifier {
    /// Path for `p`. Must match the tree's shape.
    fn classify(&mut self, p: &Packet) -> TreePath;
}

impl<F: FnMut(&Packet) -> TreePath> TreeClassifier for F {
    fn classify(&mut self, p: &Packet) -> TreePath {
        self(p)
    }
}

/// Tree shape: an internal node lists its children; a leaf holds packets.
#[derive(Clone, Debug)]
pub enum TreeShape {
    /// An internal scheduling node.
    Internal(Vec<TreeShape>),
    /// A leaf queue.
    Leaf,
}

#[derive(Debug)]
enum Node {
    Internal {
        children: Vec<usize>,
        /// PIFO over child *occurrences*: (rank, seq) -> child slot index.
        pifo: BTreeMap<(Rank, u64), usize>,
        seq: u64,
    },
    Leaf {
        pifo: BTreeMap<(Rank, u64), Packet>,
        seq: u64,
    },
}

/// A hierarchical PIFO scheduler.
///
/// The whole tree shares one byte budget with tail-drop admission (the
/// worst-drop policies of flat PIFOs do not generalize cleanly to trees,
/// where "worst" is path-dependent).
pub struct PifoTree<C: TreeClassifier> {
    nodes: Vec<Node>,
    root: usize,
    classifier: C,
    capacity: Capacity,
    bytes: u64,
    len: usize,
}

impl<C: TreeClassifier> PifoTree<C> {
    /// Build a tree of `shape` with `classifier` assigning paths.
    pub fn new(shape: &TreeShape, classifier: C, capacity: Capacity) -> PifoTree<C> {
        let mut nodes = Vec::new();
        let root = Self::build(shape, &mut nodes);
        PifoTree {
            nodes,
            root,
            classifier,
            capacity,
            bytes: 0,
            len: 0,
        }
    }

    fn build(shape: &TreeShape, nodes: &mut Vec<Node>) -> usize {
        match shape {
            TreeShape::Leaf => {
                nodes.push(Node::Leaf {
                    pifo: BTreeMap::new(),
                    seq: 0,
                });
                nodes.len() - 1
            }
            TreeShape::Internal(children) => {
                let child_ids: Vec<usize> =
                    children.iter().map(|c| Self::build(c, nodes)).collect();
                nodes.push(Node::Internal {
                    children: child_ids,
                    pifo: BTreeMap::new(),
                    seq: 0,
                });
                nodes.len() - 1
            }
        }
    }

    /// Number of tree nodes (for tests).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl<C: TreeClassifier> PacketQueue for PifoTree<C> {
    fn enqueue(&mut self, p: Packet, _now: Nanos) -> Enqueue {
        if !self.capacity.fits(self.bytes, p.size as u64) {
            return Enqueue::Rejected(Box::new(p));
        }
        let path = self.classifier.classify(&p);
        // Walk down, inserting a reference at each internal node.
        let mut at = self.root;
        for step in &path.steps {
            match &mut self.nodes[at] {
                Node::Internal {
                    children,
                    pifo,
                    seq,
                } => {
                    assert!(
                        step.child < children.len(),
                        "classifier path step out of range"
                    );
                    pifo.insert((step.rank, *seq), step.child);
                    *seq += 1;
                    at = children[step.child];
                }
                Node::Leaf { .. } => panic!("classifier path longer than tree depth"),
            }
        }
        match &mut self.nodes[at] {
            Node::Leaf { pifo, seq } => {
                self.bytes += p.size as u64;
                self.len += 1;
                pifo.insert((path.leaf_rank, *seq), p);
                *seq += 1;
                Enqueue::Accepted
            }
            Node::Internal { .. } => panic!("classifier path shorter than tree depth"),
        }
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<Packet> {
        if self.len == 0 {
            return None;
        }
        let mut at = self.root;
        loop {
            match &mut self.nodes[at] {
                Node::Internal { children, pifo, .. } => {
                    let (&key, _) = pifo.first_key_value()?;
                    let child = pifo.remove(&key).expect("key just observed");
                    at = children[child];
                }
                Node::Leaf { pifo, .. } => {
                    let (&key, _) = pifo.first_key_value()?;
                    let p = pifo.remove(&key).expect("key just observed");
                    self.bytes -= p.size as u64;
                    self.len -= 1;
                    return Some(p);
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }

    fn head_rank(&self) -> Option<Rank> {
        // The root's best entry rank (the tree's next scheduling decision).
        match &self.nodes[self.root] {
            Node::Internal { pifo, .. } => pifo.keys().next().map(|&(r, _)| r),
            Node::Leaf { pifo, .. } => pifo.keys().next().map(|&(r, _)| r),
        }
    }

    fn kind(&self) -> &'static str {
        "pifo_tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvisor_sim::{FlowId, NodeId, TenantId};

    fn pkt(tenant: u16, seq: u64, rank: Rank) -> Packet {
        let mut p = Packet::data(
            FlowId(tenant as u64),
            TenantId(tenant),
            seq,
            100,
            NodeId(0),
            NodeId(1),
            rank,
            Nanos::ZERO,
        );
        p.txf_rank = rank;
        p
    }

    /// Two-tenant tree: root PIFO round-robins by a per-tenant virtual
    /// counter, leaves run SRPT within the tenant.
    fn two_tenant_tree() -> PifoTree<impl FnMut(&Packet) -> TreePath> {
        let shape = TreeShape::Internal(vec![TreeShape::Leaf, TreeShape::Leaf]);
        let mut counters = [0u64; 2];
        let classifier = move |p: &Packet| {
            let t = (p.tenant.0 - 1) as usize;
            counters[t] += 1;
            TreePath {
                steps: vec![PathStep {
                    child: t,
                    rank: counters[t], // per-tenant virtual time = fairness
                }],
                leaf_rank: p.txf_rank, // SRPT within the tenant
            }
        };
        PifoTree::new(&shape, classifier, Capacity::UNBOUNDED)
    }

    #[test]
    fn tree_shape_builds() {
        let t = two_tenant_tree();
        assert_eq!(t.node_count(), 3);
    }

    #[test]
    fn fair_across_tenants_srpt_within() {
        let mut t = two_tenant_tree();
        // Tenant 1 floods first with big ranks; tenant 2 arrives later.
        for i in 0..4 {
            t.enqueue(pkt(1, i, 100 - i), Nanos::ZERO);
        }
        for i in 0..4 {
            t.enqueue(pkt(2, 10 + i, 50 - i), Nanos::ZERO);
        }
        let order: Vec<u16> = std::iter::from_fn(|| t.dequeue(Nanos::ZERO))
            .map(|p| p.tenant.0)
            .collect();
        // Root fairness interleaves tenants 1:1 despite tenant 1's head
        // start in arrival order.
        assert_eq!(order, vec![1, 2, 1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn leaf_order_is_rank_order() {
        let mut t = two_tenant_tree();
        for (i, r) in [9u64, 1, 5].into_iter().enumerate() {
            t.enqueue(pkt(1, i as u64, r), Nanos::ZERO);
        }
        let ranks: Vec<Rank> = std::iter::from_fn(|| t.dequeue(Nanos::ZERO))
            .map(|p| p.txf_rank)
            .collect();
        assert_eq!(ranks, vec![1, 5, 9], "SRPT within the tenant leaf");
    }

    #[test]
    fn capacity_tail_drops() {
        let shape = TreeShape::Internal(vec![TreeShape::Leaf]);
        let classifier = |p: &Packet| TreePath {
            steps: vec![PathStep { child: 0, rank: 0 }],
            leaf_rank: p.txf_rank,
        };
        let mut t = PifoTree::new(&shape, classifier, Capacity::bytes(200));
        assert!(t.enqueue(pkt(1, 0, 1), Nanos::ZERO).accepted());
        assert!(t.enqueue(pkt(1, 1, 2), Nanos::ZERO).accepted());
        assert!(!t.enqueue(pkt(1, 2, 0), Nanos::ZERO).accepted());
        assert_eq!(t.len(), 2);
        assert_eq!(t.bytes(), 200);
    }

    #[test]
    fn three_level_hierarchy() {
        // Root: strict by group rank; groups: two leaves each.
        let shape = TreeShape::Internal(vec![
            TreeShape::Internal(vec![TreeShape::Leaf, TreeShape::Leaf]),
            TreeShape::Internal(vec![TreeShape::Leaf, TreeShape::Leaf]),
        ]);
        // Tenants 1,2 -> group 0; tenants 3,4 -> group 1 (lower priority).
        let classifier = |p: &Packet| {
            let t = p.tenant.0 as usize - 1;
            TreePath {
                steps: vec![
                    PathStep {
                        child: t / 2,
                        rank: (t / 2) as u64, // strict: group 0 first
                    },
                    PathStep {
                        child: t % 2,
                        rank: p.txf_rank,
                    },
                ],
                leaf_rank: p.txf_rank,
            }
        };
        let mut tree = PifoTree::new(&shape, classifier, Capacity::UNBOUNDED);
        assert_eq!(tree.node_count(), 7);
        tree.enqueue(pkt(3, 0, 1), Nanos::ZERO);
        tree.enqueue(pkt(1, 1, 9), Nanos::ZERO);
        tree.enqueue(pkt(4, 2, 2), Nanos::ZERO);
        tree.enqueue(pkt(2, 3, 5), Nanos::ZERO);
        let order: Vec<u16> = std::iter::from_fn(|| tree.dequeue(Nanos::ZERO))
            .map(|p| p.tenant.0)
            .collect();
        // Group 0 (tenants 1,2) strictly first — by rank within (2's 5
        // beats 1's 9) — then group 1 by rank (3's 1 beats 4's 2).
        assert_eq!(order, vec![2, 1, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "path step out of range")]
    fn bad_classifier_is_caught() {
        let shape = TreeShape::Internal(vec![TreeShape::Leaf]);
        let classifier = |_: &Packet| TreePath {
            steps: vec![PathStep { child: 7, rank: 0 }],
            leaf_rank: 0,
        };
        let mut t = PifoTree::new(&shape, classifier, Capacity::UNBOUNDED);
        t.enqueue(pkt(1, 0, 0), Nanos::ZERO);
    }
}
