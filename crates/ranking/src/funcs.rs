//! The rank function implementations.

use crate::ctx::RankCtx;
use crate::range::RankRange;
use crate::RankFn;
use qvisor_sim::{FlowId, Nanos, Rank};
use std::collections::HashMap;

/// pFabric / SRPT: rank = remaining flow size (Alizadeh et al.,
/// SIGCOMM '13). Short (remainders of) flows preempt long ones, minimizing
/// mean FCT.
#[derive(Clone, Debug)]
pub struct PFabric {
    /// Bytes per rank unit (quantization of remaining size).
    unit_bytes: u64,
    /// Largest emitted rank; larger remainders clamp here.
    max_rank: Rank,
}

impl PFabric {
    /// Ranks are `remaining_bytes / unit_bytes`, clamped to `max_rank`.
    ///
    /// # Panics
    /// Panics if `unit_bytes` is zero.
    pub fn new(unit_bytes: u64, max_rank: Rank) -> PFabric {
        assert!(unit_bytes > 0, "unit must be positive");
        PFabric {
            unit_bytes,
            max_rank,
        }
    }

    /// The paper-style default: 1 KB units, remainders up to 100 MB.
    pub fn default_datacenter() -> PFabric {
        PFabric::new(1_000, 100_000)
    }
}

impl RankFn for PFabric {
    fn rank(&mut self, ctx: &RankCtx) -> Rank {
        (ctx.bytes_remaining() / self.unit_bytes).min(self.max_rank)
    }

    fn range(&self) -> RankRange {
        RankRange::new(0, self.max_rank)
    }

    fn name(&self) -> &'static str {
        "pFabric"
    }
}

/// Earliest-deadline-first: rank = time to deadline (slack), so the most
/// urgent deadline dequeues first.
#[derive(Clone, Debug)]
pub struct Edf {
    /// Nanoseconds per rank unit.
    unit: Nanos,
    /// Largest emitted rank (slacks beyond `unit * max_rank` clamp).
    max_rank: Rank,
}

impl Edf {
    /// Ranks are `slack / unit`, clamped to `max_rank`. Packets without a
    /// deadline rank last (`max_rank`).
    ///
    /// # Panics
    /// Panics if `unit` is zero.
    pub fn new(unit: Nanos, max_rank: Rank) -> Edf {
        assert!(unit > Nanos::ZERO, "unit must be positive");
        Edf { unit, max_rank }
    }

    /// Microsecond-granularity EDF with a 10 ms horizon.
    pub fn default_datacenter() -> Edf {
        Edf::new(Nanos::from_micros(1), 10_000)
    }
}

impl RankFn for Edf {
    fn rank(&mut self, ctx: &RankCtx) -> Rank {
        match ctx.deadline {
            Some(_) => (ctx.slack().as_nanos() / self.unit.as_nanos()).min(self.max_rank),
            None => self.max_rank,
        }
    }

    fn range(&self) -> RankRange {
        RankRange::new(0, self.max_rank)
    }

    fn name(&self) -> &'static str {
        "EDF"
    }
}

/// Least-slack-time-first (the universal-scheduler candidate of Mittal et
/// al., NSDI '16): rank = slack minus the time still needed to transmit the
/// rest of the flow.
#[derive(Clone, Debug)]
pub struct Lstf {
    unit: Nanos,
    max_rank: Rank,
    /// Access link rate used to estimate remaining transmission time.
    line_rate_bps: u64,
}

impl Lstf {
    /// `line_rate_bps` estimates remaining transmission time from remaining
    /// bytes.
    ///
    /// # Panics
    /// Panics if `unit` or `line_rate_bps` is zero.
    pub fn new(unit: Nanos, max_rank: Rank, line_rate_bps: u64) -> Lstf {
        assert!(unit > Nanos::ZERO, "unit must be positive");
        assert!(line_rate_bps > 0, "line rate must be positive");
        Lstf {
            unit,
            max_rank,
            line_rate_bps,
        }
    }
}

impl RankFn for Lstf {
    fn rank(&mut self, ctx: &RankCtx) -> Rank {
        let tx_time = qvisor_sim::transmission_time(ctx.bytes_remaining(), self.line_rate_bps);
        let slack = ctx.slack().saturating_sub(tx_time);
        (slack.as_nanos() / self.unit.as_nanos()).min(self.max_rank)
    }

    fn range(&self) -> RankRange {
        RankRange::new(0, self.max_rank)
    }

    fn name(&self) -> &'static str {
        "LSTF"
    }
}

/// Start-time fair queueing (Goyal et al., SIGCOMM '96), in the rank-based
/// formulation of the PIFO paper: rank = virtual start time
/// `max(V, finish[flow])`, `finish[flow] = rank + size/weight`.
///
/// The virtual clock `V` advances with the starts it hands out, which
/// approximates dequeue-driven virtual time without feedback from the
/// switch — suitable for end-host ranking as the paper requires.
#[derive(Clone, Debug, Default)]
pub struct Stfq {
    virtual_time: u64,
    finish: HashMap<FlowId, u64>,
    max_rank: Rank,
}

impl Stfq {
    /// STFQ emitting ranks clamped to `max_rank`.
    pub fn new(max_rank: Rank) -> Stfq {
        Stfq {
            virtual_time: 0,
            finish: HashMap::new(),
            max_rank,
        }
    }

    /// Forget state of a finished flow (keeps the map bounded).
    pub fn flow_done(&mut self, flow: FlowId) {
        self.finish.remove(&flow);
    }
}

impl RankFn for Stfq {
    fn rank(&mut self, ctx: &RankCtx) -> Rank {
        let weight = ctx.weight.max(1) as u64;
        let last_finish = self.finish.get(&ctx.flow).copied().unwrap_or(0);
        let start = self.virtual_time.max(last_finish);
        self.finish
            .insert(ctx.flow, start + ctx.pkt_size as u64 / weight);
        // Advance V to the largest start handed out so far.
        self.virtual_time = self.virtual_time.max(start);
        start.min(self.max_rank)
    }

    fn range(&self) -> RankRange {
        RankRange::new(0, self.max_rank)
    }

    fn name(&self) -> &'static str {
        "STFQ"
    }
}

/// Byte-count fair queueing: rank = bytes the flow has already sent.
///
/// A stateless-per-packet approximation of fair queueing (flows that have
/// sent less get priority), convenient when per-flow virtual time is too
/// heavy. Used as tenant 3's "Fair Queuing" in the paper's running example.
#[derive(Clone, Debug)]
pub struct ByteCountFq {
    unit_bytes: u64,
    max_rank: Rank,
}

impl ByteCountFq {
    /// Ranks are `bytes_sent / unit_bytes` clamped to `max_rank`.
    ///
    /// # Panics
    /// Panics if `unit_bytes` is zero.
    pub fn new(unit_bytes: u64, max_rank: Rank) -> ByteCountFq {
        assert!(unit_bytes > 0, "unit must be positive");
        ByteCountFq {
            unit_bytes,
            max_rank,
        }
    }
}

impl RankFn for ByteCountFq {
    fn rank(&mut self, ctx: &RankCtx) -> Rank {
        (ctx.bytes_sent / self.unit_bytes).min(self.max_rank)
    }

    fn range(&self) -> RankRange {
        RankRange::new(0, self.max_rank)
    }

    fn name(&self) -> &'static str {
        "FQ"
    }
}

/// FIFO+ style ranking: rank = arrival time, so the scheduler approximates
/// global FIFO ordering across hops (tail-latency oriented, Clark et al.).
#[derive(Clone, Debug)]
pub struct ArrivalTime {
    unit: Nanos,
    max_rank: Rank,
}

impl ArrivalTime {
    /// Ranks are `now / unit` clamped to `max_rank`.
    ///
    /// # Panics
    /// Panics if `unit` is zero.
    pub fn new(unit: Nanos, max_rank: Rank) -> ArrivalTime {
        assert!(unit > Nanos::ZERO, "unit must be positive");
        ArrivalTime { unit, max_rank }
    }
}

impl RankFn for ArrivalTime {
    fn rank(&mut self, ctx: &RankCtx) -> Rank {
        (ctx.now.as_nanos() / self.unit.as_nanos()).min(self.max_rank)
    }

    fn range(&self) -> RankRange {
        RankRange::new(0, self.max_rank)
    }

    fn name(&self) -> &'static str {
        "FIFO+"
    }
}

/// A constant rank: every packet of the tenant is equal priority (plain
/// FIFO within the tenant).
#[derive(Clone, Copy, Debug)]
pub struct Constant(pub Rank);

impl RankFn for Constant {
    fn rank(&mut self, _ctx: &RankCtx) -> Rank {
        self.0
    }

    fn range(&self) -> RankRange {
        RankRange::new(self.0, self.0)
    }

    fn name(&self) -> &'static str {
        "Constant"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(flow: u64, flow_size: u64, sent: u64) -> RankCtx {
        RankCtx::simple(Nanos::ZERO, FlowId(flow), flow_size, sent)
    }

    #[test]
    fn pfabric_ranks_remaining_size() {
        let mut f = PFabric::new(1_000, 100);
        assert_eq!(f.rank(&ctx(1, 50_000, 0)), 50);
        assert_eq!(f.rank(&ctx(1, 50_000, 49_000)), 1);
        assert_eq!(f.rank(&ctx(1, 50_000, 50_000)), 0);
        // Clamps at max.
        assert_eq!(f.rank(&ctx(1, 10_000_000, 0)), 100);
        assert!(f.range().contains(100));
    }

    #[test]
    fn pfabric_prioritizes_shorter_remainder() {
        let mut f = PFabric::default_datacenter();
        let short = f.rank(&ctx(1, 10_000, 0));
        let long = f.rank(&ctx(2, 10_000_000, 0));
        assert!(short < long);
    }

    #[test]
    fn edf_ranks_slack() {
        let mut e = Edf::new(Nanos::from_micros(1), 1_000);
        let mut c = ctx(1, 1_500, 0);
        c.now = Nanos::from_micros(100);
        c.deadline = Some(Nanos::from_micros(350));
        assert_eq!(e.rank(&c), 250);
        // Passed deadline -> most urgent.
        c.deadline = Some(Nanos::from_micros(50));
        assert_eq!(e.rank(&c), 0);
        // No deadline -> least urgent.
        c.deadline = None;
        assert_eq!(e.rank(&c), 1_000);
    }

    #[test]
    fn lstf_subtracts_transmission_time() {
        // 1 Gbps, 125_000 bytes remaining = 1 ms of transmission.
        let mut l = Lstf::new(Nanos::from_micros(1), 100_000, qvisor_sim::gbps(1));
        let mut c = ctx(1, 125_000, 0);
        c.deadline = Some(Nanos::from_millis(3));
        // slack 3 ms - 1 ms tx = 2 ms = 2000 us.
        assert_eq!(l.rank(&c), 2_000);
        let mut e = Edf::new(Nanos::from_micros(1), 100_000);
        assert_eq!(e.rank(&c), 3_000, "EDF ignores transmission time");
    }

    #[test]
    fn stfq_interleaves_flows_fairly() {
        let mut s = Stfq::new(u64::MAX);
        // Two flows sending 1000-byte packets back to back: their start
        // tags must interleave rather than let one flow run ahead.
        let mut c1 = ctx(1, 1 << 40, 0);
        c1.pkt_size = 1_000;
        let mut c2 = ctx(2, 1 << 40, 0);
        c2.pkt_size = 1_000;
        let r1a = s.rank(&c1); // start 0
        let r1b = s.rank(&c1); // start 1000
        let r2a = s.rank(&c2); // start max(V=1000? ...)
        assert_eq!(r1a, 0);
        assert_eq!(r1b, 1_000);
        // Flow 2's first packet starts at V (1000), not after flow 1's
        // whole backlog.
        assert_eq!(r2a, 1_000);
        let r1c = s.rank(&c1); // 2000
        let r2b = s.rank(&c2); // 2000
        assert_eq!(r1c, 2_000);
        assert_eq!(r2b, 2_000);
    }

    #[test]
    fn stfq_weights_scale_finish() {
        let mut s = Stfq::new(u64::MAX);
        let mut heavy = ctx(1, 1 << 40, 0);
        heavy.pkt_size = 1_000;
        heavy.weight = 2;
        let _ = s.rank(&heavy); // start 0, finish 500
        let second = s.rank(&heavy); // start 500
        assert_eq!(second, 500, "weight 2 halves the finish increment");
        s.flow_done(FlowId(1));
        let fresh = s.rank(&heavy);
        assert_eq!(fresh, 500, "state cleared; restarts at V");
    }

    #[test]
    fn byte_count_fq_ranks_sent_bytes() {
        let mut f = ByteCountFq::new(1_000, 50);
        assert_eq!(f.rank(&ctx(1, 1 << 30, 0)), 0);
        assert_eq!(f.rank(&ctx(1, 1 << 30, 10_000)), 10);
        assert_eq!(f.rank(&ctx(1, 1 << 30, 10_000_000)), 50);
    }

    #[test]
    fn arrival_time_ranks_by_clock() {
        let mut a = ArrivalTime::new(Nanos::from_micros(1), 1 << 40);
        let mut c = ctx(1, 1, 0);
        c.now = Nanos::from_micros(42);
        assert_eq!(a.rank(&c), 42);
    }

    #[test]
    fn constant_is_constant() {
        let mut k = Constant(7);
        assert_eq!(k.rank(&ctx(1, 1, 0)), 7);
        assert_eq!(k.range(), RankRange::new(7, 7));
    }

    #[test]
    fn all_ranks_respect_declared_range() {
        // Property-style spot check across functions and contexts.
        let mut fns: Vec<Box<dyn RankFn>> = vec![
            Box::new(PFabric::new(100, 500)),
            Box::new(Edf::new(Nanos(100), 500)),
            Box::new(Lstf::new(Nanos(100), 500, 1_000_000)),
            Box::new(Stfq::new(500)),
            Box::new(ByteCountFq::new(100, 500)),
            Box::new(ArrivalTime::new(Nanos(100), 500)),
            Box::new(Constant(3)),
        ];
        let mut rng = qvisor_sim::SimRng::seed_from(5);
        for f in fns.iter_mut() {
            for _ in 0..500 {
                let mut c = ctx(rng.below(10), rng.below(1 << 30), rng.below(1 << 30));
                c.now = Nanos(rng.below(1 << 40));
                if rng.below(2) == 0 {
                    c.deadline = Some(c.now + Nanos(rng.below(1 << 30)));
                }
                let r = f.rank(&c);
                assert!(
                    f.range().contains(r),
                    "{} emitted {r} outside {}",
                    f.name(),
                    f.range()
                );
            }
        }
    }
}
