//! Telemetry snapshot files for the experiment binaries.
//!
//! Every sweep binary takes `--telemetry PREFIX`; each measured point then
//! writes `PREFIX-<tag>.jsonl` (one self-contained registry export per
//! point) that `qvisor telemetry report <file>` renders.

use qvisor_telemetry::{Telemetry, Tracer};

/// Reduce a human label (`"QVISOR: pFabric >> EDF"`) to a file-name-safe
/// tag (`"qvisor_pfabric_over_edf"`). Policy operators are spelled out so
/// `A >> B` and `A + B` stay distinct files.
pub fn slug(label: &str) -> String {
    let label = label.replace(">>", " over ").replace('+', " plus ");
    let mut out = String::with_capacity(label.len());
    let mut last_sep = true;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            last_sep = false;
        } else if !last_sep {
            out.push('_');
            last_sep = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

/// Write one telemetry export to `PREFIX-<tag>.jsonl`; returns the path.
///
/// # Panics
/// Panics when the file cannot be written (bench binaries treat output
/// paths as fatal, like their `--json` flag does).
pub fn write_snapshot(telemetry: &Telemetry, prefix: &str, tag: &str) -> String {
    let path = format!("{prefix}-{}.jsonl", slug(tag));
    std::fs::write(&path, telemetry.export_jsonl())
        .unwrap_or_else(|e| panic!("cannot write telemetry snapshot {path}: {e}"));
    path
}

/// Write one packet-lifecycle trace snapshot to `PREFIX-<tag>.trace.jsonl`;
/// returns the path. Render with `qvisor trace report` or convert for
/// Perfetto with `qvisor trace export`.
///
/// # Panics
/// Panics when the file cannot be written, like [`write_snapshot`].
pub fn write_trace_snapshot(tracer: &Tracer, prefix: &str, tag: &str) -> String {
    let path = format!("{prefix}-{}.trace.jsonl", slug(tag));
    std::fs::write(&path, tracer.snapshot().to_jsonl())
        .unwrap_or_else(|e| panic!("cannot write trace snapshot {path}: {e}"));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_are_file_safe() {
        assert_eq!(slug("QVISOR: pFabric >> EDF"), "qvisor_pfabric_over_edf");
        assert_eq!(slug("QVISOR: pFabric + EDF"), "qvisor_pfabric_plus_edf");
        assert_eq!(slug("8q SP-PIFO"), "8q_sp_pifo");
        assert_eq!(slug("load 0.6"), "load_0_6");
    }

    #[test]
    fn snapshot_round_trips_through_report() {
        let t = Telemetry::enabled();
        t.counter("net_sent_pkts", &[("tenant", "T1")]).add(5);
        let dir = std::env::temp_dir().join("qvisor_bench_snapshot_test");
        let prefix = dir.to_str().unwrap();
        let path = write_snapshot(&t, prefix, "ideal PIFO");
        assert!(path.ends_with("-ideal_pifo.jsonl"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(qvisor_telemetry::report::render(&text)
            .unwrap()
            .contains("T1"));
        std::fs::remove_file(&path).ok();
    }
}
