#![deny(missing_docs)]

//! # qvisor-core — the scheduling hypervisor
//!
//! The paper's contribution: QVISOR virtualizes the scheduling resources of
//! a switch so multiple tenants can run their own scheduling policies
//! simultaneously (Gran Alcoz & Vanbever, *QVISOR: Virtualizing Packet
//! Scheduling Policies*, HotNets '23).
//!
//! ## Pipeline
//!
//! 1. Tenants declare [`TenantSpec`]s: a traffic subset (tenant id) plus
//!    the declared rank range of their scheduling algorithm.
//! 2. The operator writes a [`Policy`] string: `T1 >> T2 + T3` (strict
//!    priority, best-effort preference `>`, fair sharing `+`).
//! 3. [`synthesize`] produces a [`JointPolicy`]: one rank
//!    [`TransformChain`] per tenant (normalization + stride + shift).
//! 4. [`analyze`] describes worst-case guarantees (isolation, overlap)
//!    and [`verify`] statically proves or refutes them — overflow-freedom,
//!    order preservation, strict-band disjointness — with concrete witness
//!    pairs for every refutation, before deployment.
//! 5. A [`PreProcessor`] applies the chains to packets at line rate; a
//!    [`Backend`] realizes the policy on a PIFO, strict-priority bank
//!    (static or SP-PIFO mapping), AIFO, or FIFO.
//! 6. At runtime, a [`RuntimeMonitor`] polices declared ranges (adversarial
//!    tenants) and a [`RuntimeAdapter`] re-synthesizes as tenants enter,
//!    leave, or drift.
//!
//! ```
//! use qvisor_core::{synthesize, Policy, SynthConfig, TenantSpec};
//! use qvisor_ranking::RankRange;
//! use qvisor_sim::TenantId;
//!
//! let specs = vec![
//!     TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(7, 9)).with_levels(3),
//!     TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(1, 3)).with_levels(2),
//!     TenantSpec::new(TenantId(3), "T3", "FQ", RankRange::new(3, 5)).with_levels(2),
//! ];
//! let policy = Policy::parse("T1 >> T2 + T3").unwrap();
//! let config = SynthConfig { first_rank: 1, ..SynthConfig::default() };
//! let joint = synthesize(&specs, &policy, config).unwrap();
//! // The paper's Fig. 3 transformations fall out exactly:
//! assert_eq!(joint.chain(TenantId(1)).unwrap().apply(8), 2);
//! assert_eq!(joint.chain(TenantId(2)).unwrap().apply(3), 6);
//! assert_eq!(joint.chain(TenantId(3)).unwrap().apply(5), 7);
//! ```

pub mod analysis;
pub mod backend;
pub mod compile;
pub mod config_api;
pub mod error;
pub mod policy;
pub mod preproc;
pub mod runtime;
pub mod spec;
pub mod synth;
pub mod transform;
pub mod verify;

pub use analysis::{analyze, IsolationCheck, PairNote, PolicyReport, Relation, TenantReport};
pub use backend::{Backend, BandedMapper, SpAdaptation};
pub use compile::{compile, CompiledDeployment, Concession, HardwareModel};
pub use config_api::{DeploymentConfig, SynthOptions, TenantConfig};
pub use error::{QvisorError, Result};
pub use policy::{Policy, PrefChain, ShareGroup, TenantRef};
pub use preproc::{PreProcessor, PreprocTenantStats, UnknownTenantAction, Verdict};
pub use runtime::{
    retain_tenants, Adaptation, MonitorConfig, Observation, RuntimeAdapter, RuntimeMonitor,
    ViolationAction,
};
pub use spec::{SynthConfig, TenantSpec};
pub use synth::{synthesize, GroupLayout, JointPolicy, LevelLayout, MemberLayout};
pub use transform::{RankTransform, TransformChain};
pub use verify::{
    verify, ChainCheck, DiagCode, Diagnostic, Severity, SpecPaths, VerifyReport, Witness,
};
