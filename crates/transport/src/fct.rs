//! Flow-completion-time collection and bucketing — the paper's Fig. 4
//! metric.

use qvisor_sim::{FlowId, Nanos, OnlineStats, PercentileCollector, TenantId};

/// One completed flow's record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowRecord {
    /// The flow.
    pub flow: FlowId,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Flow size in bytes.
    pub size: u64,
    /// Start time.
    pub start: Nanos,
    /// Completion time (last byte acknowledged).
    pub end: Nanos,
}

impl FlowRecord {
    /// The flow completion time.
    pub fn fct(&self) -> Nanos {
        self.end - self.start
    }
}

/// Half-open size bucket `[lo, hi)` used to slice FCT statistics the way
/// the paper does: `(0, 100KB)` for Fig. 4a, `[1MB, ∞)` for Fig. 4b.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeBucket {
    /// Inclusive lower bound in bytes.
    pub lo: u64,
    /// Exclusive upper bound in bytes (`u64::MAX` = unbounded).
    pub hi: u64,
}

impl SizeBucket {
    /// The paper's small-flow bucket: `(0, 100 KB)`.
    pub const SMALL: SizeBucket = SizeBucket { lo: 1, hi: 100_000 };
    /// The paper's large-flow bucket: `[1 MB, ∞)`.
    pub const LARGE: SizeBucket = SizeBucket {
        lo: 1_000_000,
        hi: u64::MAX,
    };
    /// Everything.
    pub const ALL: SizeBucket = SizeBucket {
        lo: 0,
        hi: u64::MAX,
    };

    /// Does `size` fall in this bucket?
    pub fn contains(&self, size: u64) -> bool {
        size >= self.lo && size < self.hi
    }
}

/// Collects completed flows and answers the paper's statistics queries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FctCollector {
    records: Vec<FlowRecord>,
}

impl FctCollector {
    /// Empty collector.
    pub fn new() -> FctCollector {
        FctCollector::default()
    }

    /// Record a completion.
    pub fn record(&mut self, rec: FlowRecord) {
        debug_assert!(rec.end >= rec.start);
        self.records.push(rec);
    }

    /// All records.
    pub fn records(&self) -> &[FlowRecord] {
        &self.records
    }

    /// Sort records into the canonical `(end, start, flow)` order.
    ///
    /// Completion *recording* order is an artifact of event processing —
    /// the sharded engine concatenates per-shard collectors in shard
    /// order, not time order — and the float statistics stream over
    /// records in order, so they are only byte-stable on a canonical
    /// ordering. Both engines canonicalize before reporting.
    pub fn sort_canonical(&mut self) {
        self.records.sort_by_key(|r| (r.end, r.start, r.flow.0));
    }

    /// Absorb another collector's records (the sharded engine's merge
    /// step). Call [`FctCollector::sort_canonical`] afterwards.
    pub fn merge(&mut self, other: FctCollector) {
        self.records.extend(other.records);
    }

    /// Completed-flow count for a tenant (all tenants when `None`).
    pub fn count(&self, tenant: Option<TenantId>) -> usize {
        self.iter_filtered(tenant, SizeBucket::ALL).count()
    }

    fn iter_filtered(
        &self,
        tenant: Option<TenantId>,
        bucket: SizeBucket,
    ) -> impl Iterator<Item = &FlowRecord> {
        self.records
            .iter()
            .filter(move |r| tenant.is_none_or(|t| r.tenant == t) && bucket.contains(r.size))
    }

    /// Mean FCT in milliseconds over a tenant/size slice (`None` if the
    /// slice is empty).
    pub fn mean_fct_ms(&self, tenant: Option<TenantId>, bucket: SizeBucket) -> Option<f64> {
        let mut stats = OnlineStats::new();
        for r in self.iter_filtered(tenant, bucket) {
            stats.record(r.fct().as_millis_f64());
        }
        (stats.count() > 0).then(|| stats.mean())
    }

    /// FCT quantile in milliseconds over a slice.
    pub fn fct_quantile_ms(
        &self,
        tenant: Option<TenantId>,
        bucket: SizeBucket,
        p: f64,
    ) -> Option<f64> {
        let mut coll = PercentileCollector::new();
        for r in self.iter_filtered(tenant, bucket) {
            coll.record(r.fct().as_millis_f64());
        }
        coll.quantile(p)
    }

    /// Mean *slowdown* (FCT normalized by the flow's ideal transfer time at
    /// `line_rate_bps`) over a slice — a scale-free FCT metric.
    pub fn mean_slowdown(
        &self,
        tenant: Option<TenantId>,
        bucket: SizeBucket,
        line_rate_bps: u64,
    ) -> Option<f64> {
        let mut stats = OnlineStats::new();
        for r in self.iter_filtered(tenant, bucket) {
            let ideal = qvisor_sim::transmission_time(r.size, line_rate_bps);
            let ideal_ns = ideal.as_nanos().max(1);
            stats.record(r.fct().as_nanos() as f64 / ideal_ns as f64);
        }
        (stats.count() > 0).then(|| stats.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(flow: u64, tenant: u16, size: u64, fct_us: u64) -> FlowRecord {
        FlowRecord {
            flow: FlowId(flow),
            tenant: TenantId(tenant),
            size,
            start: Nanos::from_micros(100),
            end: Nanos::from_micros(100 + fct_us),
        }
    }

    #[test]
    fn buckets_match_paper_definitions() {
        assert!(SizeBucket::SMALL.contains(50_000));
        assert!(!SizeBucket::SMALL.contains(100_000));
        assert!(!SizeBucket::SMALL.contains(0));
        assert!(SizeBucket::LARGE.contains(1_000_000));
        assert!(SizeBucket::LARGE.contains(u64::MAX - 1));
        assert!(!SizeBucket::LARGE.contains(999_999));
    }

    #[test]
    fn mean_fct_by_slice() {
        let mut c = FctCollector::new();
        c.record(rec(1, 1, 10_000, 1_000)); // small, T1, 1 ms
        c.record(rec(2, 1, 50_000, 3_000)); // small, T1, 3 ms
        c.record(rec(3, 1, 2_000_000, 10_000)); // large, T1
        c.record(rec(4, 2, 10_000, 9_000)); // small, T2
        assert_eq!(
            c.mean_fct_ms(Some(TenantId(1)), SizeBucket::SMALL),
            Some(2.0)
        );
        assert_eq!(
            c.mean_fct_ms(Some(TenantId(1)), SizeBucket::LARGE),
            Some(10.0)
        );
        assert_eq!(c.mean_fct_ms(Some(TenantId(2)), SizeBucket::LARGE), None);
        // All tenants, small flows: (1+3+9)/3.
        let all_small = c.mean_fct_ms(None, SizeBucket::SMALL).unwrap();
        assert!((all_small - 13.0 / 3.0).abs() < 1e-9);
        assert_eq!(c.count(Some(TenantId(1))), 3);
        assert_eq!(c.count(None), 4);
    }

    #[test]
    fn quantiles() {
        let mut c = FctCollector::new();
        for i in 1..=100 {
            c.record(rec(i, 1, 10, i * 1_000));
        }
        let p99 = c
            .fct_quantile_ms(Some(TenantId(1)), SizeBucket::ALL, 0.99)
            .unwrap();
        assert!((p99 - 99.0).abs() < 1.5);
    }

    #[test]
    fn slowdown_normalizes_by_size() {
        let mut c = FctCollector::new();
        // 1500 bytes at 1 Gbps ideal = 12 us; FCT 24 us -> slowdown 2.
        c.record(rec(1, 1, 1_500, 24));
        let s = c
            .mean_slowdown(None, SizeBucket::ALL, qvisor_sim::gbps(1))
            .unwrap();
        assert!((s - 2.0).abs() < 1e-9);
    }
}
