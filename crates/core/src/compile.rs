//! Compiling scheduling policies into constrained hardware (§5).
//!
//! §3.4 deploys a joint policy when the switch can express it; this module
//! handles the case where it *can't*. Given a [`HardwareModel`] (how many
//! strict-priority queues, how many rank values the pre-processor may
//! emit), [`compile`] first tries a faithful synthesis; when it does not
//! fit, it degrades the specification along explicit, ranked
//! [`Concession`]s — the paper's "propose partial specifications
//! implementable on the available resources" — and returns the final
//! configuration *together with* the concessions made and the verified
//! guarantees report, so the operator can see exactly what they got.
//!
//! Degradation ladder (applied in order, cheapest semantic loss first):
//!
//! 1. **Halve quantization levels** of the widest tenants until the joint
//!    rank span fits the hardware's rank width (costs intra-tenant
//!    granularity only).
//! 2. **Merge the two least-important strict levels** into one preference
//!    level — this both frees hardware queues (fewer bands to allocate)
//!    and shrinks the rank span (overlapping bands are narrower than
//!    stacked ones); isolation between the merged levels becomes
//!    best-effort priority.
//!
//! (Downgrading `>` to `+` is deliberately *not* on the ladder: a share
//! group's interleaved band is wider than the preference chain it would
//! replace, so it never helps fit.)

use crate::analysis::{analyze, PolicyReport};
use crate::backend::{Backend, SpAdaptation};
use crate::error::{QvisorError, Result};
use crate::policy::Policy;
use crate::spec::{SynthConfig, TenantSpec};
use crate::synth::{synthesize, JointPolicy};
use qvisor_scheduler::Capacity;
use std::fmt;

/// What the target switch offers.
#[derive(Clone, Copy, Debug)]
pub struct HardwareModel {
    /// Strict-priority FIFO queues available at the port.
    pub queues: usize,
    /// Largest rank value the pre-processor stage can carry (e.g. a
    /// 12-bit rank field gives 4095).
    pub max_rank: u64,
    /// Buffer capacity for the built queue.
    pub buffer: Capacity,
}

impl HardwareModel {
    /// A Tofino-like profile: 8 queues, 16-bit ranks, shallow buffer.
    pub fn commodity_8q() -> HardwareModel {
        HardwareModel {
            queues: 8,
            max_rank: u16::MAX as u64,
            buffer: Capacity::packets(64, 1_500),
        }
    }
}

/// One semantic concession made to fit the hardware.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Concession {
    /// A tenant's quantization was reduced (intra-tenant granularity).
    ReducedLevels {
        /// Tenant name.
        tenant: String,
        /// Levels before.
        from: u64,
        /// Levels after.
        to: u64,
    },
    /// Two adjacent strict levels were merged into one preference level:
    /// isolation between them is now best-effort.
    StrictMerged {
        /// The higher of the two merged levels (they become one).
        upper_level: usize,
    },
}

impl fmt::Display for Concession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Concession::ReducedLevels { tenant, from, to } => {
                write!(f, "tenant '{tenant}': quantization {from} -> {to} levels")
            }
            Concession::StrictMerged { upper_level } => write!(
                f,
                "strict levels {upper_level}/{} merged: isolation now best-effort",
                upper_level + 1
            ),
        }
    }
}

/// The compiler's output: what will run, what was given up, and what still
/// holds.
#[derive(Debug)]
pub struct CompiledDeployment {
    /// The (possibly degraded) joint policy actually deployed.
    pub joint: JointPolicy,
    /// The (possibly degraded) operator policy it implements.
    pub policy: Policy,
    /// The backend configuration for the hardware.
    pub backend: Backend,
    /// Concessions made, in the order they were applied (empty = faithful).
    pub concessions: Vec<Concession>,
    /// Verified guarantees of the deployed policy.
    pub guarantees: PolicyReport,
}

/// Compile `specs` + `policy` onto `hw`, degrading per the ladder above.
///
/// Fails only when no degradation suffices (e.g. more tenants than
/// hardware rank values, or zero queues).
pub fn compile(
    specs: &[TenantSpec],
    policy: &Policy,
    config: SynthConfig,
    hw: &HardwareModel,
) -> Result<CompiledDeployment> {
    if hw.queues == 0 {
        return Err(QvisorError::Deployment("hardware exposes no queues".into()));
    }
    let mut specs = specs.to_vec();
    let mut policy = policy.clone();
    let mut concessions = Vec::new();

    loop {
        let joint = synthesize(&specs, &policy, config)?;
        let span = joint.output_span();

        // Step 1: shrink the rank span into the hardware's rank width by
        // halving the widest tenants' levels.
        if span.max > hw.max_rank {
            let mut candidates: Vec<(usize, u64)> = policy
                .tenant_names()
                .iter()
                .map(|name| {
                    let idx = specs
                        .iter()
                        .position(|s| &s.name == name)
                        .expect("synthesize validated names");
                    let levels = specs[idx].effective_levels(config.default_levels);
                    (idx, levels)
                })
                .collect();
            candidates.sort_by_key(|&(_, levels)| std::cmp::Reverse(levels));
            let (idx, levels) = candidates[0];
            if levels <= 1 {
                // Even fully flattened tenants don't fit: try structural
                // degradation below before giving up.
                if !degrade_structure(&mut policy, &mut concessions) {
                    return Err(QvisorError::Deployment(format!(
                        "policy needs rank span {span} but hardware caps ranks at {}",
                        hw.max_rank
                    )));
                }
                continue;
            }
            let to = (levels / 2).max(1);
            concessions.push(Concession::ReducedLevels {
                tenant: specs[idx].name.clone(),
                from: levels,
                to,
            });
            specs[idx].levels = Some(to);
            continue;
        }

        // Step 3: fewer queues than strict levels -> merge bottom levels.
        if joint.layout.len() > hw.queues {
            let upper = joint.layout.len() - 2;
            merge_bottom_levels(&mut policy);
            concessions.push(Concession::StrictMerged { upper_level: upper });
            continue;
        }

        // Fits. Build and report.
        let backend = Backend::StrictPriority {
            queues: hw.queues,
            capacity: hw.buffer,
            adaptation: SpAdaptation::BandedStatic,
        };
        // Sanity: the banded mapper must accept it now.
        backend.build(&joint)?;
        let guarantees = analyze(&joint);
        return Ok(CompiledDeployment {
            joint,
            policy,
            backend,
            concessions,
            guarantees,
        });
    }
}

/// Step 2 helper: merge the two lowest strict levels; returns false when a
/// single level remains (nothing structural left to give).
fn degrade_structure(policy: &mut Policy, concessions: &mut Vec<Concession>) -> bool {
    if policy.levels.len() > 1 {
        let upper = policy.levels.len() - 2;
        merge_bottom_levels(policy);
        concessions.push(Concession::StrictMerged { upper_level: upper });
        return true;
    }
    false
}

/// Merge the two lowest strict levels into one preference chain (the upper
/// keeps best-effort priority over the lower).
fn merge_bottom_levels(policy: &mut Policy) {
    debug_assert!(policy.levels.len() > 1);
    let last = policy.levels.pop().expect("len > 1");
    let target = policy.levels.last_mut().expect("len > 1");
    target.groups.extend(last.groups);
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvisor_ranking::RankRange;
    use qvisor_sim::TenantId;

    fn specs() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(0, 1 << 20))
                .with_levels(4_096),
            TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(0, 10_000)).with_levels(1_024),
            TenantSpec::new(TenantId(3), "T3", "FQ", RankRange::new(0, 1_000)).with_levels(64),
        ]
    }

    #[test]
    fn faithful_when_hardware_suffices() {
        let policy = Policy::parse("T1 >> T2 + T3").unwrap();
        let hw = HardwareModel {
            queues: 8,
            max_rank: 1 << 20,
            buffer: Capacity::packets(64, 1_500),
        };
        let out = compile(&specs(), &policy, SynthConfig::default(), &hw).unwrap();
        assert!(out.concessions.is_empty());
        assert!(out.guarantees.all_guarantees_hold());
        assert_eq!(out.policy.to_string(), "T1 >> T2 + T3");
    }

    #[test]
    fn narrow_rank_field_reduces_levels() {
        let policy = Policy::parse("T1 >> T2 + T3").unwrap();
        let hw = HardwareModel {
            queues: 8,
            max_rank: 255, // 8-bit rank field
            buffer: Capacity::packets(64, 1_500),
        };
        let out = compile(&specs(), &policy, SynthConfig::default(), &hw).unwrap();
        assert!(!out.concessions.is_empty());
        assert!(out
            .concessions
            .iter()
            .all(|c| matches!(c, Concession::ReducedLevels { .. })));
        assert!(out.joint.output_span().max <= 255);
        // Strict isolation survives level reduction.
        assert!(out.guarantees.all_guarantees_hold());
        // T1, the widest tenant, paid the most.
        let t1_cuts = out
            .concessions
            .iter()
            .filter(|c| matches!(c, Concession::ReducedLevels { tenant, .. } if tenant == "T1"))
            .count();
        assert!(t1_cuts >= 1);
    }

    #[test]
    fn too_few_queues_merges_strict_levels() {
        // Five strict levels onto two queues: three merges required.
        let specs: Vec<TenantSpec> = (1..=5)
            .map(|i| {
                TenantSpec::new(TenantId(i), format!("T{i}"), "alg", RankRange::new(0, 100))
                    .with_levels(8)
            })
            .collect();
        let policy = Policy::parse("T1 >> T2 >> T3 >> T4 >> T5").unwrap();
        let hw = HardwareModel {
            queues: 2,
            max_rank: u32::MAX as u64,
            buffer: Capacity::packets(64, 1_500),
        };
        let out = compile(&specs, &policy, SynthConfig::default(), &hw).unwrap();
        let merges = out
            .concessions
            .iter()
            .filter(|c| matches!(c, Concession::StrictMerged { .. }))
            .count();
        assert_eq!(merges, 3);
        assert_eq!(out.joint.layout.len(), 2);
        // The surviving strict boundary is still verified isolated; the
        // merged levels became best-effort (overlapping) preferences, so
        // some guarantees are intentionally weaker — but analysis still
        // reports overlap where overlap is now expected.
        assert!(out.guarantees.all_guarantees_hold());
        assert_eq!(out.policy.to_string(), "T1 >> T2 > T3 > T4 > T5");
    }

    #[test]
    fn tiny_rank_field_flattens_tenants_but_fits() {
        // 3-bit rank field: tenants are flattened down to very few levels,
        // yet the strict structure survives in [0, 7].
        let policy = Policy::parse("T1 > T2 >> T3").unwrap();
        let hw = HardwareModel {
            queues: 2,
            max_rank: 7,
            buffer: Capacity::packets(64, 1_500),
        };
        let out = compile(&specs(), &policy, SynthConfig::default(), &hw).unwrap();
        assert!(out.joint.output_span().max <= 7);
        assert!(out
            .concessions
            .iter()
            .any(|c| matches!(c, Concession::ReducedLevels { .. })));
        assert!(out.guarantees.all_guarantees_hold());
    }

    #[test]
    fn tenant_count_is_a_hard_lower_bound_on_rank_values() {
        // N tenants can never fit in fewer than N rank values: even fully
        // flattened, strict stacking, preference chains, and share strides
        // all need one distinct rank per tenant. The compiler must report
        // failure below the bound and fit exactly at it with no structural
        // concessions.
        let specs: Vec<TenantSpec> = (1..=12)
            .map(|i| {
                TenantSpec::new(TenantId(i), format!("T{i}"), "alg", RankRange::new(0, 1))
                    .with_levels(1)
            })
            .collect();
        let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
        let policy = Policy::parse(&names.join(" >> ")).unwrap();
        let hw = HardwareModel {
            queues: 16,
            max_rank: 10, // one below the 12-tenant bound
            buffer: Capacity::packets(64, 1_500),
        };
        let err = compile(&specs, &policy, SynthConfig::default(), &hw).unwrap_err();
        assert!(matches!(err, QvisorError::Deployment(_)));
        let hw = HardwareModel {
            queues: 16,
            max_rank: 11, // exactly 12 rank values
            buffer: Capacity::packets(64, 1_500),
        };
        let out = compile(&specs, &policy, SynthConfig::default(), &hw).unwrap();
        assert!(out.concessions.is_empty());
        assert_eq!(out.joint.output_span().max, 11);
        assert!(out.guarantees.all_guarantees_hold());
    }

    #[test]
    fn impossible_hardware_is_an_error() {
        let policy = Policy::parse("T1 >> T2 + T3").unwrap();
        let hw = HardwareModel {
            queues: 0,
            max_rank: 100,
            buffer: Capacity::packets(64, 1_500),
        };
        assert!(matches!(
            compile(&specs(), &policy, SynthConfig::default(), &hw),
            Err(QvisorError::Deployment(_))
        ));
        // One rank value for three tenants cannot work.
        let hw = HardwareModel {
            queues: 4,
            max_rank: 0,
            buffer: Capacity::packets(64, 1_500),
        };
        assert!(compile(&specs(), &policy, SynthConfig::default(), &hw).is_err());
    }

    #[test]
    fn concessions_display_readably() {
        let c = Concession::ReducedLevels {
            tenant: "T1".into(),
            from: 64,
            to: 32,
        };
        assert!(c.to_string().contains("64 -> 32"));
        assert!(Concession::StrictMerged { upper_level: 0 }
            .to_string()
            .contains("best-effort"));
    }

    #[test]
    fn commodity_profile() {
        let hw = HardwareModel::commodity_8q();
        assert_eq!(hw.queues, 8);
        assert_eq!(hw.max_rank, 65_535);
    }
}
