//! Declared rank bounds.

use qvisor_sim::Rank;

/// Inclusive bounds `[min, max]` on the ranks a tenant's rank function
/// emits.
///
/// The paper's synthesizer assumes "rank distributions are bounded and
/// known in advance" (§3.2); this type is that declaration. The static
/// analyzer checks synthesized policies against it, and the runtime monitor
/// flags packets violating it as adversarial.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RankRange {
    /// Smallest (most urgent) rank.
    pub min: Rank,
    /// Largest (least urgent) rank.
    pub max: Rank,
}

impl RankRange {
    /// A range; `min` and `max` are inclusive.
    ///
    /// # Panics
    /// Panics if `min > max`.
    pub fn new(min: Rank, max: Rank) -> RankRange {
        assert!(min <= max, "rank range is empty: [{min}, {max}]");
        RankRange { min, max }
    }

    /// Number of distinct ranks in the range (saturating at `u64::MAX`).
    pub fn width(&self) -> u64 {
        (self.max - self.min).saturating_add(1)
    }

    /// Does `rank` fall inside the declared bounds?
    pub fn contains(&self, rank: Rank) -> bool {
        (self.min..=self.max).contains(&rank)
    }

    /// Clamp `rank` into the range.
    pub fn clamp(&self, rank: Rank) -> Rank {
        rank.clamp(self.min, self.max)
    }

    /// Do two ranges overlap?
    pub fn overlaps(&self, other: &RankRange) -> bool {
        self.min <= other.max && other.min <= self.max
    }

    /// A range, or `None` when `min > max` (non-panicking [`RankRange::new`]).
    pub fn try_new(min: Rank, max: Rank) -> Option<RankRange> {
        (min <= max).then_some(RankRange { min, max })
    }

    /// The common sub-range, or `None` when the ranges are disjoint.
    pub fn intersect(&self, other: &RankRange) -> Option<RankRange> {
        RankRange::try_new(self.min.max(other.min), self.max.min(other.max))
    }

    /// Is every rank of `other` inside this range?
    pub fn contains_range(&self, other: &RankRange) -> bool {
        self.min <= other.min && other.max <= self.max
    }

    /// Is every rank of this range strictly smaller than every rank of
    /// `other`? (The `>>` isolation invariant between adjacent bands.)
    pub fn strictly_below(&self, other: &RankRange) -> bool {
        self.max < other.min
    }

    /// Number of ranks strictly between the two ranges (`0` when they
    /// touch or overlap).
    pub fn gap_to(&self, other: &RankRange) -> u64 {
        if self.max < other.min {
            other.min - self.max - 1
        } else if other.max < self.min {
            self.min - other.max - 1
        } else {
            0
        }
    }
}

impl std::fmt::Display for RankRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_and_contains() {
        let r = RankRange::new(3, 7);
        assert_eq!(r.width(), 5);
        assert!(r.contains(3));
        assert!(r.contains(7));
        assert!(!r.contains(2));
        assert!(!r.contains(8));
    }

    #[test]
    fn singleton_range() {
        let r = RankRange::new(5, 5);
        assert_eq!(r.width(), 1);
        assert!(r.contains(5));
    }

    #[test]
    fn clamping() {
        let r = RankRange::new(10, 20);
        assert_eq!(r.clamp(5), 10);
        assert_eq!(r.clamp(15), 15);
        assert_eq!(r.clamp(99), 20);
    }

    #[test]
    fn overlap_detection() {
        let a = RankRange::new(0, 10);
        let b = RankRange::new(10, 20);
        let c = RankRange::new(11, 20);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn full_range_width_saturates() {
        let r = RankRange::new(0, u64::MAX);
        assert_eq!(r.width(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "rank range is empty")]
    fn inverted_range_panics() {
        let _ = RankRange::new(2, 1);
    }

    #[test]
    fn try_new_and_intersect() {
        assert_eq!(RankRange::try_new(2, 1), None);
        assert_eq!(RankRange::try_new(1, 2), Some(RankRange::new(1, 2)));
        let a = RankRange::new(0, 10);
        let b = RankRange::new(5, 20);
        assert_eq!(a.intersect(&b), Some(RankRange::new(5, 10)));
        assert_eq!(a.intersect(&RankRange::new(11, 12)), None);
    }

    #[test]
    fn ordering_helpers() {
        let a = RankRange::new(0, 4);
        let b = RankRange::new(5, 9);
        let c = RankRange::new(8, 20);
        assert!(a.strictly_below(&b));
        assert!(!b.strictly_below(&a));
        assert!(!b.strictly_below(&c));
        assert!(c.contains_range(&RankRange::new(9, 12)));
        assert!(!c.contains_range(&b));
        assert_eq!(a.gap_to(&b), 0);
        assert_eq!(a.gap_to(&RankRange::new(7, 9)), 2);
        assert_eq!(RankRange::new(7, 9).gap_to(&a), 2);
        assert_eq!(b.gap_to(&c), 0);
    }

    #[test]
    fn display() {
        assert_eq!(RankRange::new(1, 9).to_string(), "[1, 9]");
    }
}
