//! Cross-device placement of the pre-processor (§5 "cross-device
//! virtualization"): does it matter *where* rank rewriting happens?
//!
//! Three deployments of the same joint policy on the same workload:
//! everywhere (default), switches-only (in-network QVISOR, hosts forward
//! raw ranks), and first-hop-only (end-host QVISOR, à la Loom/Eiffel NIC
//! scheduling). Because transformed ranks travel *in the packet*
//! (`txf_rank`), rewriting once at the first hop is sufficient for
//! downstream PIFOs; switches-only leaves the host NIC queue ordering by
//! raw (clashing) ranks.

use qvisor::core::{SynthConfig, TenantSpec, UnknownTenantAction};
use qvisor::netsim::{
    NewCbr, NewFlow, PreprocScope, QvisorSetup, SchedulerKind, SimConfig, SimReport, Simulation,
};
use qvisor::ranking::{Edf, PFabric, RankRange};
use qvisor::sim::{gbps, Nanos, TenantId};
use qvisor::topology::Dumbbell;
use qvisor::transport::SizeBucket;

const T1: TenantId = TenantId(1);
const T2: TenantId = TenantId(2);

/// T1's pFabric flows and T2's numerically-dominant EDF flood share both
/// the *sending hosts* and the bottleneck, so the host queue's ordering
/// matters too.
fn run(scope: PreprocScope) -> SimReport {
    let d = Dumbbell::build(2, gbps(1), gbps(1), Nanos::from_micros(1));
    let specs = vec![
        TenantSpec::new(T1, "T1", "pFabric", RankRange::new(0, 200)).with_levels(64),
        TenantSpec::new(T2, "T2", "EDF", RankRange::new(0, 100)).with_levels(16),
    ];
    let cfg = SimConfig {
        seed: 23,
        horizon: Nanos::from_millis(300),
        scheduler: SchedulerKind::Pifo,
        qvisor: Some(QvisorSetup {
            specs,
            policy: "T1 >> T2".into(),
            synth: SynthConfig::default(),
            unknown: UnknownTenantAction::BestEffort,
            scope,
            monitor: None,
        }),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(T1, Box::new(PFabric::new(1_000, 200)));
    sim.register_rank_fn(T2, Box::new(Edf::new(Nanos::from_micros(1), 100)));
    // Both tenants send from BOTH hosts: contention starts at the NIC.
    for i in 0..30u64 {
        sim.add_flow(NewFlow::new(
            T1,
            d.senders[(i % 2) as usize],
            d.receivers[(i % 2) as usize],
            200_000,
            Nanos::from_millis(3 * i),
        ));
    }
    for s in 0..2 {
        sim.add_cbr(NewCbr {
            tenant: T2,
            src: d.senders[s],
            dst: d.receivers[1 - s],
            rate_bps: 350_000_000,
            pkt_size: 1_500,
            start: Nanos::ZERO,
            stop: Nanos::from_millis(90),
            deadline_offset: Nanos::from_micros(100),
        });
    }
    sim.run()
}

fn t1_fct(r: &SimReport) -> f64 {
    r.fct.mean_fct_ms(Some(T1), SizeBucket::ALL).unwrap()
}

#[test]
fn first_hop_rewriting_is_sufficient() {
    // Transformed ranks ride in the packet, so rewriting once at the
    // source gives downstream switches the same ordering information as
    // rewriting everywhere.
    let everywhere = run(PreprocScope::Everywhere);
    let first_hop = run(PreprocScope::FirstHopOnly);
    assert_eq!(everywhere.incomplete_flows, 0);
    assert_eq!(first_hop.incomplete_flows, 0);
    let (e, f) = (t1_fct(&everywhere), t1_fct(&first_hop));
    assert!(
        (f - e).abs() / e < 0.05,
        "first-hop-only should match everywhere: {e:.3} vs {f:.3} ms"
    );
}

#[test]
fn switches_only_leaks_the_clash_at_the_nic() {
    // With hosts forwarding raw ranks, T2's numerically-lower EDF ranks
    // win the NIC queue; T1 pays at the first hop even though the fabric
    // enforces the policy.
    let everywhere = run(PreprocScope::Everywhere);
    let switches_only = run(PreprocScope::SwitchesOnly);
    assert_eq!(switches_only.incomplete_flows, 0);
    let (e, s) = (t1_fct(&everywhere), t1_fct(&switches_only));
    assert!(
        s > e * 1.15,
        "raw-ranked NIC queues must cost T1 visibly: everywhere {e:.3} ms \
         vs switches-only {s:.3} ms"
    );
}
