#![deny(missing_docs)]

//! # qvisor-topology — network graphs and routing
//!
//! Substrate crate: topology construction (arbitrary graphs plus canned
//! leaf–spine, dumbbell, and fat-tree builders) and precomputed ECMP
//! shortest-path routing. The paper's evaluation fabric
//! ([`LeafSpineConfig::paper`]) is 9 leaves × 16 hosts with 4 spines,
//! 1 Gbps access links and 4 Gbps fabric links.

pub mod builders;
pub mod graph;
pub mod partition;
pub mod routing;

pub use builders::{Dumbbell, FatTree, LeafSpine, LeafSpineConfig};
pub use graph::{Link, Node, NodeKind, Topology, TopologyBuilder};
pub use partition::{unit_count, CutEdge, Partition, PartitionError};
pub use routing::Routes;
