//! Property tests tying the static verifier to the exact PIFO:
//!
//! - A chain the verifier *proves* order-preserving produces zero
//!   intra-tenant inversions when its outputs schedule real packets on an
//!   exact PIFO — out-of-input-order pops happen only at equal output
//!   ranks (quantization ties), and no output bucket exceeds the computed
//!   collision bound.
//! - Every error-severity refutation carries a witness pair that
//!   *actually* misbehaves: the outputs re-check through
//!   `TransformChain::apply`, and an inverting pair demonstrably inverts
//!   on a real PIFO.

use qvisor_core::verify::check_chain;
use qvisor_core::{DiagCode, RankTransform, Severity, TransformChain};
use qvisor_ranking::RankRange;
use qvisor_scheduler::{Capacity, Enqueue, PacketQueue, PifoQueue};
use qvisor_sim::{FlowId, Nanos, NodeId, Packet, Rank, SimRng, TenantId};
use std::collections::{BTreeMap, BTreeSet};

const CHAINS: usize = 300;
const PACKETS: u64 = 64;

/// A packet whose scheduler-visible rank is `out` and whose tenant-intent
/// rank is `input`.
fn packet(seq: u64, input: Rank, out: Rank) -> Packet {
    let mut p = Packet::data(
        FlowId(1),
        TenantId(1),
        seq,
        100,
        NodeId(0),
        NodeId(1),
        input,
        Nanos::ZERO,
    );
    p.txf_rank = out;
    p
}

/// A random chain over a random declared range. Parameters are drawn so
/// the population mixes healthy chains (normalize/shift, strides with
/// `every >= width`) with broken ones (compressing strides, huge shifts).
fn random_chain(rng: &mut SimRng) -> (TransformChain, RankRange) {
    let lo = rng.below(10_000);
    let declared = RankRange::new(lo, lo + 1 + rng.below(100_000));
    let mut ops = Vec::new();
    let mut cur = declared;
    for _ in 0..=rng.below(2) {
        match rng.below(4) {
            0 => {
                let levels = 2 + rng.below(1024);
                ops.push(RankTransform::Normalize { input: cur, levels });
                cur = RankRange::new(0, levels - 1);
            }
            1 => {
                // Occasionally an offset large enough to saturate.
                let offset = if rng.below(8) == 0 {
                    Rank::MAX - rng.below(1000)
                } else {
                    rng.below(1 << 20)
                };
                ops.push(RankTransform::Shift { offset });
                cur = RankRange::new(
                    cur.min.saturating_add(offset),
                    cur.max.saturating_add(offset),
                );
            }
            2 => {
                let width = 1 + rng.below(64);
                // Half the time a healthy stride, half a compressing one.
                let every = if rng.below(2) == 0 {
                    width + rng.below(64)
                } else {
                    1 + rng.below(width)
                };
                ops.push(RankTransform::Stride {
                    every,
                    width,
                    offset: rng.below(1000),
                });
                cur = RankRange::new(0, cur.max.saturating_mul(2));
            }
            _ => {
                let a = rng.below(1 << 20);
                let b = a + rng.below(1 << 20);
                ops.push(RankTransform::Clamp {
                    range: RankRange::new(a, b),
                });
                cur = RankRange::new(cur.min.max(a).min(b), cur.max.max(a).min(b));
            }
        }
    }
    (TransformChain::from_ops(ops), declared)
}

#[test]
fn proved_monotone_chains_never_invert_on_an_exact_pifo() {
    let mut rng = SimRng::seed_from(0xC0FFEE).derive(1);
    let mut proved = 0usize;
    for _ in 0..CHAINS {
        let (chain, declared) = random_chain(&mut rng);
        let check = check_chain(&chain, declared, "tenants.0", "tenant 'T'");
        if !check.proved_order_preserving {
            continue;
        }
        proved += 1;

        // Schedule random tenant inputs through the chain on a real PIFO.
        let mut q = PifoQueue::new(Capacity::bytes(u64::MAX));
        let span = declared.max - declared.min;
        // Buckets count *distinct* inputs per output (the sampler may
        // draw the same input twice; the bound is about distinct ranks).
        let mut buckets: BTreeMap<Rank, BTreeSet<Rank>> = BTreeMap::new();
        for seq in 0..PACKETS {
            let input = declared.min + rng.below(span.saturating_add(1));
            let out = chain.apply(input);
            buckets.entry(out).or_default().insert(input);
            assert!(matches!(
                q.enqueue(packet(seq, input, out), Nanos::ZERO),
                Enqueue::Accepted
            ));
        }

        // Pop order may only deviate from input order at equal outputs.
        let mut popped = Vec::new();
        while let Some(p) = q.dequeue(Nanos::ZERO) {
            popped.push(p);
        }
        for i in 0..popped.len() {
            for j in (i + 1)..popped.len() {
                let (a, b) = (&popped[i], &popped[j]);
                assert!(
                    a.rank <= b.rank || a.txf_rank == b.txf_rank,
                    "inversion on a proved-monotone chain: input {} popped \
                     before input {} with outputs {} vs {} ({chain})",
                    a.rank,
                    b.rank,
                    a.txf_rank,
                    b.txf_rank,
                );
            }
        }

        // Observed collisions stay within the verifier's bound.
        let worst = buckets.values().map(|b| b.len() as u64).max().unwrap_or(0);
        assert!(
            worst <= check.analysis.collision_bound,
            "bucket of {worst} exceeds bound {} ({chain})",
            check.analysis.collision_bound
        );
    }
    assert!(
        proved >= 50,
        "only {proved} proved chains; generator drifted"
    );
}

#[test]
fn every_refutation_witness_actually_misbehaves() {
    let mut rng = SimRng::seed_from(0xC0FFEE).derive(2);
    let mut inverting = 0usize;
    let mut collapsing = 0usize;
    for _ in 0..CHAINS {
        let (chain, declared) = random_chain(&mut rng);
        let check = check_chain(&chain, declared, "tenants.0", "tenant 'T'");
        for d in &check.diagnostics {
            if d.severity != Severity::Error {
                continue;
            }
            let w = d
                .witness
                .unwrap_or_else(|| panic!("error without witness: {d}"));
            // Witness outputs re-check through the real apply.
            assert!(w.input_a < w.input_b, "witness inputs ordered: {w}");
            assert_eq!(chain.apply(w.input_a), w.output_a, "{chain}");
            assert_eq!(chain.apply(w.input_b), w.output_b, "{chain}");
            assert!(declared.contains(w.input_a) && declared.contains(w.input_b));
            match d.code {
                DiagCode::NonMonotone => {
                    assert!(w.output_a > w.output_b, "must invert: {w}");
                    // And it inverts for real: the later, larger input pops
                    // first on an exact PIFO.
                    let mut q = PifoQueue::new(Capacity::bytes(u64::MAX));
                    q.enqueue(packet(0, w.input_a, w.output_a), Nanos::ZERO);
                    q.enqueue(packet(1, w.input_b, w.output_b), Nanos::ZERO);
                    let first = q.dequeue(Nanos::ZERO).unwrap();
                    assert_eq!(
                        first.rank, w.input_b,
                        "PIFO must pop the larger input first: {w} ({chain})"
                    );
                    inverting += 1;
                }
                DiagCode::OrderCollapse | DiagCode::Overflow => {
                    assert_eq!(w.output_a, w.output_b, "must collapse: {w}");
                    collapsing += 1;
                }
                other => panic!("unexpected error code {other:?} from check_chain"),
            }
        }
    }
    assert!(
        inverting >= 10 && collapsing >= 10,
        "generator drifted: {inverting} inverting, {collapsing} collapsing"
    );
}
