//! Ablation: deployment backends (§3.4).
//!
//! The same joint policy (`pFabric >> EDF`) deployed on the ideal PIFO, an
//! 8-queue banded-static bank, an 8-queue SP-PIFO bank, a 32-queue banded
//! bank, AIFO, and plain FIFO — same workload, same seed. Reports the
//! pFabric tenant's FCTs and the EDF tenant's deadline hit rate per
//! backend.
//!
//! Usage: cargo run -p qvisor-bench --release --bin ablation_backend
//!        [-- --telemetry PREFIX]   write PREFIX-<backend>.jsonl per backend

use qvisor_bench::harness::{
    ablation_scenario, run_labelled, scaled_fcts, telemetry_prefix, ABLATION_SCALE,
};
use qvisor_netsim::scenario::SchedulerSpec;
use qvisor_sim::TenantId;

fn main() {
    println!("Ablation: deployment backends (policy pFabric >> EDF, load 0.6)");
    println!(
        "{:<28}{:>16}{:>16}{:>16}",
        "backend", "small FCT (ms)", "large FCT (ms)", "EDF on-time (%)"
    );
    let max_rank = 100_000_000 / ABLATION_SCALE / 1_000;
    let backends: Vec<(&str, SchedulerSpec)> = vec![
        ("ideal PIFO", SchedulerSpec::Pifo),
        (
            "8q strict (banded static)",
            SchedulerSpec::StrictStatic {
                queues: 8,
                span_min: 0,
                span_max: max_rank,
            },
        ),
        (
            "32q strict (banded static)",
            SchedulerSpec::StrictStatic {
                queues: 32,
                span_min: 0,
                span_max: max_rank,
            },
        ),
        ("8q SP-PIFO", SchedulerSpec::SpPifo { queues: 8 }),
        (
            "AIFO (w=64, k=0.1)",
            SchedulerSpec::Aifo {
                window: 64,
                burst: 0.1,
            },
        ),
        ("FIFO", SchedulerSpec::Fifo),
    ];
    let points: Vec<_> = backends
        .into_iter()
        .map(|(name, sched)| {
            let spec = ablation_scenario(format!("ablation-backend {name}"), 2, sched, 512);
            (name.to_string(), spec)
        })
        .collect();
    run_labelled(&points, telemetry_prefix().as_deref(), |name, r| {
        let (small, large) = scaled_fcts(r, TenantId(1), ABLATION_SCALE);
        let hit = r
            .tenant(TenantId(2))
            .deadline_hit_rate()
            .unwrap_or(f64::NAN)
            * 100.0;
        println!("{name:<28}{small:>16.3}{large:>16.2}{hit:>16.1}");
    });
    println!(
        "\nMore queues bring the banded bank closer to the PIFO; SP-PIFO \
         adapts without per-policy allocation; FIFO ignores the policy."
    );
}
