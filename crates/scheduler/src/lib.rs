#![deny(missing_docs)]

//! # qvisor-scheduler — scheduler models
//!
//! Software models of the schedulers QVISOR targets: the ideal
//! [`PifoQueue`], the commodity [`FifoQueue`] and [`StrictPriorityBank`],
//! and the published PIFO approximations [`SpPifoMapper`] (SP-PIFO,
//! NSDI '20) and [`AifoQueue`] (AIFO, SIGCOMM '21), plus a [`DrrQueue`]
//! fairness baseline, a [`TokenBucket`] shaper, and an [`InstrumentedQueue`]
//! wrapper reporting drops, occupancy, queueing delay, and rank inversions
//! through the `qvisor-telemetry` subsystem ([`AuditedQueue`] is a
//! self-contained convenience over it).
//!
//! Hierarchical scheduling is covered by [`PifoTree`] (PIFO trees,
//! SIGCOMM '16 — the §5 expressivity extension) and a rotating
//! [`CalendarQueue`].
//!
//! All models implement [`PacketQueue`] and sort on `Packet::txf_rank`, the
//! rank *after* QVISOR's pre-processor.

pub mod aifo;
pub mod audit;
pub mod calendar;
pub mod drr;
pub mod fifo;
pub mod instrument;
pub mod pifo;
pub mod pifo_tree;
pub mod queue;
pub mod shaper;
pub mod sp_pifo;
pub mod strict;

pub use aifo::AifoQueue;
pub use audit::{AuditedQueue, QueueStats};
pub use calendar::CalendarQueue;
pub use drr::DrrQueue;
pub use fifo::FifoQueue;
pub use instrument::InstrumentedQueue;
pub use pifo::PifoQueue;
pub use pifo_tree::{PathStep, PifoTree, TreeClassifier, TreePath, TreeShape};
pub use queue::{Capacity, Enqueue, PacketQueue};
pub use shaper::{ShapedQueue, TokenBucket};
pub use sp_pifo::SpPifoMapper;
pub use strict::{QueueMapper, StaticRangeMapper, StrictPriorityBank};
