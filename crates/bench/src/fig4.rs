//! The paper's Fig. 4 experiment (§4).
//!
//! Setup (paper): a 144-server leaf–spine fabric (9 leaves, 4 spines,
//! 1 Gbps access, 4 Gbps fabric). Tenant 1 runs a data-mining workload
//! scheduled with pFabric; tenant 2 runs 100 CBR flows at 0.5 Gbps between
//! uniformly random server pairs, scheduled with EDF. The measured metric
//! is tenant 1's mean FCT for small flows `(0, 100 KB)` (Fig. 4a) and
//! large flows `[1 MB, ∞)` (Fig. 4b), across loads 0.2–0.8, under six
//! schemes:
//!
//! * `FIFO`          — both tenants through FIFO queues;
//! * `PIFO-naive`    — both tenants' *raw* ranks on a shared PIFO (clash);
//! * `PIFO-ideal`    — only pFabric traffic in the network (upper bound);
//! * `QVISOR EDF>>pF`— QVISOR with the EDF tenant strictly prioritized;
//! * `QVISOR pF+EDF` — QVISOR with both sharing;
//! * `QVISOR pF>>EDF`— QVISOR with pFabric strictly prioritized.
//!
//! Flow sizes follow the data-mining CDF scaled down by
//! [`Fig4Config::size_scale_den`] so a full sweep runs on a laptop; the
//! scale knob changes absolute FCTs, not the ordering of schemes
//! (EXPERIMENTS.md records both scales).
//!
//! Since the scenario-engine refactor this module only *describes* the
//! experiment: [`scenario`] maps a `(scheme, load, config)` triple to a
//! declarative [`ScenarioSpec`] and the netsim [`Engine`] does the rest.

use qvisor_netsim::scenario::{
    ArrivalSpec, Engine, QvisorSpec, ScenarioSpec, SchedulerSpec, ScopeSpec, SimSpec, SizeDistSpec,
    TenantDecl, TimeRef, TopologySpec, WorkloadSpec,
};
use qvisor_netsim::SimReport;
use qvisor_ranking::RankFnSpec;
use qvisor_sim::{Nanos, TenantId};
use qvisor_topology::LeafSpineConfig;
use qvisor_transport::SizeBucket;

/// Tenant 1: the pFabric data-mining tenant.
pub const PFABRIC: TenantId = TenantId(1);
/// Tenant 2: the EDF CBR tenant.
pub const EDF: TenantId = TenantId(2);

/// The six schemes of Fig. 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// Both tenants through FIFO queues.
    Fifo,
    /// Both tenants' raw ranks on a shared PIFO (the §2 clash).
    PifoNaive,
    /// Only the pFabric tenant in the network (ideal baseline).
    PifoIdeal,
    /// QVISOR, operator policy `EDF >> pFabric`.
    QvisorEdfFirst,
    /// QVISOR, operator policy `pFabric + EDF`.
    QvisorShare,
    /// QVISOR, operator policy `pFabric >> EDF`.
    QvisorPfabricFirst,
}

impl Scheme {
    /// All six, in the paper's legend order.
    pub const ALL: [Scheme; 6] = [
        Scheme::Fifo,
        Scheme::PifoNaive,
        Scheme::PifoIdeal,
        Scheme::QvisorEdfFirst,
        Scheme::QvisorShare,
        Scheme::QvisorPfabricFirst,
    ];

    /// Label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Fifo => "FIFO: pFabric and EDF",
            Scheme::PifoNaive => "PIFO: pFabric and EDF",
            Scheme::PifoIdeal => "PIFO: pFabric",
            Scheme::QvisorEdfFirst => "QVISOR: EDF >> pFabric",
            Scheme::QvisorShare => "QVISOR: pFabric + EDF",
            Scheme::QvisorPfabricFirst => "QVISOR: pFabric >> EDF",
        }
    }

    /// The operator policy string, for the QVISOR schemes.
    pub fn policy(self) -> Option<&'static str> {
        match self {
            Scheme::QvisorEdfFirst => Some("EDF >> pFabric"),
            Scheme::QvisorShare => Some("pFabric + EDF"),
            Scheme::QvisorPfabricFirst => Some("pFabric >> EDF"),
            _ => None,
        }
    }
}

/// Which flow-size distribution drives tenant 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// The paper's data-mining CDF (heavy tail up to 100 MB).
    DataMining,
    /// The DCTCP web-search CDF (milder tail up to 20 MB) — an extra
    /// sensitivity axis beyond the paper.
    WebSearch,
}

impl Workload {
    /// The unscaled maximum flow size of the CDF, bytes.
    pub fn max_bytes(self) -> u64 {
        match self {
            Workload::DataMining => 100_000_000,
            Workload::WebSearch => 20_000_000,
        }
    }

    fn sizes(self, scale_den: u64) -> SizeDistSpec {
        match self {
            Workload::DataMining => SizeDistSpec::DataMining { scale_den },
            Workload::WebSearch => SizeDistSpec::WebSearch { scale_den },
        }
    }
}

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Fig4Config {
    /// The fabric.
    pub fabric: LeafSpineConfig,
    /// Tenant 1's flow-size distribution.
    pub workload: Workload,
    /// Number of pFabric flows to complete per point.
    pub flows: usize,
    /// Data-mining sizes are divided by this (1 = the paper's full sizes).
    pub size_scale_den: u64,
    /// Number of CBR streams for tenant 2 (paper: 100).
    pub cbr_streams: usize,
    /// Per-stream CBR rate (paper: 0.5 Gbps).
    pub cbr_rate_bps: u64,
    /// EDF deadline offset per datagram.
    pub deadline_offset: Nanos,
    /// Root seed.
    pub seed: u64,
}

impl Fig4Config {
    /// The paper's fabric with sizes scaled 1/10 and 2000 flows — the
    /// configuration behind EXPERIMENTS.md's recorded sweep.
    pub fn paper_scaled() -> Fig4Config {
        Fig4Config {
            fabric: LeafSpineConfig::paper(),
            workload: Workload::DataMining,
            flows: 2_000,
            size_scale_den: 10,
            cbr_streams: 100,
            cbr_rate_bps: 500_000_000,
            deadline_offset: Nanos::from_micros(300),
            seed: 1,
        }
    }

    /// A laptop-fast configuration preserving the scheme ordering: small
    /// fabric, 1/50 sizes, fewer flows and streams.
    pub fn smoke() -> Fig4Config {
        Fig4Config {
            fabric: LeafSpineConfig::small(),
            workload: Workload::DataMining,
            flows: 150,
            size_scale_den: 50,
            cbr_streams: 4,
            cbr_rate_bps: 300_000_000,
            deadline_offset: Nanos::from_micros(300),
            seed: 1,
        }
    }
}

/// One measured point of Fig. 4.
#[derive(Clone, Copy, Debug)]
pub struct Fig4Point {
    /// The swept load.
    pub load: f64,
    /// Fig. 4a: mean FCT of pFabric flows in (0, 100 KB), milliseconds.
    pub small_fct_ms: Option<f64>,
    /// Fig. 4b: mean FCT of pFabric flows in [1 MB, ∞), milliseconds.
    pub large_fct_ms: Option<f64>,
    /// pFabric flows completed.
    pub completed: usize,
    /// pFabric flows not finished at the horizon.
    pub incomplete: u64,
    /// Tenant 2 deadline hit rate, if tenant 2 ran.
    pub deadline_hit: Option<f64>,
    /// Events processed (for performance bookkeeping).
    pub events: u64,
}

/// Size bucket matching Fig. 4a under a scaled workload: the paper's
/// boundaries divided by the same scale factor.
fn scaled_bucket(bucket: SizeBucket, den: u64) -> SizeBucket {
    SizeBucket {
        lo: (bucket.lo / den).max(1),
        hi: if bucket.hi == u64::MAX {
            u64::MAX
        } else {
            (bucket.hi / den).max(2)
        },
    }
}

/// The declarative scenario behind one (scheme, load) point — the whole
/// experiment as data. `Engine::run(&scenario(..))` reproduces the
/// pre-refactor hand-wired construction byte for byte.
pub fn scenario(scheme: Scheme, load: f64, cfg: &Fig4Config) -> ScenarioSpec {
    // pFabric rank = remaining KB; bound by the scaled maximum flow size.
    let max_rank = (cfg.workload.max_bytes() / cfg.size_scale_den / 1_000).max(1);
    // EDF's rank unit is chosen so raw EDF ranks land in the middle of the
    // small-flow pFabric rank span: this is the §2 clash the paper
    // constructs — under naive sharing "the priorities defined by the EDF
    // policy are higher than the ones set by pFabric" for most packets,
    // independent of the size-scale knob.
    let small_hi_rank = (100_000 / cfg.size_scale_den / 1_000).max(2);
    let edf_target = (small_hi_rank / 2).max(1);
    let edf_unit = Nanos(cfg.deadline_offset.as_nanos() / edf_target);
    let deadline_rank_max = edf_target * 2;

    let mut workloads = vec![WorkloadSpec::Poisson {
        tenant: PFABRIC.0,
        flows: cfg.flows,
        sizes: cfg.workload.sizes(cfg.size_scale_den),
        arrival: ArrivalSpec::Load(load),
        rng_stream: 1,
    }];
    if scheme != Scheme::PifoIdeal {
        workloads.push(WorkloadSpec::CbrFleet {
            tenant: EDF.0,
            streams: cfg.cbr_streams,
            rate_bps: cfg.cbr_rate_bps,
            pkt_size: 1_500,
            start_ns: 0,
            stop: TimeRef::AfterLastArrival(Nanos::from_millis(20).as_nanos()),
            deadline_offset_ns: cfg.deadline_offset.as_nanos(),
            rng_stream: 2,
        });
    }

    let qvisor = scheme.policy().map(|policy| QvisorSpec {
        tenants: vec![
            TenantDecl {
                id: PFABRIC.0,
                name: "pFabric".to_string(),
                algorithm: "pFabric".to_string(),
                rank_min: 0,
                rank_max: max_rank,
                levels: Some(512),
            },
            TenantDecl {
                id: EDF.0,
                name: "EDF".to_string(),
                algorithm: "EDF".to_string(),
                rank_min: 0,
                rank_max: deadline_rank_max,
                levels: Some(64),
            },
        ],
        policy: policy.to_string(),
        unknown_drop: false,
        scope: ScopeSpec::Everywhere,
        monitor: None,
        synth: None,
    });

    ScenarioSpec {
        name: format!("fig4-{:?}-load{load}", scheme),
        seed: cfg.seed,
        topology: TopologySpec::LeafSpine {
            leaves: cfg.fabric.leaves,
            spines: cfg.fabric.spines,
            hosts_per_leaf: cfg.fabric.hosts_per_leaf,
            access_bps: cfg.fabric.access_bps,
            fabric_bps: cfg.fabric.fabric_bps,
            access_delay_ns: cfg.fabric.access_delay.as_nanos(),
            fabric_delay_ns: cfg.fabric.fabric_delay.as_nanos(),
        },
        sim: SimSpec {
            horizon: TimeRef::AfterLastArrival(Nanos::from_secs(2).as_nanos()),
            ..SimSpec::default()
        },
        scheduler: match scheme {
            Scheme::Fifo => SchedulerSpec::Fifo,
            _ => SchedulerSpec::Pifo,
        },
        host_scheduler: None,
        qvisor,
        rank_fns: vec![
            (
                PFABRIC.0,
                RankFnSpec::PFabric {
                    unit_bytes: 1_000,
                    max_rank,
                },
            ),
            (
                EDF.0,
                RankFnSpec::Edf {
                    unit_ns: edf_unit.as_nanos(),
                    max_rank: deadline_rank_max,
                },
            ),
        ],
        workloads,
        alerts: Vec::new(),
    }
}

/// Reduce a raw report to the figure's measured point.
pub fn extract_point(report: &SimReport, load: f64, cfg: &Fig4Config) -> Fig4Point {
    let small = scaled_bucket(SizeBucket::SMALL, cfg.size_scale_den);
    let large = scaled_bucket(SizeBucket::LARGE, cfg.size_scale_den);
    Fig4Point {
        load,
        small_fct_ms: report.fct.mean_fct_ms(Some(PFABRIC), small),
        large_fct_ms: report.fct.mean_fct_ms(Some(PFABRIC), large),
        completed: report.fct.count(Some(PFABRIC)),
        incomplete: report.incomplete_flows,
        deadline_hit: report.tenant(EDF).deadline_hit_rate(),
        events: report.events,
    }
}

/// Run one (scheme, load) point without telemetry.
pub fn run_point(scheme: Scheme, load: f64, cfg: &Fig4Config) -> Fig4Point {
    run_point_telemetry(scheme, load, cfg, &qvisor_telemetry::Telemetry::disabled())
}

/// Run one (scheme, load) point, reporting through `telemetry`. Pass a
/// fresh registry per point — queue and tenant labels repeat across points.
pub fn run_point_telemetry(
    scheme: Scheme,
    load: f64,
    cfg: &Fig4Config,
    telemetry: &qvisor_telemetry::Telemetry,
) -> Fig4Point {
    run_point_instrumented(
        scheme,
        load,
        cfg,
        telemetry,
        &qvisor_telemetry::Tracer::disabled(),
    )
}

/// Run one (scheme, load) point with both a telemetry registry and a
/// packet-lifecycle tracer attached. Pass fresh handles per point — queue
/// and tenant labels repeat across points, and each point's trace should
/// be a self-contained snapshot.
pub fn run_point_instrumented(
    scheme: Scheme,
    load: f64,
    cfg: &Fig4Config,
    telemetry: &qvisor_telemetry::Telemetry,
    tracer: &qvisor_telemetry::Tracer,
) -> Fig4Point {
    let report = Engine::new()
        .with_telemetry(telemetry)
        .with_tracer(tracer)
        .run(&scenario(scheme, load, cfg))
        .expect("valid fig4 scenario");
    extract_point(&report, load, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_point_runs_and_completes() {
        let cfg = Fig4Config::smoke();
        let p = run_point(Scheme::QvisorPfabricFirst, 0.4, &cfg);
        assert!(p.completed > 0);
        assert!(p.small_fct_ms.is_some());
        assert!(p.events > 1_000);
    }

    #[test]
    fn ideal_runs_without_edf_traffic() {
        let cfg = Fig4Config::smoke();
        let p = run_point(Scheme::PifoIdeal, 0.4, &cfg);
        assert_eq!(p.deadline_hit, None, "no EDF tenant in the ideal case");
    }

    #[test]
    fn scheme_ordering_holds_at_moderate_load() {
        // The paper's headline: QVISOR pFabric>>EDF ≈ ideal, while naive
        // PIFO sharing and EDF-first are clearly worse for small flows.
        let cfg = Fig4Config::smoke();
        let small = |s: Scheme| run_point(s, 0.5, &cfg).small_fct_ms.unwrap();
        let ideal = small(Scheme::PifoIdeal);
        let qv_first = small(Scheme::QvisorPfabricFirst);
        let naive = small(Scheme::PifoNaive);
        let edf_first = small(Scheme::QvisorEdfFirst);
        assert!(
            qv_first < naive,
            "QVISOR pF>>EDF ({qv_first:.3}) must beat naive PIFO ({naive:.3})"
        );
        assert!(
            qv_first < edf_first,
            "QVISOR pF>>EDF ({qv_first:.3}) must beat EDF-first ({edf_first:.3})"
        );
        assert!(
            qv_first < ideal * 2.0,
            "QVISOR pF>>EDF ({qv_first:.3}) should be near ideal ({ideal:.3})"
        );
    }

    #[test]
    fn scaled_buckets() {
        let s = scaled_bucket(SizeBucket::SMALL, 50);
        assert_eq!(s.lo, 1);
        assert_eq!(s.hi, 2_000);
        let l = scaled_bucket(SizeBucket::LARGE, 50);
        assert_eq!(l.lo, 20_000);
        assert_eq!(l.hi, u64::MAX);
    }

    #[test]
    fn scenario_spec_round_trips_through_json() {
        let cfg = Fig4Config::smoke();
        let spec = scenario(Scheme::QvisorShare, 0.5, &cfg);
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);
    }
}
