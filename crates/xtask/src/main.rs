//! Repo task runner (`cargo run -p qvisor-xtask -- <task>`).
//!
//! The only task so far is `lint`: a determinism lint over the simulation
//! crates (`sim`, `netsim`, `scheduler`, `core`). Everything inside a
//! simulation must be a pure function of the scenario and its seed, so the
//! lint refuses:
//!
//! - **wall-clock reads** — `std::time::Instant` / `SystemTime` (simulation
//!   time is `Nanos`; host time differs run-to-run),
//! - **ambient randomness** — `thread_rng`, `rand::random`, `OsRng`
//!   (derive a stream from `SimRng::seed_from(seed).derive(label)` instead),
//! - **iteration over hash containers** — `HashMap`/`HashSet` iteration
//!   order is randomized per process, so any fold, merge, or report built
//!   from it diverges between identical runs (use `BTreeMap`/`BTreeSet`,
//!   or sort before consuming),
//! - **detached threads** — `std::thread::spawn` creates a thread whose
//!   lifetime and scheduling are unobservable; simulation concurrency must
//!   go through the sharded executor's scoped, barrier-synchronized
//!   workers (`std::thread::scope`), whose merges are canonical.
//!
//! Sanctioned exceptions carry an inline waiver comment on the offending
//! line: `// determinism: allowed (<why>)`. The current waivers are the
//! self-profiler's wall-clock reads (host cost of synthesis, stripped from
//! deterministic exports) and the detached I/O threads of the serve daemon
//! and the telemetry snapshot bus, which never feed simulation state.
//!
//! By repo convention test modules sit at the bottom of a file behind
//! `#[cfg(test)]`; the lint stops scanning a file at that marker.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crate source trees (or single files) that must stay deterministic.
/// The telemetry crate is only partially listed: the registry itself is
/// observability plumbing, but the SLO monitor, the Prometheus renderer,
/// and the snapshot bus feed deterministic exports and alert sim-times,
/// so they are held to the same standard as the simulation.
const LINT_ROOTS: &[&str] = &[
    "crates/sim/src",
    "crates/netsim/src",
    "crates/scheduler/src",
    "crates/core/src",
    "crates/serve/src",
    "crates/fuzz/src",
    "crates/topology/src",
    "crates/telemetry/src/monitor.rs",
    "crates/telemetry/src/prometheus.rs",
    "crates/telemetry/src/stream.rs",
];

/// Inline waiver marker: a finding on a line carrying this comment is
/// sanctioned.
const WAIVER: &str = "determinism: allowed";

/// Forbidden tokens with the reason they are forbidden. Longest-prefix
/// entries first so a line reports the most specific match only.
const FORBIDDEN: &[(&str, &str)] = &[
    (
        "std::time::Instant",
        "wall-clock read; simulations must use simulation time (Nanos)",
    ),
    (
        "std::time::SystemTime",
        "wall-clock read; simulations must use simulation time (Nanos)",
    ),
    (
        "Instant::now",
        "wall-clock read; simulations must use simulation time (Nanos)",
    ),
    (
        "SystemTime::now",
        "wall-clock read; simulations must use simulation time (Nanos)",
    ),
    (
        "thread_rng",
        "ambient RNG; derive a stream from SimRng::seed_from(seed).derive(label)",
    ),
    (
        "rand::random",
        "ambient RNG; derive a stream from SimRng::seed_from(seed).derive(label)",
    ),
    (
        "OsRng",
        "ambient RNG; derive a stream from SimRng::seed_from(seed).derive(label)",
    ),
    (
        "std::thread::spawn",
        "detached thread; simulation concurrency must use the sharded \
         executor's scoped, barrier-synchronized workers",
    ),
];

/// Methods whose call on a hash container iterates it in randomized order.
const HASH_ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
    ".retain(",
];

/// One lint finding.
#[derive(Debug, PartialEq, Eq)]
struct Finding {
    /// Path relative to the repo root.
    path: String,
    /// 1-based line number.
    line: usize,
    /// What is wrong and what to do instead.
    msg: String,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown task '{other}'\n\nUSAGE:\n    cargo run -p qvisor-xtask -- lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("no task given\n\nUSAGE:\n    cargo run -p qvisor-xtask -- lint");
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    // The binary may be invoked from anywhere; anchor on the manifest.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels under the repo root")
        .to_path_buf();
    let mut files = Vec::new();
    for tree in LINT_ROOTS {
        collect_rs_files(&root.join(tree), &mut files);
    }
    files.sort();
    let mut findings = Vec::new();
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", file.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .display()
            .to_string();
        findings.extend(scan_source(&rel, &text));
    }
    if findings.is_empty() {
        println!("determinism lint: OK ({} files)", files.len());
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{}:{}: {}", f.path, f.line, f.msg);
        }
        eprintln!("determinism lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    // A root may name a single file instead of a tree.
    if dir.is_file() {
        if dir.extension().is_some_and(|e| e == "rs") {
            out.push(dir.to_path_buf());
        }
        return;
    }
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Strip `//` comments and the bodies of string literals from a line,
/// leaving only code that can actually execute. Keeps the line length
/// roughly stable so findings still point at real columns.
fn code_of(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

/// Mark every line belonging to a `#[cfg(test)]`-gated item (the attribute
/// itself, then either a one-line `mod tests;` declaration or the whole
/// braced block). Test code may freely use hash iteration or host time.
fn test_mask(text: &str) -> Vec<bool> {
    let lines: Vec<&str> = text.lines().collect();
    let mut skip = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim() != "#[cfg(test)]" {
            i += 1;
            continue;
        }
        skip[i] = true;
        let mut j = i + 1;
        let mut depth = 0usize;
        let mut opened = false;
        while j < lines.len() {
            skip[j] = true;
            let code = code_of(lines[j]);
            for c in code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
            if (opened && depth == 0) || (!opened && code.contains(';')) {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    skip
}

/// Lint one source file.
fn scan_source(path: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let skip = test_mask(text);

    // Pass 1: names bound to hash containers (lets, struct fields).
    let mut hash_idents: BTreeSet<String> = BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        if skip[i] {
            continue;
        }
        let code = code_of(line);
        if !code.contains("HashMap") && !code.contains("HashSet") {
            continue;
        }
        if let Some(name) = binding_name(&code) {
            hash_idents.insert(name);
        }
    }

    // Pass 2: forbidden tokens and iteration over collected idents. A
    // waiver sanctions its own line, or — since rustfmt relocates
    // trailing comments — the line directly below it.
    let lines: Vec<&str> = text.lines().collect();
    for (i, &line) in lines.iter().enumerate() {
        if skip[i] {
            continue;
        }
        if line.contains(WAIVER) || (i > 0 && lines[i - 1].contains(WAIVER)) {
            continue;
        }
        let code = code_of(line);
        if let Some((token, why)) = FORBIDDEN.iter().find(|(token, _)| code.contains(token)) {
            findings.push(Finding {
                path: path.to_string(),
                line: i + 1,
                msg: format!("forbidden `{token}`: {why}"),
            });
            continue;
        }
        for ident in &hash_idents {
            if iterates_ident(&code, ident) {
                findings.push(Finding {
                    path: path.to_string(),
                    line: i + 1,
                    msg: format!(
                        "iteration over hash container `{ident}`: order is \
                         randomized per process; use BTreeMap/BTreeSet or sort first"
                    ),
                });
                break;
            }
        }
    }
    findings
}

/// The identifier a `HashMap`/`HashSet` is bound to on this line, if any:
/// `let [mut] name[: T] = ...` or a `name: HashMap<...>` field/argument.
fn binding_name(code: &str) -> Option<String> {
    if let Some(pos) = code.find("let ") {
        let rest = code[pos + 4..].trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        return (!name.is_empty()).then_some(name);
    }
    // Field or argument form: the ident immediately before the `:` that
    // precedes the container type.
    let ty = code.find("HashMap").or_else(|| code.find("HashSet"))?;
    let before = code[..ty].trim_end();
    let before = before.strip_suffix(':')?.trim_end();
    let name: String = before
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    (!name.is_empty() && !name.chars().next().unwrap().is_numeric()).then_some(name)
}

/// Does this line iterate `ident`? Catches method-based iteration
/// (`ident.iter()`, `.keys()`, ...) and `for .. in [&[mut ]]ident`.
fn iterates_ident(code: &str, ident: &str) -> bool {
    for method in HASH_ITER_METHODS {
        let needle = format!("{ident}{method}");
        if let Some(pos) = code.find(&needle) {
            // Word boundary on the left so `my_map.iter()` doesn't match `map`.
            let boundary = pos == 0
                || !code[..pos]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if boundary {
                return true;
            }
        }
    }
    if let Some(pos) = code.find(" in ") {
        let target = code[pos + 4..].trim_start();
        let target = target.strip_prefix('&').unwrap_or(target);
        let target = target.strip_prefix("mut ").unwrap_or(target);
        let name: String = target
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name == ident {
            // `for (k, v) in map {` iterates; `for k in map.keys_sorted()`
            // resolves through a method, judged by the method list above.
            let after = target[name.len()..].trim_start();
            return !after.starts_with('.');
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_wall_clock_and_ambient_rng() {
        let src =
            "fn f() {\n    let t = std::time::Instant::now();\n    let r = thread_rng();\n}\n";
        let f = scan_source("x.rs", src);
        assert_eq!(f.len(), 2);
        assert!(f[0].msg.contains("std::time::Instant"));
        assert_eq!(f[0].line, 2);
        assert!(f[1].msg.contains("thread_rng"));
    }

    #[test]
    fn detached_threads_are_flagged_but_scoped_ones_are_not() {
        let src = "fn f() {\n    std::thread::spawn(|| {});\n    \
                   std::thread::scope(|scope| { scope.spawn(|| {}); });\n}\n";
        let f = scan_source("x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
        assert!(f[0].msg.contains("std::thread::spawn"));
    }

    #[test]
    fn waiver_comment_sanctions_a_line() {
        let src = "let t = std::time::Instant::now(); // determinism: allowed (profiler)\n";
        assert!(scan_source("x.rs", src).is_empty());
    }

    #[test]
    fn waiver_comment_on_the_preceding_line_also_sanctions() {
        // rustfmt relocates trailing comments, so a standalone waiver
        // directly above the offending line counts too.
        let src = "// determinism: allowed (daemon I/O)\nstd::thread::spawn(|| {});\n";
        assert!(scan_source("x.rs", src).is_empty());
        let src = "// determinism: allowed (daemon I/O)\nfn gap() {}\nstd::thread::spawn(|| {});\n";
        assert_eq!(scan_source("x.rs", src).len(), 1, "waiver must be adjacent");
    }

    #[test]
    fn comments_and_strings_do_not_trip() {
        let src = "// std::time::Instant is forbidden\nlet s = \"thread_rng\";\n";
        assert!(scan_source("x.rs", src).is_empty());
    }

    #[test]
    fn flags_hash_iteration_but_not_lookup() {
        let src = "let by_name: HashMap<&str, u32> = HashMap::new();\n\
                   let hit = by_name.get(\"x\");\n\
                   for (k, v) in &by_name {\n\
                   let ks: Vec<_> = by_name.keys().collect();\n";
        let f = scan_source("x.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert_eq!(f[1].line, 4);
        assert!(f[0].msg.contains("by_name"));
    }

    #[test]
    fn field_bindings_are_tracked() {
        let src = "struct S {\n    chains: HashMap<u16, u64>,\n}\n\
                   fn f(s: &S) { for c in s.chains.values() {} }\n";
        let f = scan_source("x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("chains"));
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n}\n";
        assert!(scan_source("x.rs", src).is_empty());
    }

    #[test]
    fn code_after_a_test_mod_declaration_is_still_scanned() {
        let src = "#[cfg(test)]\nmod differential;\n\
                   fn f() { let t = std::time::Instant::now(); }\n";
        let f = scan_source("x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn longer_token_wins_and_lines_dedupe() {
        let src = "let t = std::time::Instant::now();\n";
        let f = scan_source("x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("`std::time::Instant`"));
    }
}
