//! Online statistics used by metric collectors and the runtime monitor.

/// Streaming mean/variance/min/max (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentile collector: stores all samples, sorts on query.
///
/// Fine for per-run metric collection (hundreds of thousands of samples);
/// the *runtime* monitor uses [`Log2Histogram`]-style sketches instead.
#[derive(Clone, Debug, Default)]
pub struct PercentileCollector {
    samples: Vec<f64>,
    sorted: bool,
}

impl PercentileCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample.
    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `p`-quantile (`p` in `[0, 1]`) by nearest-rank; `None` if empty.
    pub fn quantile(&mut self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let p = p.clamp(0.0, 1.0);
        let idx = ((self.samples.len() as f64 - 1.0) * p).round() as usize;
        Some(self.samples[idx])
    }

    /// Arithmetic mean; `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }
}

/// Power-of-two bucketed histogram over `u64` values (e.g. ranks).
///
/// Bucket `i` holds values whose bit length is `i` (bucket 0: value 0).
/// Cheap enough to sit on the data path of the runtime monitor.
#[derive(Clone, Debug)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: [0; 65],
            count: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Record a value.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Upper bound of the bucket containing the `p`-quantile
    /// (`p` in `[0,1]`); `None` if empty.
    pub fn quantile_bound(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let target = target.max(1);
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(if i == 0 { 0 } else { (1u64 << i) - 1 });
            }
        }
        Some(u64::MAX)
    }

    /// Reset all buckets.
    pub fn clear(&mut self) {
        self.buckets = [0; 65];
        self.count = 0;
    }
}

/// Exponentially-weighted moving average.
#[derive(Clone, Copy, Debug)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// `alpha` is the weight of the newest sample, in `(0, 1]`.
    pub fn new(alpha: f64) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Fold in a sample and return the updated average.
    pub fn record(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current average, if any sample has been recorded.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// Jain's fairness index over a set of allocations: `(Σx)² / (n·Σx²)`.
///
/// 1.0 = perfectly fair; `1/n` = one party takes everything. Returns `None`
/// for an empty slice or all-zero allocations.
pub fn jain_fairness(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return None;
    }
    Some(sum * sum / (xs.len() as f64 * sum_sq))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 37 % 19) as f64).collect();
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.record(x));
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        xs[..40].iter().for_each(|&x| left.record(x));
        xs[40..].iter().for_each(|&x| right.record(x));
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn percentiles() {
        let mut p = PercentileCollector::new();
        for i in 1..=100 {
            p.record(i as f64);
        }
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.quantile(1.0), Some(100.0));
        assert_eq!(p.quantile(0.5), Some(51.0)); // nearest-rank on 100 samples
        assert_eq!(p.mean(), Some(50.5));
        assert_eq!(PercentileCollector::new().quantile(0.5), None);
    }

    #[test]
    fn log2_histogram_quantiles() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 700, 800, 900, 1000, 1023] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        // Half the mass is <= 4, so the median bucket bound is 7 (bucket of 4..8).
        assert_eq!(h.quantile_bound(0.5), Some(7));
        // Everything is <= 1023.
        assert_eq!(h.quantile_bound(1.0), Some(1023));
        h.clear();
        assert_eq!(h.quantile_bound(0.5), None);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.record(10.0);
        assert_eq!(e.value(), Some(10.0));
        e.record(0.0);
        assert_eq!(e.value(), Some(5.0));
        for _ in 0..64 {
            e.record(3.0);
        }
        assert!((e.value().unwrap() - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn jain_index() {
        assert!((jain_fairness(&[1.0, 1.0, 1.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((jain_fairness(&[1.0, 0.0, 0.0, 0.0]).unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), None);
        assert_eq!(jain_fairness(&[0.0, 0.0]), None);
    }
}
