//! Token-bucket rate shaper.
//!
//! Not a queue by itself: wraps an inner [`PacketQueue`] and gates dequeues
//! on token availability, producing a (non-work-conserving) rate limit.
//! Used by operator policies that cap a tenant's share, and by fault
//! injection in tests.

use crate::queue::{Enqueue, PacketQueue};
use qvisor_sim::{Nanos, Packet, Rank};

/// A token bucket: `rate_bps` sustained, `burst_bytes` of depth.
#[derive(Clone, Copy, Debug)]
pub struct TokenBucket {
    rate_bps: u64,
    burst_bytes: u64,
    tokens: f64,
    last_refill: Nanos,
}

impl TokenBucket {
    /// A full bucket.
    ///
    /// # Panics
    /// Panics if rate or burst is zero.
    pub fn new(rate_bps: u64, burst_bytes: u64) -> TokenBucket {
        assert!(rate_bps > 0, "rate must be positive");
        assert!(burst_bytes > 0, "burst must be positive");
        TokenBucket {
            rate_bps,
            burst_bytes,
            tokens: burst_bytes as f64,
            last_refill: Nanos::ZERO,
        }
    }

    fn refill(&mut self, now: Nanos) {
        if now <= self.last_refill {
            return;
        }
        let elapsed = (now - self.last_refill).as_secs_f64();
        self.tokens =
            (self.tokens + elapsed * self.rate_bps as f64 / 8.0).min(self.burst_bytes as f64);
        self.last_refill = now;
    }

    /// Try to consume `bytes` tokens at time `now`.
    pub fn try_consume(&mut self, bytes: u64, now: Nanos) -> bool {
        self.refill(now);
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }

    /// Earliest time at which `bytes` tokens will be available, given no
    /// other consumption.
    pub fn available_at(&self, bytes: u64, now: Nanos) -> Nanos {
        let mut b = *self;
        b.refill(now);
        if b.tokens >= bytes as f64 {
            return now;
        }
        let deficit = bytes as f64 - b.tokens;
        let secs = deficit * 8.0 / self.rate_bps as f64;
        now + Nanos((secs * 1e9).ceil() as u64)
    }
}

/// A shaped queue: inner discipline + token bucket on the dequeue side.
///
/// `dequeue` returns `None` while out of tokens even if packets are queued
/// (non-work-conserving); use [`ShapedQueue::next_ready_at`] to find when to
/// retry.
pub struct ShapedQueue<Q: PacketQueue> {
    inner: Q,
    bucket: TokenBucket,
}

impl<Q: PacketQueue> ShapedQueue<Q> {
    /// Wrap `inner` behind `bucket`.
    pub fn new(inner: Q, bucket: TokenBucket) -> ShapedQueue<Q> {
        ShapedQueue { inner, bucket }
    }

    /// When the head packet could next be released (`None` if empty).
    pub fn next_ready_at(&self, now: Nanos) -> Option<Nanos> {
        if self.inner.is_empty() {
            return None;
        }
        // Conservative: assume an MTU-sized head if rank probing can't see
        // the size; we gate on the actual head at dequeue time anyway.
        Some(self.bucket.available_at(1, now))
    }

    /// Access the inner queue.
    pub fn inner(&self) -> &Q {
        &self.inner
    }
}

impl<Q: PacketQueue> PacketQueue for ShapedQueue<Q> {
    fn enqueue(&mut self, p: Packet, now: Nanos) -> Enqueue {
        self.inner.enqueue(p, now)
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        // The trait exposes no sized peek, so dequeue optimistically and
        // re-offer the packet when tokens are short. Rank-ordered inner
        // queues restore its exact position; plain FIFOs would rotate the
        // head, so shaped ports should wrap rank queues (they do here).
        let p = self.inner.dequeue(now)?;
        if self.bucket.try_consume(p.size as u64, now) {
            return Some(p);
        }
        let r = self.inner.enqueue(p, now);
        debug_assert!(r.accepted(), "re-offer to a just-popped queue must fit");
        None
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn bytes(&self) -> u64 {
        self.inner.bytes()
    }

    fn head_rank(&self) -> Option<Rank> {
        self.inner.head_rank()
    }

    fn kind(&self) -> &'static str {
        self.inner.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pifo::PifoQueue;
    use crate::queue::Capacity;
    use qvisor_sim::{FlowId, NodeId, TenantId};

    fn pkt(seq: u64, size: u32) -> Packet {
        Packet::data(
            FlowId(1),
            TenantId(0),
            seq,
            size,
            NodeId(0),
            NodeId(1),
            1,
            Nanos::ZERO,
        )
    }

    #[test]
    fn bucket_starts_full_and_drains() {
        let mut b = TokenBucket::new(8_000, 1_000); // 1000 B/s, 1000 B burst
        assert!(b.try_consume(1_000, Nanos::ZERO));
        assert!(!b.try_consume(1, Nanos::ZERO));
    }

    #[test]
    fn bucket_refills_at_rate() {
        let mut b = TokenBucket::new(8_000, 1_000); // 1000 bytes/sec
        assert!(b.try_consume(1_000, Nanos::ZERO));
        // After 0.5 s, 500 bytes are back.
        assert!(b.try_consume(500, Nanos::from_millis(500)));
        assert!(!b.try_consume(1, Nanos::from_millis(500)));
    }

    #[test]
    fn bucket_caps_at_burst() {
        let mut b = TokenBucket::new(8_000, 1_000);
        // After a long idle period tokens cap at burst.
        assert!(b.try_consume(1_000, Nanos::from_secs(100)));
        assert!(!b.try_consume(1, Nanos::from_secs(100)));
    }

    #[test]
    fn available_at_predicts_refill() {
        let mut b = TokenBucket::new(8_000, 1_000);
        assert!(b.try_consume(1_000, Nanos::ZERO));
        let at = b.available_at(500, Nanos::ZERO);
        assert_eq!(at, Nanos::from_millis(500));
        assert!(b.try_consume(500, at));
    }

    #[test]
    fn shaped_queue_gates_dequeue() {
        let inner = PifoQueue::new(Capacity::UNBOUNDED);
        // 1000 B/s with a 100 B bucket: one 100 B packet per 0.1 s.
        let mut q = ShapedQueue::new(inner, TokenBucket::new(8_000, 100));
        q.enqueue(pkt(0, 100), Nanos::ZERO);
        q.enqueue(pkt(1, 100), Nanos::ZERO);
        assert!(q.dequeue(Nanos::ZERO).is_some());
        assert!(q.dequeue(Nanos::ZERO).is_none(), "no tokens left");
        assert_eq!(q.len(), 1, "refused packet stays queued");
        let later = Nanos::from_millis(100);
        assert!(q.dequeue(later).is_some());
        assert!(q.is_empty());
    }
}
