//! Self-contained fuzz corpus documents.
//!
//! A corpus document freezes one (usually minimized) deployment together
//! with the verdict the harness expects of it:
//!
//! ```json
//! {
//!   "fuzz": {"seed": 61637, "case": 42},
//!   "config": { "tenants": [...], "policy": "...", "synth": {...} },
//!   "expect": {"verdict": "errors", "codes": ["QV-OVERFLOW"], "cross_inversions": 0}
//! }
//! ```
//!
//! `config` is a complete `DeploymentConfig`; `expect.verdict` is the
//! verifier verdict class (`clean` / `warnings` / `errors`),
//! `expect.codes` the sorted distinct QV-* codes, and
//! `expect.cross_inversions` the queue oracle's cross-tenant
//! strict-level inversion count. `qvisor check` recognizes these
//! documents and replays them (exact verdict, codes, inversion count,
//! witness replays, zero disagreements), as does
//! `tests/fuzz_regressions.rs` — so every fuzz-found bug stays a
//! regression test forever.

use qvisor_core::{verify, DeploymentConfig, SpecPaths, VerifyReport};
use qvisor_sim::json::Value;

use crate::gen::FuzzCase;
use crate::oracle::{run_case_with, CaseOutcome, Verdict};

/// Does this parsed JSON document look like a fuzz corpus entry?
pub fn is_corpus_doc(v: &Value) -> bool {
    v.get("config").is_some() && v.get("expect").is_some()
}

/// Render a case + its observed outcome as a corpus document.
pub fn corpus_value(case: &FuzzCase, outcome: &CaseOutcome) -> Value {
    let codes: Vec<Value> = outcome
        .codes
        .iter()
        .map(|c| Value::from(c.as_str()))
        .collect();
    let config = Value::parse(&case.config.to_json()).expect("config JSON is well-formed");
    Value::object()
        .set(
            "fuzz",
            Value::object()
                .set("seed", case.seed)
                .set("case", case.index),
        )
        .set("config", config)
        .set(
            "expect",
            Value::object()
                .set("verdict", outcome.verdict.as_str())
                .set("codes", Value::from(codes))
                .set("cross_inversions", outcome.cross_inversions),
        )
}

/// A successful corpus replay: the recomputed verifier report and the
/// oracle outcome that matched the recorded expectation.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// The verifier report recomputed from the stored config.
    pub report: VerifyReport,
    /// The oracle outcome (verdict, codes, inversions, disagreements).
    pub outcome: CaseOutcome,
}

fn expect_str<'v>(v: &'v Value, key: &str) -> Result<&'v str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("corpus document: expect.{key} missing or not a string"))
}

/// Replay a corpus document: re-verify the stored config, re-run the
/// witness and queue oracles, and compare against the recorded
/// expectation. Returns an error describing the first mismatch.
pub fn replay_corpus(text: &str) -> Result<ReplayOutcome, String> {
    let doc = Value::parse(text).map_err(|e| format!("corpus document is not JSON: {e}"))?;
    if !is_corpus_doc(&doc) {
        return Err("not a corpus document (missing `config` or `expect`)".into());
    }
    let config_value = doc.get("config").expect("checked above");
    let config = DeploymentConfig::from_json(&config_value.to_pretty())
        .map_err(|e| format!("corpus config: {e}"))?;
    let (seed, index) = match doc.get("fuzz") {
        Some(f) => (
            f.get("seed").and_then(Value::as_u64).unwrap_or(0),
            f.get("case").and_then(Value::as_u64).unwrap_or(0),
        ),
        None => (0, 0),
    };
    let expect = doc.get("expect").expect("checked above");
    let want_verdict = Verdict::parse(expect_str(expect, "verdict")?)
        .ok_or_else(|| "corpus document: unknown expect.verdict".to_string())?;
    let want_codes: Vec<String> = expect
        .get("codes")
        .and_then(Value::as_array)
        .ok_or("corpus document: expect.codes missing or not an array")?
        .iter()
        .map(|c| {
            c.as_str()
                .map(str::to_string)
                .ok_or("corpus document: expect.codes entry is not a string".to_string())
        })
        .collect::<Result<_, _>>()?;
    let want_inversions = expect
        .get("cross_inversions")
        .and_then(Value::as_u64)
        .ok_or("corpus document: expect.cross_inversions missing")?;

    let case = FuzzCase {
        seed,
        index,
        config,
        rank_fns: Vec::new(),
    };
    let outcome = run_case_with(&case, false);
    if !outcome.disagreements.is_empty() {
        return Err(format!(
            "replay found verifier-vs-simulation disagreements: {}",
            outcome.disagreements.join("; ")
        ));
    }
    if outcome.verdict != want_verdict {
        return Err(format!(
            "verdict drifted: recorded {}, verifier now says {}",
            want_verdict.as_str(),
            outcome.verdict.as_str()
        ));
    }
    if outcome.codes != want_codes {
        return Err(format!(
            "diagnostic codes drifted: recorded [{}], verifier now emits [{}]",
            want_codes.join(", "),
            outcome.codes.join(", ")
        ));
    }
    if outcome.cross_inversions != want_inversions {
        return Err(format!(
            "queue oracle drifted: recorded {want_inversions} cross-tenant inversions, now {}",
            outcome.cross_inversions
        ));
    }
    let joint = case
        .config
        .synthesize()
        .map_err(|e| format!("corpus config no longer synthesizes: {e}"))?;
    let report = verify(&joint, &SpecPaths::config());
    Ok(ReplayOutcome { report, outcome })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_case;

    #[test]
    fn a_fresh_outcome_round_trips_through_its_corpus_document() {
        let case = generate_case(crate::DEFAULT_SEED, 5);
        let outcome = run_case_with(&case, false);
        assert!(
            outcome.disagreements.is_empty(),
            "{:?}",
            outcome.disagreements
        );
        let doc = corpus_value(&case, &outcome).to_pretty();
        let replay = replay_corpus(&doc).expect("replay must match its own recording");
        assert_eq!(replay.outcome.verdict, outcome.verdict);
        assert_eq!(replay.outcome.codes, outcome.codes);
        assert_eq!(replay.outcome.cross_inversions, outcome.cross_inversions);
    }

    #[test]
    fn a_drifted_expectation_is_rejected_with_a_mismatch_message() {
        let case = generate_case(crate::DEFAULT_SEED, 5);
        let outcome = run_case_with(&case, false);
        let doc = corpus_value(&case, &outcome).to_pretty();
        let wrong = doc.replace(
            &format!("\"verdict\": \"{}\"", outcome.verdict.as_str()),
            if outcome.verdict == Verdict::Errors {
                "\"verdict\": \"clean\""
            } else {
                "\"verdict\": \"errors\""
            },
        );
        assert_ne!(wrong, doc, "fixture must actually change the verdict");
        let err = replay_corpus(&wrong).unwrap_err();
        assert!(err.contains("verdict drifted"), "{err}");
    }

    #[test]
    fn non_corpus_documents_are_detected() {
        let v = Value::parse("{\"tenants\": []}").unwrap();
        assert!(!is_corpus_doc(&v));
        assert!(replay_corpus("{\"tenants\": []}").is_err());
    }
}
