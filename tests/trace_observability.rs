//! End-to-end guarantees for the packet-lifecycle flight recorder: tracing
//! never perturbs the simulation, exports are byte-deterministic, and the
//! Chrome JSON is well-formed Perfetto input.

use qvisor::core::{SynthConfig, TenantSpec, UnknownTenantAction};
use qvisor::netsim::{QvisorSetup, SchedulerKind, SimConfig, Simulation};
use qvisor::ranking::{PFabric, RankRange};
use qvisor::sim::{json::Value, Nanos, SimRng, TenantId};
use qvisor::telemetry::{perfetto, TraceConfig, TraceData, Tracer};
use qvisor::topology::{LeafSpine, LeafSpineConfig};

/// The determinism-suite world, with a tracer attached: one pFabric tenant
/// over a small leaf–spine fabric with 1% random loss (so drop spans
/// appear), QVISOR deployed (so transform spans appear).
fn world(seed: u64, tracer: Tracer) -> String {
    let fabric = LeafSpine::build(&LeafSpineConfig::small());
    let hosts = fabric.all_hosts();
    let specs = vec![
        TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(0, 10_000)).with_levels(128),
    ];
    let cfg = SimConfig {
        seed,
        random_loss: 0.01,
        horizon: Nanos::from_millis(50),
        scheduler: SchedulerKind::Pifo,
        qvisor: Some(QvisorSetup {
            specs,
            policy: "T1".into(),
            synth: SynthConfig::default(),
            unknown: UnknownTenantAction::BestEffort,
            scope: Default::default(),
            monitor: None,
        }),
        tracer,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(fabric.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(TenantId(1), Box::new(PFabric::default_datacenter()));
    let sizes = qvisor::workloads::EmpiricalCdf::web_search().scaled(1, 20);
    let flows = qvisor::workloads::PoissonFlowGen {
        tenant: TenantId(1),
        hosts: &hosts,
        sizes: &sizes,
        rate_flows_per_sec: 20_000.0,
    }
    .generate(150, &mut SimRng::seed_from(seed ^ 0xABCD));
    for f in &flows {
        sim.add_generated(f);
    }
    format!("{:?}", sim.run())
}

/// A trace of the world above, bounded for debug-build test speed: thinned
/// sampling and a small ring (which also exercises eviction accounting) —
/// the full world at `sample_one_in: 1` retains ~250k spans, and parsing
/// the resulting multi-megabyte Chrome JSON dominates the suite otherwise.
fn traced_world(seed: u64, sample_one_in: u64) -> (String, TraceData) {
    let tracer = Tracer::enabled(TraceConfig {
        capacity: 1 << 14,
        sample_one_in,
        seed,
    });
    let report = world(seed, tracer.clone());
    (report, tracer.snapshot())
}

/// Tracing must never change the simulation: the full report (compared
/// byte-for-byte via `Debug`) is identical with the flight recorder on and
/// off, while the recorder actually captured the run.
#[test]
fn tracing_does_not_perturb_the_world() {
    let (on_report, data) = traced_world(7, 1);
    let off_report = world(7, Tracer::disabled());
    assert_eq!(on_report, off_report, "tracing changed the simulation");
    assert!(!data.records.is_empty(), "enabled tracer recorded nothing");
    assert!(data.dropped > 0, "the small test ring should have evicted");
}

/// Same seed, same bytes: both the JSONL snapshot and the Chrome JSON
/// export are byte-identical across reruns.
#[test]
fn trace_export_is_byte_identical_across_reruns() {
    let (_, a) = traced_world(7, 4);
    let (_, b) = traced_world(7, 4);
    assert!(!a.records.is_empty(), "sampling 1-in-4 left no spans");
    assert_eq!(
        a.to_jsonl(),
        b.to_jsonl(),
        "trace snapshot not reproducible"
    );
    assert_eq!(
        perfetto::export_chrome(&a),
        perfetto::export_chrome(&b),
        "Chrome export not reproducible"
    );
}

/// The Chrome export is valid JSON and contains the expected event shapes:
/// metadata, async span begin/end, instants, and queue/link slices.
#[test]
fn chrome_export_parses_with_expected_phases() {
    let (_, data) = traced_world(7, 4);
    let chrome = perfetto::export_chrome(&data);
    let doc = Value::parse(&chrome).expect("chrome export must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(events.len() > 100, "suspiciously small trace");
    let mut phases = std::collections::BTreeSet::new();
    let mut names = std::collections::BTreeSet::new();
    for e in events {
        if let Some(ph) = e.get("ph").and_then(Value::as_str) {
            phases.insert(ph.to_string());
        }
        if let Some(n) = e.get("name").and_then(Value::as_str) {
            names.insert(n.to_string());
        }
    }
    for ph in ["M", "b", "e", "n", "X"] {
        assert!(phases.contains(ph), "missing phase {ph} in {phases:?}");
    }
    for name in ["rank", "transform", "enqueue", "dequeue", "deliver"] {
        assert!(names.contains(name), "missing span kind {name}");
    }
}

/// The JSONL snapshot round-trips through parse and re-export, and both
/// CLI entry points consume it — including via stdin as `-`.
#[test]
fn snapshot_round_trips_through_the_cli() {
    let (_, data) = traced_world(7, 4);
    let jsonl = data.to_jsonl();
    let reparsed = TraceData::parse(&jsonl).expect("own export must parse");
    assert_eq!(reparsed.to_jsonl(), jsonl, "parse/export not a fixpoint");

    let report = qvisor::cli::cmd_trace_report(&jsonl).expect("trace report");
    assert!(report.contains("queueing delay"));
    let chrome = qvisor::cli::cmd_trace_export(&jsonl).expect("trace export");
    assert!(chrome.contains("\"traceEvents\""));

    // `qvisor trace report -` reads the snapshot from stdin.
    use std::io::Write as _;
    use std::process::{Command, Stdio};
    let mut child = Command::new(env!("CARGO_BIN_EXE_qvisor"))
        .args(["trace", "report", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn qvisor");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(jsonl.as_bytes())
        .expect("pipe trace");
    let out = child.wait_with_output().expect("qvisor exits");
    assert!(out.status.success(), "qvisor trace report - failed");
    assert_eq!(String::from_utf8_lossy(&out.stdout), report);
}
