//! Ablation: fairness of the `+` operator as share groups grow.
//!
//! N identical closed-loop tenants share one bottleneck under
//! `T1 + T2 + ... + TN`; we report each group's Jain fairness index and
//! aggregate utilization, and compare against the same tenants thrown
//! naively (untransformed) onto the PIFO.
//!
//! Usage: cargo run -p qvisor-bench --release --bin ablation_sharegroups
//!        [-- --telemetry PREFIX]   write PREFIX-n<N>_{qvisor,naive}.jsonl

use qvisor_bench::harness::{run_one, telemetry_prefix};
use qvisor_netsim::scenario::{
    FlowDecl, QvisorSpec, ScenarioSpec, SchedulerSpec, ScopeSpec, SimSpec, TenantDecl, TimeRef,
    TopologySpec, WorkloadSpec,
};
use qvisor_netsim::SimReport;
use qvisor_ranking::RankFnSpec;
use qvisor_sim::{gbps, jain_fairness, Nanos, TenantId};

fn scenario(n: usize, qvisor: bool) -> ScenarioSpec {
    let qvisor_spec = qvisor.then(|| QvisorSpec {
        tenants: (1..=n)
            .map(|i| TenantDecl {
                id: i as u16,
                name: format!("T{i}"),
                algorithm: "FQ".to_string(),
                rank_min: 0,
                rank_max: 14_000,
                levels: Some(64),
            })
            .collect(),
        policy: (1..=n)
            .map(|i| format!("T{i}"))
            .collect::<Vec<_>>()
            .join(" + "),
        unknown_drop: false,
        scope: ScopeSpec::Everywhere,
        monitor: None,
        synth: None,
    });
    ScenarioSpec {
        name: format!(
            "sharegroups n{n} {}",
            if qvisor { "qvisor" } else { "naive" }
        ),
        seed: 9,
        topology: TopologySpec::Dumbbell {
            pairs: n,
            edge_bps: gbps(1),
            bottleneck_bps: gbps(1),
            delay_ns: Nanos::from_micros(1).as_nanos(),
        },
        sim: SimSpec {
            horizon: TimeRef::At(Nanos::from_millis(120).as_nanos()),
            ..SimSpec::default()
        },
        scheduler: SchedulerSpec::Pifo,
        host_scheduler: None,
        qvisor: qvisor_spec,
        rank_fns: (1..=n)
            .map(|i| {
                (
                    i as u16,
                    RankFnSpec::ByteCountFq {
                        unit_bytes: 1_460,
                        max_rank: 14_000,
                    },
                )
            })
            .collect(),
        // Sender i pairs with receiver i: dumbbell hosts are senders then
        // receivers, so receiver i sits at index n + i - 1.
        workloads: vec![WorkloadSpec::Flows {
            list: (1..=n)
                .map(|i| FlowDecl {
                    tenant: i as u16,
                    src_host: i - 1,
                    dst_host: n + i - 1,
                    size: 20_000_000,
                    start_ns: 0,
                    deadline_ns: None,
                    weight: 1,
                })
                .collect(),
        }],
        alerts: Vec::new(),
    }
}

fn measure(n: usize, r: &SimReport) -> (f64, f64) {
    let bytes: Vec<f64> = (1..=n)
        .map(|i| r.tenant(TenantId(i as u16)).delivered_bytes as f64)
        .collect();
    let jain = jain_fairness(&bytes).unwrap_or(f64::NAN);
    let util = bytes.iter().sum::<f64>() * 8.0 / r.end_time.as_secs_f64() / 1e9;
    (jain, util)
}

fn main() {
    println!("Ablation: share-group size (N elephants, one 1 Gbps bottleneck)");
    println!(
        "{:>4}{:>22}{:>22}{:>14}",
        "N", "Jain (QVISOR +)", "Jain (naive PIFO)", "util (QVISOR)"
    );
    let prefix = telemetry_prefix();
    for n in [2usize, 3, 4, 6, 8] {
        let rq = run_one(
            &scenario(n, true),
            prefix.as_deref(),
            &format!("n{n}_qvisor"),
        );
        let rn = run_one(
            &scenario(n, false),
            prefix.as_deref(),
            &format!("n{n}_naive"),
        );
        let (jq, uq) = measure(n, &rq);
        let (jn, _) = measure(n, &rn);
        println!("{n:>4}{jq:>22.4}{jn:>22.4}{uq:>13.2}x");
    }
    println!(
        "\nQVISOR's stride interleaving holds Jain ~1.0 as the group grows; \
         naive sharing depends on accidental rank alignment."
    );
}
