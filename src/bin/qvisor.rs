//! The `qvisor` command-line tool: synthesize, analyze, and compile
//! multi-tenant scheduling policies from JSON configuration files.
//!
//! See `qvisor::cli::USAGE` (printed on any usage error) and the README.
//! Exit codes are scripting-stable: 0 = success, 2 = `check` failed with
//! error-severity findings, 3 = `check` failed only via `--deny-warnings`
//! promotion, 1 = any other error.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match qvisor::cli::run(&args) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.exit_code());
        }
    }
}
