//! Strict-priority FIFO queue banks and rank→queue mappers.
//!
//! This is the "existing scheduler" substrate of §3.4: commodity switches
//! offer a handful of FIFO queues served in strict priority, and
//! approximating a PIFO means choosing which queue each rank goes to. The
//! mapping strategy is pluggable: a static range split, or the adaptive
//! SP-PIFO scheme (see [`crate::sp_pifo`]).

use crate::queue::{Capacity, Enqueue, PacketQueue};
use qvisor_sim::{Nanos, Packet, Rank};
use std::collections::VecDeque;

/// Decides which FIFO queue of a strict-priority bank a rank maps to.
///
/// Implementations may adapt on every enqueue/dequeue (SP-PIFO does), hence
/// the `&mut self` receivers.
pub trait QueueMapper {
    /// Number of queues this mapper targets (queue 0 = highest priority).
    fn queue_count(&self) -> usize;

    /// Queue index for a packet with rank `rank`. Must be `< queue_count()`.
    fn map(&mut self, rank: Rank) -> usize;

    /// Feedback hook invoked when a packet leaves queue `queue`.
    fn on_dequeue(&mut self, _queue: usize, _rank: Rank) {}

    /// Telemetry `kind` label for a bank driven by this mapper.
    fn kind(&self) -> &'static str {
        "strict"
    }
}

/// Static mapper: splits `[min, max]` into `queues` equal-width rank ranges.
///
/// The baseline §3.4 strategy when rank distributions are known in advance.
#[derive(Clone, Debug)]
pub struct StaticRangeMapper {
    min: Rank,
    max: Rank,
    queues: usize,
}

impl StaticRangeMapper {
    /// Map ranks in `[min, max]` uniformly onto `queues` queues. Ranks
    /// outside the range clamp to the first/last queue.
    ///
    /// # Panics
    /// Panics if `queues` is zero or `min > max`.
    pub fn new(min: Rank, max: Rank, queues: usize) -> StaticRangeMapper {
        assert!(queues > 0, "need at least one queue");
        assert!(min <= max, "empty rank range");
        StaticRangeMapper { min, max, queues }
    }
}

impl QueueMapper for StaticRangeMapper {
    fn queue_count(&self) -> usize {
        self.queues
    }

    fn map(&mut self, rank: Rank) -> usize {
        if rank <= self.min {
            return 0;
        }
        if rank >= self.max {
            return self.queues - 1;
        }
        let span = (self.max - self.min + 1) as u128;
        let offset = (rank - self.min) as u128;
        ((offset * self.queues as u128) / span) as usize
    }
}

/// A bank of FIFO queues served in strict priority (queue 0 first), sharing
/// one byte buffer, with a pluggable rank→queue [`QueueMapper`].
///
/// Drop policy on a full buffer: the arrival is compared against the tail of
/// the *lowest-priority non-empty* queue; if the arrival maps to a strictly
/// higher-priority queue, that tail is evicted (priority drop across
/// queues), otherwise the arrival is rejected (tail drop).
#[derive(Debug)]
pub struct StrictPriorityBank<M: QueueMapper> {
    queues: Vec<VecDeque<Packet>>,
    mapper: M,
    capacity: Capacity,
    bytes: u64,
}

impl<M: QueueMapper> StrictPriorityBank<M> {
    /// A bank sized by `mapper.queue_count()` sharing `capacity` bytes.
    pub fn new(mapper: M, capacity: Capacity) -> StrictPriorityBank<M> {
        let queues = (0..mapper.queue_count()).map(|_| VecDeque::new()).collect();
        StrictPriorityBank {
            queues,
            mapper,
            capacity,
            bytes: 0,
        }
    }

    /// Queue occupancies in packets, highest priority first (for tests and
    /// metrics).
    pub fn queue_lengths(&self) -> Vec<usize> {
        self.queues.iter().map(|q| q.len()).collect()
    }

    /// Access the mapper (e.g. to inspect adapted SP-PIFO bounds).
    pub fn mapper(&self) -> &M {
        &self.mapper
    }
}

impl<M: QueueMapper> PacketQueue for StrictPriorityBank<M> {
    fn enqueue(&mut self, p: Packet, _now: Nanos) -> Enqueue {
        let size = p.size as u64;
        let target = self.mapper.map(p.txf_rank);
        debug_assert!(target < self.queues.len(), "mapper returned bad queue");

        if self.capacity.fits(self.bytes, size) {
            self.bytes += size;
            self.queues[target].push_back(p);
            return Enqueue::Accepted;
        }

        // Buffer full: evict from strictly lower-priority queues while that
        // frees enough space; otherwise reject the arrival.
        let mut freed = 0u64;
        let mut victims: Vec<usize> = Vec::new(); // queue indices, tail pops
        let mut victim_counts = vec![0usize; self.queues.len()];
        'outer: for q in (0..self.queues.len()).rev() {
            if q <= target {
                break;
            }
            let qlen = self.queues[q].len();
            for i in 0..qlen {
                if self.capacity.fits(self.bytes - freed, size) {
                    break 'outer;
                }
                let idx = qlen - 1 - i; // from the tail
                freed += self.queues[q][idx].size as u64;
                victims.push(q);
                victim_counts[q] += 1;
            }
        }
        if !self.capacity.fits(self.bytes - freed, size) {
            return Enqueue::Rejected(Box::new(p));
        }
        let mut dropped = Vec::with_capacity(victims.len());
        for (q, count) in victim_counts.into_iter().enumerate() {
            for _ in 0..count {
                let victim = self.queues[q].pop_back().expect("victim just counted");
                dropped.push(victim);
            }
        }
        self.bytes -= freed;
        self.bytes += size;
        self.queues[target].push_back(p);
        if dropped.is_empty() {
            Enqueue::Accepted
        } else {
            Enqueue::AcceptedDropped(dropped)
        }
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<Packet> {
        for (i, q) in self.queues.iter_mut().enumerate() {
            if let Some(p) = q.pop_front() {
                self.bytes -= p.size as u64;
                self.mapper.on_dequeue(i, p.txf_rank);
                return Some(p);
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }

    fn head_rank(&self) -> Option<Rank> {
        self.queues
            .iter()
            .find(|q| !q.is_empty())
            .and_then(|q| q.front())
            .map(|p| p.txf_rank)
    }

    fn kind(&self) -> &'static str {
        self.mapper.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvisor_sim::{FlowId, NodeId, TenantId};

    fn pkt(seq: u64, rank: Rank) -> Packet {
        let mut p = Packet::data(
            FlowId(1),
            TenantId(0),
            seq,
            100,
            NodeId(0),
            NodeId(1),
            rank,
            Nanos::ZERO,
        );
        p.txf_rank = rank;
        p
    }

    #[test]
    fn static_mapper_splits_evenly() {
        let mut m = StaticRangeMapper::new(0, 99, 4);
        assert_eq!(m.map(0), 0);
        assert_eq!(m.map(24), 0);
        assert_eq!(m.map(25), 1);
        assert_eq!(m.map(50), 2);
        assert_eq!(m.map(75), 3);
        assert_eq!(m.map(99), 3);
        // out-of-range clamps
        assert_eq!(m.map(1000), 3);
    }

    #[test]
    fn static_mapper_degenerate_range() {
        let mut m = StaticRangeMapper::new(5, 5, 3);
        assert_eq!(m.map(5), 0);
        assert_eq!(m.map(4), 0);
        assert_eq!(m.map(6), 2);
    }

    #[test]
    fn strict_priority_service_order() {
        let mut bank =
            StrictPriorityBank::new(StaticRangeMapper::new(0, 9, 2), Capacity::UNBOUNDED);
        bank.enqueue(pkt(0, 9), Nanos::ZERO); // queue 1
        bank.enqueue(pkt(1, 0), Nanos::ZERO); // queue 0
        bank.enqueue(pkt(2, 8), Nanos::ZERO); // queue 1
        bank.enqueue(pkt(3, 1), Nanos::ZERO); // queue 0
        let out: Vec<u64> = std::iter::from_fn(|| bank.dequeue(Nanos::ZERO))
            .map(|p| p.seq)
            .collect();
        // queue 0 drains FIFO first, then queue 1 FIFO.
        assert_eq!(out, vec![1, 3, 0, 2]);
    }

    #[test]
    fn full_buffer_evicts_lower_priority_tail() {
        let mut bank =
            StrictPriorityBank::new(StaticRangeMapper::new(0, 9, 2), Capacity::bytes(200));
        bank.enqueue(pkt(0, 9), Nanos::ZERO); // low-priority queue
        bank.enqueue(pkt(1, 8), Nanos::ZERO);
        // High-priority arrival evicts the low-priority tail (seq 1).
        let r = bank.enqueue(pkt(2, 0), Nanos::ZERO);
        let dropped = r.dropped();
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].seq, 1);
        assert_eq!(bank.queue_lengths(), vec![1, 1]);
    }

    #[test]
    fn full_buffer_rejects_equal_or_lower_priority_arrival() {
        let mut bank =
            StrictPriorityBank::new(StaticRangeMapper::new(0, 9, 2), Capacity::bytes(200));
        bank.enqueue(pkt(0, 1), Nanos::ZERO); // high-priority queue
        bank.enqueue(pkt(1, 9), Nanos::ZERO); // low-priority queue
                                              // Arrival maps to the low-priority queue: nothing strictly lower to
                                              // evict, so it is rejected.
        let r = bank.enqueue(pkt(2, 9), Nanos::ZERO);
        assert!(!r.accepted());
        assert_eq!(bank.len(), 2);
    }

    #[test]
    fn head_rank_scans_priorities() {
        let mut bank =
            StrictPriorityBank::new(StaticRangeMapper::new(0, 9, 3), Capacity::UNBOUNDED);
        assert_eq!(bank.head_rank(), None);
        bank.enqueue(pkt(0, 9), Nanos::ZERO);
        assert_eq!(bank.head_rank(), Some(9));
        bank.enqueue(pkt(1, 0), Nanos::ZERO);
        assert_eq!(bank.head_rank(), Some(0));
    }

    #[test]
    fn byte_accounting() {
        let mut bank =
            StrictPriorityBank::new(StaticRangeMapper::new(0, 9, 2), Capacity::bytes(1000));
        bank.enqueue(pkt(0, 3), Nanos::ZERO);
        bank.enqueue(pkt(1, 7), Nanos::ZERO);
        assert_eq!(bank.bytes(), 200);
        bank.dequeue(Nanos::ZERO);
        assert_eq!(bank.bytes(), 100);
    }
}
