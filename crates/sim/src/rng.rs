//! Deterministic random numbers.
//!
//! The simulator carries its own xoshiro256** implementation so that results
//! are bit-reproducible across platforms with no external dependencies;
//! every distribution a workload needs is derived from [`SimRng`] directly.

/// SplitMix64, used to expand a 64-bit seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** PRNG.
///
/// Every source of randomness in a simulation is derived from one root seed
/// via [`SimRng::derive`], so adding a new consumer never perturbs the
/// streams of existing ones.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed from a single 64-bit value (expanded with SplitMix64).
    pub fn seed_from(seed: u64) -> SimRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child stream for subsystem `label`.
    ///
    /// The child seed mixes this generator's *seed-derived identity* with the
    /// label, without consuming from this stream, so derivation order does
    /// not matter.
    pub fn derive(&self, label: u64) -> SimRng {
        // Mix state words with the label through SplitMix64.
        let mut sm =
            self.s[0] ^ self.s[1].rotate_left(17) ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit output.
    #[allow(clippy::should_implement_trait)] // not an iterator; RngCore wraps this
    pub fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits -> double in [0, 1).
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's method (no modulo bias).
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Exponentially distributed sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Avoid ln(0): uniform() is in [0,1), so 1-u is in (0,1].
        -mean * (1.0 - self.uniform()).ln()
    }
}

impl SimRng {
    /// Fill `dest` with random bytes (little-endian words of [`Self::next`]).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Deterministic 64-bit hash for ECMP-style decisions (FNV-1a).
///
/// Not a general-purpose hasher; just a stable, platform-independent mix of
/// a few integers.
pub fn stable_hash(parts: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &p in parts {
        for b in p.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        assert_ne!(
            (0..8).map(|_| a.next()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn derive_is_order_independent() {
        let root = SimRng::seed_from(7);
        let mut c1 = root.derive(1);
        let _ = root.derive(2); // deriving another child must not matter
        let mut c1b = root.derive(1);
        assert_eq!(c1.next(), c1b.next());
    }

    #[test]
    fn derived_streams_are_independent() {
        let root = SimRng::seed_from(7);
        let mut a = root.derive(1);
        let mut b = root.derive(2);
        assert_ne!(a.next(), b.next());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SimRng::seed_from(9);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_respects_bound_and_covers_range() {
        let mut rng = SimRng::seed_from(11);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut rng = SimRng::seed_from(13);
        let n = 200_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.1,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn fill_bytes_matches_next() {
        let mut a = SimRng::seed_from(3);
        let mut b = SimRng::seed_from(3);
        let mut buf = [0u8; 12];
        a.fill_bytes(&mut buf);
        let w1 = b.next().to_le_bytes();
        let w2 = b.next().to_le_bytes();
        assert_eq!(&buf[..8], &w1);
        assert_eq!(&buf[8..], &w2[..4]);
    }

    #[test]
    fn stable_hash_is_stable() {
        // Pinned value: determinism across runs/platforms is the contract.
        assert_eq!(stable_hash(&[1, 2, 3]), stable_hash(&[1, 2, 3]));
        assert_ne!(stable_hash(&[1, 2, 3]), stable_hash(&[3, 2, 1]));
    }
}
