//! Runtime monitoring and adaptation (§2 Idea 2, §5).
//!
//! The control plane watches the ranks tenants actually emit:
//!
//! * **violations** — ranks outside a tenant's declared range are the
//!   adversarial-workload signal the paper calls out; the monitor clamps,
//!   drops, or just alarms, per configuration;
//! * **activity** — tenants that stop transmitting free their bands; the
//!   adapter re-synthesizes the joint policy over the active set (the
//!   paper's t1 moment in Fig. 2 when T1/T2 go idle and T3 starts);
//! * **drift** — when a tenant's observed rank distribution uses only a
//!   sliver of its declared range, the adapter tightens the range so
//!   normalization keeps its resolution.

use crate::error::Result;
use crate::policy::{Policy, PrefChain, ShareGroup};
use crate::spec::{SynthConfig, TenantSpec};
use crate::synth::{synthesize, JointPolicy};
use qvisor_ranking::RankRange;
use qvisor_sim::{Log2Histogram, Nanos, Packet, TenantId};
use qvisor_telemetry::{Counter, Gauge, Histogram, Profiler, Telemetry};

/// What to do with a packet whose rank violates the declared range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationAction {
    /// Clamp the rank into the declared range and forward.
    Clamp,
    /// Forward unchanged, but count the violation.
    AlarmOnly,
    /// Drop the packet.
    Drop,
}

/// Monitor tuning.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Response to declared-range violations.
    pub violation_action: ViolationAction,
    /// A tenant is idle when unseen for this long.
    pub idle_after: Nanos,
    /// Tighten a tenant's range when its observed high quantile is below
    /// `declared.max / drift_ratio` (e.g. 4.0 = using under a quarter).
    pub drift_ratio: f64,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            violation_action: ViolationAction::Clamp,
            idle_after: Nanos::from_millis(10),
            drift_ratio: 4.0,
        }
    }
}

/// Verdict for one observed packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Observation {
    /// Rank within declared bounds.
    Ok,
    /// Rank out of bounds; handled per [`ViolationAction`] (`Clamp` has
    /// already rewritten the packet's rank).
    Violation(ViolationAction),
}

#[derive(Clone, Debug)]
struct TenantMonitor {
    declared: RankRange,
    hist: Log2Histogram,
    last_seen: Option<Nanos>,
    packets: u64,
    violations: u64,
}

/// Online per-tenant rank statistics and violation policing.
#[derive(Clone, Debug)]
pub struct RuntimeMonitor {
    config: MonitorConfig,
    /// Dense by tenant id.
    tenants: Vec<Option<TenantMonitor>>,
}

impl RuntimeMonitor {
    /// A monitor for the given specs.
    pub fn new(specs: &[TenantSpec], config: MonitorConfig) -> RuntimeMonitor {
        let max_id = specs.iter().map(|s| s.id.index()).max().map(|m| m + 1);
        let mut tenants = vec![None; max_id.unwrap_or(0)];
        for s in specs {
            tenants[s.id.index()] = Some(TenantMonitor {
                declared: s.range,
                hist: Log2Histogram::new(),
                last_seen: None,
                packets: 0,
                violations: 0,
            });
        }
        RuntimeMonitor { config, tenants }
    }

    /// Observe (and possibly police) one payload packet *before* the
    /// pre-processor. Unknown tenants are ignored (the pre-processor has
    /// its own unknown-tenant action).
    pub fn observe(&mut self, p: &mut Packet, now: Nanos) -> Observation {
        if !p.is_payload() {
            return Observation::Ok;
        }
        let Some(Some(tm)) = self.tenants.get_mut(p.tenant.index()) else {
            return Observation::Ok;
        };
        tm.packets += 1;
        tm.last_seen = Some(now);
        tm.hist.record(p.rank);
        if tm.declared.contains(p.rank) {
            return Observation::Ok;
        }
        tm.violations += 1;
        if self.config.violation_action == ViolationAction::Clamp {
            p.rank = tm.declared.clamp(p.rank);
        }
        Observation::Violation(self.config.violation_action)
    }

    /// Tenants seen within the idle window ending at `now`.
    pub fn active_tenants(&self, now: Nanos) -> Vec<TenantId> {
        self.tenants
            .iter()
            .enumerate()
            .filter_map(|(i, tm)| {
                let tm = tm.as_ref()?;
                let seen = tm.last_seen?;
                (now.saturating_sub(seen) <= self.config.idle_after).then_some(TenantId(i as u16))
            })
            .collect()
    }

    /// Violations counted for `tenant`.
    pub fn violations(&self, tenant: TenantId) -> u64 {
        self.tenants
            .get(tenant.index())
            .and_then(|t| t.as_ref())
            .map(|t| t.violations)
            .unwrap_or(0)
    }

    /// Packets observed for `tenant`.
    pub fn packets(&self, tenant: TenantId) -> u64 {
        self.tenants
            .get(tenant.index())
            .and_then(|t| t.as_ref())
            .map(|t| t.packets)
            .unwrap_or(0)
    }

    /// Observed upper bound on `tenant`'s ranks at quantile `p`.
    pub fn observed_bound(&self, tenant: TenantId, p: f64) -> Option<u64> {
        self.tenants
            .get(tenant.index())
            .and_then(|t| t.as_ref())
            .and_then(|t| t.hist.quantile_bound(p))
    }
}

/// A proposed re-synthesis, produced by [`RuntimeAdapter::propose`].
#[derive(Clone, Debug, PartialEq)]
pub struct Adaptation {
    /// Tenants still active (the new policy covers exactly these).
    pub active: Vec<TenantId>,
    /// Range tightenings to apply: (tenant, new range).
    pub tightened: Vec<(TenantId, RankRange)>,
}

/// Event-driven controller that re-synthesizes the joint policy as tenants
/// come, go, or drift (§2's SDN-controller analogy).
#[derive(Clone, Debug)]
pub struct RuntimeAdapter {
    specs: Vec<TenantSpec>,
    policy: Policy,
    synth_config: SynthConfig,
    monitor_config: MonitorConfig,
    /// Active set used by the last synthesis.
    current_active: Vec<TenantId>,
    /// Transform-table version: 1 for the initial deployment, bumped on
    /// every successful re-synthesis.
    version: u64,
    /// Wall-clock re-synthesis latency (telemetry; wall time never feeds
    /// back into simulated behaviour).
    synth_ns: Histogram,
    recompiles: Counter,
    version_gauge: Gauge,
    resynth_prof: Profiler,
}

impl RuntimeAdapter {
    /// An adapter over the full tenant population and operator policy.
    pub fn new(
        specs: Vec<TenantSpec>,
        policy: Policy,
        synth_config: SynthConfig,
        monitor_config: MonitorConfig,
    ) -> RuntimeAdapter {
        let current_active = specs.iter().map(|s| s.id).collect();
        RuntimeAdapter {
            specs,
            policy,
            synth_config,
            monitor_config,
            current_active,
            version: 1,
            synth_ns: Histogram::default(),
            recompiles: Counter::default(),
            version_gauge: Gauge::default(),
            resynth_prof: Profiler::default(),
        }
    }

    /// Report recompilation latency (`runtime_synth_ns`), recompile count
    /// (`runtime_recompiles`), and the deployed transform-table version
    /// (`runtime_transform_version`) through `telemetry`.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> RuntimeAdapter {
        self.synth_ns = telemetry.histogram("runtime_synth_ns", &[]);
        self.recompiles = telemetry.counter("runtime_recompiles", &[]);
        self.version_gauge = telemetry.gauge("runtime_transform_version", &[]);
        self.version_gauge.set(self.version as i64);
        self.resynth_prof = telemetry.profiler("resynthesize");
        self
    }

    /// Version of the currently deployed transform table (1 = initial
    /// synthesis; each successful [`RuntimeAdapter::apply`] bumps it).
    pub fn transform_version(&self) -> u64 {
        self.version
    }

    /// The tenant specs as the adapter currently sees them (drift
    /// tightenings and [`RuntimeAdapter::update_spec`] replacements
    /// applied), in registration order.
    pub fn specs(&self) -> &[TenantSpec] {
        &self.specs
    }

    /// The operator policy the adapter projects onto active tenants.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Replace the registered spec for `spec.id` (a tenant re-declaring its
    /// range, algorithm, or quantization — the control-plane daemon's
    /// submission path). Returns `false` when no spec with that id is
    /// registered; the population itself is fixed at construction.
    ///
    /// The replacement takes effect at the next [`RuntimeAdapter::apply`];
    /// the currently deployed joint policy is not touched.
    pub fn update_spec(&mut self, spec: TenantSpec) -> bool {
        match self.specs.iter_mut().find(|s| s.id == spec.id) {
            Some(slot) => {
                *slot = spec;
                true
            }
            None => false,
        }
    }

    /// Compare monitor state against the current deployment and propose an
    /// adaptation, or `None` when nothing changed.
    pub fn propose(&self, monitor: &RuntimeMonitor, now: Nanos) -> Option<Adaptation> {
        let mut active = monitor.active_tenants(now);
        active.sort();
        let mut current = self.current_active.clone();
        current.sort();

        let mut tightened = Vec::new();
        for spec in &self.specs {
            if !active.contains(&spec.id) {
                continue;
            }
            if let Some(bound) = monitor.observed_bound(spec.id, 0.999) {
                let bound = bound.max(spec.range.min);
                if (bound as f64) * self.monitor_config.drift_ratio < spec.range.max as f64 {
                    tightened.push((spec.id, RankRange::new(spec.range.min, bound)));
                }
            }
        }

        if active == current && tightened.is_empty() {
            return None;
        }
        Some(Adaptation { active, tightened })
    }

    /// Apply an adaptation: re-synthesize over the active tenants with any
    /// tightened ranges.
    ///
    /// * `Ok(Some(joint))` — a new joint policy was synthesized and the
    ///   transform version bumped; deploy it.
    /// * `Ok(None)` — no scheduled tenant remains (every active tenant left
    ///   the policy, or the active set is empty). This is still a new,
    ///   empty deployment: the version bumps so downstream snapshots stay
    ///   distinguishable from the previous non-empty one.
    /// * `Err(_)` — synthesis failed; the version is not bumped.
    ///
    /// Tightened ranges persist into the adapter's view of the specs so the
    /// same drift is not re-proposed every tick. Tightening is a one-way
    /// ratchet: a tenant that later exceeds its tightened range shows up as
    /// monitor violations (clamped/dropped per policy) — the signal to
    /// re-declare, not something the adapter widens silently.
    pub fn apply(&mut self, adaptation: &Adaptation) -> Result<Option<JointPolicy>> {
        let mut specs = self.specs.clone();
        for (tenant, range) in &adaptation.tightened {
            if let Some(s) = specs.iter_mut().find(|s| s.id == *tenant) {
                s.range = *range;
            }
        }
        let keep: Vec<&str> = specs
            .iter()
            .filter(|s| adaptation.active.contains(&s.id))
            .map(|s| s.name.as_str())
            .collect();
        self.current_active = adaptation.active.clone();
        let Some(policy) = retain_tenants(&self.policy, &keep) else {
            // Empty deployment: the departure still reconfigures the data
            // plane (all bands reclaimed), so it gets its own version.
            self.specs = specs;
            self.recompiles.inc();
            self.version += 1;
            self.version_gauge.set(self.version as i64);
            return Ok(None);
        };
        let active_specs: Vec<TenantSpec> = specs
            .iter()
            .filter(|s| adaptation.active.contains(&s.id))
            .cloned()
            .collect();
        self.specs = specs;
        // determinism: allowed (self-profiler measures host synthesis cost;
        // stripped from deterministic exports)
        let started = std::time::Instant::now(); // determinism: allowed
        let result = synthesize(&active_specs, &policy, self.synth_config);
        let elapsed = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.synth_ns.record(elapsed);
        self.resynth_prof.record_ns(elapsed);
        self.recompiles.inc();
        let joint = result?;
        self.version += 1;
        self.version_gauge.set(self.version as i64);
        Ok(Some(joint))
    }
}

/// Project a policy onto a subset of tenants, dropping empty groups,
/// chains, and levels. `None` when nothing remains.
pub fn retain_tenants(policy: &Policy, keep: &[&str]) -> Option<Policy> {
    let levels: Vec<PrefChain> = policy
        .levels
        .iter()
        .filter_map(|level| {
            let groups: Vec<ShareGroup> = level
                .groups
                .iter()
                .filter_map(|g| {
                    let members: Vec<_> = g
                        .members
                        .iter()
                        .filter(|m| keep.contains(&m.name.as_str()))
                        .cloned()
                        .collect();
                    (!members.is_empty()).then_some(ShareGroup { members })
                })
                .collect();
            (!groups.is_empty()).then_some(PrefChain { groups })
        })
        .collect();
    (!levels.is_empty()).then_some(Policy { levels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvisor_sim::{FlowId, NodeId};

    fn specs() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(0, 1000)),
            TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(0, 500)),
            TenantSpec::new(TenantId(3), "T3", "FQ", RankRange::new(0, 50)),
        ]
    }

    fn pkt(tenant: u16, rank: u64) -> Packet {
        Packet::data(
            FlowId(1),
            TenantId(tenant),
            0,
            1500,
            NodeId(0),
            NodeId(1),
            rank,
            Nanos::ZERO,
        )
    }

    #[test]
    fn in_range_ranks_pass() {
        let mut m = RuntimeMonitor::new(&specs(), MonitorConfig::default());
        let mut p = pkt(1, 500);
        assert_eq!(m.observe(&mut p, Nanos::ZERO), Observation::Ok);
        assert_eq!(m.packets(TenantId(1)), 1);
        assert_eq!(m.violations(TenantId(1)), 0);
    }

    #[test]
    fn violations_are_clamped() {
        let mut m = RuntimeMonitor::new(&specs(), MonitorConfig::default());
        let mut p = pkt(2, 9999); // declared max 500
        let obs = m.observe(&mut p, Nanos::ZERO);
        assert_eq!(obs, Observation::Violation(ViolationAction::Clamp));
        assert_eq!(p.rank, 500, "rank clamped into declared range");
        assert_eq!(m.violations(TenantId(2)), 1);
    }

    #[test]
    fn violation_drop_action() {
        let cfg = MonitorConfig {
            violation_action: ViolationAction::Drop,
            ..MonitorConfig::default()
        };
        let mut m = RuntimeMonitor::new(&specs(), cfg);
        let mut p = pkt(2, 9999);
        assert_eq!(
            m.observe(&mut p, Nanos::ZERO),
            Observation::Violation(ViolationAction::Drop)
        );
        assert_eq!(p.rank, 9999, "drop action leaves the packet unmodified");
    }

    #[test]
    fn adversarial_low_ranks_also_flagged() {
        let specs = vec![TenantSpec::new(
            TenantId(1),
            "T1",
            "x",
            RankRange::new(100, 200),
        )];
        let mut m = RuntimeMonitor::new(&specs, MonitorConfig::default());
        let mut p = pkt(1, 0); // grabbing priority below its floor
        assert!(matches!(
            m.observe(&mut p, Nanos::ZERO),
            Observation::Violation(_)
        ));
        assert_eq!(p.rank, 100);
    }

    #[test]
    fn activity_tracking() {
        let mut m = RuntimeMonitor::new(&specs(), MonitorConfig::default());
        m.observe(&mut pkt(1, 1), Nanos::from_millis(1));
        m.observe(&mut pkt(2, 1), Nanos::from_millis(20));
        // At t=25ms with idle_after=10ms, only T2 is active.
        let active = m.active_tenants(Nanos::from_millis(25));
        assert_eq!(active, vec![TenantId(2)]);
    }

    #[test]
    fn adapter_proposes_on_tenant_departure() {
        let policy = Policy::parse("T1 >> T2 + T3").unwrap();
        let adapter = RuntimeAdapter::new(
            specs(),
            policy,
            SynthConfig::default(),
            MonitorConfig::default(),
        );
        let mut m = RuntimeMonitor::new(&specs(), MonitorConfig::default());
        // Only T3 transmits recently.
        m.observe(&mut pkt(3, 10), Nanos::from_millis(100));
        let proposal = adapter.propose(&m, Nanos::from_millis(101)).unwrap();
        assert_eq!(proposal.active, vec![TenantId(3)]);
    }

    #[test]
    fn adapter_apply_resynthesizes_for_active_set() {
        let policy = Policy::parse("T1 >> T2 + T3").unwrap();
        let mut adapter = RuntimeAdapter::new(
            specs(),
            policy,
            SynthConfig::default(),
            MonitorConfig::default(),
        );
        let adaptation = Adaptation {
            active: vec![TenantId(3)],
            tightened: vec![],
        };
        let joint = adapter.apply(&adaptation).unwrap().unwrap();
        // T3 alone now owns the whole (single-level) rank space from 0.
        assert!(joint.chain(TenantId(3)).is_some());
        assert!(joint.chain(TenantId(1)).is_none());
        assert_eq!(joint.layout.len(), 1);
        assert_eq!(joint.layout[0].base, 0);
    }

    #[test]
    fn adapter_tightens_drifted_ranges() {
        let policy = Policy::parse("T1 >> T2 + T3").unwrap();
        let adapter = RuntimeAdapter::new(
            specs(),
            policy,
            SynthConfig::default(),
            MonitorConfig::default(),
        );
        let mut m = RuntimeMonitor::new(&specs(), MonitorConfig::default());
        // T1 declared [0,1000] but only ever uses ranks <= 15.
        for r in [3u64, 7, 9, 15, 2, 5] {
            m.observe(&mut pkt(1, r), Nanos::from_millis(5));
        }
        m.observe(&mut pkt(2, 499), Nanos::from_millis(5));
        m.observe(&mut pkt(3, 49), Nanos::from_millis(5));
        let proposal = adapter.propose(&m, Nanos::from_millis(6)).unwrap();
        let t1 = proposal
            .tightened
            .iter()
            .find(|(t, _)| *t == TenantId(1))
            .expect("T1 drifted");
        assert!(t1.1.max < 1000 / 4, "range tightened: {}", t1.1);
    }

    #[test]
    fn no_change_no_proposal() {
        let policy = Policy::parse("T1 >> T2 + T3").unwrap();
        let adapter = RuntimeAdapter::new(
            specs(),
            policy,
            SynthConfig::default(),
            MonitorConfig::default(),
        );
        let mut m = RuntimeMonitor::new(&specs(), MonitorConfig::default());
        // Everyone active, everyone spanning their declared range.
        for (t, max) in [(1u16, 1000u64), (2, 500), (3, 50)] {
            m.observe(&mut pkt(t, max / 2), Nanos::from_millis(5));
            m.observe(&mut pkt(t, max), Nanos::from_millis(5));
        }
        assert!(adapter.propose(&m, Nanos::from_millis(6)).is_none());
    }

    #[test]
    fn apply_reports_through_telemetry() {
        let t = Telemetry::enabled();
        let policy = Policy::parse("T1 >> T2 + T3").unwrap();
        let mut adapter = RuntimeAdapter::new(
            specs(),
            policy,
            SynthConfig::default(),
            MonitorConfig::default(),
        )
        .with_telemetry(&t);
        assert_eq!(adapter.transform_version(), 1);
        let adaptation = Adaptation {
            active: vec![TenantId(3)],
            tightened: vec![],
        };
        adapter.apply(&adaptation).unwrap().unwrap();
        assert_eq!(adapter.transform_version(), 2);
        assert_eq!(t.counter("runtime_recompiles", &[]).get(), 1);
        assert_eq!(t.gauge("runtime_transform_version", &[]).get(), 2);
        assert_eq!(t.histogram("runtime_synth_ns", &[]).count(), 1);
    }

    #[test]
    fn retain_tenants_prunes_structure() {
        let policy = Policy::parse("T1 >> T2 > T3 + T4 >> T5").unwrap();
        let kept = retain_tenants(&policy, &["T3", "T5"]).unwrap();
        assert_eq!(kept.to_string(), "T3 >> T5");
        assert!(retain_tenants(&policy, &[]).is_none());
        let same = retain_tenants(&policy, &["T1", "T2", "T3", "T4", "T5"]).unwrap();
        assert_eq!(same, policy);
    }

    #[test]
    fn retain_tenants_empty_keep_set_on_every_shape() {
        for text in ["T1", "T1 + T2", "T1 > T2", "T1 >> T2", "T1 >> T2 + T3 > T4"] {
            let policy = Policy::parse(text).unwrap();
            assert!(retain_tenants(&policy, &[]).is_none(), "policy {text}");
        }
    }

    #[test]
    fn retain_tenants_identity_preserves_weights_and_nesting() {
        let policy = Policy::parse("T1:3 + T2 > T3 >> T4:2 + T5").unwrap();
        let same = retain_tenants(&policy, &["T1", "T2", "T3", "T4", "T5"]).unwrap();
        assert_eq!(same, policy);
        assert_eq!(same.to_string(), "T1:3 + T2 > T3 >> T4:2 + T5");
    }

    #[test]
    fn retain_tenants_prunes_nested_share_and_strict_structure() {
        let policy = Policy::parse("T1 + T2 >> T3 + T4 > T5 >> T6").unwrap();
        // Dropping one share-group member keeps the group (and its weight).
        let kept = retain_tenants(&policy, &["T1", "T3", "T4", "T6"]).unwrap();
        assert_eq!(kept.to_string(), "T1 >> T3 + T4 >> T6");
        // Dropping a whole group collapses the preference chain around it.
        let kept = retain_tenants(&policy, &["T1", "T2", "T5", "T6"]).unwrap();
        assert_eq!(kept.to_string(), "T1 + T2 >> T5 >> T6");
        // Dropping a whole strict level removes the level entirely.
        let kept = retain_tenants(&policy, &["T1", "T6"]).unwrap();
        assert_eq!(kept.to_string(), "T1 >> T6");
        // A single survivor keeps only its own (single-level) policy.
        let kept = retain_tenants(&policy, &["T5"]).unwrap();
        assert_eq!(kept.to_string(), "T5");
        // Names not in the policy at all contribute nothing.
        assert!(retain_tenants(&policy, &["T9"]).is_none());
    }

    #[test]
    fn apply_empty_active_set_is_a_versioned_empty_deployment() {
        let policy = Policy::parse("T1 >> T2 + T3").unwrap();
        let mut adapter = RuntimeAdapter::new(
            specs(),
            policy,
            SynthConfig::default(),
            MonitorConfig::default(),
        );
        assert_eq!(adapter.transform_version(), 1);
        // Everyone departs: no joint policy, but the reconfiguration is
        // still versioned so snapshots of the empty state are distinct.
        let empty = Adaptation {
            active: vec![],
            tightened: vec![],
        };
        assert!(adapter.apply(&empty).unwrap().is_none());
        assert_eq!(adapter.transform_version(), 2);
        // A tenant coming back re-synthesizes and bumps again.
        let back = Adaptation {
            active: vec![TenantId(3)],
            tightened: vec![],
        };
        let joint = adapter.apply(&back).unwrap().expect("T3 is scheduled");
        assert!(joint.chain(TenantId(3)).is_some());
        assert_eq!(adapter.transform_version(), 3);
    }

    #[test]
    fn update_spec_feeds_the_next_apply() {
        let policy = Policy::parse("T1 >> T2 + T3").unwrap();
        let mut adapter = RuntimeAdapter::new(
            specs(),
            policy,
            SynthConfig::default(),
            MonitorConfig::default(),
        );
        // T3 re-declares a wider range with explicit quantization.
        let replaced = adapter.update_spec(
            TenantSpec::new(TenantId(3), "T3", "WFQ", RankRange::new(0, 5000)).with_levels(16),
        );
        assert!(replaced);
        assert_eq!(adapter.specs()[2].algorithm, "WFQ");
        // Unknown ids are refused, population is fixed.
        assert!(!adapter.update_spec(TenantSpec::new(
            TenantId(9),
            "T9",
            "x",
            RankRange::new(0, 1)
        )));
        let all = Adaptation {
            active: vec![TenantId(1), TenantId(2), TenantId(3)],
            tightened: vec![],
        };
        let joint = adapter.apply(&all).unwrap().unwrap();
        let spec = joint.specs.iter().find(|s| s.id == TenantId(3)).unwrap();
        assert_eq!(spec.range, RankRange::new(0, 5000));
        assert_eq!(spec.levels, Some(16));
    }
}
