//! Shortest-path routing with ECMP.
//!
//! Routes are precomputed: for every (current node, destination host) pair
//! we store *all* shortest-path next hops; at forwarding time one of them is
//! picked by a stable hash of the flow id, so a flow always follows a single
//! path (no reordering) while flows spread across the fabric.

use crate::graph::{NodeKind, Topology};
use qvisor_sim::{stable_hash, FlowId, NodeId};
use std::collections::VecDeque;

/// Precomputed ECMP route tables.
#[derive(Clone, Debug)]
pub struct Routes {
    /// `next_hops[node][dst]` = shortest-path next hops from `node` to `dst`.
    /// Empty when `dst` is unreachable or `node == dst`.
    next_hops: Vec<Vec<Vec<NodeId>>>,
}

impl Routes {
    /// Compute all-pairs (node → host) shortest-path next hops by BFS from
    /// every destination over the reversed graph.
    ///
    /// Hop count is the metric (uniform per-hop cost), which matches
    /// leaf–spine/fat-tree ECMP practice.
    pub fn compute(topo: &Topology) -> Routes {
        let n = topo.node_count();
        // Reverse adjacency: rev[v] = nodes u with a link u->v.
        let mut rev: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for l in topo.links() {
            rev[l.to.index()].push(l.from);
        }

        let mut next_hops = vec![vec![Vec::new(); n]; n];
        for dst in topo.nodes().iter().map(|nd| nd.id) {
            if topo.node(dst).kind != NodeKind::Host {
                continue; // only hosts terminate traffic
            }
            // BFS distances to dst over reversed edges.
            let mut dist = vec![u32::MAX; n];
            dist[dst.index()] = 0;
            let mut q = VecDeque::from([dst]);
            while let Some(v) = q.pop_front() {
                for &u in &rev[v.index()] {
                    if dist[u.index()] == u32::MAX {
                        dist[u.index()] = dist[v.index()] + 1;
                        q.push_back(u);
                    }
                }
            }
            // next hop of u: any neighbor v with dist[v] == dist[u] - 1.
            for node in topo.nodes() {
                let u = node.id;
                if u == dst || dist[u.index()] == u32::MAX {
                    continue;
                }
                let hops: Vec<NodeId> = topo
                    .neighbors(u)
                    .filter(|v| {
                        dist[v.index()] != u32::MAX && dist[v.index()] + 1 == dist[u.index()]
                    })
                    .collect();
                next_hops[u.index()][dst.index()] = hops;
            }
        }
        Routes { next_hops }
    }

    /// All equal-cost next hops from `at` towards `dst`.
    pub fn next_hops(&self, at: NodeId, dst: NodeId) -> &[NodeId] {
        &self.next_hops[at.index()][dst.index()]
    }

    /// The ECMP next hop for `flow` from `at` towards `dst`.
    ///
    /// Deterministic in `(flow, at, dst)`; per-flow so a flow's packets never
    /// reorder across paths.
    ///
    /// # Panics
    /// Panics if `dst` is unreachable from `at`.
    pub fn ecmp_next_hop(&self, at: NodeId, dst: NodeId, flow: FlowId) -> NodeId {
        let hops = self.next_hops(at, dst);
        assert!(
            !hops.is_empty(),
            "no route from {at} to {dst} (unreachable or at == dst)"
        );
        if hops.len() == 1 {
            return hops[0];
        }
        let h = stable_hash(&[flow.0, at.0 as u64, dst.0 as u64]);
        hops[(h % hops.len() as u64) as usize]
    }

    /// The full ECMP path of `flow` from `src` to `dst`, inclusive of both
    /// endpoints. Useful for tests and path-length statistics.
    pub fn ecmp_path(&self, src: NodeId, dst: NodeId, flow: FlowId) -> Vec<NodeId> {
        let mut path = vec![src];
        let mut at = src;
        while at != dst {
            at = self.ecmp_next_hop(at, dst, flow);
            path.push(at);
            assert!(
                path.len() <= self.next_hops.len(),
                "routing loop from {src} to {dst}"
            );
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{LeafSpine, LeafSpineConfig};
    use crate::graph::Topology;
    use qvisor_sim::Nanos;
    use std::collections::HashSet;

    fn line() -> Topology {
        // h0 - s0 - s1 - h1
        let mut b = Topology::builder();
        let h0 = b.add_host("h0");
        let s0 = b.add_switch("s0");
        let s1 = b.add_switch("s1");
        let h1 = b.add_host("h1");
        b.add_link(h0, s0, 1_000, Nanos(1));
        b.add_link(s0, s1, 1_000, Nanos(1));
        b.add_link(s1, h1, 1_000, Nanos(1));
        b.build()
    }

    #[test]
    fn line_path() {
        let t = line();
        let r = Routes::compute(&t);
        let path = r.ecmp_path(NodeId(0), NodeId(3), FlowId(9));
        assert_eq!(path, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn no_route_to_non_host() {
        let t = line();
        let r = Routes::compute(&t);
        // s1 (NodeId 2) is a switch: no routes terminate there.
        assert!(r.next_hops(NodeId(0), NodeId(2)).is_empty());
    }

    #[test]
    fn leaf_spine_uses_all_spines() {
        let ls = LeafSpine::build(&LeafSpineConfig::paper());
        let r = Routes::compute(&ls.topology);
        let src = ls.hosts[0][0];
        let dst = ls.hosts[5][3];
        // Cross-rack: leaf should offer all 4 spines as next hops.
        let leaf = ls.leaf_switches[0];
        assert_eq!(r.next_hops(leaf, dst).len(), 4);
        // Different flows spread over spines.
        let spines: HashSet<NodeId> = (0..64)
            .map(|f| r.ecmp_path(src, dst, FlowId(f))[2])
            .collect();
        assert!(spines.len() > 1, "ECMP should use multiple spines");
        for s in &spines {
            assert!(ls.spine_switches.contains(s));
        }
    }

    #[test]
    fn same_rack_path_stays_in_rack() {
        let ls = LeafSpine::build(&LeafSpineConfig::small());
        let r = Routes::compute(&ls.topology);
        let a = ls.hosts[1][0];
        let b = ls.hosts[1][2];
        let path = r.ecmp_path(a, b, FlowId(1));
        assert_eq!(path, vec![a, ls.leaf_switches[1], b]);
    }

    #[test]
    fn per_flow_path_is_stable() {
        let ls = LeafSpine::build(&LeafSpineConfig::paper());
        let r = Routes::compute(&ls.topology);
        let src = ls.hosts[0][0];
        let dst = ls.hosts[8][15];
        let p1 = r.ecmp_path(src, dst, FlowId(77));
        let p2 = r.ecmp_path(src, dst, FlowId(77));
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 5); // host-leaf-spine-leaf-host
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn unreachable_panics() {
        let mut b = Topology::builder();
        let h0 = b.add_host("h0");
        let _h1 = b.add_host("h1");
        let t = b.build();
        let r = Routes::compute(&t);
        let _ = r.ecmp_next_hop(h0, NodeId(1), FlowId(0));
    }
}
