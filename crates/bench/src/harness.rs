//! Minimal dependency-free micro-benchmark harness.
//!
//! The benches in `benches/` use `harness = false`, so each one is a plain
//! `main()` that calls [`bench`]/[`bench_batched`]. The harness calibrates
//! an iteration count, then reports the best-of-batches ns/iter (the
//! minimum is the most repeatable point estimate for micro-benchmarks,
//! since noise is strictly additive).

use std::hint::black_box;
use std::time::Instant;

/// Print the header once at the top of a bench binary.
pub fn print_header(title: &str) {
    println!("{title}");
    println!("{:<44} {:>14}  iters/batch", "benchmark", "ns/iter");
}

fn report(name: &str, iters: u64, ns_per_iter: f64) {
    println!("{name:<44} {ns_per_iter:>14.1}  {iters}");
}

/// Benchmark `f`, timing everything it does.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Calibrate: double the batch size until one batch takes >= 20 ms.
    let mut iters = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        if t0.elapsed().as_millis() >= 20 || iters >= 1 << 24 {
            break;
        }
        iters *= 2;
    }
    // Measure: best of a few batches (fewer when a batch is slow).
    let batches = if iters == 1 { 3 } else { 5 };
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    report(name, iters, best);
}

/// Benchmark `routine` on fresh input from `setup`; setup time is excluded.
pub fn bench_batched<S, T>(
    name: &str,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S) -> T,
) {
    let timed = |n: u64, setup: &mut dyn FnMut() -> S, routine: &mut dyn FnMut(S) -> T| {
        let mut total_ns = 0u128;
        for _ in 0..n {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total_ns += t0.elapsed().as_nanos();
        }
        total_ns
    };
    let mut iters = 1u64;
    loop {
        let ns = timed(iters, &mut setup, &mut routine);
        if ns >= 20_000_000 || iters >= 1 << 24 {
            break;
        }
        iters *= 2;
    }
    let batches = if iters == 1 { 3 } else { 5 };
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let ns = timed(iters, &mut setup, &mut routine);
        best = best.min(ns as f64 / iters as f64);
    }
    report(name, iters, best);
}
