//! Calendar queue (in the spirit of Programmable Calendar Queues,
//! Sharma et al., NSDI '20): `N` FIFO buckets of `W` ranks each, served in
//! rotating order.
//!
//! A calendar queue approximates a PIFO when ranks grow with time (virtual
//! clocks, deadlines): packets land in the bucket covering their rank, the
//! head bucket drains completely, then the calendar rotates. Ranks below
//! the current head are "late" and join the head bucket; ranks beyond the
//! horizon clamp into the last bucket.

use crate::queue::{Capacity, Enqueue, PacketQueue};
use qvisor_sim::{Nanos, Packet, Rank};
use std::collections::VecDeque;

/// A rotating calendar of FIFO buckets.
#[derive(Debug)]
pub struct CalendarQueue {
    buckets: Vec<VecDeque<Packet>>,
    /// Rank width of one bucket.
    width: u64,
    /// Index of the bucket currently being served.
    head: usize,
    /// Smallest rank covered by the head bucket.
    base_rank: Rank,
    capacity: Capacity,
    bytes: u64,
    len: usize,
    /// Rotations performed (for metrics/tests).
    rotations: u64,
}

impl CalendarQueue {
    /// A calendar of `buckets` buckets, each `width` ranks wide, starting
    /// at rank 0.
    ///
    /// # Panics
    /// Panics if `buckets` or `width` is zero.
    pub fn new(buckets: usize, width: u64, capacity: Capacity) -> CalendarQueue {
        assert!(buckets > 0, "need at least one bucket");
        assert!(width > 0, "bucket width must be positive");
        CalendarQueue {
            buckets: (0..buckets).map(|_| VecDeque::new()).collect(),
            width,
            head: 0,
            base_rank: 0,
            capacity,
            bytes: 0,
            len: 0,
            rotations: 0,
        }
    }

    /// Bucket index (relative to `head`) for `rank`.
    fn bucket_for(&self, rank: Rank) -> usize {
        let n = self.buckets.len();
        if rank < self.base_rank {
            // Late packet: serve with the head bucket.
            return self.head;
        }
        let offset = ((rank - self.base_rank) / self.width) as usize;
        (self.head + offset.min(n - 1)) % n
    }

    /// Advance the head past empty buckets (post-dequeue/enqueue upkeep).
    fn rotate_to_work(&mut self) {
        if self.len == 0 {
            return;
        }
        let n = self.buckets.len();
        while self.buckets[self.head].is_empty() {
            self.head = (self.head + 1) % n;
            self.base_rank = self.base_rank.saturating_add(self.width);
            self.rotations += 1;
        }
    }

    /// Total rotations so far.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Occupancy per bucket starting from the head (for tests).
    pub fn bucket_lengths(&self) -> Vec<usize> {
        let n = self.buckets.len();
        (0..n)
            .map(|i| self.buckets[(self.head + i) % n].len())
            .collect()
    }
}

impl PacketQueue for CalendarQueue {
    fn enqueue(&mut self, p: Packet, _now: Nanos) -> Enqueue {
        if !self.capacity.fits(self.bytes, p.size as u64) {
            return Enqueue::Rejected(Box::new(p));
        }
        let idx = self.bucket_for(p.txf_rank);
        self.bytes += p.size as u64;
        self.len += 1;
        self.buckets[idx].push_back(p);
        Enqueue::Accepted
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<Packet> {
        if self.len == 0 {
            return None;
        }
        self.rotate_to_work();
        let p = self.buckets[self.head].pop_front().expect("head has work");
        self.bytes -= p.size as u64;
        self.len -= 1;
        Some(p)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }

    fn head_rank(&self) -> Option<Rank> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        (0..n)
            .map(|i| &self.buckets[(self.head + i) % n])
            .find(|b| !b.is_empty())
            .and_then(|b| b.front())
            .map(|p| p.txf_rank)
    }

    fn kind(&self) -> &'static str {
        "calendar"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvisor_sim::{FlowId, NodeId, TenantId};

    fn pkt(seq: u64, rank: Rank) -> Packet {
        let mut p = Packet::data(
            FlowId(1),
            TenantId(0),
            seq,
            100,
            NodeId(0),
            NodeId(1),
            rank,
            Nanos::ZERO,
        );
        p.txf_rank = rank;
        p
    }

    fn drain(q: &mut CalendarQueue) -> Vec<Rank> {
        std::iter::from_fn(|| q.dequeue(Nanos::ZERO))
            .map(|p| p.txf_rank)
            .collect()
    }

    #[test]
    fn sorts_across_buckets() {
        let mut q = CalendarQueue::new(8, 10, Capacity::UNBOUNDED);
        for (i, r) in [35u64, 5, 22, 71, 18].into_iter().enumerate() {
            q.enqueue(pkt(i as u64, r), Nanos::ZERO);
        }
        assert_eq!(drain(&mut q), vec![5, 18, 22, 35, 71]);
    }

    #[test]
    fn within_bucket_is_fifo() {
        let mut q = CalendarQueue::new(4, 100, Capacity::UNBOUNDED);
        // All in the first bucket: FIFO order, not rank order.
        for (i, r) in [90u64, 10, 50].into_iter().enumerate() {
            q.enqueue(pkt(i as u64, r), Nanos::ZERO);
        }
        assert_eq!(drain(&mut q), vec![90, 10, 50]);
    }

    #[test]
    fn late_packets_join_head_bucket() {
        let mut q = CalendarQueue::new(4, 10, Capacity::UNBOUNDED);
        q.enqueue(pkt(0, 25), Nanos::ZERO);
        // Drain rotates past buckets 0 and 1.
        assert_eq!(q.dequeue(Nanos::ZERO).unwrap().txf_rank, 25);
        q.enqueue(pkt(1, 35), Nanos::ZERO);
        q.dequeue(Nanos::ZERO);
        // base_rank has advanced; a "late" rank-0 packet is served with the
        // current head rather than wrapping a full rotation.
        q.enqueue(pkt(2, 0), Nanos::ZERO);
        q.enqueue(pkt(3, 200), Nanos::ZERO);
        let out = drain(&mut q);
        assert_eq!(out, vec![0, 200]);
    }

    #[test]
    fn horizon_clamps_to_last_bucket() {
        let mut q = CalendarQueue::new(4, 10, Capacity::UNBOUNDED);
        q.enqueue(pkt(0, 1_000_000), Nanos::ZERO); // far beyond horizon
        q.enqueue(pkt(1, 5), Nanos::ZERO);
        assert_eq!(drain(&mut q), vec![5, 1_000_000]);
    }

    #[test]
    fn tail_drop_when_full() {
        let mut q = CalendarQueue::new(4, 10, Capacity::bytes(200));
        assert!(q.enqueue(pkt(0, 1), Nanos::ZERO).accepted());
        assert!(q.enqueue(pkt(1, 2), Nanos::ZERO).accepted());
        assert!(!q.enqueue(pkt(2, 0), Nanos::ZERO).accepted());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn rotation_counting_and_head_rank() {
        let mut q = CalendarQueue::new(4, 10, Capacity::UNBOUNDED);
        assert_eq!(q.head_rank(), None);
        q.enqueue(pkt(0, 35), Nanos::ZERO);
        assert_eq!(q.head_rank(), Some(35));
        q.dequeue(Nanos::ZERO);
        assert!(q.rotations() >= 3);
    }

    #[test]
    fn monotone_virtual_clock_is_exact() {
        // Growing ranks (the calendar's design case): order is exact.
        let mut q = CalendarQueue::new(16, 50, Capacity::UNBOUNDED);
        let mut rng = qvisor_sim::SimRng::seed_from(3);
        let mut rank = 0u64;
        let mut expect = Vec::new();
        for i in 0..200 {
            rank += rng.below(40);
            expect.push(rank);
            q.enqueue(pkt(i, rank), Nanos::ZERO);
            // Interleave some dequeues to force rotation.
            if i % 5 == 4 {
                let got = q.dequeue(Nanos::ZERO).unwrap().txf_rank;
                assert_eq!(got, expect.remove(0));
            }
        }
        let rest = drain(&mut q);
        assert_eq!(rest, expect);
    }
}
