//! Streaming SLO monitor end-to-end: attaching it must not change the
//! simulation or the telemetry export in any way, and a scenario with an
//! injected isolation violation must fire its declared alert at the same
//! sim-time on every run.

use qvisor::netsim::scenario::{sanitize_export, Engine, ScenarioSpec};
use qvisor::telemetry::{SloMonitor, Telemetry};

/// A congested dumbbell: two tenants share one shallow-buffered
/// bottleneck under FIFO, so the aggressive CBR tenant forces drops —
/// the injected isolation violation the `drop_rate` rule watches.
const VIOLATION: &str = r#"{
    "name": "slo-violation",
    "seed": 11,
    "topology": {"dumbbell": {"pairs": 2, "edge_bps": 10000000000,
                              "bottleneck_bps": 1000000000, "delay_ns": 1000}},
    "sim": {"buffer_bytes": 9000, "horizon": {"at_ns": 20000000}},
    "scheduler": {"fifo": {}},
    "workloads": [
        {"cbr": {"list": [
            {"tenant": 1, "src_host": 0, "dst_host": 2, "rate_bps": 900000000,
             "pkt_size": 1500, "start_ns": 0, "stop": {"at_ns": 15000000},
             "deadline_offset_ns": 1000000},
            {"tenant": 2, "src_host": 1, "dst_host": 3, "rate_bps": 900000000,
             "pkt_size": 1500, "start_ns": 0, "stop": {"at_ns": 15000000},
             "deadline_offset_ns": 1000000}
        ]}}
    ],
    "alerts": [
        {"metric": "drop_rate", "tenant": 2, "window_ns": 2000000, "threshold": 0.05}
    ]
}"#;

fn run_with_monitor(monitor: &SloMonitor) -> (String, String) {
    let spec = ScenarioSpec::from_json(VIOLATION).unwrap();
    let telemetry = Telemetry::enabled();
    let engine = Engine::new()
        .with_telemetry(&telemetry)
        .with_monitor(monitor);
    let report = engine.run(&spec).unwrap();
    // Sanitized: self-profiler lines measure host wall-clock time and
    // differ between any two runs, monitor or not.
    (
        format!("{report:?}"),
        sanitize_export(&telemetry.export_jsonl()),
    )
}

/// Observing the run must not change it: with the monitor attached the
/// full `SimReport` and the telemetry JSONL export are byte-identical to
/// the monitor-off run. Alerts live in the monitor's own journal, never
/// in the shared registry.
#[test]
fn monitor_does_not_perturb_report_or_telemetry() {
    let spec = ScenarioSpec::from_json(VIOLATION).unwrap();
    let monitor = SloMonitor::enabled(spec.alert_rules());
    let (on_report, on_jsonl) = run_with_monitor(&monitor);
    let (off_report, off_jsonl) = run_with_monitor(&SloMonitor::disabled());
    assert_eq!(on_report, off_report, "monitor changed the simulation");
    assert_eq!(on_jsonl, off_jsonl, "monitor changed the telemetry export");
    assert!(
        monitor.alerts_fired() > 0,
        "the congested scenario should have fired the drop_rate alert"
    );
}

/// The declared alert fires, and at a deterministic sim-time: two
/// independent runs produce byte-identical monitor exports, including
/// the `t_ns` of every `alert_fired` / `alert_resolved` event.
#[test]
fn injected_violation_fires_alert_at_deterministic_sim_time() {
    let spec = ScenarioSpec::from_json(VIOLATION).unwrap();
    let exports: Vec<String> = (0..2)
        .map(|_| {
            let monitor = SloMonitor::enabled(spec.alert_rules());
            let engine = Engine::new().with_monitor(&monitor);
            engine.run(&spec).unwrap();
            assert!(monitor.alerts_fired() > 0, "alert did not fire");
            let events = monitor.alert_events();
            assert!(
                events.iter().any(|e| e.kind == "alert_fired"),
                "no alert_fired event in the journal"
            );
            monitor.export_jsonl()
        })
        .collect();
    assert_eq!(
        exports[0], exports[1],
        "monitor export is not deterministic"
    );
    assert!(exports[0].contains("\"kind\":\"alert_fired\""));
}

/// A rule on a tenant that never violates stays quiet even while the
/// other tenant's rule fires.
#[test]
fn alert_scoped_to_declared_tenant() {
    let mut spec = ScenarioSpec::from_json(VIOLATION).unwrap();
    // Watch a tenant that carries no traffic at all.
    spec.alerts[0].tenant = 7;
    let monitor = SloMonitor::enabled(spec.alert_rules());
    Engine::new().with_monitor(&monitor).run(&spec).unwrap();
    assert_eq!(monitor.alerts_fired(), 0, "idle tenant's rule fired");
}
