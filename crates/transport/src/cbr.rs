//! Constant-bit-rate datagram source — the paper's second tenant (100
//! flows at 0.5 Gbps, scheduled with EDF).

use crate::flow::CbrDef;
use qvisor_sim::{transmission_time, Nanos};

/// Sender side of a CBR stream: emits fixed-size datagrams at a fixed
/// inter-packet gap; no acknowledgements, no retransmission.
#[derive(Clone, Debug)]
pub struct CbrSource {
    def: CbrDef,
    gap: Nanos,
    next_emission: Nanos,
    emitted: u64,
}

impl CbrSource {
    /// A source for `def`.
    ///
    /// # Panics
    /// Panics if the rate or packet size is zero, or `stop <= start`.
    pub fn new(def: CbrDef) -> CbrSource {
        assert!(def.rate_bps > 0, "rate must be positive");
        assert!(def.pkt_size > 0, "packet size must be positive");
        assert!(def.stop > def.start, "empty CBR interval");
        // Gap so that pkt_size bytes every gap equals rate_bps.
        let gap = transmission_time(def.pkt_size as u64, def.rate_bps);
        CbrSource {
            def,
            gap,
            next_emission: def.start,
            emitted: 0,
        }
    }

    /// The stream definition.
    pub fn def(&self) -> &CbrDef {
        &self.def
    }

    /// Datagrams emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Emit one datagram if the stream is still live at `now`. Returns the
    /// datagram's (sequence, absolute deadline) and the time of the next
    /// emission, or `None` once the stream has ended.
    ///
    /// The simulator should call this exactly at [`CbrSource::next_at`].
    pub fn emit(&mut self, now: Nanos) -> Option<(u64, Nanos)> {
        if now >= self.def.stop {
            return None;
        }
        debug_assert!(now >= self.next_emission, "emitted early");
        let seq = self.emitted;
        self.emitted += 1;
        self.next_emission = now + self.gap;
        Some((seq, now + self.def.deadline_offset))
    }

    /// When the next datagram should be emitted (`None` after `stop`).
    pub fn next_at(&self) -> Option<Nanos> {
        (self.next_emission < self.def.stop).then_some(self.next_emission)
    }
}

/// Receiver-side accounting for datagram streams: deliveries, deadline
/// hits, and one-way latency.
#[derive(Clone, Debug, Default)]
pub struct DatagramSink {
    received: u64,
    deadline_met: u64,
    deadline_missed: u64,
    total_latency: Nanos,
}

impl DatagramSink {
    /// Fresh sink.
    pub fn new() -> DatagramSink {
        DatagramSink::default()
    }

    /// A datagram sent at `sent_at` with `deadline` arrived at `now`.
    pub fn on_datagram(&mut self, sent_at: Nanos, deadline: Option<Nanos>, now: Nanos) {
        self.received += 1;
        self.total_latency += now.saturating_sub(sent_at);
        if let Some(d) = deadline {
            if now <= d {
                self.deadline_met += 1;
            } else {
                self.deadline_missed += 1;
            }
        }
    }

    /// Datagrams delivered.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Fraction of deadline-carrying datagrams that met their deadline
    /// (`None` if none seen).
    pub fn deadline_hit_rate(&self) -> Option<f64> {
        let total = self.deadline_met + self.deadline_missed;
        (total > 0).then(|| self.deadline_met as f64 / total as f64)
    }

    /// Mean one-way latency (`None` if nothing delivered).
    pub fn mean_latency(&self) -> Option<Nanos> {
        (self.received > 0).then(|| self.total_latency / self.received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvisor_sim::{FlowId, NodeId, TenantId};

    fn def() -> CbrDef {
        CbrDef {
            id: FlowId(1),
            tenant: TenantId(2),
            src: NodeId(0),
            dst: NodeId(1),
            rate_bps: 500_000_000, // 0.5 Gbps
            pkt_size: 1_500,
            start: Nanos::ZERO,
            stop: Nanos::from_millis(1),
            deadline_offset: Nanos::from_micros(500),
        }
    }

    #[test]
    fn gap_matches_rate() {
        // 1500 B at 0.5 Gbps = 24 us between packets.
        let src = CbrSource::new(def());
        assert_eq!(src.next_at(), Some(Nanos::ZERO));
        let mut s = src;
        let (seq, deadline) = s.emit(Nanos::ZERO).unwrap();
        assert_eq!(seq, 0);
        assert_eq!(deadline, Nanos::from_micros(500));
        assert_eq!(s.next_at(), Some(Nanos::from_micros(24)));
    }

    #[test]
    fn stream_ends_at_stop() {
        let mut s = CbrSource::new(def());
        let mut count = 0;
        while let Some(at) = s.next_at() {
            s.emit(at).unwrap();
            count += 1;
        }
        // 1 ms / 24 us ≈ 41.67 -> 42 emissions (t=0 inclusive).
        assert_eq!(count, 42);
        assert_eq!(s.emitted(), 42);
        assert!(s.emit(Nanos::from_millis(2)).is_none());
    }

    #[test]
    fn sink_deadline_accounting() {
        let mut sink = DatagramSink::new();
        sink.on_datagram(
            Nanos::ZERO,
            Some(Nanos::from_micros(100)),
            Nanos::from_micros(50),
        );
        sink.on_datagram(
            Nanos::ZERO,
            Some(Nanos::from_micros(100)),
            Nanos::from_micros(150),
        );
        sink.on_datagram(Nanos::ZERO, None, Nanos::from_micros(10));
        assert_eq!(sink.received(), 3);
        assert_eq!(sink.deadline_hit_rate(), Some(0.5));
        assert_eq!(
            sink.mean_latency(),
            Some(Nanos::from_micros(70)) // (50+150+10)/3
        );
    }

    #[test]
    fn empty_sink_reports_none() {
        let sink = DatagramSink::new();
        assert_eq!(sink.deadline_hit_rate(), None);
        assert_eq!(sink.mean_latency(), None);
    }
}
