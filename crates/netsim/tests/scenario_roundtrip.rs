//! ScenarioSpec JSON codec: round-trip identity and strict rejection of
//! unknown fields and out-of-range values, with named-field errors.

use qvisor_netsim::{ScenarioError, ScenarioSpec};

/// A scenario exercising most of the vocabulary: leaf-spine topology, a
/// QVISOR deployment with a monitor, mixed workload kinds, and explicit
/// sim overrides.
const FULL: &str = r#"{
    "name": "roundtrip",
    "seed": 3,
    "topology": {
        "leaf_spine": {
            "leaves": 2, "spines": 2, "hosts_per_leaf": 4,
            "access_bps": 1000000000, "fabric_bps": 4000000000,
            "access_delay_ns": 1000, "fabric_delay_ns": 1000
        }
    },
    "sim": {
        "horizon": { "after_last_arrival_ns": 500000000 },
        "sample_interval_ns": 5000000,
        "random_loss": 0.001
    },
    "scheduler": { "pifo": {} },
    "host_scheduler": { "fifo": {} },
    "qvisor": {
        "tenants": [
            { "id": 1, "name": "T1", "algorithm": "pFabric",
              "rank_min": 0, "rank_max": 2000, "levels": 128 },
            { "id": 2, "name": "T2", "algorithm": "EDF",
              "rank_min": 0, "rank_max": 500, "levels": 32 }
        ],
        "policy": "T1 >> T2",
        "unknown": "drop",
        "scope": "switches_only",
        "monitor": { "violation_action": "clamp",
                     "idle_after_ns": 8000000, "drift_ratio": 4.0 }
    },
    "rank_fns": [
        { "tenant": 1, "fn": { "algorithm": "p_fabric",
                               "unit_bytes": 1000, "max_rank": 2000 } },
        { "tenant": 2, "fn": { "algorithm": "edf",
                               "unit_ns": 1000, "max_rank": 10000 } }
    ],
    "workloads": [
        { "poisson": { "tenant": 1, "flows": 50,
                       "sizes": { "data_mining": { "scale_den": 50 } },
                       "arrival": { "load": 0.5 }, "rng_stream": 1 } },
        { "cbr_fleet": { "tenant": 2, "streams": 3, "rate_bps": 100000000,
                         "pkt_size": 1500, "start_ns": 0,
                         "stop": { "after_last_arrival_ns": 10000000 },
                         "deadline_offset_ns": 300000, "rng_stream": 2 } },
        { "flows": { "list": [
            { "tenant": 1, "src_host": 0, "dst_host": 4,
              "size": 200000, "start_ns": 1000, "deadline_ns": 9000000,
              "weight": 2 }
        ] } },
        { "cbr": { "list": [
            { "tenant": 2, "src_host": 1, "dst_host": 5,
              "rate_bps": 50000000, "pkt_size": 1500, "start_ns": 0,
              "stop": { "at_ns": 20000000 }, "deadline_offset_ns": 400000 }
        ] } }
    ],
    "alerts": [
        { "metric": "drop_rate", "tenant": 2,
          "window_ns": 2000000, "threshold": 0.05 },
        { "metric": "fct_p99", "tenant": 1,
          "window_ns": 10000000, "threshold": 5000000.0 }
    ]
}"#;

/// Replace the first occurrence of `from` in the full document.
fn patched(from: &str, to: &str) -> String {
    assert!(FULL.contains(from), "fixture must contain {from}");
    FULL.replacen(from, to, 1)
}

fn err_text(doc: &str) -> String {
    match ScenarioSpec::from_json(doc) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("document must be rejected"),
    }
}

#[test]
fn parse_serialize_parse_is_identity() {
    let spec = ScenarioSpec::from_json(FULL).unwrap();
    let serialized = spec.to_json();
    let again = ScenarioSpec::from_json(&serialized).unwrap();
    assert_eq!(spec, again);
    // Serialization is canonical: a second round emits the same bytes.
    assert_eq!(serialized, again.to_json());
}

#[test]
fn defaults_are_made_explicit_on_serialize() {
    let spec = ScenarioSpec::from_json(
        r#"{"topology": {"dumbbell": {
        "pairs": 1, "edge_bps": 1000000000,
        "bottleneck_bps": 1000000000, "delay_ns": 1000}}}"#,
    )
    .unwrap();
    let text = spec.to_json();
    // The full form names every sim default.
    assert!(text.contains("\"mss\""));
    assert!(text.contains("\"horizon\""));
    assert_eq!(spec, ScenarioSpec::from_json(&text).unwrap());
}

#[test]
fn unknown_fields_are_rejected_with_their_path() {
    let text = err_text(&patched(
        "\"name\": \"roundtrip\"",
        "\"nam\": \"roundtrip\"",
    ));
    assert!(text.contains("scenario.nam"), "got: {text}");

    let text = err_text(&patched("\"leaves\": 2", "\"leafs\": 2"));
    assert!(text.contains("topology.leaf_spine.leafs"), "got: {text}");

    let text = err_text(&patched("\"rng_stream\": 1", "\"rng_strm\": 1"));
    assert!(text.contains("workloads.0.poisson.rng_strm"), "got: {text}");

    let text = err_text(&patched("\"drift_ratio\": 4.0", "\"drift\": 4.0"));
    assert!(text.contains("qvisor.monitor.drift"), "got: {text}");

    // Unknown keys inside a rank function are caught even though the
    // underlying parser would ignore them.
    let text = err_text(&patched(
        "\"unit_bytes\": 1000, \"max_rank\": 2000",
        "\"unit_bytes\": 1000, \"max_rank\": 2000, \"bogus\": 1",
    ));
    assert!(text.contains("rank_fns.0.fn.bogus"), "got: {text}");
}

#[test]
fn out_of_range_values_are_rejected_with_the_field_name() {
    // AIFO admission headroom must stay in (0, 1).
    let doc = patched(
        r#""scheduler": { "pifo": {} }"#,
        r#""scheduler": { "aifo": { "window": 64, "burst": 1.0 } }"#,
    );
    let text = err_text(&doc);
    assert!(text.contains("burst"), "got: {text}");
    assert!(matches!(
        ScenarioSpec::from_json(&doc),
        Err(ScenarioError::Field { .. })
    ));

    // SP-PIFO with zero queues is meaningless.
    let text = err_text(&patched(
        r#""scheduler": { "pifo": {} }"#,
        r#""scheduler": { "sp_pifo": { "queues": 0 } }"#,
    ));
    assert!(text.contains("queues"), "got: {text}");

    // Host indices must exist in the topology (8 hosts here).
    let text = err_text(&patched("\"dst_host\": 4", "\"dst_host\": 8"));
    assert!(text.contains("dst_host"), "got: {text}");

    // Alert rules name a known metric and a positive window; the
    // rejection lists the vocabulary.
    let text = err_text(&patched(
        "\"metric\": \"drop_rate\"",
        "\"metric\": \"drop_rat\"",
    ));
    assert!(text.contains("alerts.0.metric"), "got: {text}");
    assert!(text.contains("drop_rate"), "got: {text}");
    let text = err_text(&patched("\"window_ns\": 2000000", "\"window_ns\": 0"));
    assert!(text.contains("window_ns"), "got: {text}");
}

#[test]
fn example_scenarios_parse_and_round_trip() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/scenarios");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("examples/scenarios exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let spec =
            ScenarioSpec::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(spec, ScenarioSpec::from_json(&spec.to_json()).unwrap());
        seen += 1;
    }
    assert!(seen >= 4, "expected the example library, found {seen}");
}
