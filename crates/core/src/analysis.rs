//! Static analysis of synthesized policies (§2, Idea 2).
//!
//! Given a joint policy, re-derive every tenant's worst-case output range
//! *through its transformation chain* (not from the layout arithmetic — the
//! point is to verify the synthesizer's construction independently) and
//! check the guarantees the operator asked for: strict levels isolated,
//! share groups overlapping, preferences biased but not isolating.

use crate::synth::JointPolicy;
use qvisor_ranking::RankRange;
use qvisor_sim::TenantId;
use std::fmt;

/// One tenant's analyzed placement.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// The tenant.
    pub tenant: TenantId,
    /// Name from the spec.
    pub name: String,
    /// Declared algorithm.
    pub algorithm: String,
    /// Declared input rank range.
    pub declared: RankRange,
    /// Worst-case output range through the synthesized chain.
    pub output: RankRange,
    /// Strict level index (0 = highest priority).
    pub level: usize,
    /// Preference group index within the level.
    pub group: usize,
    /// Quantization levels in effect.
    pub quantization: u64,
}

/// Result of checking isolation between two adjacent strict levels.
#[derive(Clone, Debug)]
pub struct IsolationCheck {
    /// Higher-priority level index.
    pub upper_level: usize,
    /// Worst (largest) rank any upper-level tenant can emit.
    pub upper_max: u64,
    /// Best (smallest) rank any lower-level tenant can emit.
    pub lower_min: u64,
    /// `upper_max < lower_min`: the strict guarantee holds in the worst
    /// case.
    pub isolated: bool,
}

/// How two tenants' output ranges relate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// Same `+` group: expected to overlap (fair interleaving).
    Share,
    /// Same level, *adjacent* `>` groups: expected to overlap with bias.
    Prefer,
    /// Same level, non-adjacent `>` groups: biases may accumulate past
    /// overlap — disjointness here is acceptable (stronger priority), not
    /// a violation.
    PreferDistant,
    /// Different strict levels: expected to be disjoint.
    Strict,
}

/// A pairwise observation.
#[derive(Clone, Debug)]
pub struct PairNote {
    /// First tenant (higher priority position in the policy).
    pub a: TenantId,
    /// Second tenant.
    pub b: TenantId,
    /// Their structural relation.
    pub relation: Relation,
    /// Whether their worst-case output ranges overlap.
    pub overlaps: bool,
}

/// The analyzer's full report.
#[derive(Clone, Debug)]
pub struct PolicyReport {
    /// Per-tenant placements, policy order.
    pub tenants: Vec<TenantReport>,
    /// Adjacent-level isolation checks.
    pub isolation: Vec<IsolationCheck>,
    /// Pairwise range relations.
    pub pairs: Vec<PairNote>,
    /// Human-readable warnings (non-fatal findings).
    pub warnings: Vec<String>,
}

impl PolicyReport {
    /// True when every strict boundary is verified isolated and no pair
    /// violates its expected relation.
    pub fn all_guarantees_hold(&self) -> bool {
        self.isolation.iter().all(|c| c.isolated)
            && self.pairs.iter().all(|p| match p.relation {
                Relation::Share | Relation::Prefer => p.overlaps,
                Relation::PreferDistant => true,
                Relation::Strict => !p.overlaps,
            })
    }
}

/// Analyze a synthesized policy.
pub fn analyze(joint: &JointPolicy) -> PolicyReport {
    let mut tenants = Vec::new();
    let mut warnings = Vec::new();

    for (li, level) in joint.layout.iter().enumerate() {
        for (gi, group) in level.groups.iter().enumerate() {
            for member in &group.members {
                let spec = joint
                    .specs
                    .iter()
                    .find(|s| s.id == member.tenant)
                    .expect("layout members come from specs");
                let chain = joint.chain(member.tenant).expect("member has a chain");
                let output = chain.output_range(spec.range);
                if member.levels < spec.range.width() {
                    warnings.push(format!(
                        "tenant '{}' quantized from {} distinct ranks to {} levels \
                         (intra-tenant granularity reduced)",
                        spec.name,
                        spec.range.width(),
                        member.levels
                    ));
                }
                tenants.push(TenantReport {
                    tenant: member.tenant,
                    name: spec.name.clone(),
                    algorithm: spec.algorithm.clone(),
                    declared: spec.range,
                    output,
                    level: li,
                    group: gi,
                    quantization: member.levels,
                });
            }
        }
    }

    for spec in &joint.specs {
        if joint.chain(spec.id).is_none() {
            warnings.push(format!(
                "tenant '{}' has a spec but does not appear in the policy \
                 (its traffic will be treated as unknown)",
                spec.name
            ));
        }
    }

    // Adjacent strict-level isolation, from per-tenant *chain-derived*
    // output ranges.
    let mut isolation = Vec::new();
    for li in 0..joint.layout.len().saturating_sub(1) {
        let upper_max = tenants
            .iter()
            .filter(|t| t.level == li)
            .map(|t| t.output.max)
            .max()
            .unwrap_or(0);
        let lower_min = tenants
            .iter()
            .filter(|t| t.level == li + 1)
            .map(|t| t.output.min)
            .min()
            .unwrap_or(u64::MAX);
        isolation.push(IsolationCheck {
            upper_level: li,
            upper_max,
            lower_min,
            isolated: upper_max < lower_min,
        });
    }

    // Pairwise relations.
    let mut pairs = Vec::new();
    for i in 0..tenants.len() {
        for j in i + 1..tenants.len() {
            let (a, b) = (&tenants[i], &tenants[j]);
            let relation = if a.level != b.level {
                Relation::Strict
            } else if a.group == b.group {
                Relation::Share
            } else if a.group.abs_diff(b.group) == 1 {
                Relation::Prefer
            } else {
                Relation::PreferDistant
            };
            let overlaps = a.output.overlaps(&b.output);
            if relation == Relation::Prefer && !overlaps {
                warnings.push(format!(
                    "preference between '{}' and '{}' degenerated to strict \
                     isolation (bias exceeds band overlap)",
                    a.name, b.name
                ));
            }
            pairs.push(PairNote {
                a: a.tenant,
                b: b.tenant,
                relation,
                overlaps,
            });
        }
    }

    PolicyReport {
        tenants,
        isolation,
        pairs,
        warnings,
    }
}

impl fmt::Display for PolicyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "QVISOR policy analysis")?;
        writeln!(f, "======================")?;
        for t in &self.tenants {
            writeln!(
                f,
                "  level {} group {}: {:<12} {:<8} declared {} -> output {} ({} levels)",
                t.level, t.group, t.name, t.algorithm, t.declared, t.output, t.quantization
            )?;
        }
        for c in &self.isolation {
            writeln!(
                f,
                "  strict boundary {}/{}: upper max {} < lower min {} ... {}",
                c.upper_level,
                c.upper_level + 1,
                c.upper_max,
                c.lower_min,
                if c.isolated { "ISOLATED" } else { "VIOLATED" }
            )?;
        }
        for w in &self.warnings {
            writeln!(f, "  warning: {w}")?;
        }
        writeln!(
            f,
            "  guarantees: {}",
            if self.all_guarantees_hold() {
                "all hold"
            } else {
                "VIOLATIONS PRESENT"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::spec::{SynthConfig, TenantSpec};
    use crate::synth::synthesize;

    fn specs() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(0, 100_000)),
            TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(0, 10_000)),
            TenantSpec::new(TenantId(3), "T3", "FQ", RankRange::new(0, 50)),
        ]
    }

    #[test]
    fn strict_policy_verifies_isolated() {
        let policy = Policy::parse("T1 >> T2 >> T3").unwrap();
        let joint = synthesize(&specs(), &policy, SynthConfig::default()).unwrap();
        let report = analyze(&joint);
        assert_eq!(report.isolation.len(), 2);
        assert!(report.isolation.iter().all(|c| c.isolated));
        assert!(report.all_guarantees_hold());
        assert!(report
            .pairs
            .iter()
            .all(|p| p.relation == Relation::Strict && !p.overlaps));
    }

    #[test]
    fn share_policy_overlaps() {
        let policy = Policy::parse("T1 + T2 + T3").unwrap();
        let joint = synthesize(&specs(), &policy, SynthConfig::default()).unwrap();
        let report = analyze(&joint);
        assert!(report.all_guarantees_hold());
        assert!(report
            .pairs
            .iter()
            .all(|p| p.relation == Relation::Share && p.overlaps));
    }

    #[test]
    fn mixed_policy_report() {
        let policy = Policy::parse("T1 >> T2 + T3").unwrap();
        let joint = synthesize(&specs(), &policy, SynthConfig::default()).unwrap();
        let report = analyze(&joint);
        assert!(report.all_guarantees_hold());
        let t1 = report.tenants.iter().find(|t| t.name == "T1").unwrap();
        assert_eq!(t1.level, 0);
        let display = report.to_string();
        assert!(display.contains("ISOLATED"));
        assert!(display.contains("all hold"));
    }

    #[test]
    fn quantization_warning_emitted() {
        // T1 has 100k distinct ranks quantized onto 8 levels.
        let policy = Policy::parse("T1").unwrap();
        let joint = synthesize(&specs(), &policy, SynthConfig::default()).unwrap();
        let report = analyze(&joint);
        assert!(report
            .warnings
            .iter()
            .any(|w| w.contains("granularity reduced")));
    }

    #[test]
    fn unscheduled_spec_warning() {
        let policy = Policy::parse("T1 >> T2").unwrap();
        let joint = synthesize(&specs(), &policy, SynthConfig::default()).unwrap();
        let report = analyze(&joint);
        assert!(report
            .warnings
            .iter()
            .any(|w| w.contains("'T3'") && w.contains("does not appear")));
    }

    #[test]
    fn preference_reported_as_overlapping() {
        let policy = Policy::parse("T1 > T2").unwrap();
        let joint = synthesize(&specs(), &policy, SynthConfig::default()).unwrap();
        let report = analyze(&joint);
        let pair = &report.pairs[0];
        assert_eq!(pair.relation, Relation::Prefer);
        assert!(pair.overlaps);
        assert!(report.all_guarantees_hold());
    }
}
