#![deny(missing_docs)]

//! # qvisor — multi-tenant programmable packet scheduling
//!
//! A from-scratch Rust reproduction of *QVISOR: Virtualizing Packet
//! Scheduling Policies* (Gran Alcoz & Vanbever, HotNets '23): a scheduling
//! hypervisor that lets multiple tenants run their own scheduling policies
//! on one switch, plus everything needed to evaluate it — scheduler models
//! (PIFO, SP-PIFO, AIFO, strict-priority banks), tenant rank functions
//! (pFabric, EDF, LSTF, STFQ, FQ), a deterministic packet-level network
//! simulator, and workload generators.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here under a module matching its role.
//!
//! ```
//! use qvisor::core::{synthesize, Policy, SynthConfig, TenantSpec};
//! use qvisor::ranking::RankRange;
//! use qvisor::sim::TenantId;
//!
//! // Tenants declare their rank ranges; the operator composes them.
//! let specs = vec![
//!     TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(0, 100_000)),
//!     TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(0, 10_000)),
//! ];
//! let policy = Policy::parse("T1 >> T2").unwrap();
//! let joint = synthesize(&specs, &policy, SynthConfig::default()).unwrap();
//! assert!(qvisor::core::analyze(&joint).all_guarantees_hold());
//! ```

/// The `qvisor` command-line tool's implementation.
pub mod cli;

/// Simulation kernel: time, events, packets, RNG, statistics.
pub mod sim {
    pub use qvisor_sim::*;
}

/// Network topologies and ECMP routing.
pub mod topology {
    pub use qvisor_topology::*;
}

/// Scheduler models: PIFO, FIFO, strict-priority banks, SP-PIFO, AIFO,
/// DRR, token buckets.
pub mod scheduler {
    pub use qvisor_scheduler::*;
}

/// Tenant rank functions: pFabric, EDF, LSTF, STFQ, FQ, FIFO+.
pub mod ranking {
    pub use qvisor_ranking::*;
}

/// The scheduling hypervisor: policy language, synthesizer, pre-processor,
/// analyzer, runtime adaptation, deployment backends.
pub mod core {
    pub use qvisor_core::*;
}

/// End-host transports and FCT collection.
pub mod transport {
    pub use qvisor_transport::*;
}

/// The packet-level network simulator.
pub mod netsim {
    pub use qvisor_netsim::*;
}

/// Workload generation: flow-size CDFs, Poisson arrivals, CBR tenants.
pub mod workloads {
    pub use qvisor_workloads::*;
}

/// Observability: counters, gauges, histograms, and the event journal.
pub mod telemetry {
    pub use qvisor_telemetry::*;
}
