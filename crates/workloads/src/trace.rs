//! Workload trace export/import.
//!
//! Generated workloads can be saved as JSON and replayed later, so an
//! experiment's exact flow set travels with its results (and third-party
//! traces can be converted into this shape and driven through the
//! simulator).

use crate::gen::{GeneratedCbr, GeneratedFlow};
use qvisor_sim::json::{self, ParseError, Value};
use qvisor_sim::{Nanos, NodeId, TenantId};

/// Serializable form of one reliable flow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowTraceEntry {
    /// Tenant id.
    pub tenant: u16,
    /// Source host id.
    pub src: u32,
    /// Destination host id.
    pub dst: u32,
    /// Flow size in bytes.
    pub size: u64,
    /// Start time in nanoseconds.
    pub start_ns: u64,
    /// Absolute deadline in nanoseconds, if any.
    pub deadline_ns: Option<u64>,
}

/// Serializable form of one CBR stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CbrTraceEntry {
    /// Tenant id.
    pub tenant: u16,
    /// Source host id.
    pub src: u32,
    /// Destination host id.
    pub dst: u32,
    /// Rate in bits per second.
    pub rate_bps: u64,
    /// Datagram wire size in bytes.
    pub pkt_size: u32,
    /// Start time in nanoseconds.
    pub start_ns: u64,
    /// Stop time in nanoseconds.
    pub stop_ns: u64,
    /// Deadline offset in nanoseconds.
    pub deadline_offset_ns: u64,
}

/// A complete workload trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkloadTrace {
    /// Reliable flows.
    pub flows: Vec<FlowTraceEntry>,
    /// CBR streams.
    pub cbr: Vec<CbrTraceEntry>,
}

impl WorkloadTrace {
    /// Build a trace from generated workloads.
    pub fn from_generated(flows: &[GeneratedFlow], cbr: &[GeneratedCbr]) -> WorkloadTrace {
        WorkloadTrace {
            flows: flows
                .iter()
                .map(|f| FlowTraceEntry {
                    tenant: f.tenant.0,
                    src: f.src.0,
                    dst: f.dst.0,
                    size: f.size,
                    start_ns: f.start.as_nanos(),
                    deadline_ns: f.deadline.map(|d| d.as_nanos()),
                })
                .collect(),
            cbr: cbr
                .iter()
                .map(|c| CbrTraceEntry {
                    tenant: c.tenant.0,
                    src: c.src.0,
                    dst: c.dst.0,
                    rate_bps: c.rate_bps,
                    pkt_size: c.pkt_size,
                    start_ns: c.start.as_nanos(),
                    stop_ns: c.stop.as_nanos(),
                    deadline_offset_ns: c.deadline_offset.as_nanos(),
                })
                .collect(),
        }
    }

    /// Reconstruct the generated workloads.
    pub fn to_generated(&self) -> (Vec<GeneratedFlow>, Vec<GeneratedCbr>) {
        let flows = self
            .flows
            .iter()
            .map(|f| GeneratedFlow {
                tenant: TenantId(f.tenant),
                src: NodeId(f.src),
                dst: NodeId(f.dst),
                size: f.size,
                start: Nanos(f.start_ns),
                deadline: f.deadline_ns.map(Nanos),
            })
            .collect();
        let cbr = self
            .cbr
            .iter()
            .map(|c| GeneratedCbr {
                tenant: TenantId(c.tenant),
                src: NodeId(c.src),
                dst: NodeId(c.dst),
                rate_bps: c.rate_bps,
                pkt_size: c.pkt_size,
                start: Nanos(c.start_ns),
                stop: Nanos(c.stop_ns),
                deadline_offset: Nanos(c.deadline_offset_ns),
            })
            .collect();
        (flows, cbr)
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        let flows: Vec<Value> = self
            .flows
            .iter()
            .map(|f| {
                Value::object()
                    .set("tenant", u64::from(f.tenant))
                    .set("src", f.src)
                    .set("dst", f.dst)
                    .set("size", f.size)
                    .set("start_ns", f.start_ns)
                    .set("deadline_ns", f.deadline_ns)
            })
            .collect();
        let cbr: Vec<Value> = self
            .cbr
            .iter()
            .map(|c| {
                Value::object()
                    .set("tenant", u64::from(c.tenant))
                    .set("src", c.src)
                    .set("dst", c.dst)
                    .set("rate_bps", c.rate_bps)
                    .set("pkt_size", c.pkt_size)
                    .set("start_ns", c.start_ns)
                    .set("stop_ns", c.stop_ns)
                    .set("deadline_offset_ns", c.deadline_offset_ns)
            })
            .collect();
        Value::object()
            .set("flows", Value::from(flows))
            .set("cbr", Value::from(cbr))
            .to_pretty()
    }

    /// Parse from JSON.
    pub fn from_json(text: &str) -> Result<WorkloadTrace, ParseError> {
        fn array<'v>(root: &'v Value, key: &str) -> Result<&'v [Value], ParseError> {
            json::field(root, key)?.as_array().ok_or(ParseError {
                at: 0,
                msg: format!("field '{key}' must be an array"),
            })
        }
        fn field_u32(v: &Value, key: &str) -> Result<u32, ParseError> {
            json::field_u64(v, key)?.try_into().map_err(|_| ParseError {
                at: 0,
                msg: format!("field '{key}' does not fit a u32"),
            })
        }
        fn field_u16(v: &Value, key: &str) -> Result<u16, ParseError> {
            json::field_u64(v, key)?.try_into().map_err(|_| ParseError {
                at: 0,
                msg: format!("field '{key}' does not fit a u16"),
            })
        }
        let root = Value::parse(text)?;
        let flows = array(&root, "flows")?
            .iter()
            .map(|f| {
                let deadline_ns = match f.get("deadline_ns") {
                    None => None,
                    Some(d) if d.is_null() => None,
                    Some(d) => Some(d.as_u64().ok_or(ParseError {
                        at: 0,
                        msg: "field 'deadline_ns' must be a non-negative integer".to_string(),
                    })?),
                };
                Ok(FlowTraceEntry {
                    tenant: field_u16(f, "tenant")?,
                    src: field_u32(f, "src")?,
                    dst: field_u32(f, "dst")?,
                    size: json::field_u64(f, "size")?,
                    start_ns: json::field_u64(f, "start_ns")?,
                    deadline_ns,
                })
            })
            .collect::<Result<Vec<_>, ParseError>>()?;
        let cbr = array(&root, "cbr")?
            .iter()
            .map(|c| {
                Ok(CbrTraceEntry {
                    tenant: field_u16(c, "tenant")?,
                    src: field_u32(c, "src")?,
                    dst: field_u32(c, "dst")?,
                    rate_bps: json::field_u64(c, "rate_bps")?,
                    pkt_size: field_u32(c, "pkt_size")?,
                    start_ns: json::field_u64(c, "start_ns")?,
                    stop_ns: json::field_u64(c, "stop_ns")?,
                    deadline_offset_ns: json::field_u64(c, "deadline_offset_ns")?,
                })
            })
            .collect::<Result<Vec<_>, ParseError>>()?;
        Ok(WorkloadTrace { flows, cbr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::FixedSize;
    use crate::gen::{cbr_tenant, PoissonFlowGen};
    use qvisor_sim::SimRng;

    fn sample() -> (Vec<GeneratedFlow>, Vec<GeneratedCbr>) {
        let hosts: Vec<NodeId> = (0..8).map(NodeId).collect();
        let sizes = FixedSize(10_000);
        let mut rng = SimRng::seed_from(5);
        let flows = PoissonFlowGen {
            tenant: TenantId(1),
            hosts: &hosts,
            sizes: &sizes,
            rate_flows_per_sec: 1_000.0,
        }
        .generate(25, &mut rng);
        let cbr = cbr_tenant(
            TenantId(2),
            &hosts,
            5,
            1_000_000,
            1_500,
            Nanos::ZERO,
            Nanos::from_millis(10),
            Nanos::from_micros(100),
            &mut rng,
        );
        (flows, cbr)
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let (flows, cbr) = sample();
        let trace = WorkloadTrace::from_generated(&flows, &cbr);
        let json = trace.to_json();
        let back = WorkloadTrace::from_json(&json).unwrap();
        assert_eq!(trace, back);
        let (flows2, cbr2) = back.to_generated();
        assert_eq!(flows, flows2);
        assert_eq!(cbr, cbr2);
    }

    #[test]
    fn deadline_survives_roundtrip() {
        let mut flows = sample().0;
        flows[0].deadline = Some(Nanos::from_millis(5));
        let trace = WorkloadTrace::from_generated(&flows, &[]);
        let (back, _) = WorkloadTrace::from_json(&trace.to_json())
            .unwrap()
            .to_generated();
        assert_eq!(back[0].deadline, Some(Nanos::from_millis(5)));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(WorkloadTrace::from_json("{not json").is_err());
        assert!(WorkloadTrace::from_json(r#"{"flows": 3}"#).is_err());
    }

    #[test]
    fn empty_trace() {
        let t = WorkloadTrace::default();
        let back = WorkloadTrace::from_json(&t.to_json()).unwrap();
        assert!(back.flows.is_empty() && back.cbr.is_empty());
    }
}
