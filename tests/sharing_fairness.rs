//! The `+` operator: do share groups actually share the bottleneck fairly,
//! and do weights bias the split?
//!
//! Sharing is exercised with *closed-loop* traffic (reliable elephants
//! ranked by byte-count fair queueing): a tenant receiving less service
//! acknowledges less, its virtual clock advances slower, its next packets
//! rank better — the self-balancing loop real FQ relies on. (Open-loop
//! lockstep CBR has no such feedback and any consistent tie-break skews
//! it; that behaviour is pinned in `open_loop_share_has_no_feedback`.)

use qvisor::core::{SynthConfig, TenantSpec, UnknownTenantAction};
use qvisor::netsim::{
    NewCbr, NewFlow, QvisorSetup, SchedulerKind, SimConfig, SimReport, Simulation,
};
use qvisor::ranking::{ByteCountFq, RankRange};
use qvisor::sim::{gbps, jain_fairness, Nanos, TenantId};
use qvisor::topology::Dumbbell;

const T1: TenantId = TenantId(1);
const T2: TenantId = TenantId(2);

const ELEPHANT: u64 = 20_000_000; // 20 MB: never finishes within the horizon

fn specs() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new(T1, "T1", "FQ", RankRange::new(0, 14_000)).with_levels(64),
        TenantSpec::new(T2, "T2", "FQ", RankRange::new(0, 14_000)).with_levels(64),
    ]
}

/// One 20 MB elephant per tenant through a shared 1 Gbps bottleneck,
/// measured over a fixed 120 ms window.
fn run(policy: &str) -> SimReport {
    let d = Dumbbell::build(2, gbps(1), gbps(1), Nanos::from_micros(1));
    let cfg = SimConfig {
        seed: 3,
        horizon: Nanos::from_millis(120),
        scheduler: SchedulerKind::Pifo,
        qvisor: Some(QvisorSetup {
            specs: specs(),
            policy: policy.to_string(),
            synth: SynthConfig::default(),
            unknown: UnknownTenantAction::BestEffort,
            scope: Default::default(),
            monitor: None,
        }),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(T1, Box::new(ByteCountFq::new(1_460, 14_000)));
    sim.register_rank_fn(T2, Box::new(ByteCountFq::new(1_460, 14_000)));
    for (tenant, i) in [(T1, 0), (T2, 1)] {
        sim.add_flow(NewFlow::new(
            tenant,
            d.senders[i],
            d.receivers[i],
            ELEPHANT,
            Nanos::ZERO,
        ));
    }
    sim.run()
}

fn bytes(r: &SimReport) -> (f64, f64) {
    (
        r.tenant(T1).delivered_bytes as f64,
        r.tenant(T2).delivered_bytes as f64,
    )
}

#[test]
fn share_operator_splits_evenly() {
    let r = run("T1 + T2");
    let (b1, b2) = bytes(&r);
    let jain = jain_fairness(&[b1, b2]).unwrap();
    assert!(
        jain > 0.99,
        "equal share must be near-perfectly fair: {b1} vs {b2} (Jain {jain:.4})"
    );
    // The bottleneck was saturated: combined goodput near 1 Gbps.
    let total_bps = (b1 + b2) * 8.0 / r.end_time.as_secs_f64();
    assert!(
        total_bps > 0.85e9,
        "bottleneck should be ~saturated, got {total_bps:.2e}"
    );
}

#[test]
fn strict_operator_starves_the_loser() {
    let r = run("T1 >> T2");
    let (b1, b2) = bytes(&r);
    assert!(
        b1 > b2 * 3.0,
        "strict priority should skew the split hard: {b1} vs {b2}"
    );
}

#[test]
fn weighted_share_biases_the_split() {
    let r = run("T1:3 + T2");
    let (b1, b2) = bytes(&r);
    let ratio = b1 / b2;
    assert!(
        (1.8..5.0).contains(&ratio),
        "weight 3:1 should bias the split toward ~3, got {ratio:.2} ({b1} vs {b2})"
    );
}

#[test]
fn preference_sits_between_share_and_strict() {
    let skew = |r: &SimReport| {
        let (b1, b2) = bytes(r);
        b1 / b2.max(1.0)
    };
    let s_share = skew(&run("T1 + T2"));
    let s_pref = skew(&run("T1 > T2"));
    let s_strict = skew(&run("T1 >> T2"));
    assert!(
        s_share <= s_pref && s_pref <= s_strict,
        "preference must sit between sharing ({s_share:.2}) and strict \
         ({s_strict:.2}); got {s_pref:.2}"
    );
    assert!(
        s_pref > s_share * 1.1,
        "preference must bias visibly: share {s_share:.2}, pref {s_pref:.2}"
    );
}

#[test]
fn open_loop_share_has_no_feedback() {
    // Pin the open-loop behaviour: two lockstep CBR floods under `+` do
    // NOT equalize (no feedback loop), unlike the closed-loop case above.
    // This documents why sharing semantics assume responsive traffic.
    let d = Dumbbell::build(2, gbps(1), gbps(1), Nanos::from_micros(1));
    let cfg = SimConfig {
        seed: 3,
        horizon: Nanos::from_millis(60),
        scheduler: SchedulerKind::Pifo,
        qvisor: Some(QvisorSetup {
            specs: specs(),
            policy: "T1 + T2".into(),
            synth: SynthConfig::default(),
            unknown: UnknownTenantAction::BestEffort,
            scope: Default::default(),
            monitor: None,
        }),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(T1, Box::new(ByteCountFq::new(1_500, 14_000)));
    sim.register_rank_fn(T2, Box::new(ByteCountFq::new(1_500, 14_000)));
    for (tenant, i) in [(T1, 0), (T2, 1)] {
        sim.add_cbr(NewCbr {
            tenant,
            src: d.senders[i],
            dst: d.receivers[i],
            rate_bps: 800_000_000,
            pkt_size: 1_500,
            start: Nanos::ZERO,
            stop: Nanos::from_millis(50),
            deadline_offset: Nanos::from_millis(50),
        });
    }
    let r = sim.run();
    let (b1, b2) = bytes(&r);
    // Both deliver something, but drops concentrate on one side.
    assert!(b1 > 0.0 && b2 > 0.0);
    assert!(
        r.tenant(T1).dropped_pkts + r.tenant(T2).dropped_pkts > 0,
        "overload must drop"
    );
}
