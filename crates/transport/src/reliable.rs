//! A minimal reliable window transport, in the spirit of pFabric's
//! "minimal transport" (Alizadeh et al., SIGCOMM '13).
//!
//! Design: a fixed window of `cwnd` unacknowledged packets, per-packet
//! ACKs, and per-packet retransmission timers. There is no congestion
//! window adaptation — pFabric's thesis is that rank-aware switches (small
//! buffers + priority drop) do the congestion control, and the transport
//! only needs to keep the pipe full and recover losses. This preserves the
//! behaviour the paper's evaluation depends on while staying simple enough
//! to reason about.
//!
//! The sender is a pure state machine: the simulator drives it with
//! `on_start` / `on_ack` / `on_timeout` and receives send requests back.

use crate::flow::FlowDef;
use qvisor_sim::Nanos;
use std::collections::BTreeSet;

/// A request from the sender to emit one data packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendReq {
    /// Sequence number (0-based packet index within the flow).
    pub seq: u64,
    /// Application payload bytes in this packet.
    pub payload: u32,
    /// True when this is a retransmission.
    pub retransmit: bool,
}

/// Outcome of delivering an ACK to the sender.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AckOutcome {
    /// New packets the window now admits.
    pub sends: Vec<SendReq>,
    /// The flow just completed (all bytes acknowledged).
    pub completed: bool,
}

/// Sender-side state machine of one reliable flow.
#[derive(Clone, Debug)]
pub struct ReliableSender {
    def: FlowDef,
    mss: u32,
    cwnd: u32,
    /// Total packets in the flow.
    total_pkts: u64,
    /// Next never-sent sequence.
    next_seq: u64,
    /// Sequences sent and not yet acknowledged.
    unacked: BTreeSet<u64>,
    /// Acknowledged payload bytes.
    acked_bytes: u64,
    completed: bool,
}

impl ReliableSender {
    /// A sender for `def`, segmenting into `mss`-byte packets with a fixed
    /// window of `cwnd` packets.
    ///
    /// # Panics
    /// Panics if `mss`, `cwnd`, or the flow size is zero.
    pub fn new(def: FlowDef, mss: u32, cwnd: u32) -> ReliableSender {
        assert!(mss > 0, "mss must be positive");
        assert!(cwnd > 0, "window must be positive");
        assert!(def.size > 0, "empty flow");
        let total_pkts = def.size.div_ceil(mss as u64);
        ReliableSender {
            def,
            mss,
            cwnd,
            total_pkts,
            next_seq: 0,
            unacked: BTreeSet::new(),
            acked_bytes: 0,
            completed: false,
        }
    }

    /// The flow definition.
    pub fn def(&self) -> &FlowDef {
        &self.def
    }

    /// Packets in the flow.
    pub fn total_pkts(&self) -> u64 {
        self.total_pkts
    }

    /// Payload bytes of packet `seq` (the last packet may be short).
    pub fn payload_of(&self, seq: u64) -> u32 {
        debug_assert!(seq < self.total_pkts);
        if seq + 1 == self.total_pkts {
            let rem = self.def.size - (self.total_pkts - 1) * self.mss as u64;
            rem as u32
        } else {
            self.mss
        }
    }

    /// Bytes not yet acknowledged — pFabric's rank signal ("remaining flow
    /// size").
    pub fn remaining_bytes(&self) -> u64 {
        self.def.size - self.acked_bytes
    }

    /// Bytes already handed to the network at least once.
    pub fn bytes_sent(&self) -> u64 {
        (self.next_seq * self.mss as u64).min(self.def.size)
    }

    /// Has every byte been acknowledged?
    pub fn is_complete(&self) -> bool {
        self.completed
    }

    fn fill_window(&mut self) -> Vec<SendReq> {
        let mut sends = Vec::new();
        while (self.unacked.len() as u32) < self.cwnd && self.next_seq < self.total_pkts {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.unacked.insert(seq);
            sends.push(SendReq {
                seq,
                payload: self.payload_of(seq),
                retransmit: false,
            });
        }
        sends
    }

    /// Start the flow: emit the initial window.
    pub fn on_start(&mut self, _now: Nanos) -> Vec<SendReq> {
        debug_assert_eq!(self.next_seq, 0, "on_start called twice");
        self.fill_window()
    }

    /// Deliver an ACK for `seq`. Duplicate ACKs are ignored.
    pub fn on_ack(&mut self, seq: u64, _now: Nanos) -> AckOutcome {
        if self.completed || !self.unacked.remove(&seq) {
            return AckOutcome::default();
        }
        self.acked_bytes += self.payload_of(seq) as u64;
        if self.acked_bytes >= self.def.size {
            self.completed = true;
            debug_assert!(self.unacked.is_empty());
            return AckOutcome {
                sends: Vec::new(),
                completed: true,
            };
        }
        AckOutcome {
            sends: self.fill_window(),
            completed: false,
        }
    }

    /// The retransmission timer for `seq` fired. Returns the packet to
    /// resend, or `None` if it was acknowledged in the meantime.
    pub fn on_timeout(&mut self, seq: u64, _now: Nanos) -> Option<SendReq> {
        if self.completed || !self.unacked.contains(&seq) {
            return None;
        }
        Some(SendReq {
            seq,
            payload: self.payload_of(seq),
            retransmit: true,
        })
    }
}

/// Receiver-side state of one reliable flow: tracks distinct payload bytes
/// seen so duplicates (from retransmissions) aren't double counted.
#[derive(Clone, Debug, Default)]
pub struct ReliableReceiver {
    received: BTreeSet<u64>,
    received_bytes: u64,
    duplicate_pkts: u64,
}

impl ReliableReceiver {
    /// Fresh receiver.
    pub fn new() -> ReliableReceiver {
        ReliableReceiver::default()
    }

    /// A data packet arrived; returns true if it carried new bytes.
    /// (An ACK is generated either way — the sender needs it.)
    pub fn on_data(&mut self, seq: u64, payload: u32) -> bool {
        if self.received.insert(seq) {
            self.received_bytes += payload as u64;
            true
        } else {
            self.duplicate_pkts += 1;
            false
        }
    }

    /// Distinct payload bytes received.
    pub fn received_bytes(&self) -> u64 {
        self.received_bytes
    }

    /// Duplicate data packets seen.
    pub fn duplicates(&self) -> u64 {
        self.duplicate_pkts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvisor_sim::{FlowId, NodeId, TenantId};

    fn def(size: u64) -> FlowDef {
        FlowDef::new(
            FlowId(1),
            TenantId(1),
            NodeId(0),
            NodeId(1),
            size,
            Nanos::ZERO,
        )
    }

    #[test]
    fn initial_window_respects_cwnd() {
        let mut s = ReliableSender::new(def(100_000), 1_000, 8);
        let sends = s.on_start(Nanos::ZERO);
        assert_eq!(sends.len(), 8);
        assert_eq!(sends[0].seq, 0);
        assert_eq!(sends[7].seq, 7);
        assert!(sends.iter().all(|r| !r.retransmit && r.payload == 1_000));
    }

    #[test]
    fn short_flow_sends_everything_at_once() {
        let mut s = ReliableSender::new(def(2_500), 1_000, 8);
        assert_eq!(s.total_pkts(), 3);
        let sends = s.on_start(Nanos::ZERO);
        assert_eq!(sends.len(), 3);
        assert_eq!(sends[2].payload, 500, "tail packet is short");
    }

    #[test]
    fn ack_opens_window_and_completes() {
        let mut s = ReliableSender::new(def(5_000), 1_000, 2);
        let first = s.on_start(Nanos::ZERO);
        assert_eq!(first.len(), 2);
        // ACK seq 0 -> slides to seq 2.
        let out = s.on_ack(0, Nanos::ZERO);
        assert_eq!(
            out.sends,
            vec![SendReq {
                seq: 2,
                payload: 1_000,
                retransmit: false
            }]
        );
        assert!(!out.completed);
        s.on_ack(1, Nanos::ZERO);
        s.on_ack(2, Nanos::ZERO);
        s.on_ack(3, Nanos::ZERO);
        let last = s.on_ack(4, Nanos::ZERO);
        assert!(last.completed);
        assert!(s.is_complete());
        assert_eq!(s.remaining_bytes(), 0);
    }

    #[test]
    fn remaining_bytes_tracks_acks_not_sends() {
        let mut s = ReliableSender::new(def(10_000), 1_000, 4);
        s.on_start(Nanos::ZERO);
        assert_eq!(s.remaining_bytes(), 10_000, "sends don't shrink remaining");
        s.on_ack(0, Nanos::ZERO);
        assert_eq!(s.remaining_bytes(), 9_000);
        assert_eq!(s.bytes_sent(), 5_000, "4 initial + 1 slid");
    }

    #[test]
    fn duplicate_acks_ignored() {
        let mut s = ReliableSender::new(def(3_000), 1_000, 3);
        s.on_start(Nanos::ZERO);
        s.on_ack(1, Nanos::ZERO);
        let dup = s.on_ack(1, Nanos::ZERO);
        assert_eq!(dup, AckOutcome::default());
        assert_eq!(s.remaining_bytes(), 2_000);
    }

    #[test]
    fn timeout_retransmits_only_unacked() {
        let mut s = ReliableSender::new(def(3_000), 1_000, 3);
        s.on_start(Nanos::ZERO);
        s.on_ack(1, Nanos::ZERO);
        assert_eq!(
            s.on_timeout(0, Nanos::ZERO),
            Some(SendReq {
                seq: 0,
                payload: 1_000,
                retransmit: true
            })
        );
        assert_eq!(s.on_timeout(1, Nanos::ZERO), None, "already acked");
    }

    #[test]
    fn retransmission_then_ack_completes_once() {
        let mut s = ReliableSender::new(def(1_000), 1_000, 4);
        s.on_start(Nanos::ZERO);
        let _ = s.on_timeout(0, Nanos::ZERO);
        let out = s.on_ack(0, Nanos::ZERO);
        assert!(out.completed);
        // A late duplicate (from the retransmitted copy) changes nothing.
        let dup = s.on_ack(0, Nanos::ZERO);
        assert!(!dup.completed);
        assert!(s.is_complete());
    }

    #[test]
    fn receiver_dedupes() {
        let mut r = ReliableReceiver::new();
        assert!(r.on_data(0, 1_000));
        assert!(r.on_data(1, 500));
        assert!(!r.on_data(0, 1_000));
        assert_eq!(r.received_bytes(), 1_500);
        assert_eq!(r.duplicates(), 1);
    }

    #[test]
    #[should_panic(expected = "empty flow")]
    fn zero_size_flow_rejected() {
        let _ = ReliableSender::new(def(0), 1_000, 4);
    }
}
