//! Replays every fuzz corpus document under `tests/corpus/` and asserts
//! the recorded verdict still holds.
//!
//! Each document is self-contained: it freezes a deployment config plus
//! the verifier verdict, the exact QV-* diagnostic codes, and the queue
//! oracle's cross-tenant inversion count observed when it was minuted.
//! `qvisor_fuzz::replay_corpus` re-verifies, re-runs the witness and
//! queue oracles, and fails on the first drift — so every fuzz-found
//! (or seeded-known-bad) deployment stays a regression test forever.

use std::path::PathBuf;

fn corpus_paths() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/corpus must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    paths
}

#[test]
fn the_corpus_is_not_empty() {
    assert!(
        corpus_paths().len() >= 5,
        "expected at least 5 corpus documents, found {}",
        corpus_paths().len()
    );
}

#[test]
fn every_corpus_document_replays_its_recorded_verdict() {
    for path in corpus_paths() {
        let text = std::fs::read_to_string(&path).expect("corpus file is readable");
        let replay =
            qvisor_fuzz::replay_corpus(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            replay.outcome.disagreements.is_empty(),
            "{}: {:?}",
            path.display(),
            replay.outcome.disagreements
        );
    }
}

#[test]
fn corpus_files_named_after_a_code_still_contain_that_code() {
    for path in corpus_paths() {
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf-8 file name");
        // `overflow.json` pins QV-OVERFLOW, `strict-overlap.json` pins
        // QV-STRICT-OVERLAP, and so on; suffixed names like
        // `quant-clean.json` are exempt from the naming contract.
        let code = format!("QV-{}", stem.to_uppercase());
        let text = std::fs::read_to_string(&path).expect("corpus file is readable");
        let replay =
            qvisor_fuzz::replay_corpus(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        if replay.outcome.codes.contains(&code) {
            continue;
        }
        assert!(
            !qvisor_core::DiagCode::ALL
                .iter()
                .any(|c| c.as_str() == code),
            "{}: named after {code} but replay emitted [{}]",
            path.display(),
            replay.outcome.codes.join(", ")
        );
    }
}

#[test]
fn the_corpus_spans_every_verdict_class() {
    let mut clean = false;
    let mut warnings = false;
    let mut errors = false;
    for path in corpus_paths() {
        let text = std::fs::read_to_string(&path).expect("corpus file is readable");
        let replay =
            qvisor_fuzz::replay_corpus(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        match replay.outcome.verdict {
            qvisor_fuzz::Verdict::Clean => clean = true,
            qvisor_fuzz::Verdict::Warnings => warnings = true,
            qvisor_fuzz::Verdict::Errors => errors = true,
        }
    }
    assert!(clean, "corpus has no clean-verdict document");
    assert!(warnings, "corpus has no warnings-verdict document");
    assert!(errors, "corpus has no errors-verdict document");
}
