//! Destination-side delivery, ACK generation, and per-tenant stats
//! collection (report counters plus cached telemetry handles).

use super::queues::TenantMetrics;
use super::{FlowState, Simulation};
use crate::report::TenantTraffic;
use qvisor_sim::{json::Value, Nanos, Packet, PacketKind, TenantId};
use qvisor_telemetry::{TraceKind, TraceRecord};
use qvisor_transport::FlowRecord;

impl Simulation {
    pub(in crate::sim) fn tenant_mut(&mut self, t: TenantId) -> &mut TenantTraffic {
        self.report.tenants.entry(t).or_default()
    }

    pub(in crate::sim) fn metrics(&mut self, t: TenantId) -> &TenantMetrics {
        let telemetry = &self.cfg.telemetry;
        self.tenant_metrics.entry(t).or_insert_with(|| {
            let tenant = format!("T{}", t.0);
            let labels = [("tenant", tenant.as_str())];
            TenantMetrics {
                sent_pkts: telemetry.counter("net_sent_pkts", &labels),
                delivered_pkts: telemetry.counter("net_delivered_pkts", &labels),
                delivered_bytes: telemetry.counter("net_delivered_bytes", &labels),
                dropped_pkts: telemetry.counter("net_dropped_pkts", &labels),
                fct_ns: telemetry.histogram("net_fct_ns", &labels),
            }
        })
    }

    /// Record a lifecycle span for `p` on the flight recorder, if its flow
    /// is sampled. Pure observation: never touches simulation state.
    pub(in crate::sim) fn trace_pkt(&self, p: &Packet, now: Nanos, kind: TraceKind) {
        let tracer = &self.cfg.tracer;
        if tracer.sampled(p.flow.0) {
            tracer.record(
                TraceRecord::new(now, p.flow.0, p.seq, p.tenant.0, kind)
                    .as_ack(matches!(p.kind, PacketKind::Ack { .. })),
            );
        }
    }

    pub(in crate::sim) fn deliver(&mut self, p: Packet, now: Nanos) {
        // See `drop_packet`: per-shard in-flight counts may be negative.
        debug_assert!(self.shard.is_some() || self.in_flight > 0);
        self.in_flight -= 1;
        let latency_ns = now.saturating_sub(p.sent_at).as_nanos();
        self.trace_pkt(
            &p,
            now,
            if matches!(p.kind, PacketKind::Ack { .. }) {
                TraceKind::Ack { latency_ns }
            } else {
                TraceKind::Deliver { latency_ns }
            },
        );
        match p.kind {
            PacketKind::Data => {
                let payload = p.size - self.cfg.header_bytes;
                let fresh = match &mut self.flows[p.flow.index()] {
                    FlowState::Reliable { receiver, .. } => receiver.on_data(p.seq, payload),
                    FlowState::Cbr { .. } => unreachable!("data packet on CBR flow"),
                };
                if fresh {
                    let t = self.tenant_mut(p.tenant);
                    t.delivered_pkts += 1;
                    t.delivered_bytes += payload as u64;
                    *self.window_bytes.entry(p.tenant).or_insert(0) += payload as u64;
                    let m = self.metrics(p.tenant);
                    m.delivered_pkts.inc();
                    m.delivered_bytes.add(payload as u64);
                    self.cfg.monitor.on_delivered(now, p.tenant.0);
                }
                // Always ACK (sender dedupes).
                let ack = p.ack_for(self.cfg.ack_bytes, now);
                self.in_flight += 1;
                self.forward(ack.src, ack, now);
            }
            PacketKind::Ack { acked_seq } => {
                let outcome = match &mut self.flows[p.flow.index()] {
                    FlowState::Reliable { sender, .. } => sender.on_ack(acked_seq, now),
                    FlowState::Cbr { .. } => unreachable!("ACK on CBR flow"),
                };
                for req in outcome.sends {
                    self.send_data(p.flow, req, 0, now);
                }
                if outcome.completed {
                    let (def, _) = match &self.flows[p.flow.index()] {
                        FlowState::Reliable { sender, .. } => (*sender.def(), ()),
                        FlowState::Cbr { .. } => unreachable!(),
                    };
                    self.report.fct.record(FlowRecord {
                        flow: p.flow,
                        tenant: def.tenant,
                        size: def.size,
                        start: def.start,
                        end: now,
                    });
                    let fct = now.saturating_sub(def.start);
                    self.metrics(def.tenant).fct_ns.record(fct.as_nanos());
                    self.cfg.monitor.on_fct(now, def.tenant.0, fct.as_nanos());
                    self.cfg.telemetry.event(
                        now,
                        "flow_complete",
                        &[
                            ("flow", Value::from(p.flow.0)),
                            ("tenant", Value::from(def.tenant.0 as u64)),
                            ("size_bytes", Value::from(def.size)),
                            ("fct_ns", Value::from(fct)),
                        ],
                    );
                    self.reliable_done += 1;
                }
            }
            PacketKind::Datagram => {
                let payload = p.size.saturating_sub(self.cfg.header_bytes);
                let (met, missed) = match &mut self.flows[p.flow.index()] {
                    FlowState::Cbr { sink, .. } => {
                        let before = (sink.received(),);
                        sink.on_datagram(p.sent_at, p.deadline, now);
                        let _ = before;
                        match p.deadline {
                            Some(d) if now <= d => (1, 0),
                            Some(_) => (0, 1),
                            None => (0, 0),
                        }
                    }
                    FlowState::Reliable { .. } => unreachable!("datagram on reliable flow"),
                };
                let t = self.tenant_mut(p.tenant);
                t.delivered_pkts += 1;
                t.delivered_bytes += payload as u64;
                t.deadline_met += met;
                t.deadline_missed += missed;
                *self.window_bytes.entry(p.tenant).or_insert(0) += payload as u64;
                let m = self.metrics(p.tenant);
                m.delivered_pkts.inc();
                m.delivered_bytes.add(payload as u64);
                self.cfg.monitor.on_delivered(now, p.tenant.0);
            }
        }
    }
}
