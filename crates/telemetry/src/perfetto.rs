//! Chrome trace-event JSON exporter for [`TraceData`].
//!
//! The output is the classic Chrome trace-event format (the JSON flavour),
//! which loads directly in Perfetto (<https://ui.perfetto.dev>) and in
//! `chrome://tracing`. The mapping:
//!
//! * one *thread track* per queue/link label — dequeues render as complete
//!   (`"X"`) "queued" slices spanning the packet's residency, transmissions
//!   as `"X"` "tx" slices spanning serialization, drops and rank inversions
//!   as instant (`"i"`) markers;
//! * one *async span* per sampled packet (`"b"`/`"e"` nestable events keyed
//!   by `f<flow>.<seq>`, ACKs suffixed `.a`) covering first record to last,
//!   with async instants (`"n"`) for each lifecycle phase in between —
//!   `flow_start`, `rank`, `transform`, `enqueue`, `dequeue`, `tx`,
//!   `deliver`, `ack`, `drop`;
//! * spans are coloured per tenant (`cname`), so interleavings of different
//!   tenants' packets through a shared queue are visible at a glance.
//!
//! Timestamps are simulated time. The format's `ts`/`dur` unit is the
//! microsecond; nanosecond precision is kept by emitting three fractional
//! digits. All numbers are formatted from integers, so the export is
//! byte-deterministic — the determinism suite relies on this.

use crate::trace::{TraceData, TraceKind, TraceRecord, NO_LABEL};
use qvisor_sim::json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Chrome's predefined reserved color names, cycled per tenant.
const TENANT_COLORS: [&str; 8] = [
    "thread_state_running",
    "rail_response",
    "rail_animation",
    "rail_load",
    "cq_build_passed",
    "cq_build_failed",
    "thread_state_iowait",
    "rail_idle",
];

fn tenant_color(tenant: u16) -> &'static str {
    TENANT_COLORS[tenant as usize % TENANT_COLORS.len()]
}

/// Nanoseconds rendered as a microsecond JSON number with three fractional
/// digits (`12345` → `12.345`). Integer formatting keeps bytes stable.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// JSON string literal (with quotes), escaped.
fn js(s: &str) -> String {
    Value::from(s).to_compact()
}

/// Async-span identity of a record's packet: `f<flow>.<seq>`, `.a` for ACKs.
fn span_id(r: &TraceRecord) -> String {
    if r.ack {
        format!("f{}.{}.a", r.flow, r.seq)
    } else {
        format!("f{}.{}", r.flow, r.seq)
    }
}

/// The common `pid`/`tid`/`ts` prefix of a track event.
fn track_prefix(tid: u32, t_ns: u64) -> String {
    format!("\"pid\":1,\"tid\":{},\"ts\":{}", tid + 1, micros(t_ns))
}

/// Convert a trace snapshot into Chrome trace-event JSON.
///
/// The result is a complete JSON object (`{"displayTimeUnit":...,
/// "traceEvents":[...]}`) ready to be written to a `.json` file and opened
/// in Perfetto. Output bytes are a pure function of the snapshot.
pub fn export_chrome(data: &TraceData) -> String {
    let mut events: Vec<String> = Vec::with_capacity(data.records.len() * 2 + 16);

    // Metadata: one process, tid 0 for packet lifecycles, one thread per
    // queue/link label.
    events.push(
        "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"qvisor\"}}"
            .to_string(),
    );
    events.push(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"packets\"}}"
            .to_string(),
    );
    for (i, label) in data.labels.iter().enumerate() {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
            i as u32 + 1,
            js(label),
        ));
    }

    // One async span per packet: begin at its first record, end at its last.
    let mut spans: BTreeMap<(u64, u64, bool), (u64, u64, u16)> = BTreeMap::new();
    for r in &data.records {
        let t = r.t.as_nanos();
        spans
            .entry((r.flow, r.seq, r.ack))
            .and_modify(|(first, last, _)| {
                *first = (*first).min(t);
                *last = (*last).max(t);
            })
            .or_insert((t, t, r.tenant));
    }
    for (&(flow, seq, ack), &(first, last, tenant)) in &spans {
        let id = if ack {
            format!("f{flow}.{seq}.a")
        } else {
            format!("f{flow}.{seq}")
        };
        let name = if ack {
            format!("T{tenant} ack f{flow}#{seq}")
        } else {
            format!("T{tenant} f{flow}#{seq}")
        };
        events.push(format!(
            "{{\"ph\":\"b\",\"cat\":\"packet\",\"id\":{},\"pid\":1,\"tid\":0,\"ts\":{},\"name\":{},\"cname\":{}}}",
            js(&id),
            micros(first),
            js(&name),
            js(tenant_color(tenant)),
        ));
        events.push(format!(
            "{{\"ph\":\"e\",\"cat\":\"packet\",\"id\":{},\"pid\":1,\"tid\":0,\"ts\":{},\"name\":{}}}",
            js(&id),
            micros(last),
            js(&name),
        ));
    }

    // Per-record events: an async instant on the packet's span for every
    // phase, plus slices/markers on the owning queue/link track.
    for r in &data.records {
        let t = r.t.as_nanos();
        let id = span_id(r);
        let mut args = String::new();
        let mut phase_name = r.kind.tag();
        match r.kind {
            TraceKind::FlowStart { size } => {
                let _ = write!(args, "\"size\":{size}");
            }
            TraceKind::RankComputed { rank } => {
                let _ = write!(args, "\"rank\":{rank}");
            }
            TraceKind::Transform { pre, post } => {
                let _ = write!(args, "\"pre\":{pre},\"post\":{post}");
            }
            TraceKind::Enqueue { rank } | TraceKind::Drop { rank } => {
                let _ = write!(args, "\"rank\":{rank}");
            }
            TraceKind::Dequeue { rank, wait_ns } => {
                let _ = write!(args, "\"rank\":{rank},\"wait_ns\":{wait_ns}");
            }
            TraceKind::Inversion {
                rank,
                loser_flow,
                loser_seq,
                loser_rank,
            } => {
                let _ = write!(
                    args,
                    "\"rank\":{rank},\"loser\":\"f{loser_flow}#{loser_seq}\",\"loser_rank\":{loser_rank}"
                );
            }
            TraceKind::TxStart {
                bytes,
                tx_ns,
                prop_ns,
            } => {
                let _ = write!(
                    args,
                    "\"bytes\":{bytes},\"tx_ns\":{tx_ns},\"prop_ns\":{prop_ns}"
                );
            }
            TraceKind::Deliver { latency_ns } | TraceKind::Ack { latency_ns } => {
                let _ = write!(args, "\"latency_ns\":{latency_ns}");
            }
        }
        if r.ack && matches!(r.kind, TraceKind::Deliver { .. }) {
            phase_name = "ack";
        }
        events.push(format!(
            "{{\"ph\":\"n\",\"cat\":\"packet\",\"id\":{},\"pid\":1,\"tid\":0,\"ts\":{},\"name\":{},\"args\":{{{}}}}}",
            js(&id),
            micros(t),
            js(phase_name),
            args,
        ));

        if r.label == NO_LABEL {
            continue;
        }
        let who = if r.ack {
            format!("ack f{}#{}", r.flow, r.seq)
        } else {
            format!("f{}#{}", r.flow, r.seq)
        };
        match r.kind {
            TraceKind::Dequeue { rank, wait_ns } => {
                // The residency slice: enqueue time to dequeue time.
                events.push(format!(
                    "{{\"ph\":\"X\",\"cat\":\"queue\",{},\"dur\":{},\"name\":{},\"cname\":{},\"args\":{{\"tenant\":{},\"rank\":{rank}}}}}",
                    track_prefix(r.label, t.saturating_sub(wait_ns)),
                    micros(wait_ns),
                    js(&format!("queued {who}")),
                    js(tenant_color(r.tenant)),
                    r.tenant,
                ));
            }
            TraceKind::TxStart { bytes, tx_ns, .. } => {
                events.push(format!(
                    "{{\"ph\":\"X\",\"cat\":\"link\",{},\"dur\":{},\"name\":{},\"cname\":{},\"args\":{{\"tenant\":{},\"bytes\":{bytes}}}}}",
                    track_prefix(r.label, t),
                    micros(tx_ns),
                    js(&format!("tx {who}")),
                    js(tenant_color(r.tenant)),
                    r.tenant,
                ));
            }
            TraceKind::Drop { rank } => {
                events.push(format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"queue\",{},\"name\":{},\"args\":{{\"tenant\":{},\"rank\":{rank}}}}}",
                    track_prefix(r.label, t),
                    js(&format!("drop {who}")),
                    r.tenant,
                ));
            }
            TraceKind::Inversion {
                loser_flow,
                loser_seq,
                loser_rank,
                rank,
            } => {
                events.push(format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"queue\",{},\"name\":{},\"args\":{{\"winner_rank\":{rank},\"loser_rank\":{loser_rank}}}}}",
                    track_prefix(r.label, t),
                    js(&format!(
                        "inversion {who} over f{loser_flow}#{loser_seq}"
                    )),
                ));
            }
            _ => {}
        }
    }

    let mut out = String::with_capacity(events.iter().map(|e| e.len() + 2).sum::<usize>() + 64);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(e);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvisor_sim::Nanos;

    fn data() -> TraceData {
        TraceData {
            records: vec![
                TraceRecord::new(Nanos(0), 1, 0, 0, TraceKind::FlowStart { size: 100 }),
                TraceRecord::new(Nanos(1), 1, 0, 0, TraceKind::Transform { pre: 9, post: 4 })
                    .at_label(0),
                TraceRecord::new(Nanos(2), 1, 0, 0, TraceKind::Enqueue { rank: 4 }).at_label(0),
                TraceRecord::new(
                    Nanos(1_500),
                    1,
                    0,
                    0,
                    TraceKind::Dequeue {
                        rank: 4,
                        wait_ns: 1_498,
                    },
                )
                .at_label(0),
                TraceRecord::new(
                    Nanos(1_500),
                    1,
                    0,
                    0,
                    TraceKind::TxStart {
                        bytes: 100,
                        tx_ns: 800,
                        prop_ns: 1_000,
                    },
                )
                .at_label(0),
                TraceRecord::new(
                    Nanos(3_300),
                    1,
                    0,
                    0,
                    TraceKind::Deliver { latency_ns: 3_300 },
                ),
                TraceRecord::new(Nanos(4_000), 1, 0, 7, TraceKind::Ack { latency_ns: 700 })
                    .as_ack(true),
            ],
            labels: vec!["n0.p0".to_string()],
            ..TraceData::default()
        }
    }

    #[test]
    fn export_is_valid_json_with_expected_phases() {
        let json = export_chrome(&data());
        let v = Value::parse(&json).expect("chrome export parses as JSON");
        let events = v
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Value::as_str))
            .collect();
        for ph in ["M", "b", "e", "n", "X"] {
            assert!(phases.contains(&ph), "missing ph {ph} in {phases:?}");
        }
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(Value::as_str))
            .collect();
        for name in ["transform", "enqueue", "dequeue", "deliver", "queued f1#0"] {
            assert!(names.contains(&name), "missing name {name} in {names:?}");
        }
        // The queue track is named after the label.
        assert!(json.contains("\"n0.p0\""), "{json}");
        // Residency slice starts at enqueue time (2ns = 0.002µs).
        assert!(json.contains("\"ts\":0.002,\"dur\":1.498"), "{json}");
    }

    #[test]
    fn export_is_byte_deterministic() {
        assert_eq!(export_chrome(&data()), export_chrome(&data()));
    }

    #[test]
    fn acks_get_their_own_async_span() {
        let json = export_chrome(&data());
        assert!(json.contains("\"f1.0.a\""), "{json}");
        assert!(json.contains("T7 ack f1#0"), "{json}");
    }

    #[test]
    fn tenants_cycle_distinct_colors() {
        assert_ne!(tenant_color(0), tenant_color(1));
        assert_eq!(tenant_color(0), tenant_color(8));
    }
}
