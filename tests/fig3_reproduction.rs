//! End-to-end reproduction of the paper's Fig. 3: specs + policy →
//! synthesizer → pre-processor → PIFO, checking every intermediate value
//! against the numbers printed in the paper.

use qvisor::core::{
    analyze, synthesize, Policy, PreProcessor, SynthConfig, TenantSpec, UnknownTenantAction,
};
use qvisor::ranking::RankRange;
use qvisor::scheduler::{Capacity, PacketQueue, PifoQueue};
use qvisor::sim::{FlowId, Nanos, NodeId, Packet, TenantId};

fn fig3_joint() -> qvisor::core::JointPolicy {
    let specs = vec![
        TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(7, 9)).with_levels(3),
        TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(1, 3)).with_levels(2),
        TenantSpec::new(TenantId(3), "T3", "FQ", RankRange::new(3, 5)).with_levels(2),
    ];
    let policy = Policy::parse("T1 >> T2 + T3").unwrap();
    let config = SynthConfig {
        first_rank: 1,
        ..SynthConfig::default()
    };
    synthesize(&specs, &policy, config).unwrap()
}

#[test]
fn fig3_transformations_match_paper() {
    let joint = fig3_joint();
    // "packets from T1 carrying ranks {7, 8, 9} have to be re-labeled with
    //  ranks {1, 2, 3}"
    let t1 = joint.chain(TenantId(1)).unwrap();
    assert_eq!([7, 8, 9].map(|r| t1.apply(r)), [1, 2, 3]);
    // "packets from T2 with ranks {1, 3} have to be transformed into {4, 6}"
    let t2 = joint.chain(TenantId(2)).unwrap();
    assert_eq!([1, 3].map(|r| t2.apply(r)), [4, 6]);
    // "and packets from T3 with ranks {3, 5}, into {5, 7}"
    let t3 = joint.chain(TenantId(3)).unwrap();
    assert_eq!([3, 5].map(|r| t3.apply(r)), [5, 7]);
}

#[test]
fn fig3_analyzer_verifies_guarantees() {
    let report = analyze(&fig3_joint());
    assert!(report.all_guarantees_hold());
    // One strict boundary, isolated: max(T1 output)=3 < min(share band)=4.
    assert_eq!(report.isolation.len(), 1);
    assert_eq!(report.isolation[0].upper_max, 3);
    assert_eq!(report.isolation[0].lower_min, 4);
}

#[test]
fn fig3_pifo_emits_joint_order() {
    // Feed the Fig. 3 arrival sequence through the pre-processor and a
    // PIFO; the output must be sorted by transformed rank 1..=7, which
    // puts all of T1 first and interleaves T2/T3.
    let joint = fig3_joint();
    let mut pre = PreProcessor::new(&joint, UnknownTenantAction::BestEffort);
    let mut pifo = PifoQueue::new(Capacity::UNBOUNDED);
    let arrivals: [(u16, u64); 7] = [(3, 5), (2, 3), (1, 9), (3, 3), (2, 1), (1, 8), (1, 7)];
    for (i, (tenant, rank)) in arrivals.into_iter().enumerate() {
        let mut p = Packet::data(
            FlowId(i as u64),
            TenantId(tenant),
            i as u64,
            1500,
            NodeId(0),
            NodeId(1),
            rank,
            Nanos::ZERO,
        );
        pre.process(&mut p);
        pifo.enqueue(p, Nanos::ZERO);
    }
    let order: Vec<(u16, u64)> = std::iter::from_fn(|| pifo.dequeue(Nanos::ZERO))
        .map(|p| (p.tenant.0, p.txf_rank))
        .collect();
    assert_eq!(
        order,
        vec![(1, 1), (1, 2), (1, 3), (2, 4), (3, 5), (2, 6), (3, 7)],
        "the paper's output sequence: T1 first, then T2/T3 interleaved"
    );
}

#[test]
fn fig3_zero_based_variant_shifts_uniformly() {
    // Same example with the default first_rank = 0: identical structure,
    // every output one lower.
    let specs = vec![
        TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(7, 9)).with_levels(3),
        TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(1, 3)).with_levels(2),
        TenantSpec::new(TenantId(3), "T3", "FQ", RankRange::new(3, 5)).with_levels(2),
    ];
    let policy = Policy::parse("T1 >> T2 + T3").unwrap();
    let joint = synthesize(&specs, &policy, SynthConfig::default()).unwrap();
    assert_eq!(joint.chain(TenantId(1)).unwrap().apply(7), 0);
    assert_eq!(joint.chain(TenantId(3)).unwrap().apply(5), 6);
}
