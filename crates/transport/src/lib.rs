#![deny(missing_docs)]

//! # qvisor-transport — end-host transports
//!
//! The sending/receiving state machines that drive traffic through the
//! simulated network: a pFabric-style [`ReliableSender`] (fixed window,
//! per-packet ACKs and timers, no congestion window adaptation — the
//! rank-aware switches do the congestion control), a [`CbrSource`] for the
//! paper's deadline-constrained tenant, and the [`FctCollector`] producing
//! the Fig. 4 statistics.

pub mod cbr;
pub mod fct;
pub mod flow;
pub mod reliable;

pub use cbr::{CbrSource, DatagramSink};
pub use fct::{FctCollector, FlowRecord, SizeBucket};
pub use flow::{CbrDef, FlowDef};
pub use reliable::{AckOutcome, ReliableReceiver, ReliableSender, SendReq};
