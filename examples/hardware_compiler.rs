//! Compiling a policy onto constrained hardware (§5 "compiling scheduling
//! policies into hardware").
//!
//! When the switch cannot express the requested policy faithfully, QVISOR
//! does not just fail: it proposes a *partial specification* that fits,
//! and reports exactly which concessions were made and which guarantees
//! still hold. This example compiles the same three-tenant policy onto
//! progressively weaker switches.
//!
//! Run with: `cargo run --example hardware_compiler`

use qvisor::core::{compile, HardwareModel, Policy, SynthConfig, TenantSpec};
use qvisor::ranking::RankRange;
use qvisor::scheduler::Capacity;
use qvisor::sim::TenantId;

fn main() {
    let specs = vec![
        TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(0, 1 << 20))
            .with_levels(4_096),
        TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(0, 10_000)).with_levels(1_024),
        TenantSpec::new(TenantId(3), "T3", "FQ", RankRange::new(0, 1_000)).with_levels(64),
    ];
    let policy = Policy::parse("T1 >> T2 >> T3").unwrap();
    println!("requested policy : {policy}");
    println!("requested levels : T1={}, T2={}, T3={}\n", 4_096, 1_024, 64);

    let targets = [
        (
            "big PIFO-ish switch (24-bit ranks, 32 queues)",
            32usize,
            (1u64 << 24) - 1,
        ),
        (
            "commodity switch (16-bit ranks, 8 queues)",
            8,
            u16::MAX as u64,
        ),
        ("legacy switch (8-bit ranks, 4 queues)", 4, 255),
        ("toy switch (4-bit ranks, 2 queues)", 2, 15),
    ];

    for (name, queues, max_rank) in targets {
        let hw = HardwareModel {
            queues,
            max_rank,
            buffer: Capacity::packets(64, 1_500),
        };
        println!("=== {name} ===");
        match compile(&specs, &policy, SynthConfig::default(), &hw) {
            Ok(out) => {
                if out.concessions.is_empty() {
                    println!("  compiled faithfully");
                } else {
                    println!("  compiled with {} concessions:", out.concessions.len());
                    for c in &out.concessions {
                        println!("    - {c}");
                    }
                }
                println!("  deployed policy : {}", out.policy);
                println!("  rank span       : {}", out.joint.output_span());
                println!(
                    "  guarantees      : {}",
                    if out.guarantees.all_guarantees_hold() {
                        "all hold"
                    } else {
                        "violations present"
                    }
                );
            }
            Err(e) => println!("  cannot compile: {e}"),
        }
        println!();
    }
}
