//! The `qvisor` command-line tool: synthesize, analyze, and compile
//! multi-tenant scheduling policies from JSON configuration files.
//!
//! See `qvisor::cli::USAGE` (printed on any usage error) and the README.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match qvisor::cli::run(&args) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
