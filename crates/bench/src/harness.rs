//! Shared experiment scaffolding: the micro-benchmark timer used by
//! `benches/`, plus the run/measure/snapshot loop the `ablation_*`
//! binaries previously copy-pasted.
//!
//! The benches in `benches/` use `harness = false`, so each one is a plain
//! `main()` that calls [`bench`]/[`bench_batched`]. The harness calibrates
//! an iteration count, then reports the best-of-batches ns/iter (the
//! minimum is the most repeatable point estimate for micro-benchmarks,
//! since noise is strictly additive).
//!
//! The ablation side ([`run_one`], [`run_labelled`], [`ablation_scenario`])
//! runs declarative scenarios through the netsim [`Engine`], wiring a
//! fresh telemetry registry per point and writing `PREFIX-<tag>.jsonl`
//! snapshots when requested.

use crate::snapshot;
use qvisor_netsim::scenario::{
    ArrivalSpec, Engine, QvisorSpec, ScenarioSpec, SchedulerSpec, ScopeSpec, SimSpec, SizeDistSpec,
    TenantDecl, TimeRef, TopologySpec, WorkloadSpec,
};
use qvisor_netsim::SimReport;
use qvisor_ranking::RankFnSpec;
use qvisor_sim::{Nanos, TenantId};
use qvisor_telemetry::Telemetry;
use qvisor_topology::LeafSpineConfig;
use qvisor_transport::SizeBucket;
use std::hint::black_box;
use std::time::Instant;

/// Parse `--telemetry PREFIX` from argv; exits with a usage error on a
/// missing value or an unknown flag (shared by the ablation binaries).
pub fn telemetry_prefix() -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut prefix = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--telemetry" => {
                prefix = Some(args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("missing value after --telemetry");
                    std::process::exit(2);
                }));
                i += 1;
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    prefix
}

/// Run one scenario through a fresh engine. When `prefix` is set, the run
/// is instrumented and a `PREFIX-<tag>.jsonl` telemetry snapshot is
/// written; failures report the offending path and exit instead of
/// panicking.
pub fn run_one(spec: &ScenarioSpec, prefix: Option<&str>, tag: &str) -> SimReport {
    let telemetry = match prefix {
        Some(_) => Telemetry::enabled(),
        None => Telemetry::disabled(),
    };
    let report = Engine::new()
        .with_telemetry(&telemetry)
        .run(spec)
        .unwrap_or_else(|e| {
            eprintln!("scenario '{}': {e}", spec.name);
            std::process::exit(1);
        });
    if let Some(prefix) = prefix {
        match snapshot::write_snapshot(&telemetry, prefix, tag) {
            Ok(path) => eprintln!("  wrote {path}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    report
}

/// Run each labelled scenario via [`run_one`], handing every report to
/// `row` — the warm-up/run/measure loop shared by the ablation sweeps.
pub fn run_labelled(
    points: &[(String, ScenarioSpec)],
    prefix: Option<&str>,
    mut row: impl FnMut(&str, &SimReport),
) {
    for (tag, spec) in points {
        let report = run_one(spec, prefix, tag);
        row(tag, &report);
    }
}

/// Flow-size scale denominator shared by the backend and quantization
/// ablations (sizes divided by 10, as in the recorded EXPERIMENTS.md runs).
pub const ABLATION_SCALE: u64 = 10;

/// The paper-fabric workload shared by the backend and quantization
/// ablations: 800 pFabric flows at load 0.6 plus 50 EDF CBR streams under
/// `pFabric >> EDF`, with the backend, seed, and pFabric quantization
/// levels as the swept knobs.
pub fn ablation_scenario(
    name: String,
    seed: u64,
    scheduler: SchedulerSpec,
    pf_levels: u64,
) -> ScenarioSpec {
    let fabric = LeafSpineConfig::paper();
    let max_rank = 100_000_000 / ABLATION_SCALE / 1_000;
    ScenarioSpec {
        name,
        seed,
        topology: TopologySpec::LeafSpine {
            leaves: fabric.leaves,
            spines: fabric.spines,
            hosts_per_leaf: fabric.hosts_per_leaf,
            access_bps: fabric.access_bps,
            fabric_bps: fabric.fabric_bps,
            access_delay_ns: fabric.access_delay.as_nanos(),
            fabric_delay_ns: fabric.fabric_delay.as_nanos(),
        },
        sim: SimSpec {
            horizon: TimeRef::At(Nanos::from_secs(3).as_nanos()),
            ..SimSpec::default()
        },
        scheduler,
        host_scheduler: None,
        qvisor: Some(QvisorSpec {
            tenants: vec![
                TenantDecl {
                    id: 1,
                    name: "pFabric".to_string(),
                    algorithm: "pFabric".to_string(),
                    rank_min: 0,
                    rank_max: max_rank,
                    levels: Some(pf_levels),
                },
                TenantDecl {
                    id: 2,
                    name: "EDF".to_string(),
                    algorithm: "EDF".to_string(),
                    rank_min: 0,
                    rank_max: 10,
                    levels: Some(8),
                },
            ],
            policy: "pFabric >> EDF".to_string(),
            unknown_drop: false,
            scope: ScopeSpec::Everywhere,
            monitor: None,
            synth: None,
        }),
        rank_fns: vec![
            (
                1,
                RankFnSpec::PFabric {
                    unit_bytes: 1_000,
                    max_rank,
                },
            ),
            (
                2,
                RankFnSpec::Edf {
                    unit_ns: Nanos::from_micros(60).as_nanos(),
                    max_rank: 10,
                },
            ),
        ],
        workloads: vec![
            WorkloadSpec::Poisson {
                tenant: 1,
                flows: 800,
                sizes: SizeDistSpec::DataMining {
                    scale_den: ABLATION_SCALE,
                },
                arrival: ArrivalSpec::Load(0.6),
                rng_stream: 1,
            },
            WorkloadSpec::CbrFleet {
                tenant: 2,
                streams: 50,
                rate_bps: 500_000_000,
                pkt_size: 1_500,
                start_ns: 0,
                stop: TimeRef::AfterLastArrival(Nanos::from_millis(10).as_nanos()),
                deadline_offset_ns: Nanos::from_micros(300).as_nanos(),
                rng_stream: 2,
            },
        ],
        alerts: Vec::new(),
    }
}

/// Mean FCTs (ms) of `tenant`'s small and large flows under the ablation
/// scale (`NaN` when a bucket is empty, as the table printers expect).
pub fn scaled_fcts(report: &SimReport, tenant: TenantId, scale: u64) -> (f64, f64) {
    let small = SizeBucket {
        lo: 1,
        hi: 100_000 / scale,
    };
    let large = SizeBucket {
        lo: 1_000_000 / scale,
        hi: u64::MAX,
    };
    (
        report
            .fct
            .mean_fct_ms(Some(tenant), small)
            .unwrap_or(f64::NAN),
        report
            .fct
            .mean_fct_ms(Some(tenant), large)
            .unwrap_or(f64::NAN),
    )
}

/// Print the header once at the top of a bench binary.
pub fn print_header(title: &str) {
    println!("{title}");
    println!("{:<44} {:>14}  iters/batch", "benchmark", "ns/iter");
}

fn report(name: &str, iters: u64, ns_per_iter: f64) {
    println!("{name:<44} {ns_per_iter:>14.1}  {iters}");
}

/// Benchmark `f`, timing everything it does.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Calibrate: double the batch size until one batch takes >= 20 ms.
    let mut iters = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        if t0.elapsed().as_millis() >= 20 || iters >= 1 << 24 {
            break;
        }
        iters *= 2;
    }
    // Measure: best of a few batches (fewer when a batch is slow).
    let batches = if iters == 1 { 3 } else { 5 };
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    report(name, iters, best);
}

/// Benchmark `routine` on fresh input from `setup`; setup time is excluded.
pub fn bench_batched<S, T>(
    name: &str,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S) -> T,
) {
    let timed = |n: u64, setup: &mut dyn FnMut() -> S, routine: &mut dyn FnMut(S) -> T| {
        let mut total_ns = 0u128;
        for _ in 0..n {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total_ns += t0.elapsed().as_nanos();
        }
        total_ns
    };
    let mut iters = 1u64;
    loop {
        let ns = timed(iters, &mut setup, &mut routine);
        if ns >= 20_000_000 || iters >= 1 << 24 {
            break;
        }
        iters *= 2;
    }
    let batches = if iters == 1 { 3 } else { 5 };
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let ns = timed(iters, &mut setup, &mut routine);
        best = best.min(ns as f64 / iters as f64);
    }
    report(name, iters, best);
}
