//! The scenario engine: materialize a [`ScenarioSpec`] into a configured
//! [`Simulation`] and run it to a [`SimReport`].
//!
//! Materialization is fully deterministic: every workload draws from its
//! own derived RNG stream (`seed_from(seed).derive(rng_stream)`), flows
//! are added in declaration order (so flow ids and ECMP hashing are
//! stable), and rank functions are registered before any traffic.

use super::spec::{
    ArrivalSpec, QvisorSpec, ScenarioSpec, SchedulerSpec, ScopeSpec, SizeDistSpec, TimeRef,
    ViolationSpec, WorkloadSpec,
};
use super::ScenarioError;
use crate::config::{PreprocScope, QvisorSetup, SchedulerKind, SimConfig};
use crate::report::SimReport;
use crate::sim::Simulation;
use qvisor_core::{
    synthesize, verify, MonitorConfig, Policy, QvisorError, SpecPaths, SynthConfig, TenantSpec,
    UnknownTenantAction, VerifyReport, ViolationAction,
};
use qvisor_ranking::RankRange;
use qvisor_scheduler::Capacity;
use qvisor_sim::{json::Value, EventCore, Nanos, NodeId, SimRng, TenantId};
use qvisor_telemetry::{SloMonitor, Telemetry, Tracer};
use qvisor_topology::{Dumbbell, FatTree, LeafSpine, LeafSpineConfig, Topology};
use qvisor_transport::SizeBucket;
use qvisor_workloads::{
    arrival_rate_for_load, cbr_tenant, EmpiricalCdf, FixedSize, FlowSizeDist, GeneratedCbr,
    GeneratedFlow, PoissonFlowGen, UniformSize,
};

/// Executes [`ScenarioSpec`]s. Holds the observability handles and event
/// core wired into every simulation it builds; the default engine runs
/// with both disabled.
#[derive(Clone, Default)]
pub struct Engine {
    telemetry: Telemetry,
    tracer: Tracer,
    monitor: SloMonitor,
    event_core: EventCore,
    deny_warnings: bool,
}

impl Engine {
    /// An engine with telemetry and tracing disabled.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Wire a telemetry registry into built simulations.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Engine {
        self.telemetry = telemetry.clone();
        self
    }

    /// Wire a packet flight recorder into built simulations.
    pub fn with_tracer(mut self, tracer: &Tracer) -> Engine {
        self.tracer = tracer.clone();
        self
    }

    /// Wire a streaming SLO monitor into built simulations. Build it from
    /// the scenario's declared rules ([`ScenarioSpec::alert_rules`]), keep
    /// a clone, and export after the run.
    pub fn with_monitor(mut self, monitor: &SloMonitor) -> Engine {
        self.monitor = monitor.clone();
        self
    }

    /// Override the event-queue core (oracle runs).
    pub fn with_event_core(mut self, core: EventCore) -> Engine {
        self.event_core = core;
        self
    }

    /// Treat verifier warnings as build failures (errors always fail).
    pub fn with_deny_warnings(mut self, deny: bool) -> Engine {
        self.deny_warnings = deny;
        self
    }

    /// Statically verify `spec`'s QVISOR policy without building or
    /// running anything: synthesize the joint policy and prove (or refute,
    /// with witnesses) overflow-freedom, order preservation, and
    /// cross-tenant isolation. Scenarios without a `qvisor` block verify
    /// trivially.
    pub fn check(&self, spec: &ScenarioSpec) -> Result<VerifyReport, ScenarioError> {
        self.check_with_paths(spec, &SpecPaths::scenario())
    }

    /// Like [`Engine::check`], but roots diagnostic spans at `paths` —
    /// e.g. `SpecPaths::with_prefix("base.qvisor.")` when the scenario is
    /// the `base` of a sweep document.
    pub fn check_with_paths(
        &self,
        spec: &ScenarioSpec,
        paths: &SpecPaths,
    ) -> Result<VerifyReport, ScenarioError> {
        spec.validate()?;
        verify_qvisor(spec, paths)
    }

    /// Materialize `spec` into a ready-to-run simulation: topology built,
    /// QVISOR synthesized and deployed, rank functions registered, and all
    /// traffic loaded.
    pub fn build(&self, spec: &ScenarioSpec) -> Result<Simulation, ScenarioError> {
        spec.validate()?;
        // Mandatory pre-deployment gate: refuse to materialize a policy
        // the verifier refutes (warn-by-default; `with_deny_warnings`
        // promotes warnings to failures).
        let report = verify_qvisor(spec, &SpecPaths::scenario())?;
        if report.gate_fails(self.deny_warnings) {
            return Err(ScenarioError::Verify(Box::new(report)));
        }
        let prep = prepare(spec)?;
        let cfg = sim_config(
            spec,
            prep.last_arrival,
            self.event_core,
            self.telemetry.clone(),
            self.tracer.clone(),
            self.monitor.clone(),
        );
        let mut sim = Simulation::new(prep.topology.clone(), cfg).map_err(ScenarioError::Build)?;
        populate(spec, &prep, &mut sim)?;
        Ok(sim)
    }

    /// Build and run `spec` to completion. `sim.shards > 1` dispatches to
    /// the sharded parallel engine; the report is byte-identical either
    /// way (the sequential engine is the differential oracle).
    pub fn run(&self, spec: &ScenarioSpec) -> Result<SimReport, ScenarioError> {
        if spec.sim.shards > 1 {
            return self.run_sharded(spec);
        }
        Ok(self.build(spec)?.run())
    }

    /// The sharded path: every worker thread materializes its own complete
    /// simulation from `Sync` ingredients (the spec and the pre-generated
    /// workloads), because the engine's observability handles are
    /// thread-local `Rc` graphs. Worker telemetry snapshots merge into
    /// this engine's registry; the flight recorder and streaming SLO
    /// monitor have no shard merge, so they must be disabled.
    fn run_sharded(&self, spec: &ScenarioSpec) -> Result<SimReport, ScenarioError> {
        spec.validate()?;
        let report = verify_qvisor(spec, &SpecPaths::scenario())?;
        if report.gate_fails(self.deny_warnings) {
            return Err(ScenarioError::Verify(Box::new(report)));
        }
        if self.tracer.is_enabled() {
            return Err(super::field_err(
                "sim.shards",
                "packet tracing requires a single shard \
                 (the flight recorder is not shard-merged)",
            ));
        }
        if self.monitor.is_enabled() {
            return Err(super::field_err(
                "sim.shards",
                "the streaming SLO monitor requires a single shard \
                 (its sliding windows span all shards' traffic)",
            ));
        }
        let prep = prepare(spec)?;
        let event_core = self.event_core;
        let journal_capacity = self.telemetry.journal_capacity();
        let build = || {
            let telemetry = match journal_capacity {
                Some(capacity) => Telemetry::with_journal_capacity(capacity),
                None => Telemetry::disabled(),
            };
            Simulation::new(
                prep.topology.clone(),
                sim_config(
                    spec,
                    prep.last_arrival,
                    event_core,
                    telemetry,
                    Tracer::disabled(),
                    SloMonitor::disabled(),
                ),
            )
        };
        let add_traffic = |sim: &mut Simulation| {
            populate(spec, &prep, sim).map_err(|e| QvisorError::Deployment(e.to_string()))
        };
        crate::sim::run_sharded(
            &prep.topology,
            spec.sim.shards,
            &self.telemetry,
            build,
            add_traffic,
        )
        .map_err(ScenarioError::Build)
    }
}

/// Everything deterministic and thread-shareable that materialization
/// needs: the topology, the canonical host list, and the pre-generated
/// random workloads (each drawn on its own derived RNG stream, so the
/// result is a pure function of the spec).
struct Prepared {
    topology: Topology,
    hosts: Vec<NodeId>,
    generated: Vec<Option<Vec<GeneratedFlow>>>,
    fleets: Vec<Option<Vec<GeneratedCbr>>>,
    last_arrival: Nanos,
}

fn resolve(t: TimeRef, last_arrival: Nanos) -> Nanos {
    match t {
        TimeRef::At(ns) => Nanos(ns),
        TimeRef::AfterLastArrival(ns) => last_arrival + Nanos(ns),
    }
}

fn prepare(spec: &ScenarioSpec) -> Result<Prepared, ScenarioError> {
    let (topology, hosts) = build_topology(spec);

    // Phase 1: generate Poisson flows (each workload on its own RNG
    // stream) so the last reliable arrival is known before resolving
    // relative time references.
    let mut generated: Vec<Option<Vec<GeneratedFlow>>> = Vec::new();
    for w in &spec.workloads {
        generated.push(match w {
            WorkloadSpec::Poisson {
                tenant,
                flows,
                sizes,
                arrival,
                rng_stream,
            } => {
                let dist = build_sizes(*sizes);
                let rate = match arrival {
                    ArrivalSpec::Load(load) => arrival_rate_for_load(
                        *load,
                        hosts.len(),
                        spec.topology.access_bps(),
                        dist.mean_bytes(),
                    ),
                    ArrivalSpec::RateFlowsPerSec(r) => *r,
                };
                let gen = PoissonFlowGen {
                    tenant: TenantId(*tenant),
                    hosts: &hosts,
                    sizes: &*dist,
                    rate_flows_per_sec: rate,
                };
                let mut rng = SimRng::seed_from(spec.seed).derive(*rng_stream);
                Some(gen.generate(*flows, &mut rng))
            }
            _ => None,
        });
    }
    let mut last_arrival = Nanos::ZERO;
    for (w, flows) in spec.workloads.iter().zip(&generated) {
        if let Some(flows) = flows {
            for f in flows {
                last_arrival = last_arrival.max(f.start);
            }
        }
        if let WorkloadSpec::Flows { list } = w {
            for f in list {
                last_arrival = last_arrival.max(Nanos(f.start_ns));
            }
        }
    }

    // Phase 2: generate CBR fleets (stop times may be relative).
    let mut fleets: Vec<Option<Vec<GeneratedCbr>>> = Vec::new();
    for w in &spec.workloads {
        fleets.push(match w {
            WorkloadSpec::CbrFleet {
                tenant,
                streams,
                rate_bps,
                pkt_size,
                start_ns,
                stop,
                deadline_offset_ns,
                rng_stream,
            } => {
                let stop = resolve(*stop, last_arrival);
                if stop <= Nanos(*start_ns) {
                    return Err(super::field_err(
                        "workloads.cbr_fleet.stop",
                        "resolves to a time before start_ns",
                    ));
                }
                let mut rng = SimRng::seed_from(spec.seed).derive(*rng_stream);
                Some(cbr_tenant(
                    TenantId(*tenant),
                    &hosts,
                    *streams,
                    *rate_bps,
                    *pkt_size,
                    Nanos(*start_ns),
                    stop,
                    Nanos(*deadline_offset_ns),
                    &mut rng,
                ))
            }
            _ => None,
        });
    }

    Ok(Prepared {
        topology,
        hosts,
        generated,
        fleets,
        last_arrival,
    })
}

/// Assemble a [`SimConfig`] for `spec`. Everything except the
/// observability handles is a pure function of the spec, so the sharded
/// engine can call this once per worker with a fresh thread-local
/// telemetry registry and get otherwise-identical configurations.
fn sim_config(
    spec: &ScenarioSpec,
    last_arrival: Nanos,
    event_core: EventCore,
    telemetry: Telemetry,
    tracer: Tracer,
    monitor: SloMonitor,
) -> SimConfig {
    SimConfig {
        seed: spec.seed,
        mss: spec.sim.mss,
        header_bytes: spec.sim.header_bytes,
        ack_bytes: spec.sim.ack_bytes,
        cwnd: spec.sim.cwnd,
        rto: Nanos(spec.sim.rto_ns),
        buffer: Capacity::bytes(spec.sim.buffer_bytes),
        scheduler: build_scheduler(&spec.scheduler),
        host_scheduler: spec.host_scheduler.as_ref().map(build_scheduler),
        horizon: resolve(spec.sim.horizon, last_arrival),
        random_loss: spec.sim.random_loss,
        sample_interval: spec.sim.sample_interval_ns.map(Nanos),
        adaptation_interval: spec.sim.adaptation_interval_ns.map(Nanos),
        qvisor: spec.qvisor.as_ref().map(build_qvisor),
        event_core,
        telemetry,
        tracer,
        monitor,
    }
}

/// Register rank functions and load every workload into `sim`, in
/// declaration order (flow ids and ECMP hashing are stable). Shard-safe:
/// the simulation's ownership mask decides which flows each shard
/// actually schedules, so every worker loads the full traffic matrix
/// identically.
fn populate(
    spec: &ScenarioSpec,
    prep: &Prepared,
    sim: &mut Simulation,
) -> Result<(), ScenarioError> {
    for (tenant, rank_fn) in &spec.rank_fns {
        sim.register_rank_fn(TenantId(*tenant), rank_fn.build());
    }
    for (i, w) in spec.workloads.iter().enumerate() {
        match w {
            WorkloadSpec::Poisson { .. } => {
                for f in prep.generated[i].as_ref().expect("generated in phase 1") {
                    sim.add_generated(f);
                }
            }
            WorkloadSpec::CbrFleet { .. } => {
                for c in prep.fleets[i].as_ref().expect("generated in phase 2") {
                    sim.add_generated_cbr(c);
                }
            }
            WorkloadSpec::Flows { list } => {
                for f in list {
                    sim.add_flow(crate::NewFlow {
                        tenant: TenantId(f.tenant),
                        src: prep.hosts[f.src_host],
                        dst: prep.hosts[f.dst_host],
                        size: f.size,
                        start: Nanos(f.start_ns),
                        deadline: f.deadline_ns.map(Nanos),
                        weight: f.weight,
                    });
                }
            }
            WorkloadSpec::Cbr { list } => {
                for c in list {
                    sim.add_cbr(crate::NewCbr {
                        tenant: TenantId(c.tenant),
                        src: prep.hosts[c.src_host],
                        dst: prep.hosts[c.dst_host],
                        rate_bps: c.rate_bps,
                        pkt_size: c.pkt_size,
                        start: Nanos(c.start_ns),
                        stop: resolve(c.stop, prep.last_arrival),
                        deadline_offset: Nanos(c.deadline_offset_ns),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Synthesize the scenario's QVISOR policy and run the static verifier
/// over it. Diagnostic spans point into the scenario document
/// (`qvisor.tenants.N`, `qvisor.policy`, ...).
fn verify_qvisor(spec: &ScenarioSpec, paths: &SpecPaths) -> Result<VerifyReport, ScenarioError> {
    let Some(q) = spec.qvisor.as_ref() else {
        return Ok(VerifyReport::empty());
    };
    let setup = build_qvisor(q);
    let policy = Policy::parse(&setup.policy).map_err(ScenarioError::Build)?;
    let joint = synthesize(&setup.specs, &policy, setup.synth).map_err(ScenarioError::Build)?;
    Ok(verify(&joint, paths))
}

fn build_topology(spec: &ScenarioSpec) -> (Topology, Vec<NodeId>) {
    match spec.topology {
        super::TopologySpec::LeafSpine {
            leaves,
            spines,
            hosts_per_leaf,
            access_bps,
            fabric_bps,
            access_delay_ns,
            fabric_delay_ns,
        } => {
            let ls = LeafSpine::build(&LeafSpineConfig {
                leaves,
                spines,
                hosts_per_leaf,
                access_bps,
                fabric_bps,
                access_delay: Nanos(access_delay_ns),
                fabric_delay: Nanos(fabric_delay_ns),
            });
            let hosts = ls.all_hosts();
            (ls.topology, hosts)
        }
        super::TopologySpec::Dumbbell {
            pairs,
            edge_bps,
            bottleneck_bps,
            delay_ns,
        } => {
            let d = Dumbbell::build(pairs, edge_bps, bottleneck_bps, Nanos(delay_ns));
            let hosts: Vec<NodeId> = d
                .senders
                .iter()
                .chain(d.receivers.iter())
                .copied()
                .collect();
            (d.topology, hosts)
        }
        super::TopologySpec::FatTree {
            arity,
            rate_bps,
            delay_ns,
        } => {
            let ft = FatTree::build(arity, rate_bps, Nanos(delay_ns));
            let hosts = ft.hosts.clone();
            (ft.topology, hosts)
        }
    }
}

fn build_sizes(spec: SizeDistSpec) -> Box<dyn FlowSizeDist> {
    match spec {
        SizeDistSpec::DataMining { scale_den } => {
            Box::new(EmpiricalCdf::data_mining().scaled(1, scale_den))
        }
        SizeDistSpec::WebSearch { scale_den } => {
            Box::new(EmpiricalCdf::web_search().scaled(1, scale_den))
        }
        SizeDistSpec::Fixed { bytes } => Box::new(FixedSize(bytes)),
        SizeDistSpec::Uniform { min, max } => Box::new(UniformSize::new(min, max)),
    }
}

fn build_scheduler(spec: &SchedulerSpec) -> SchedulerKind {
    match *spec {
        SchedulerSpec::Fifo => SchedulerKind::Fifo,
        SchedulerSpec::Pifo => SchedulerKind::Pifo,
        SchedulerSpec::SpPifo { queues } => SchedulerKind::SpPifo { queues },
        SchedulerSpec::StrictStatic {
            queues,
            span_min,
            span_max,
        } => SchedulerKind::StrictStatic {
            queues,
            span: RankRange::new(span_min, span_max),
        },
        SchedulerSpec::Aifo { window, burst } => SchedulerKind::Aifo { window, burst },
        SchedulerSpec::FairTree { tenants } => SchedulerKind::FairTree { tenants },
    }
}

fn build_qvisor(spec: &QvisorSpec) -> QvisorSetup {
    QvisorSetup {
        specs: spec
            .tenants
            .iter()
            .map(|t| TenantSpec {
                id: TenantId(t.id),
                name: t.name.clone(),
                algorithm: t.algorithm.clone(),
                range: RankRange::new(t.rank_min, t.rank_max),
                levels: t.levels,
            })
            .collect(),
        policy: spec.policy.clone(),
        synth: spec
            .synth
            .map(|s| SynthConfig {
                default_levels: s.default_levels,
                first_rank: s.first_rank,
                pref_bias_divisor: s.pref_bias_divisor,
            })
            .unwrap_or_default(),
        unknown: if spec.unknown_drop {
            UnknownTenantAction::Drop
        } else {
            UnknownTenantAction::BestEffort
        },
        scope: match spec.scope {
            ScopeSpec::Everywhere => PreprocScope::Everywhere,
            ScopeSpec::SwitchesOnly => PreprocScope::SwitchesOnly,
            ScopeSpec::FirstHopOnly => PreprocScope::FirstHopOnly,
        },
        monitor: spec.monitor.map(|m| MonitorConfig {
            violation_action: match m.violation_action {
                ViolationSpec::Clamp => ViolationAction::Clamp,
                ViolationSpec::AlarmOnly => ViolationAction::AlarmOnly,
                ViolationSpec::Drop => ViolationAction::Drop,
            },
            idle_after: Nanos(m.idle_after_ns),
            drift_ratio: m.drift_ratio,
        }),
    }
}

/// Render a [`SimReport`] as a deterministic JSON value: identical runs
/// produce byte-identical output (maps are emitted in sorted key order,
/// no wall-clock data).
pub fn report_json(report: &SimReport) -> Value {
    let tenants: Vec<Value> = report
        .tenants
        .iter()
        .map(|(id, t)| {
            Value::object()
                .set("tenant", id.0)
                .set("sent_pkts", t.sent_pkts)
                .set("delivered_pkts", t.delivered_pkts)
                .set("delivered_bytes", t.delivered_bytes)
                .set("dropped_pkts", t.dropped_pkts)
                .set("deadline_met", t.deadline_met)
                .set("deadline_missed", t.deadline_missed)
        })
        .collect();
    let node_drops: Vec<Value> = report
        .node_drops
        .iter()
        .map(|(node, drops)| Value::from(vec![Value::from(node.0), Value::from(*drops)]))
        .collect();
    let samples: Vec<Value> = report
        .samples
        .iter()
        .map(|(t, tenant, bytes)| {
            Value::from(vec![
                Value::from(*t),
                Value::from(tenant.0),
                Value::from(*bytes),
            ])
        })
        .collect();
    let fct = Value::object()
        .set("count", report.fct.count(None) as u64)
        .set(
            "mean_ms_all",
            report
                .fct
                .mean_fct_ms(None, SizeBucket::ALL)
                .map(Value::from)
                .unwrap_or(Value::Null),
        )
        .set(
            "mean_ms_small",
            report
                .fct
                .mean_fct_ms(None, SizeBucket::SMALL)
                .map(Value::from)
                .unwrap_or(Value::Null),
        )
        .set(
            "mean_ms_large",
            report
                .fct
                .mean_fct_ms(None, SizeBucket::LARGE)
                .map(Value::from)
                .unwrap_or(Value::Null),
        );
    Value::object()
        .set("events", report.events)
        .set("end_time_ns", report.end_time.as_nanos())
        .set("incomplete_flows", report.incomplete_flows)
        .set("preproc_dropped", report.preproc_dropped)
        .set("monitor_violations", report.monitor_violations)
        .set("random_losses", report.random_losses)
        .set("reconfigurations", report.reconfigurations)
        .set("fct", fct)
        .set("tenants", Value::from(tenants))
        .set("node_drops", Value::from(node_drops))
        .set("samples", Value::from(samples))
}
