//! Declarative scenarios: a fully serializable description of a
//! simulation run and the engine that materializes it.
//!
//! The layer has four parts:
//!
//! - [`ScenarioSpec`] ([`spec`]): topology parameters, simulation knobs,
//!   per-port schedulers, the QVISOR setup (tenants, policy, monitor,
//!   synthesizer), rank functions, and workloads — everything needed to
//!   reproduce a run from a single JSON file plus a seed.
//! - the codec ([`codec`]): a strict JSON round-trip
//!   (`to_json`/`from_json`) that rejects unknown fields and
//!   out-of-range values with named-field errors.
//! - [`Engine`] ([`engine`]): materializes a spec into a configured
//!   [`crate::Simulation`] and runs it to a [`crate::SimReport`],
//!   optionally wiring telemetry, tracing, and an alternate event-queue
//!   backend.
//! - [`SweepSpec`]/[`run_sweep`] ([`sweep`]): fans a grid of patched
//!   scenarios across OS threads with deterministic, order-independent
//!   merging.

mod codec;
mod engine;
mod spec;
mod sweep;

pub use engine::{report_json, Engine};
pub use spec::{
    AlertSpec, ArrivalSpec, CbrDecl, FlowDecl, MonitorSpec, QvisorSpec, ScenarioSpec,
    SchedulerSpec, ScopeSpec, SimSpec, SizeDistSpec, SynthSpec, TenantDecl, TimeRef, TopologySpec,
    ViolationSpec, WorkloadSpec,
};
pub use sweep::{
    merged_value, run_sweep, sanitize_export, SweepAxis, SweepPoint, SweepPointResult, SweepSpec,
};

/// Error raised while parsing, validating, or materializing a scenario.
#[derive(Debug)]
pub enum ScenarioError {
    /// A named field is missing, unknown, or out of range.
    Field {
        /// Dotted path to the offending field (e.g. `sim.mss`).
        path: String,
        /// What is wrong with it.
        msg: String,
    },
    /// The input is not syntactically valid JSON.
    Json(qvisor_sim::json::ParseError),
    /// Materializing the scenario into a simulation failed.
    Build(qvisor_core::QvisorError),
    /// The static policy verifier refuted a guarantee (or found warnings
    /// under `--deny-warnings`). Carries the full report.
    Verify(Box<qvisor_core::VerifyReport>),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Field { path, msg } => write!(f, "scenario field `{path}`: {msg}"),
            ScenarioError::Json(e) => write!(f, "scenario JSON: {e}"),
            ScenarioError::Build(e) => write!(f, "scenario build: {e}"),
            ScenarioError::Verify(report) => {
                write!(f, "scenario verification failed\n{}", report.render_text())
            }
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Field { .. } => None,
            ScenarioError::Json(e) => Some(e),
            ScenarioError::Build(e) => Some(e),
            ScenarioError::Verify(_) => None,
        }
    }
}

/// Shorthand for a named-field error.
pub(crate) fn field_err(path: impl Into<String>, msg: impl Into<String>) -> ScenarioError {
    ScenarioError::Field {
        path: path.into(),
        msg: msg.into(),
    }
}
