//! Deterministic parallel scenario sweeps.
//!
//! A sweep file is `{"base": <scenario>, "axes": [{"path": ..., "values":
//! [...]}, ...]}`: the cross product of all axis values (rightmost axis
//! fastest) is applied to the base scenario as JSON patches, each point is
//! run on its own engine (one per OS thread, per-scenario seeded RNG), and
//! results are merged in grid order — so the output is byte-identical at
//! any `--jobs` level.

use super::{field_err, Engine, ScenarioError, ScenarioSpec};
use qvisor_sim::json::Value;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// One sweep dimension: a dotted path into the scenario JSON and the
/// values it takes. Path segments index objects by key and arrays by
/// number, e.g. `workloads.0.poisson.arrival.load`.
#[derive(Clone, Debug)]
pub struct SweepAxis {
    /// Dotted path to patch.
    pub path: String,
    /// Values the axis takes, in sweep order.
    pub values: Vec<Value>,
}

/// A parsed sweep description.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// The raw base scenario JSON (kept raw so patches can target any
    /// field before strict parsing).
    pub base: Value,
    /// Sweep dimensions; the cross product defines the grid.
    pub axes: Vec<SweepAxis>,
}

/// One fully resolved grid point.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Grid index (deterministic merge order).
    pub index: usize,
    /// `path=value` pairs, comma-joined.
    pub label: String,
    /// The axis assignments as an object.
    pub overrides: Value,
    /// The patched, validated scenario.
    pub spec: ScenarioSpec,
}

/// The result of one executed grid point.
#[derive(Clone, Debug)]
pub struct SweepPointResult {
    /// Grid index.
    pub index: usize,
    /// `path=value` pairs, comma-joined.
    pub label: String,
    /// The axis assignments as an object.
    pub overrides: Value,
    /// Deterministic report JSON (see [`super::report_json`]).
    pub report: Value,
    /// Sanitized telemetry export, when requested (wall-clock lines
    /// stripped so snapshots are byte-identical across runs).
    pub telemetry_jsonl: Option<String>,
}

impl SweepSpec {
    /// Parse a sweep document.
    pub fn from_value(v: &Value) -> Result<SweepSpec, ScenarioError> {
        let obj = v
            .as_object()
            .ok_or_else(|| field_err("sweep", "must be an object"))?;
        for (key, _) in obj {
            if key != "base" && key != "axes" {
                return Err(field_err(
                    format!("sweep.{key}"),
                    "unknown field (allowed: base, axes)",
                ));
            }
        }
        let base = v
            .get("base")
            .ok_or_else(|| field_err("sweep.base", "missing required field"))?
            .clone();
        // The base must itself be a valid scenario.
        ScenarioSpec::from_value(&base)?;
        let axes_v = v
            .get("axes")
            .and_then(|a| a.as_array())
            .ok_or_else(|| field_err("sweep.axes", "must be an array"))?;
        let mut axes = Vec::with_capacity(axes_v.len());
        for (i, axis) in axes_v.iter().enumerate() {
            let ap = format!("sweep.axes.{i}");
            if let Some(entries) = axis.as_object() {
                for (key, _) in entries {
                    if key != "path" && key != "values" {
                        return Err(field_err(
                            format!("{ap}.{key}"),
                            "unknown field (allowed: path, values)",
                        ));
                    }
                }
            }
            let path = axis
                .get("path")
                .and_then(|p| p.as_str())
                .ok_or_else(|| field_err(format!("{ap}.path"), "must be a string"))?
                .to_string();
            let values = axis
                .get("values")
                .and_then(|vs| vs.as_array())
                .ok_or_else(|| field_err(format!("{ap}.values"), "must be an array"))?
                .to_vec();
            if values.is_empty() {
                return Err(field_err(format!("{ap}.values"), "must not be empty"));
            }
            axes.push(SweepAxis { path, values });
        }
        Ok(SweepSpec { base, axes })
    }

    /// Parse a sweep document from JSON text.
    pub fn from_json(text: &str) -> Result<SweepSpec, ScenarioError> {
        SweepSpec::from_value(&Value::parse(text).map_err(ScenarioError::Json)?)
    }

    /// Resolve the full grid: every combination patched into the base and
    /// strictly parsed. The rightmost axis varies fastest.
    pub fn points(&self) -> Result<Vec<SweepPoint>, ScenarioError> {
        let total: usize = self.axes.iter().map(|a| a.values.len()).product();
        let mut points = Vec::with_capacity(total);
        for index in 0..total {
            // Decompose `index` into per-axis positions, rightmost fastest.
            let mut rem = index;
            let mut picks = vec![0usize; self.axes.len()];
            for (a, axis) in self.axes.iter().enumerate().rev() {
                picks[a] = rem % axis.values.len();
                rem /= axis.values.len();
            }
            let mut patched = self.base.clone();
            let mut overrides = Value::object();
            let mut label_parts = Vec::with_capacity(self.axes.len());
            for (axis, &pick) in self.axes.iter().zip(&picks) {
                let value = &axis.values[pick];
                patch(&mut patched, &axis.path, value)?;
                overrides = overrides.set(axis.path.as_str(), value.clone());
                label_parts.push(format!("{}={}", axis.path, value.to_compact()));
            }
            let spec = ScenarioSpec::from_value(&patched)?;
            points.push(SweepPoint {
                index,
                label: label_parts.join(","),
                overrides,
                spec,
            });
        }
        Ok(points)
    }
}

/// Apply `value` at dotted `path` inside `v`. Intermediate segments must
/// exist; the final segment may insert a new object key.
fn patch(v: &mut Value, path: &str, value: &Value) -> Result<(), ScenarioError> {
    let segs: Vec<&str> = path.split('.').collect();
    patch_in(v, &segs, path, value)
}

fn patch_in(v: &mut Value, segs: &[&str], full: &str, value: &Value) -> Result<(), ScenarioError> {
    if segs.is_empty() {
        *v = value.clone();
        return Ok(());
    }
    let seg = segs[0];
    match v {
        Value::Object(entries) => {
            if let Some(slot) = entries
                .iter_mut()
                .find(|(k, _)| k == seg)
                .map(|(_, slot)| slot)
            {
                patch_in(slot, &segs[1..], full, value)
            } else if segs.len() == 1 {
                entries.push((seg.to_string(), value.clone()));
                Ok(())
            } else {
                Err(field_err(full, format!("no key '{seg}' along the path")))
            }
        }
        Value::Array(items) => {
            let idx: usize = seg
                .parse()
                .map_err(|_| field_err(full, format!("'{seg}' is not an array index")))?;
            match items.get_mut(idx) {
                Some(slot) => patch_in(slot, &segs[1..], full, value),
                None => Err(field_err(
                    full,
                    format!("index {idx} out of bounds ({} elements)", items.len()),
                )),
            }
        }
        _ => Err(field_err(
            full,
            format!("segment '{seg}' indexes into a non-container"),
        )),
    }
}

/// Strip wall-clock-dependent lines from a telemetry JSONL export:
/// `profile` lines and the `runtime_synth_ns` histogram measure host time
/// and differ run-to-run; everything else is simulation-time only.
pub fn sanitize_export(jsonl: &str) -> String {
    let mut out = String::with_capacity(jsonl.len());
    for line in jsonl.lines() {
        if line.starts_with("{\"type\":\"profile\"")
            || line.contains("\"name\":\"runtime_synth_ns\"")
        {
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Run every grid point across `jobs` OS threads (one engine per thread,
/// per-scenario seeded RNG) and merge results in grid order. Output is
/// byte-identical at any `jobs` level. With `with_telemetry`, each point
/// runs under its own enabled registry and returns a sanitized JSONL
/// snapshot. Every point passes through the static policy verifier
/// before running; `deny_warnings` promotes its warnings to failures.
pub fn run_sweep(
    spec: &SweepSpec,
    jobs: usize,
    with_telemetry: bool,
    deny_warnings: bool,
) -> Result<Vec<SweepPointResult>, ScenarioError> {
    let points = spec.points()?;
    if points.is_empty() {
        return Ok(Vec::new());
    }
    let jobs = jobs.max(1).min(points.len());
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<SweepPointResult, ScenarioError>)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let points = &points;
            let next = &next;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= points.len() {
                    break;
                }
                let point = &points[idx];
                let result = run_point(point, with_telemetry, deny_warnings);
                if tx.send((idx, result)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<Result<SweepPointResult, ScenarioError>>> =
        (0..points.len()).map(|_| None).collect();
    for (idx, result) in rx {
        slots[idx] = Some(result);
    }
    let mut results = Vec::with_capacity(points.len());
    for slot in slots {
        results.push(slot.expect("every grid point reports exactly once")?);
    }
    Ok(results)
}

fn run_point(
    point: &SweepPoint,
    with_telemetry: bool,
    deny_warnings: bool,
) -> Result<SweepPointResult, ScenarioError> {
    // Telemetry registries are thread-local by construction (`Rc`-based
    // handles), so each point builds its own inside the worker.
    let (engine, telemetry) = if with_telemetry {
        let telemetry = qvisor_telemetry::Telemetry::enabled();
        (Engine::new().with_telemetry(&telemetry), Some(telemetry))
    } else {
        (Engine::new(), None)
    };
    let engine = engine.with_deny_warnings(deny_warnings);
    let report = engine.run(&point.spec)?;
    Ok(SweepPointResult {
        index: point.index,
        label: point.label.clone(),
        overrides: point.overrides.clone(),
        report: super::report_json(&report),
        telemetry_jsonl: telemetry.map(|t| sanitize_export(&t.export_jsonl())),
    })
}

/// Merge point results into the sweep's deterministic output document.
pub fn merged_value(spec: &SweepSpec, results: &[SweepPointResult]) -> Value {
    let name = spec
        .base
        .get("name")
        .and_then(|n| n.as_str())
        .unwrap_or("")
        .to_string();
    let points: Vec<Value> = results
        .iter()
        .map(|r| {
            Value::object()
                .set("index", r.index)
                .set("label", r.label.as_str())
                .set("overrides", r.overrides.clone())
                .set("result", r.report.clone())
        })
        .collect();
    Value::object()
        .set("scenario", name)
        .set("points", Value::from(points))
}
