//! SP-PIFO: adaptive PIFO approximation on strict-priority queues
//! (Gran Alcoz et al., NSDI '20).
//!
//! Each queue keeps a *bound* — the rank of the last packet it admitted.
//! Arrivals scan queues from highest priority to lowest and take the first
//! queue whose bound is `<=` their rank ("push-up" then sets that queue's
//! bound to the rank). When a packet ranks *below* even the top queue's
//! bound, an inversion just happened; the "push-down" reaction subtracts the
//! magnitude of the inversion from every bound, re-opening the top queues
//! for high-priority traffic.

use crate::strict::QueueMapper;
use qvisor_sim::Rank;

/// The SP-PIFO rank→queue adaptation strategy.
///
/// Use with [`crate::strict::StrictPriorityBank`]:
///
/// ```
/// use qvisor_scheduler::{Capacity, SpPifoMapper, StrictPriorityBank};
/// let bank = StrictPriorityBank::new(SpPifoMapper::new(8), Capacity::packets(64, 1500));
/// ```
#[derive(Clone, Debug)]
pub struct SpPifoMapper {
    /// `bounds[i]` = rank of the last packet mapped to queue `i`.
    bounds: Vec<Rank>,
    /// Number of push-down events (inversion reactions), for metrics.
    pushdowns: u64,
}

impl SpPifoMapper {
    /// An SP-PIFO strategy over `queues` strict-priority queues, bounds
    /// initialised to zero.
    ///
    /// # Panics
    /// Panics if `queues` is zero.
    pub fn new(queues: usize) -> SpPifoMapper {
        assert!(queues > 0, "need at least one queue");
        SpPifoMapper {
            bounds: vec![0; queues],
            pushdowns: 0,
        }
    }

    /// Current queue bounds (highest priority first).
    pub fn bounds(&self) -> &[Rank] {
        &self.bounds
    }

    /// How many push-down reactions have occurred.
    pub fn pushdowns(&self) -> u64 {
        self.pushdowns
    }
}

impl QueueMapper for SpPifoMapper {
    fn queue_count(&self) -> usize {
        self.bounds.len()
    }

    fn kind(&self) -> &'static str {
        "sp_pifo"
    }

    fn map(&mut self, rank: Rank) -> usize {
        // Canonical SP-PIFO (NSDI '20, Algorithm 1): scan from the
        // lowest-priority queue; the first queue whose bound is <= rank
        // admits the packet and push-up raises its bound to that rank.
        // Bounds stay non-decreasing by construction.
        let n = self.bounds.len();
        for i in (1..n).rev() {
            if rank >= self.bounds[i] {
                self.bounds[i] = rank;
                return i;
            }
        }
        // Top queue. If the rank undercuts even this bound, an inversion
        // occurred: push-down every bound by the inversion magnitude.
        if rank < self.bounds[0] {
            let delta = self.bounds[0] - rank;
            for b in &mut self.bounds {
                *b = b.saturating_sub(delta);
            }
            self.pushdowns += 1;
        }
        self.bounds[0] = rank;
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{Capacity, PacketQueue};
    use crate::strict::StrictPriorityBank;
    use qvisor_sim::{FlowId, Nanos, NodeId, Packet, SimRng, TenantId};

    fn pkt(seq: u64, rank: Rank) -> Packet {
        let mut p = Packet::data(
            FlowId(1),
            TenantId(0),
            seq,
            100,
            NodeId(0),
            NodeId(1),
            rank,
            Nanos::ZERO,
        );
        p.txf_rank = rank;
        p
    }

    #[test]
    fn monotone_ranks_spread_across_queues() {
        let mut m = SpPifoMapper::new(4);
        // Increasing ranks walk down to ever-lower-priority queues once
        // bounds adapt; the first packet lands in the deepest queue with
        // bound 0 (all bounds start at 0 → deepest wins).
        let q0 = m.map(10);
        assert_eq!(q0, 3);
        assert_eq!(m.bounds()[3], 10);
        // A smaller rank now avoids queue 3 (bound 10) and lands higher.
        let q1 = m.map(5);
        assert!(q1 < 3);
    }

    #[test]
    fn pushdown_on_inversion() {
        let mut m = SpPifoMapper::new(2);
        m.map(10); // bounds -> [0, 10], packet in queue 1
        m.map(4); // queue 0, bounds [4, 10]
        assert_eq!(m.bounds(), &[4, 10]);
        // rank 1 < bounds[0]=4: push-down by 3 -> [1, 7], mapped to queue 0.
        let q = m.map(1);
        assert_eq!(q, 0);
        assert_eq!(m.bounds(), &[1, 7]);
        assert_eq!(m.pushdowns(), 1);
    }

    #[test]
    fn bounds_stay_sorted() {
        let mut m = SpPifoMapper::new(4);
        let mut rng = SimRng::seed_from(99);
        for _ in 0..10_000 {
            let _ = m.map(rng.below(1000));
            let mut sorted = m.bounds().to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, m.bounds(), "bounds must remain non-decreasing");
        }
    }

    #[test]
    fn approximates_pifo_order_better_than_single_fifo() {
        // Count rank inversions at dequeue: SP-PIFO should produce far fewer
        // than FIFO order on random ranks.
        let mut rng = SimRng::seed_from(7);
        let ranks: Vec<Rank> = (0..512).map(|_| rng.below(100)).collect();

        let inversions = |order: &[Rank]| -> u64 {
            let mut inv = 0;
            for i in 0..order.len() {
                for j in i + 1..order.len() {
                    if order[j] < order[i] {
                        inv += 1;
                    }
                }
            }
            inv
        };

        // FIFO order = arrival order.
        let fifo_inv = inversions(&ranks);

        // SP-PIFO with 8 queues. Bulk enqueue-then-drain is SP-PIFO's worst
        // case (no steady-state adaptation), yet it should still clearly
        // beat a single FIFO.
        let mut bank = StrictPriorityBank::new(SpPifoMapper::new(8), Capacity::UNBOUNDED);
        for (i, &r) in ranks.iter().enumerate() {
            bank.enqueue(pkt(i as u64, r), Nanos::ZERO);
        }
        let sp_order: Vec<Rank> = std::iter::from_fn(|| bank.dequeue(Nanos::ZERO))
            .map(|p| p.txf_rank)
            .collect();
        assert_eq!(sp_order.len(), ranks.len());
        let sp_inv = inversions(&sp_order);
        assert!(
            sp_inv * 2 < fifo_inv,
            "SP-PIFO inversions ({sp_inv}) should be well below FIFO ({fifo_inv})"
        );
    }

    #[test]
    fn single_queue_degenerates_to_fifo() {
        let mut m = SpPifoMapper::new(1);
        for r in [5, 1, 9, 3] {
            assert_eq!(m.map(r), 0);
        }
    }
}
