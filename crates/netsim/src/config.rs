//! Simulation configuration.

use qvisor_core::{MonitorConfig, SynthConfig, TenantSpec, UnknownTenantAction};
use qvisor_ranking::RankRange;
use qvisor_scheduler::Capacity;
use qvisor_sim::{EventCore, Nanos};
use qvisor_telemetry::{SloMonitor, Telemetry, Tracer};

/// Which scheduler model runs at every output port.
#[derive(Clone, Copy, Debug)]
pub enum SchedulerKind {
    /// Rank-oblivious FIFO (tail drop).
    Fifo,
    /// Ideal PIFO (priority drop).
    Pifo,
    /// Strict-priority FIFO bank with a static rank→queue split.
    ///
    /// Without QVISOR, ranks are split uniformly over `span`; with QVISOR,
    /// the banded allocator honours the joint policy's strict levels.
    StrictStatic {
        /// Hardware queues available.
        queues: usize,
        /// Rank span used when no joint policy is deployed.
        span: RankRange,
    },
    /// Strict-priority FIFO bank with SP-PIFO adaptive mapping.
    SpPifo {
        /// Hardware queues available.
        queues: usize,
    },
    /// AIFO: single FIFO with rank-aware admission.
    Aifo {
        /// Rank window size.
        window: usize,
        /// Burst tolerance in `[0, 1)`.
        burst: f64,
    },
    /// An idealized hierarchical scheduler (PIFO tree): the root
    /// fair-shares across tenants by per-tenant virtual time, each leaf
    /// orders its tenant's packets by rank. This is what dedicated
    /// multi-tenant scheduling *hardware* would do — the upper bound the
    /// paper's flat-PIFO virtualization approximates (§5 expressivity).
    FairTree {
        /// Number of tenant classes (tenant id modulo this picks the leaf).
        tenants: u16,
    },
}

/// Where QVISOR's pre-processor runs (§5 "cross-device virtualization"):
/// rank rewriting can happen at every egress, only inside the fabric, or
/// only at the first hop — trading deployment surface against how early
/// the joint policy takes effect.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PreprocScope {
    /// Every egress port, hosts included (the default; transformations are
    /// idempotent, so re-applying per hop is safe).
    #[default]
    Everywhere,
    /// Only switch egress ports: host NICs forward raw tenant ranks, as
    /// when QVISOR is deployed purely in-network.
    SwitchesOnly,
    /// Only the first hop (the sending host): a pure end-host deployment,
    /// as in NIC-based multi-tenant scheduling (Loom/Eiffel).
    FirstHopOnly,
}

/// QVISOR deployment inside the simulation: the hypervisor's two inputs
/// plus runtime options.
#[derive(Clone, Debug)]
pub struct QvisorSetup {
    /// Tenant specifications.
    pub specs: Vec<TenantSpec>,
    /// Operator policy string (e.g. `"T1 >> T2 + T3"`).
    pub policy: String,
    /// Synthesizer knobs.
    pub synth: SynthConfig,
    /// Unknown-tenant handling at the pre-processor.
    pub unknown: UnknownTenantAction,
    /// Where in the network the pre-processor runs.
    pub scope: PreprocScope,
    /// Enable the runtime monitor with this configuration.
    pub monitor: Option<MonitorConfig>,
}

impl QvisorSetup {
    /// A setup with default synthesis, best-effort unknown handling, and no
    /// monitor.
    pub fn new(specs: Vec<TenantSpec>, policy: impl Into<String>) -> QvisorSetup {
        QvisorSetup {
            specs,
            policy: policy.into(),
            synth: SynthConfig::default(),
            unknown: UnknownTenantAction::BestEffort,
            scope: PreprocScope::default(),
            monitor: None,
        }
    }
}

/// Full simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Root seed; every random decision derives from it.
    pub seed: u64,
    /// Maximum application payload per packet.
    pub mss: u32,
    /// Header overhead added to every data packet, bytes.
    pub header_bytes: u32,
    /// ACK size on the wire, bytes.
    pub ack_bytes: u32,
    /// Fixed sender window, packets.
    pub cwnd: u32,
    /// Retransmission timeout.
    pub rto: Nanos,
    /// Per-port buffer capacity.
    pub buffer: Capacity,
    /// Scheduler at switch output ports.
    pub scheduler: SchedulerKind,
    /// Scheduler at host NIC ports; `None` uses `scheduler` everywhere.
    /// Real deployments often pair scheduled switches with plain FIFO
    /// NICs — this knob measures how much the host queue matters.
    pub host_scheduler: Option<SchedulerKind>,
    /// Hard stop time.
    pub horizon: Nanos,
    /// Uniform random packet loss applied at link arrival (fault
    /// injection; 0.0 = none).
    pub random_loss: f64,
    /// Sample per-tenant delivered bytes every interval into the report's
    /// time series (for timeline plots like the paper's Fig. 2).
    pub sample_interval: Option<Nanos>,
    /// Run QVISOR's event-driven controller every interval: the runtime
    /// monitor's view is fed to the adapter, which re-synthesizes the
    /// joint policy on tenant churn or rank drift and hot-reloads the
    /// pre-processor (§5 "optimizing configurations at runtime").
    /// Requires `qvisor` with a monitor configured.
    pub adaptation_interval: Option<Nanos>,
    /// QVISOR deployment, if any.
    pub qvisor: Option<QvisorSetup>,
    /// Data structure backing the simulator's event queue. The default
    /// (timing wheel) and the binary-heap oracle are observationally
    /// identical — the differential suite proves byte-identical reports —
    /// so this knob exists for oracle runs and perf comparisons only.
    pub event_core: EventCore,
    /// Telemetry sink. Cloning a [`Telemetry`] handle shares its registry,
    /// so keep one and export after [`crate::Simulation::run`]. The default
    /// (disabled) handle records nothing and adds no per-packet work; an
    /// enabled handle never influences simulation behaviour — reports are
    /// byte-identical either way.
    pub telemetry: Telemetry,
    /// Per-packet lifecycle flight recorder. Like `telemetry`, the default
    /// (disabled) handle records nothing; an enabled one captures flow
    /// start / rank / transform / queue / link / delivery spans for sampled
    /// flows without ever influencing simulation behaviour. Keep a clone
    /// and snapshot after [`crate::Simulation::run`].
    pub tracer: Tracer,
    /// Streaming SLO monitor. Like `telemetry`, the default (disabled)
    /// handle records nothing; an enabled one is fed per-tenant dequeues,
    /// deliveries, drops, and flow completions, evaluating its alert rules
    /// on sliding sim-time windows without ever influencing simulation
    /// behaviour — reports and telemetry exports are byte-identical either
    /// way. Keep a clone and export after [`crate::Simulation::run`].
    pub monitor: SloMonitor,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            seed: 1,
            mss: 1_460,
            header_bytes: 40,
            ack_bytes: 40,
            cwnd: 12,
            rto: Nanos::from_micros(500),
            // pFabric-style shallow buffers: ~36 KB per port.
            buffer: Capacity::packets(24, 1_500),
            scheduler: SchedulerKind::Pifo,
            host_scheduler: None,
            horizon: Nanos::from_secs(10),
            random_loss: 0.0,
            sample_interval: None,
            adaptation_interval: None,
            qvisor: None,
            event_core: EventCore::default(),
            telemetry: Telemetry::disabled(),
            tracer: Tracer::disabled(),
            monitor: SloMonitor::disabled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SimConfig::default();
        assert_eq!(c.mss, 1_460);
        assert!(c.buffer.bytes >= 24 * 1_460);
        assert!(matches!(c.scheduler, SchedulerKind::Pifo));
        assert!(c.qvisor.is_none());
        assert_eq!(c.random_loss, 0.0);
    }
}
