//! Flow definitions shared by senders, receivers, and the simulator.

use qvisor_sim::{FlowId, Nanos, NodeId, TenantId};

/// Definition of one reliable flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowDef {
    /// Unique flow id (index into the simulator's flow table).
    pub id: FlowId,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Application bytes to transfer.
    pub size: u64,
    /// Start time.
    pub start: Nanos,
    /// Optional absolute deadline (for EDF-style tenants running reliable
    /// flows).
    pub deadline: Option<Nanos>,
    /// Fair-queueing weight.
    pub weight: u32,
}

impl FlowDef {
    /// A flow with weight 1 and no deadline.
    pub fn new(
        id: FlowId,
        tenant: TenantId,
        src: NodeId,
        dst: NodeId,
        size: u64,
        start: Nanos,
    ) -> FlowDef {
        FlowDef {
            id,
            tenant,
            src,
            dst,
            size,
            start,
            deadline: None,
            weight: 1,
        }
    }
}

/// Definition of one CBR (constant-bit-rate) datagram stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CbrDef {
    /// Unique flow id.
    pub id: FlowId,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Sending rate, bits per second.
    pub rate_bps: u64,
    /// Datagram size on the wire, bytes.
    pub pkt_size: u32,
    /// Stream start.
    pub start: Nanos,
    /// Stream stop (no emissions at or after this instant).
    pub stop: Nanos,
    /// Deadline offset: each datagram's deadline is emission time plus
    /// this.
    pub deadline_offset: Nanos,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flowdef_defaults() {
        let f = FlowDef::new(
            FlowId(1),
            TenantId(2),
            NodeId(0),
            NodeId(1),
            10_000,
            Nanos::ZERO,
        );
        assert_eq!(f.weight, 1);
        assert_eq!(f.deadline, None);
    }
}
