//! Deterministic discrete-event queue.
//!
//! Events scheduled for the same instant pop in tie-break key order; the
//! classic [`EventQueue::schedule`] path uses a monotone sequence number
//! as the key (FIFO tie-break), while [`EventQueue::schedule_keyed`]
//! accepts a caller-supplied content key so the pop order is a pure
//! function of *what* was scheduled rather than the order the scheduling
//! code happened to run in — the property the sharded engine's
//! byte-exactness oracle rests on. Duplicate keys fall back to insertion
//! order, so every queue is deterministic on its own trace regardless.
//!
//! Two interchangeable cores implement that contract:
//!
//! * [`EventCore::Wheel`] — a hierarchical timing wheel
//!   (`crate::wheel`): O(1) amortised schedule/pop, the default. This is
//!   the hot path of every packet-level experiment.
//! * [`EventCore::Heap`] — the original `BinaryHeap` on `(at, key, seq)`:
//!   O(log n), kept alive as the *differential oracle*. The test suite
//!   drives both cores with identical traces and asserts identical
//!   behaviour (see `tests/event_core_differential.rs` and TESTING.md).
//!
//! Compiling `qvisor-sim` with the `heap-core` feature flips the default
//! core to the heap, so the whole workspace test suite can be re-run
//! against the oracle without touching call sites.

use crate::time::Nanos;
use crate::wheel::TimingWheel;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which data structure backs an [`EventQueue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventCore {
    /// Hierarchical timing wheel with an overflow heap — O(1) amortised,
    /// the production core.
    Wheel,
    /// Comparison-based binary heap — the reference implementation used
    /// as the differential-testing oracle.
    Heap,
}

impl Default for EventCore {
    #[cfg(not(feature = "heap-core"))]
    fn default() -> EventCore {
        EventCore::Wheel
    }
    #[cfg(feature = "heap-core")]
    fn default() -> EventCore {
        EventCore::Heap
    }
}

struct Entry<E, K> {
    at: Nanos,
    key: K,
    seq: u64,
    event: E,
}

impl<E, K: Ord> PartialEq for Entry<E, K> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key && self.seq == other.seq
    }
}
impl<E, K: Ord> Eq for Entry<E, K> {}

impl<E, K: Ord> PartialOrd for Entry<E, K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E, K: Ord> Ord for Entry<E, K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest (then
        // lowest key, then lowest seq) first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

enum Core<E, K> {
    Wheel(TimingWheel<E, K>),
    Heap(BinaryHeap<Entry<E, K>>),
}

/// A time-ordered event queue driving a discrete-event simulation.
///
/// The queue tracks the current simulation clock: [`EventQueue::pop`]
/// advances it to the popped event's timestamp, and scheduling an event in
/// the past is a logic error that panics.
///
/// `K` is the same-instant tie-break key. The default `u64` instantiation
/// keeps the historical FIFO behaviour through [`EventQueue::schedule`];
/// other key types are driven through [`EventQueue::schedule_keyed`].
pub struct EventQueue<E, K: Ord + Copy = u64> {
    core: Core<E, K>,
    /// Insertion counter: the final tie-break among equal `(at, key)`
    /// entries, and the key itself on the classic FIFO path.
    seq: u64,
    now: Nanos,
}

impl<E, K: Ord + Copy> Default for EventQueue<E, K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E, K: Ord + Copy> EventQueue<E, K> {
    /// An empty queue with the clock at time zero, on the default core
    /// (the timing wheel, unless built with the `heap-core` feature).
    pub fn new() -> Self {
        Self::with_core(EventCore::default())
    }

    /// An empty queue on an explicitly chosen core. Both cores implement
    /// the exact same `(time, key, seq)` total order; tests exploit this
    /// to diff them against each other.
    pub fn with_core(core: EventCore) -> Self {
        EventQueue {
            core: match core {
                EventCore::Wheel => Core::Wheel(TimingWheel::new()),
                EventCore::Heap => Core::Heap(BinaryHeap::new()),
            },
            seq: 0,
            now: Nanos::ZERO,
        }
    }

    /// Which core backs this queue.
    pub fn core(&self) -> EventCore {
        match self.core {
            Core::Wheel(_) => EventCore::Wheel,
            Core::Heap(_) => EventCore::Heap,
        }
    }

    /// Current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Schedule `event` at absolute time `at` with an explicit tie-break
    /// key: same-instant events pop in ascending key order, and equal
    /// keys fall back to insertion order.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock — causality violation.
    pub fn schedule_keyed(&mut self, at: Nanos, key: K, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        match &mut self.core {
            Core::Wheel(w) => w.push(at.0, key, self.seq, event),
            Core::Heap(h) => h.push(Entry {
                at,
                key,
                seq: self.seq,
                event,
            }),
        }
        self.seq += 1;
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.pop_keyed().map(|(at, _, event)| (at, event))
    }

    /// Pop the earliest event together with its tie-break key.
    ///
    /// The sharded engine logs `(time, key)` per processed event so the
    /// coordinator can replay the sequential engine's quiescence cut —
    /// which lands *between* two same-instant events — from merged shard
    /// histories.
    pub fn pop_keyed(&mut self) -> Option<(Nanos, K, E)> {
        let (at, key, event) = match &mut self.core {
            Core::Wheel(w) => {
                let (at, key, _, event) = w.pop()?;
                (Nanos(at), key, event)
            }
            Core::Heap(h) => {
                let entry = h.pop()?;
                (entry.at, entry.key, entry.event)
            }
        };
        debug_assert!(at >= self.now);
        self.now = at;
        Some((at, key, event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Nanos> {
        match &self.core {
            Core::Wheel(w) => w.peek_time().map(Nanos),
            Core::Heap(h) => h.peek().map(|e| e.at),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.core {
            Core::Wheel(w) => w.len(),
            Core::Heap(h) => h.len(),
        }
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> EventQueue<E, u64> {
    /// Schedule `event` at absolute time `at` (FIFO among ties: the
    /// tie-break key is the queue's own monotone insertion counter).
    ///
    /// # Panics
    /// Panics if `at` is before the current clock — causality violation.
    pub fn schedule(&mut self, at: Nanos, event: E) {
        let key = self.seq;
        self.schedule_keyed(at, key, event);
    }

    /// Schedule `event` at `delay` after the current clock.
    ///
    /// The target time saturates at [`Nanos::MAX`] instead of wrapping, so
    /// "infinite" delays park the event at the end of time rather than
    /// panicking (or worse, firing in the past).
    pub fn schedule_in(&mut self, delay: Nanos, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every contract test runs on both cores.
    fn on_both(check: impl Fn(EventQueue<&'static str>)) {
        check(EventQueue::with_core(EventCore::Wheel));
        check(EventQueue::with_core(EventCore::Heap));
    }

    #[test]
    fn pops_in_time_order() {
        on_both(|mut q| {
            q.schedule(Nanos(30), "c");
            q.schedule(Nanos(10), "a");
            q.schedule(Nanos(20), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "b", "c"]);
        });
    }

    #[test]
    fn ties_break_fifo() {
        on_both(|mut q| {
            for label in ["first", "second", "third"] {
                q.schedule(Nanos(5), label);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["first", "second", "third"]);
        });
    }

    #[test]
    fn keyed_ties_break_by_key_not_insertion_order() {
        for core in [EventCore::Wheel, EventCore::Heap] {
            let mut q: EventQueue<&'static str, (u8, u32)> = EventQueue::with_core(core);
            q.schedule_keyed(Nanos(5), (2, 0), "third");
            q.schedule_keyed(Nanos(5), (0, 9), "first");
            q.schedule_keyed(Nanos(5), (1, 1), "second");
            q.schedule_keyed(Nanos(1), (9, 9), "zeroth");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["zeroth", "first", "second", "third"]);
        }
    }

    #[test]
    fn duplicate_keys_fall_back_to_insertion_order() {
        for core in [EventCore::Wheel, EventCore::Heap] {
            let mut q: EventQueue<&'static str, u8> = EventQueue::with_core(core);
            q.schedule_keyed(Nanos(5), 1, "a");
            q.schedule_keyed(Nanos(5), 1, "b");
            q.schedule_keyed(Nanos(5), 0, "z");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["z", "a", "b"]);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        on_both(|mut q| {
            q.schedule(Nanos(100), "e");
            assert_eq!(q.now(), Nanos::ZERO);
            q.pop();
            assert_eq!(q.now(), Nanos(100));
        });
    }

    #[test]
    fn schedule_in_is_relative() {
        on_both(|mut q| {
            q.schedule(Nanos(50), "a");
            q.pop();
            q.schedule_in(Nanos(25), "b");
            assert_eq!(q.peek_time(), Some(Nanos(75)));
        });
    }

    #[test]
    fn schedule_in_saturates_instead_of_wrapping() {
        // Regression: `now + delay` used to wrap around u64 and panic as
        // "scheduled in the past". A near-MAX delay must saturate to
        // Nanos::MAX and stay last in the total order.
        on_both(|mut q| {
            q.schedule(Nanos(100), "first");
            q.pop();
            q.schedule_in(Nanos::MAX, "horizon");
            q.schedule_in(Nanos(1), "soon");
            assert_eq!(q.peek_time(), Some(Nanos(101)));
            assert_eq!(q.pop(), Some((Nanos(101), "soon")));
            assert_eq!(q.pop(), Some((Nanos::MAX, "horizon")));
        });
    }

    #[test]
    fn events_at_nanos_max_keep_fifo_order() {
        on_both(|mut q| {
            q.schedule_in(Nanos::MAX, "a");
            q.schedule(Nanos::MAX, "b");
            assert_eq!(q.pop(), Some((Nanos::MAX, "a")));
            assert_eq!(q.pop(), Some((Nanos::MAX, "b")));
        });
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(10), ());
        q.pop();
        q.schedule(Nanos(5), ());
    }

    #[test]
    fn len_and_empty() {
        on_both(|mut q| {
            assert!(q.is_empty());
            q.schedule(Nanos(1), "e");
            assert_eq!(q.len(), 1);
            q.pop();
            assert!(q.is_empty());
        });
    }

    #[test]
    fn same_time_interleaved_push_pop_stays_fifo() {
        on_both(|mut q| {
            q.schedule(Nanos(10), "1");
            q.schedule(Nanos(10), "2");
            assert_eq!(q.pop().unwrap().1, "1");
            q.schedule(Nanos(10), "3");
            assert_eq!(q.pop().unwrap().1, "2");
            assert_eq!(q.pop().unwrap().1, "3");
        });
    }

    #[test]
    fn default_core_honours_feature_flag() {
        let q: EventQueue<u8> = EventQueue::new();
        let expect = if cfg!(feature = "heap-core") {
            EventCore::Heap
        } else {
            EventCore::Wheel
        };
        assert_eq!(q.core(), expect);
    }
}
