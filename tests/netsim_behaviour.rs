//! Deeper behavioural tests of the network simulator itself: ECMP
//! consistency, topology generality (fat-tree), host/switch scheduler
//! heterogeneity, STFQ-in-the-network, and heavy fault injection.

use qvisor::netsim::{NewFlow, SchedulerKind, SimConfig, SimReport, Simulation};
use qvisor::ranking::{PFabric, Stfq};
use qvisor::sim::{gbps, jain_fairness, Nanos, TenantId};
use qvisor::topology::{Dumbbell, FatTree, LeafSpine, LeafSpineConfig};
use qvisor::transport::SizeBucket;

const T1: TenantId = TenantId(1);

#[test]
fn fat_tree_carries_traffic_end_to_end() {
    let ft = FatTree::build(4, gbps(1), Nanos::from_micros(1));
    let cfg = SimConfig {
        horizon: Nanos::from_millis(200),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(ft.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(T1, Box::new(PFabric::default_datacenter()));
    // Cross-pod flows exercise edge -> agg -> core -> agg -> edge paths.
    for i in 0..12u64 {
        let src = ft.hosts[(i % 4) as usize]; // pod 0
        let dst = ft.hosts[(12 + i % 4) as usize]; // pod 3
        sim.add_flow(NewFlow::new(
            T1,
            src,
            dst,
            50_000,
            Nanos::from_micros(i * 40),
        ));
    }
    let r = sim.run();
    assert_eq!(r.incomplete_flows, 0);
    assert_eq!(r.tenant(T1).delivered_bytes, 12 * 50_000);
}

#[test]
fn hotspot_accounting_points_at_the_bottleneck() {
    // Two senders overload a half-rate core link: drops must concentrate
    // at the left switch (the bottleneck's transmitting node).
    let d = Dumbbell::build(2, gbps(1), 500_000_000, Nanos::from_micros(1));
    let cfg = SimConfig {
        horizon: Nanos::from_millis(200),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(T1, Box::new(PFabric::default_datacenter()));
    for i in 0..2 {
        sim.add_flow(NewFlow::new(
            T1,
            d.senders[i],
            d.receivers[i],
            1_000_000,
            Nanos::ZERO,
        ));
    }
    let r = sim.run();
    let hot = r.hotspots(1);
    assert!(!hot.is_empty(), "an overloaded run must record drops");
    assert_eq!(
        hot[0].0, d.left_switch,
        "the bottleneck's transmitter should lead the hotspot list: {hot:?}"
    );
    let total: u64 = r.node_drops.values().sum();
    let payload_drops: u64 = r.tenant(T1).dropped_pkts;
    assert!(total >= payload_drops, "node drops cover payload drops");
}

#[test]
fn goodput_sampling_tracks_the_transfer() {
    // A single 10 ms-long transfer sampled every 2 ms: the series must
    // cover the active period, sum to the flow size, and stay near line
    // rate while active.
    let d = Dumbbell::build(2, gbps(1), gbps(1), Nanos::from_micros(1));
    let cfg = SimConfig {
        sample_interval: Some(Nanos::from_millis(2)),
        horizon: Nanos::from_millis(50),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
    sim.add_flow(NewFlow::new(
        T1,
        d.senders[0],
        d.receivers[0],
        1_250_000, // 10 ms at 1 Gbps
        Nanos::ZERO,
    ));
    let r = sim.run();
    let series = r.goodput_series_bps(T1, Nanos::from_millis(2));
    assert!(
        (4..=7).contains(&series.len()),
        "a ~10 ms transfer spans ~5 two-ms windows, got {}",
        series.len()
    );
    let total_bytes: u64 = r
        .samples
        .iter()
        .filter(|&&(_, t, _)| t == T1)
        .map(|&(_, _, b)| b)
        .sum();
    assert_eq!(total_bytes, 1_250_000, "windows must sum to the flow size");
    // Middle windows run near line rate.
    let peak = series.iter().map(|&(_, bps)| bps).fold(0.0f64, f64::max);
    assert!(
        peak > 0.8e9,
        "peak window should approach 1 Gbps: {peak:.2e}"
    );
}

#[test]
fn heavy_random_loss_still_converges() {
    // 20% loss: brutal, but per-packet timers with backoff must push every
    // flow through eventually.
    let d = Dumbbell::build(2, gbps(1), gbps(1), Nanos::from_micros(1));
    let cfg = SimConfig {
        random_loss: 0.2,
        horizon: Nanos::from_secs(5),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
    sim.add_flow(NewFlow::new(
        T1,
        d.senders[0],
        d.receivers[0],
        200_000,
        Nanos::ZERO,
    ));
    let r = sim.run();
    assert_eq!(r.incomplete_flows, 0);
    assert!(r.random_losses > 20, "20% of ~300+ packets should drop");
    assert_eq!(r.tenant(T1).delivered_bytes, 200_000);
}

#[test]
fn fifo_hosts_with_pifo_switches() {
    // Heterogeneous deployment: the host NIC is a dumb FIFO; only switches
    // are rank-aware. Mice still get most of the PIFO benefit because the
    // bottleneck (switch) is where scheduling matters — but lose a little
    // at the sender queue.
    let run = |host_scheduler| -> f64 {
        let d = Dumbbell::build(2, gbps(1), gbps(1), Nanos::from_micros(1));
        let cfg = SimConfig {
            seed: 5,
            scheduler: SchedulerKind::Pifo,
            host_scheduler,
            horizon: Nanos::from_millis(400),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
        sim.register_rank_fn(T1, Box::new(PFabric::new(1_000, 5_000)));
        // Elephant and mice from the SAME host: the host queue is the
        // first point of contention.
        sim.add_flow(NewFlow::new(
            T1,
            d.senders[0],
            d.receivers[0],
            5_000_000,
            Nanos::ZERO,
        ));
        for i in 0..10u64 {
            sim.add_flow(NewFlow::new(
                T1,
                d.senders[0],
                d.receivers[1],
                20_000,
                Nanos::from_millis(3 + 3 * i),
            ));
        }
        let r = sim.run();
        assert_eq!(r.incomplete_flows, 0);
        r.fct.mean_fct_ms(Some(T1), SizeBucket::SMALL).unwrap()
    };
    let all_pifo = run(None);
    let fifo_hosts = run(Some(SchedulerKind::Fifo));
    assert!(
        fifo_hosts > all_pifo,
        "a FIFO host queue must cost the mice something: \
         all-PIFO {all_pifo:.3} ms vs FIFO hosts {fifo_hosts:.3} ms"
    );
    assert!(
        fifo_hosts < all_pifo * 100.0,
        "but the scheduled switch should keep it bounded"
    );
}

#[test]
fn stfq_ranks_share_a_bottleneck_between_flows() {
    // Four same-tenant elephants from distinct hosts through one
    // bottleneck, ranked by STFQ at the (shared, per-tenant) rank
    // function: per-flow shares should come out even.
    let d = Dumbbell::build(4, gbps(1), gbps(1), Nanos::from_micros(1));
    let cfg = SimConfig {
        horizon: Nanos::from_millis(100),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(T1, Box::new(Stfq::new(u64::MAX)));
    for i in 0..4 {
        sim.add_flow(NewFlow::new(
            T1,
            d.senders[i],
            d.receivers[i],
            20_000_000,
            Nanos::ZERO,
        ));
    }
    let r = sim.run();
    // Per-flow progress: measure via FCT records? Flows don't finish; use
    // receiver byte counts through the report's tenant aggregate — equal
    // flows, same tenant, so check total is near line rate and no flow
    // starved via duplicates proxy: delivered ≈ horizon * rate.
    let total = r.tenant(T1).delivered_bytes as f64;
    let line = 1e9 / 8.0 * r.end_time.as_secs_f64();
    assert!(
        total > 0.85 * line,
        "bottleneck should be near-saturated: {total} vs {line}"
    );
}

#[test]
fn ecmp_spreads_flows_across_spines() {
    // On the paper fabric at moderate load, ECMP must spread enough that
    // no single spine bottlenecks: all flows complete in reasonable time.
    let fabric = LeafSpine::build(&LeafSpineConfig::small());
    let hosts = fabric.all_hosts();
    let cfg = SimConfig {
        horizon: Nanos::from_millis(300),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(fabric.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(T1, Box::new(PFabric::default_datacenter()));
    // Cross-rack all-to-all-ish burst.
    for i in 0..16u64 {
        sim.add_flow(NewFlow::new(
            T1,
            hosts[(i % 4) as usize],
            hosts[4 + (i % 4) as usize],
            100_000,
            Nanos::from_micros(i),
        ));
    }
    let r = sim.run();
    assert_eq!(r.incomplete_flows, 0);
}

fn goodput_fairness(r: &SimReport, tenants: &[TenantId]) -> f64 {
    let bytes: Vec<f64> = tenants
        .iter()
        .map(|&t| r.tenant(t).delivered_bytes as f64)
        .collect();
    jain_fairness(&bytes).unwrap_or(0.0)
}

#[test]
fn drr_style_fair_tree_vs_unfair_ranks() {
    // Two tenants, one claiming tiny constant-ish ranks. The FairTree
    // scheduler keeps goodput fair regardless of rank games.
    let d = Dumbbell::build(2, gbps(1), gbps(1), Nanos::from_micros(1));
    let cfg = SimConfig {
        scheduler: SchedulerKind::FairTree { tenants: 4 },
        horizon: Nanos::from_millis(80),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(TenantId(1), Box::new(PFabric::new(1_000, 100_000)));
    sim.register_rank_fn(TenantId(2), Box::new(PFabric::new(1_000_000, 10)));
    for (t, i) in [(TenantId(1), 0), (TenantId(2), 1)] {
        sim.add_flow(NewFlow::new(
            t,
            d.senders[i],
            d.receivers[i],
            20_000_000,
            Nanos::ZERO,
        ));
    }
    let r = sim.run();
    assert!(
        goodput_fairness(&r, &[TenantId(1), TenantId(2)]) > 0.99,
        "tree fairness must be rank-proof"
    );
}
