//! Hierarchical timing wheel — the O(1) event core behind
//! [`EventQueue`](crate::EventQueue).
//!
//! A bucketed priority structure in the style of Varghese & Lauck's
//! hierarchical timing wheels (and Eiffel's bucketed queues): six levels of
//! 256 slots each, where level `L` buckets timestamps by bits
//! `[8·L, 8·(L+1))`. Near events sit in ns-resolution level-0 slots;
//! far events sit in coarser wheels and *cascade* down one level at a time
//! as the clock approaches them; events beyond the 2^48 ns wheel horizon
//! wait in a fallback binary heap.
//!
//! # Invariants (see DESIGN.md "Event core")
//!
//! 1. **Total order.** Entries pop in strictly non-decreasing
//!    `(at, key, seq)` order — byte-identical to the binary-heap oracle.
//!    A level-0 slot holds exactly one timestamp, so it is kept sorted by
//!    `(key, seq)` on insert; coarse slots mix timestamps and stay
//!    unsorted because cascades re-insert them through the same sorted
//!    level-0 path before they can pop.
//! 2. **Window exclusivity.** At every level `L ≥ 1`, slots at or before
//!    the cursor `(pos >> 8L) & 255` are empty: inserts always target a
//!    strictly-future slot of the level that owns the highest differing
//!    bit of `at ^ pos`, and a slot is fully drained the moment the clock
//!    enters its window.
//! 3. **Overflow is strictly later.** Every heap entry differs from `pos`
//!    in a bit ≥ 48, so it is later than anything the wheels can hold; the
//!    heap is migrated back into the wheels whenever a pop moves `pos`
//!    across a 2^48 boundary.
//!
//! `pos` is the wheel's own cursor: it trails the popped-event clock
//! between pops and advances to window starts during cascades, so it never
//! passes the earliest pending entry.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Mask extracting a slot index from a timestamp.
const MASK: u64 = (SLOTS as u64) - 1;
/// Wheel levels; together they cover `2^(8·LEVELS)` ns ≈ 3.26 sim-days.
const LEVELS: u32 = 6;
/// Words in a level's occupancy bitmap.
const WORDS: usize = SLOTS / 64;

/// `(at, key, seq, event)` — the same key the heap oracle sorts on. `key`
/// is the caller-supplied tie-break (a monotone sequence number for the
/// classic FIFO queue, a content key for the sharded engine); `seq` is the
/// owning queue's insertion counter, the final tie-break among duplicate
/// keys.
struct Entry<E, K> {
    at: u64,
    key: K,
    seq: u64,
    event: E,
}

/// One wheel level: 256 slots plus an occupancy bitmap so the next
/// non-empty slot is found in at most four word scans.
struct Level<E, K> {
    slots: Vec<VecDeque<Entry<E, K>>>,
    occupied: [u64; WORDS],
}

impl<E, K> Level<E, K> {
    fn new() -> Level<E, K> {
        Level {
            slots: (0..SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: [0; WORDS],
        }
    }

    fn set(&mut self, i: usize) {
        self.occupied[i / 64] |= 1 << (i % 64);
    }

    fn clear(&mut self, i: usize) {
        self.occupied[i / 64] &= !(1 << (i % 64));
    }

    /// Lowest occupied slot index `>= from`, if any.
    fn first_occupied_from(&self, from: usize) -> Option<usize> {
        if from >= SLOTS {
            return None;
        }
        let mut word = from / 64;
        let mut bits = self.occupied[word] & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word == WORDS {
                return None;
            }
            bits = self.occupied[word];
        }
    }
}

/// Overflow-heap entry, ordered earliest-`(at, key, seq)`-first.
struct Far<E, K> {
    at: u64,
    key: K,
    seq: u64,
    event: E,
}

impl<E, K: Ord> PartialEq for Far<E, K> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key && self.seq == other.seq
    }
}
impl<E, K: Ord> Eq for Far<E, K> {}
impl<E, K: Ord> PartialOrd for Far<E, K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E, K: Ord> Ord for Far<E, K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The level owning the highest bit in which `at` and `pos` differ
/// (`LEVELS` or more means the overflow heap).
fn level_for(at: u64, pos: u64) -> u32 {
    let xor = at ^ pos;
    if xor == 0 {
        0
    } else {
        (63 - xor.leading_zeros()) / SLOT_BITS
    }
}

/// A hierarchical timing wheel over `(at, key, seq, event)` entries.
///
/// Pure container: the owning [`EventQueue`](crate::EventQueue) assigns
/// sequence numbers and enforces the no-scheduling-in-the-past contract.
pub(crate) struct TimingWheel<E, K> {
    levels: Vec<Level<E, K>>,
    overflow: BinaryHeap<Far<E, K>>,
    /// Cached earliest pending timestamp, kept exact by push/pop.
    next: Option<u64>,
    len: usize,
    /// Wheel cursor: trails the last popped timestamp, advances to window
    /// starts during cascades. Never passes the earliest pending entry.
    pos: u64,
}

impl<E, K: Ord + Copy> TimingWheel<E, K> {
    pub(crate) fn new() -> TimingWheel<E, K> {
        TimingWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            overflow: BinaryHeap::new(),
            next: None,
            len: 0,
            pos: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Earliest pending timestamp without popping (exact, O(1)).
    pub(crate) fn peek_time(&self) -> Option<u64> {
        self.next
    }

    /// Insert an entry. `at` must be `>= ` the last popped timestamp
    /// (enforced by the owning queue; debug-asserted here).
    pub(crate) fn push(&mut self, at: u64, key: K, seq: u64, event: E) {
        debug_assert!(at >= self.pos, "wheel push before cursor");
        if level_for(at, self.pos) >= LEVELS {
            self.overflow.push(Far {
                at,
                key,
                seq,
                event,
            });
        } else {
            self.push_to_wheel(Entry {
                at,
                key,
                seq,
                event,
            });
        }
        self.len += 1;
        self.next = Some(match self.next {
            Some(n) if n <= at => n,
            _ => at,
        });
    }

    /// Place an in-horizon entry in its slot (level by highest differing
    /// bit from the cursor). Level-0 slots hold a single timestamp and
    /// pop front-first, so they are kept sorted by `(key, seq)`; coarse
    /// slots only ever cascade back through this function, so their
    /// internal order is irrelevant.
    fn push_to_wheel(&mut self, entry: Entry<E, K>) {
        let lvl = level_for(entry.at, self.pos);
        debug_assert!(lvl < LEVELS, "entry beyond wheel horizon");
        let slot = ((entry.at >> (SLOT_BITS * lvl)) & MASK) as usize;
        let q = &mut self.levels[lvl as usize].slots[slot];
        if lvl == 0 {
            let pos = q.partition_point(|e| (e.key, e.seq) <= (entry.key, entry.seq));
            q.insert(pos, entry);
        } else {
            q.push_back(entry);
        }
        self.levels[lvl as usize].set(slot);
    }

    /// Remove and return the earliest entry.
    pub(crate) fn pop(&mut self) -> Option<(u64, K, u64, E)> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        let e = self.pop_earliest();
        self.next = self.scan_next();
        Some((e.at, e.key, e.seq, e.event))
    }

    fn pop_earliest(&mut self) -> Entry<E, K> {
        loop {
            // Near wheel: the current level-0 window holds whole
            // timestamps, one per slot, so the first occupied slot at or
            // after the cursor is the global minimum (and is sorted).
            let cur0 = (self.pos & MASK) as usize;
            if let Some(i) = self.levels[0].first_occupied_from(cur0) {
                let entry = self.levels[0].slots[i]
                    .pop_front()
                    .expect("occupancy bit was set");
                if self.levels[0].slots[i].is_empty() {
                    self.levels[0].clear(i);
                }
                self.pos = entry.at;
                return entry;
            }
            // Cascade: enter the earliest future window of the finest
            // coarser level and redistribute its slot one level down.
            let mut cascaded = false;
            for lvl in 1..LEVELS as usize {
                let shift = SLOT_BITS * lvl as u32;
                let cur = ((self.pos >> shift) & MASK) as usize;
                let Some(s) = self.levels[lvl].first_occupied_from(cur + 1) else {
                    continue;
                };
                let upper = shift + SLOT_BITS;
                self.pos = ((self.pos >> upper) << upper) | ((s as u64) << shift);
                let entries = std::mem::take(&mut self.levels[lvl].slots[s]);
                self.levels[lvl].clear(s);
                for entry in entries {
                    self.push_to_wheel(entry);
                }
                cascaded = true;
                break;
            }
            if cascaded {
                continue;
            }
            // Wheels empty: the overflow heap holds the minimum. Advance
            // the cursor to it and migrate entries that fell inside the
            // new 2^48 horizon back into the wheels, in (at, key, seq)
            // order.
            let far = self.overflow.pop().expect("len counted a pending entry");
            self.pos = far.at;
            while let Some(top) = self.overflow.peek() {
                if level_for(top.at, self.pos) >= LEVELS {
                    break;
                }
                let f = self.overflow.pop().expect("just peeked");
                self.push_to_wheel(Entry {
                    at: f.at,
                    key: f.key,
                    seq: f.seq,
                    event: f.event,
                });
            }
            return Entry {
                at: far.at,
                key: far.key,
                seq: far.seq,
                event: far.event,
            };
        }
    }

    /// Recompute the earliest pending timestamp (bitmap scans; only a
    /// coarse-slot scan when every finer level is empty).
    fn scan_next(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let cur0 = (self.pos & MASK) as usize;
        if let Some(i) = self.levels[0].first_occupied_from(cur0) {
            return Some((self.pos & !MASK) | i as u64);
        }
        for lvl in 1..LEVELS as usize {
            let shift = SLOT_BITS * lvl as u32;
            let cur = ((self.pos >> shift) & MASK) as usize;
            if let Some(s) = self.levels[lvl].first_occupied_from(cur + 1) {
                // Coarse slots mix timestamps; the earliest window's
                // minimum is the global minimum.
                return self.levels[lvl].slots[s].iter().map(|e| e.at).min();
            }
        }
        self.overflow.peek().map(|f| f.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    fn drain(w: &mut TimingWheel<u64, u64>) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| w.pop())
            .map(|(at, key, _, _)| (at, key))
            .collect()
    }

    #[test]
    fn level_for_matches_bit_layout() {
        assert_eq!(level_for(0, 0), 0);
        assert_eq!(level_for(255, 0), 0);
        assert_eq!(level_for(256, 0), 1);
        assert_eq!(level_for(1 << 16, 0), 2);
        assert_eq!(level_for(1 << 47, 0), 5);
        assert_eq!(level_for(1 << 48, 0), 6); // overflow heap
        assert_eq!(level_for(u64::MAX, 0), 7);
    }

    #[test]
    fn same_timestamp_pops_in_key_order_across_cascades() {
        // Entries at the same far timestamp inserted out of slot order
        // must survive two cascades and still pop by key.
        let mut w = TimingWheel::new();
        let t = (3 << 16) | (7 << 8) | 5; // level-2 territory from pos 0
        for key in 0..5 {
            w.push(t, key, key, key);
        }
        w.push(t + 1, 5, 5, 5);
        assert_eq!(
            drain(&mut w),
            vec![(t, 0), (t, 1), (t, 2), (t, 3), (t, 4), (t + 1, 5)]
        );
    }

    #[test]
    fn same_timestamp_out_of_order_keys_pop_sorted() {
        // Content keys arrive in arbitrary order; the level-0 slot must
        // still pop them in (key, seq) order, matching the heap oracle.
        let mut w = TimingWheel::new();
        for (key, seq) in [(9u64, 0u64), (2, 1), (7, 2), (2, 3), (0, 4)] {
            w.push(40, key, seq, key);
        }
        let order: Vec<_> = std::iter::from_fn(|| w.pop())
            .map(|(_, key, seq, _)| (key, seq))
            .collect();
        assert_eq!(order, vec![(0, 4), (2, 1), (2, 3), (7, 2), (9, 0)]);
    }

    #[test]
    fn overflow_heap_round_trips() {
        let mut w = TimingWheel::new();
        let far = 1u64 << 50;
        w.push(far + 10, 0, 0, 0);
        w.push(far, 1, 1, 1);
        w.push(5, 2, 2, 2); // near event pops first
        assert_eq!(w.peek_time(), Some(5));
        assert_eq!(w.pop(), Some((5, 2, 2, 2)));
        // Popping across the 2^48 boundary migrates the remaining far
        // entry into the wheels and keeps order.
        assert_eq!(w.pop(), Some((far, 1, 1, 1)));
        assert_eq!(w.pop(), Some((far + 10, 0, 0, 0)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_cached_peek_exact() {
        let mut w = TimingWheel::new();
        w.push(300, 0, 0, 0);
        assert_eq!(w.peek_time(), Some(300));
        w.push(260, 1, 1, 1);
        assert_eq!(w.peek_time(), Some(260));
        assert_eq!(w.pop(), Some((260, 1, 1, 1)));
        assert_eq!(w.peek_time(), Some(300));
        w.push(300, 2, 2, 2);
        assert_eq!(w.pop(), Some((300, 0, 0, 0)));
        assert_eq!(w.pop(), Some((300, 2, 2, 2)));
        assert_eq!(w.peek_time(), None);
    }

    #[test]
    fn randomized_against_reference_sort() {
        // 64 random traces over wildly different spreads, including ones
        // that exercise every level and the overflow heap.
        let mut rng = SimRng::seed_from(0x57EE1);
        for case in 0..64u64 {
            let spread = [200u64, 70_000, 1 << 20, 1 << 35, 1 << 52][(case % 5) as usize];
            let n = 1 + rng.below(400);
            let mut w = TimingWheel::new();
            let mut reference: Vec<(u64, u64, u64)> = Vec::new();
            let mut clock = 0u64;
            for seq in 0..n {
                // Bias toward collisions so tie-breaks are exercised;
                // random keys decouple key order from insertion order.
                let at = clock + rng.below(spread) / (1 + rng.below(4));
                let key = rng.below(8);
                w.push(at, key, seq, seq);
                reference.push((at, key, seq));
                if rng.below(3) == 0 {
                    if let Some((at, key, s, _)) = w.pop() {
                        clock = at;
                        let min = *reference.iter().min().unwrap();
                        assert_eq!((at, key, s), min, "case {case}");
                        reference.retain(|&e| e != min);
                    }
                }
            }
            reference.sort();
            let drained: Vec<_> = std::iter::from_fn(|| w.pop())
                .map(|(at, key, seq, _)| (at, key, seq))
                .collect();
            assert_eq!(drained, reference, "case {case}");
        }
    }
}
