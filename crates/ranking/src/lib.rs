#![deny(missing_docs)]

//! # qvisor-ranking — tenant rank functions
//!
//! Tenants program their scheduling policy by assigning each packet a rank
//! (lower = more urgent) — the PIFO programming model the paper builds on.
//! This crate provides the rank functions used in the paper and its
//! evaluation: pFabric/SRPT ([`PFabric`]), earliest-deadline-first
//! ([`Edf`]), least-slack-time-first ([`Lstf`]), start-time fair queueing
//! ([`Stfq`]), byte-count fair queueing ([`ByteCountFq`]), FIFO+ style
//! arrival-time ranking ([`ArrivalTime`]), and a constant rank
//! ([`Constant`]).
//!
//! Every rank function declares a bounded [`RankRange`]; QVISOR's
//! synthesizer relies on those declared bounds to normalize and shift
//! tenant policies (§3.2 of the paper).

pub mod ctx;
pub mod funcs;
pub mod multi;
pub mod range;
pub mod spec;

pub use ctx::RankCtx;
pub use funcs::{ArrivalTime, ByteCountFq, Constant, Edf, Lstf, PFabric, Stfq};
pub use multi::MultiObjective;
pub use range::RankRange;
pub use spec::RankFnSpec;

use qvisor_sim::Rank;

/// A tenant's rank function: maps per-packet context to a scheduling rank.
///
/// Implementations may be stateful (e.g. [`Stfq`] tracks per-flow virtual
/// finish times), hence `&mut self`.
pub trait RankFn {
    /// Rank for a packet described by `ctx`. Must lie within
    /// [`RankFn::range`] — the synthesizer's transformations assume it.
    fn rank(&mut self, ctx: &RankCtx) -> Rank;

    /// The declared (inclusive) bounds of the ranks this function emits.
    fn range(&self) -> RankRange;

    /// Short algorithm name for reports and logs.
    fn name(&self) -> &'static str;
}
