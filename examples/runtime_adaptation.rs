//! Runtime adaptation: the paper's Fig. 2 timeline.
//!
//! Until `t1`, tenants T1 (pFabric) and T2 (EDF) are active; then both go
//! idle and the background tenant T3 (FQ) starts transmitting. The runtime
//! monitor notices the activity shift, the adapter re-synthesizes the
//! joint policy over the active set, and the pre-processor is reloaded —
//! the SDN-style reaction loop sketched in §2 (Idea 2). We also show the
//! adversarial-rank defence: a tenant emitting ranks outside its declared
//! range gets clamped.
//!
//! Run with: `cargo run --example runtime_adaptation`

use qvisor::core::{
    analyze, synthesize, MonitorConfig, Policy, PreProcessor, RuntimeAdapter, RuntimeMonitor,
    SynthConfig, TenantSpec, UnknownTenantAction, ViolationAction,
};
use qvisor::ranking::RankRange;
use qvisor::sim::{FlowId, Nanos, NodeId, Packet, SimRng, TenantId};

fn packet(tenant: u16, rank: u64, at: Nanos) -> Packet {
    let mut p = Packet::data(
        FlowId(tenant as u64),
        TenantId(tenant),
        0,
        1500,
        NodeId(0),
        NodeId(1),
        rank,
        at,
    );
    p.txf_rank = rank;
    p
}

fn main() {
    let specs = vec![
        TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(0, 100_000)).with_levels(32),
        TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(0, 10_000)).with_levels(32),
        TenantSpec::new(TenantId(3), "T3", "FQ", RankRange::new(0, 1_000)).with_levels(16),
    ];
    let policy = Policy::parse("T1 + T2 >> T3").unwrap();
    let synth_cfg = SynthConfig::default();
    let monitor_cfg = MonitorConfig {
        violation_action: ViolationAction::Clamp,
        idle_after: Nanos::from_millis(5),
        drift_ratio: 4.0,
    };

    // Initial deployment over the full tenant population.
    let joint = synthesize(&specs, &policy, synth_cfg).unwrap();
    let mut pre = PreProcessor::new(&joint, UnknownTenantAction::BestEffort);
    let mut monitor = RuntimeMonitor::new(&specs, monitor_cfg);
    let mut adapter = RuntimeAdapter::new(specs.clone(), policy, synth_cfg, monitor_cfg);

    println!("=== initial deployment (T1 + T2 >> T3) ===");
    println!("{}", analyze(&joint));

    // Phase 1 (t < t1): T1 and T2 transmit.
    let mut rng = SimRng::seed_from(5);
    for i in 0..2_000u64 {
        let at = Nanos::from_micros(i);
        let mut p = packet(1 + (i % 2) as u16, rng.below(9_000), at);
        monitor.observe(&mut p, at);
        pre.process(&mut p);
    }
    // One adversarial burst: T2 claims ranks far above its declared range.
    let t_adv = Nanos::from_micros(2_000);
    let mut evil = packet(2, 5_000_000, t_adv);
    monitor.observe(&mut evil, t_adv);
    println!(
        "adversarial T2 rank 5000000 clamped to {} (violations: {})",
        evil.rank,
        monitor.violations(TenantId(2))
    );

    // Phase 2 (t >= t1): T1/T2 stop; T3 starts.
    let t1_moment = Nanos::from_millis(3);
    for i in 0..2_000u64 {
        let at = t1_moment + Nanos::from_micros(i * 5);
        let mut p = packet(3, rng.below(1_001), at);
        monitor.observe(&mut p, at);
        pre.process(&mut p);
    }

    // Control-plane tick well after t1: T1/T2 are idle now.
    let now = t1_moment + Nanos::from_millis(11);
    match adapter.propose(&monitor, now) {
        Some(adaptation) => {
            println!("\n=== adaptation proposed at {now} ===");
            println!("active tenants : {:?}", adaptation.active);
            for (t, range) in &adaptation.tightened {
                println!("tightened      : {t} -> {range}");
            }
            let new_joint = adapter
                .apply(&adaptation)
                .expect("re-synthesis succeeds")
                .expect("active set is non-empty");
            pre.reload(&new_joint);
            println!("\n=== re-synthesized deployment ===");
            println!("{}", analyze(&new_joint));
            // T3 now owns the top of the rank space.
            let before = joint.chain(TenantId(3)).unwrap().apply(0);
            let after = new_joint.chain(TenantId(3)).unwrap().apply(0);
            println!(
                "T3's best rank moved from {before} to {after}: the idle \
                 tenants' bands were reclaimed."
            );
        }
        None => println!("no adaptation needed (unexpected in this scenario)"),
    }
}
