//! Bounded event journal keyed by simulated time.
//!
//! The journal is a ring buffer of structured events (policy recompiles,
//! adapter decisions, drops of interest). When full, the oldest events are
//! evicted and counted, so a long simulation can keep a journal of the most
//! recent activity at fixed memory cost without ever aborting or blocking.

use qvisor_sim::json::Value;
use qvisor_sim::Nanos;
use std::collections::VecDeque;

/// One structured journal entry.
#[derive(Clone, Debug)]
pub struct JournalEvent {
    /// Simulated time the event was recorded at.
    pub t: Nanos,
    /// Short machine-readable event kind, e.g. `"recompile"`.
    pub kind: String,
    /// Free-form structured payload, in insertion order.
    pub fields: Vec<(String, Value)>,
}

impl JournalEvent {
    /// Render as a JSON object (`{"type":"event","t_ns":...,...}`).
    pub fn to_json(&self) -> Value {
        let mut fields = Value::object();
        for (k, v) in &self.fields {
            fields = fields.set(k, v.clone());
        }
        Value::object()
            .set("type", "event")
            .set("t_ns", self.t)
            .set("kind", self.kind.as_str())
            .set("fields", fields)
    }
}

/// Fixed-capacity ring buffer of [`JournalEvent`]s.
#[derive(Clone, Debug)]
pub struct Journal {
    events: VecDeque<JournalEvent>,
    capacity: usize,
    evicted: u64,
}

impl Default for Journal {
    fn default() -> Journal {
        Journal::new(crate::DEFAULT_JOURNAL_CAPACITY)
    }
}

impl Journal {
    /// A journal holding at most `capacity` events (capacity 0 records
    /// nothing but still counts evictions).
    pub fn new(capacity: usize) -> Journal {
        Journal {
            events: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            evicted: 0,
        }
    }

    /// Append an event, evicting the oldest if full. Returns `true` when
    /// an event was evicted (or refused, at capacity 0) so callers can
    /// surface the loss — a silently truncated journal looks complete.
    pub fn push(&mut self, event: JournalEvent) -> bool {
        if self.capacity == 0 {
            self.evicted += 1;
            return true;
        }
        let evicting = self.events.len() == self.capacity;
        if evicting {
            self.events.pop_front();
            self.evicted += 1;
        }
        self.events.push_back(event);
        evicting
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &JournalEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted (or refused, at capacity 0) since creation.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Fold another journal's eviction count in, so a merged journal's
    /// `meta` line reports losses that happened before the merge (the
    /// sharded engine's telemetry absorb).
    pub fn absorb_evicted(&mut self, n: u64) {
        self.evicted += n;
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: &str) -> JournalEvent {
        JournalEvent {
            t: Nanos(t),
            kind: kind.to_string(),
            fields: vec![("x".to_string(), Value::from(t))],
        }
    }

    #[test]
    fn keeps_most_recent_when_full() {
        let mut j = Journal::new(3);
        for t in 0..5 {
            j.push(ev(t, "tick"));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.evicted(), 2);
        let ts: Vec<Nanos> = j.events().map(|e| e.t).collect();
        assert_eq!(ts, vec![Nanos(2), Nanos(3), Nanos(4)]);
    }

    #[test]
    fn zero_capacity_counts_but_keeps_nothing() {
        let mut j = Journal::new(0);
        j.push(ev(1, "tick"));
        assert!(j.is_empty());
        assert_eq!(j.evicted(), 1);
    }

    #[test]
    fn event_serialises_with_fields() {
        let line = ev(42, "recompile").to_json().to_compact();
        assert_eq!(
            line,
            r#"{"type":"event","t_ns":42,"kind":"recompile","fields":{"x":42}}"#
        );
    }
}
