//! Deterministic generation of random operator deployments.
//!
//! Every case is a pure function of `(campaign seed, case index)`: the
//! generator draws from `SimRng::seed_from(seed).derive(index).derive(STREAM)`
//! streams only, never from ambient randomness, so any case — including a
//! fuzz-found failure — is reproducible from the two integers printed in
//! the campaign summary.
//!
//! The generator is *adversarial by construction*: a fraction of cases get
//! `first_rank` near `u64::MAX` (forcing saturation / QV-OVERFLOW), a
//! single quantization level over a wide range (QV-COLLAPSE), degenerate
//! point ranges, huge spans, tenants declared but left out of the policy
//! (QV-UNSCHEDULED), and weighted share groups nested under preferences —
//! but it never emits a structurally invalid config: names are unique, the
//! policy only references declared tenants, ranges are ordered, and level
//! overrides are non-zero. Anything the synthesizer rejects outright would
//! be a generator bug and is reported as a disagreement by the oracle.

use qvisor_core::{
    DeploymentConfig, Policy, PrefChain, ShareGroup, SynthOptions, TenantConfig, TenantRef,
};
use qvisor_ranking::RankFnSpec;
use qvisor_sim::SimRng;

/// Default campaign seed used by `qvisor fuzz` when `--seed` is omitted.
pub const DEFAULT_SEED: u64 = 0xF0CC5;

/// RNG stream label for the generator itself.
const STREAM_GEN: u64 = 1;
/// RNG stream label for the queue oracle's input sampling.
pub(crate) const STREAM_ORACLE: u64 = 2;
/// RNG stream label for scenario workload parameters.
pub(crate) const STREAM_SCENARIO: u64 = 3;

/// One generated deployment: the config under test plus the tenant
/// rank-function mix used when the case is materialized into a scenario.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// Campaign seed this case was derived from.
    pub seed: u64,
    /// Case index within the campaign.
    pub index: u64,
    /// The deployment under test (tenants + policy + synth options).
    pub config: DeploymentConfig,
    /// Per-tenant rank functions, `(tenant id, spec)`, id order.
    pub rank_fns: Vec<(u16, RankFnSpec)>,
}

impl FuzzCase {
    /// The case's RNG for `stream`, derived the same way regardless of
    /// which thread runs the case.
    pub(crate) fn rng(&self, stream: u64) -> SimRng {
        SimRng::seed_from(self.seed)
            .derive(self.index)
            .derive(stream)
    }
}

/// Draw a declared rank range. Mixes wide, narrow, degenerate-point, and
/// huge spans so interval analysis, quantization, and saturation all get
/// exercised.
fn draw_range(rng: &mut SimRng) -> (u64, u64) {
    match rng.below(6) {
        0 => (0, 10u64.pow(1 + rng.below(5) as u32)),
        1 => {
            let lo = rng.below(10_000);
            (lo, lo + rng.below(64))
        }
        2 => {
            let point = rng.below(1 << 20);
            (point, point) // degenerate: a single declared rank
        }
        3 => (0, (1 << 20) + rng.below(1 << 20)),
        4 => (0, (1 << 40) + rng.below(1 << 40)),
        _ => {
            let lo = rng.below(1000);
            (lo, lo + 1 + rng.below(100_000))
        }
    }
}

/// Draw an optional per-tenant quantization-level override.
fn draw_levels(rng: &mut SimRng) -> Option<u64> {
    match rng.below(4) {
        0 => None,
        1 => Some(1 + rng.below(16)),
        2 => Some(1), // collapses any non-degenerate range: QV-COLLAPSE bait
        _ => Some(2 + rng.below(1022)),
    }
}

/// Draw a rank function consistent with the tenant's declared range.
fn draw_rank_fn(rng: &mut SimRng, rank_min: u64, rank_max: u64) -> RankFnSpec {
    let span = rank_max - rank_min;
    match rng.below(6) {
        0 => RankFnSpec::PFabric {
            unit_bytes: 1 + rng.below(2000),
            max_rank: rank_max,
        },
        1 => RankFnSpec::Edf {
            unit_ns: 1 + rng.below(10_000),
            max_rank: rank_max,
        },
        2 => RankFnSpec::Stfq { max_rank: rank_max },
        3 => RankFnSpec::ByteCountFq {
            unit_bytes: 1 + rng.below(2000),
            max_rank: rank_max,
        },
        4 => RankFnSpec::ArrivalTime {
            unit_ns: 1 + rng.below(10_000),
            max_rank: rank_max,
        },
        _ => RankFnSpec::Constant {
            rank: rank_min + rng.below(span.saturating_add(1).max(1)).min(span),
        },
    }
}

/// Partition the scheduled tenant names into a random policy AST: strict
/// levels of preference chains of weighted share groups.
fn draw_policy(rng: &mut SimRng, scheduled: &[String]) -> Policy {
    let mut levels: Vec<Vec<Vec<TenantRef>>> = vec![vec![vec![]]];
    for name in scheduled {
        let cur_level_used = levels
            .last()
            .is_some_and(|l| l.iter().any(|g| !g.is_empty()));
        let cur_group_used = levels
            .last()
            .and_then(|l| l.last())
            .is_some_and(|g| !g.is_empty());
        match rng.below(8) {
            0 if cur_level_used => levels.push(vec![vec![]]),
            1 | 2 if cur_group_used => levels.last_mut().expect("non-empty").push(vec![]),
            _ => {}
        }
        let weight = if rng.below(3) == 0 {
            2 + rng.below(4) as u32
        } else {
            1
        };
        levels
            .last_mut()
            .expect("non-empty")
            .last_mut()
            .expect("non-empty")
            .push(TenantRef {
                name: name.clone(),
                weight,
            });
    }
    Policy {
        levels: levels
            .into_iter()
            .map(|groups| PrefChain {
                groups: groups
                    .into_iter()
                    .filter(|g| !g.is_empty())
                    .map(|members| ShareGroup { members })
                    .collect(),
            })
            .collect(),
    }
}

/// Render a policy AST back to the surface syntax, with a random (but
/// seed-determined) sprinkling of the optional parentheses around share
/// groups so the parser's grouping extension stays exercised.
fn render_policy(policy: &Policy, rng: &mut SimRng) -> String {
    let levels: Vec<String> = policy
        .levels
        .iter()
        .map(|level| {
            let groups: Vec<String> = level
                .groups
                .iter()
                .map(|group| {
                    let members: Vec<String> = group
                        .members
                        .iter()
                        .map(|m| {
                            if m.weight == 1 {
                                m.name.clone()
                            } else {
                                format!("{}:{}", m.name, m.weight)
                            }
                        })
                        .collect();
                    let joined = members.join(" + ");
                    if group.members.len() > 1 && rng.below(2) == 0 {
                        format!("({joined})")
                    } else {
                        joined
                    }
                })
                .collect();
            groups.join(" > ")
        })
        .collect();
    levels.join(" >> ")
}

/// Generate case `index` of the campaign seeded with `seed`.
pub fn generate_case(seed: u64, index: u64) -> FuzzCase {
    let mut rng = SimRng::seed_from(seed).derive(index).derive(STREAM_GEN);
    let tenant_count = 1 + rng.below(5) as usize;

    let mut tenants = Vec::with_capacity(tenant_count);
    let mut rank_fns = Vec::with_capacity(tenant_count);
    for i in 0..tenant_count {
        let (rank_min, rank_max) = draw_range(&mut rng);
        let id = (i + 1) as u16;
        let algorithm = ["pFabric", "EDF", "STFQ", "FQ", "FIFO+"][rng.below(5) as usize];
        tenants.push(TenantConfig {
            id,
            name: format!("T{}", i + 1),
            algorithm: algorithm.to_string(),
            rank_min,
            rank_max,
            levels: draw_levels(&mut rng),
        });
        rank_fns.push((id, draw_rank_fn(&mut rng, rank_min, rank_max)));
    }

    // Schedule most tenants; leave some out to exercise QV-UNSCHEDULED.
    let mut scheduled: Vec<String> = tenants
        .iter()
        .filter(|_| rng.below(8) != 0)
        .map(|t| t.name.clone())
        .collect();
    if scheduled.is_empty() {
        let pick = rng.below(tenant_count as u64) as usize;
        scheduled.push(tenants[pick].name.clone());
    }

    let ast = draw_policy(&mut rng, &scheduled);
    let policy = render_policy(&ast, &mut rng);

    let synth = SynthOptions {
        default_levels: match rng.below(8) {
            0 => 1,
            1 => 2 + rng.below(6),
            _ => 8 + rng.below(56),
        },
        first_rank: match rng.below(8) {
            0 => u64::MAX - rng.below(4096), // saturation adversary
            1 => (1 << 60) + rng.below(1 << 20),
            2 => 1 + rng.below(1_000_000),
            _ => 0,
        },
        pref_bias_divisor: 1 + rng.below(8),
    };

    FuzzCase {
        seed,
        index,
        config: DeploymentConfig {
            tenants,
            policy,
            synth,
        },
        rank_fns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_policies_round_trip_through_the_parser() {
        for index in 0..256 {
            let case = generate_case(DEFAULT_SEED, index);
            let parsed = Policy::parse(&case.config.policy).unwrap_or_else(|e| {
                panic!(
                    "case {index}: unparseable policy {:?}: {e}",
                    case.config.policy
                )
            });
            // Canonical Display must be stable under re-parse (parens are
            // the only surface variation the renderer introduces).
            assert_eq!(
                Policy::parse(&parsed.to_string()).unwrap(),
                parsed,
                "case {index}"
            );
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_seed_and_index() {
        for index in [0, 1, 17, 999] {
            let a = generate_case(7, index);
            let b = generate_case(7, index);
            assert_eq!(a.config.to_json(), b.config.to_json());
            assert_eq!(a.rank_fns, b.rank_fns);
        }
        let a = generate_case(7, 3);
        let b = generate_case(8, 3);
        assert_ne!(
            (a.config.to_json(), a.rank_fns),
            (b.config.to_json(), b.rank_fns),
            "different seeds should diverge"
        );
    }

    #[test]
    fn every_generated_config_is_structurally_sound() {
        for index in 0..256 {
            let case = generate_case(DEFAULT_SEED, index);
            let names: Vec<&str> = case
                .config
                .tenants
                .iter()
                .map(|t| t.name.as_str())
                .collect();
            let policy = Policy::parse(&case.config.policy).unwrap();
            for name in policy.tenant_names() {
                assert!(names.contains(&name), "case {index}: {name} undeclared");
            }
            assert!(policy.tenant_count() >= 1, "case {index}: empty policy");
            for t in &case.config.tenants {
                assert!(t.rank_min <= t.rank_max, "case {index}");
                assert_ne!(t.levels, Some(0), "case {index}");
            }
            assert!(case.config.synth.default_levels >= 1, "case {index}");
            assert!(case.config.synth.pref_bias_divisor >= 1, "case {index}");
        }
    }
}
