//! Deficit Round Robin (Shreedhar & Varghese, SIGCOMM '95).
//!
//! A classic per-class fair queueing baseline: one FIFO per tenant, served
//! round-robin with a byte deficit counter, so tenants share bandwidth in
//! proportion to their quantum regardless of packet sizes. Used as a
//! comparison point for QVISOR's `+` (share) operator.

use crate::queue::{Capacity, Enqueue, PacketQueue};
use qvisor_sim::{Nanos, Packet, Rank, TenantId};
use std::collections::VecDeque;

struct Class {
    tenant: TenantId,
    queue: VecDeque<Packet>,
    quantum: u64,
    deficit: u64,
}

/// Deficit-round-robin scheduler over per-tenant FIFOs sharing one buffer.
///
/// Unknown tenants fall into a default class with quantum equal to the
/// smallest configured quantum.
pub struct DrrQueue {
    classes: Vec<Class>,
    /// Round-robin cursor into `classes`.
    cursor: usize,
    capacity: Capacity,
    bytes: u64,
}

impl DrrQueue {
    /// A DRR scheduler with one `(tenant, quantum)` class each.
    ///
    /// # Panics
    /// Panics if `classes` is empty, any quantum is zero, or tenants repeat.
    pub fn new(classes: &[(TenantId, u64)], capacity: Capacity) -> DrrQueue {
        assert!(!classes.is_empty(), "need at least one class");
        let mut seen = Vec::new();
        let classes: Vec<Class> = classes
            .iter()
            .map(|&(tenant, quantum)| {
                assert!(quantum > 0, "quantum must be positive");
                assert!(!seen.contains(&tenant), "duplicate class for {tenant}");
                seen.push(tenant);
                Class {
                    tenant,
                    queue: VecDeque::new(),
                    quantum,
                    deficit: 0,
                }
            })
            .collect();
        DrrQueue {
            classes,
            cursor: 0,
            capacity,
            bytes: 0,
        }
    }

    fn class_index(&self, tenant: TenantId) -> usize {
        self.classes
            .iter()
            .position(|c| c.tenant == tenant)
            .unwrap_or(0)
    }

    /// Per-tenant queued bytes (for fairness measurements).
    pub fn class_bytes(&self) -> Vec<(TenantId, u64)> {
        self.classes
            .iter()
            .map(|c| (c.tenant, c.queue.iter().map(|p| p.size as u64).sum()))
            .collect()
    }
}

impl PacketQueue for DrrQueue {
    fn enqueue(&mut self, p: Packet, _now: Nanos) -> Enqueue {
        if !self.capacity.fits(self.bytes, p.size as u64) {
            return Enqueue::Rejected(Box::new(p));
        }
        self.bytes += p.size as u64;
        let idx = self.class_index(p.tenant);
        self.classes[idx].queue.push_back(p);
        Enqueue::Accepted
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<Packet> {
        if self.bytes == 0 {
            return None;
        }
        // At most two full rounds: one to top up deficits, one to serve.
        for _ in 0..self.classes.len() * 2 {
            let class = &mut self.classes[self.cursor];
            match class.queue.front() {
                Some(head) if class.deficit >= head.size as u64 => {
                    class.deficit -= head.size as u64;
                    let p = class.queue.pop_front().expect("head just observed");
                    self.bytes -= p.size as u64;
                    return Some(p);
                }
                Some(_) => {
                    // Not enough deficit: top up and move on.
                    class.deficit += class.quantum;
                    self.cursor = (self.cursor + 1) % self.classes.len();
                }
                None => {
                    // Idle classes forfeit their deficit (work conserving).
                    class.deficit = 0;
                    self.cursor = (self.cursor + 1) % self.classes.len();
                }
            }
        }
        // Quanta are positive, so two rounds always release a packet when
        // bytes > 0 — unless a packet exceeds its class quantum; allow
        // multiple top-ups in that case by recursing once per call depth.
        // (In practice MTU-sized quanta make this unreachable.)
        let busiest = self
            .classes
            .iter_mut()
            .filter(|c| !c.queue.is_empty())
            .max_by_key(|c| c.deficit)?;
        busiest.deficit += busiest.quantum;
        let p = busiest.queue.pop_front()?;
        self.bytes -= p.size as u64;
        Some(p)
    }

    fn len(&self) -> usize {
        self.classes.iter().map(|c| c.queue.len()).sum()
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }

    fn head_rank(&self) -> Option<Rank> {
        // The next-served class's head; approximated by the cursor class.
        self.classes
            .iter()
            .cycle()
            .skip(self.cursor)
            .take(self.classes.len())
            .find_map(|c| c.queue.front())
            .map(|p| p.txf_rank)
    }

    fn kind(&self) -> &'static str {
        "drr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvisor_sim::{FlowId, NodeId};

    fn pkt(tenant: u16, seq: u64, size: u32) -> Packet {
        Packet::data(
            FlowId(tenant as u64),
            TenantId(tenant),
            seq,
            size,
            NodeId(0),
            NodeId(1),
            0,
            Nanos::ZERO,
        )
    }

    #[test]
    fn equal_quanta_share_evenly() {
        let mut q = DrrQueue::new(
            &[(TenantId(1), 1500), (TenantId(2), 1500)],
            Capacity::UNBOUNDED,
        );
        for i in 0..10 {
            q.enqueue(pkt(1, i, 1500), Nanos::ZERO);
            q.enqueue(pkt(2, i, 1500), Nanos::ZERO);
        }
        let first8: Vec<u16> = (0..8)
            .map(|_| q.dequeue(Nanos::ZERO).unwrap().tenant.0)
            .collect();
        let t1 = first8.iter().filter(|&&t| t == 1).count();
        assert_eq!(t1, 4, "equal quanta must alternate service: {first8:?}");
    }

    #[test]
    fn weighted_quanta_bias_service() {
        let mut q = DrrQueue::new(
            &[(TenantId(1), 3000), (TenantId(2), 1500)],
            Capacity::UNBOUNDED,
        );
        for i in 0..20 {
            q.enqueue(pkt(1, i, 1500), Nanos::ZERO);
            q.enqueue(pkt(2, i, 1500), Nanos::ZERO);
        }
        let first12: Vec<u16> = (0..12)
            .map(|_| q.dequeue(Nanos::ZERO).unwrap().tenant.0)
            .collect();
        let t1 = first12.iter().filter(|&&t| t == 1).count() as f64;
        let t2 = first12.iter().filter(|&&t| t == 2).count() as f64;
        assert!(
            (t1 / t2 - 2.0).abs() < 0.5,
            "2:1 quanta should serve ~2:1 ({t1}:{t2})"
        );
    }

    #[test]
    fn work_conserving_when_one_class_idle() {
        let mut q = DrrQueue::new(
            &[(TenantId(1), 1500), (TenantId(2), 1500)],
            Capacity::UNBOUNDED,
        );
        for i in 0..5 {
            q.enqueue(pkt(1, i, 1500), Nanos::ZERO);
        }
        let served: Vec<u64> = std::iter::from_fn(|| q.dequeue(Nanos::ZERO))
            .map(|p| p.seq)
            .collect();
        assert_eq!(served, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unknown_tenant_goes_to_default_class() {
        let mut q = DrrQueue::new(&[(TenantId(1), 1500)], Capacity::UNBOUNDED);
        q.enqueue(pkt(42, 0, 100), Nanos::ZERO);
        assert_eq!(q.len(), 1);
        assert_eq!(q.dequeue(Nanos::ZERO).unwrap().tenant, TenantId(42));
    }

    #[test]
    fn shared_buffer_tail_drops() {
        let mut q = DrrQueue::new(
            &[(TenantId(1), 1500), (TenantId(2), 1500)],
            Capacity::bytes(3000),
        );
        assert!(q.enqueue(pkt(1, 0, 1500), Nanos::ZERO).accepted());
        assert!(q.enqueue(pkt(2, 0, 1500), Nanos::ZERO).accepted());
        assert!(!q.enqueue(pkt(1, 1, 1500), Nanos::ZERO).accepted());
    }

    #[test]
    fn mixed_packet_sizes_fair_in_bytes() {
        // Tenant 1 sends 500B packets, tenant 2 sends 1500B packets; equal
        // quanta must equalize *bytes*, so tenant 1 gets ~3x the packets.
        let mut q = DrrQueue::new(
            &[(TenantId(1), 1500), (TenantId(2), 1500)],
            Capacity::UNBOUNDED,
        );
        for i in 0..30 {
            q.enqueue(pkt(1, i, 500), Nanos::ZERO);
        }
        for i in 0..10 {
            q.enqueue(pkt(2, i, 1500), Nanos::ZERO);
        }
        let mut bytes = [0u64; 2];
        for _ in 0..24 {
            let p = q.dequeue(Nanos::ZERO).unwrap();
            bytes[(p.tenant.0 - 1) as usize] += p.size as u64;
        }
        let ratio = bytes[0] as f64 / bytes[1] as f64;
        assert!((ratio - 1.0).abs() < 0.35, "byte ratio {ratio} not ~1");
    }
}
