#![deny(missing_docs)]

//! # qvisor-bench — experiment harness
//!
//! Shared scenario code regenerating the paper's evaluation (§4):
//! [`fig4`] builds and runs one point of Fig. 4 (any scheme × load), and
//! the binaries in `src/bin/` sweep the full figures and ablations.
//! Criterion microbenches live in `benches/`.

pub mod fig4;

pub use fig4::{run_point, Fig4Config, Fig4Point, Scheme, Workload, EDF, PFABRIC};
