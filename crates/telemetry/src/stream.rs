//! Fan-out snapshot streaming for long-running processes.
//!
//! The control-plane daemon publishes a telemetry snapshot after every
//! committed reconfiguration; any number of subscribers (TCP sessions
//! serving `subscribe-telemetry`) receive each published line. The bus is
//! deliberately minimal and thread-safe without any feature gating — it
//! carries already-serialised JSON lines, so it works identically whether
//! the `enabled` telemetry feature is on (real snapshots) or off (empty
//! exports).
//!
//! Delivery is at-most-once per subscriber and never blocks the publisher:
//! each subscriber owns an unbounded channel, and subscribers that have
//! hung up are pruned on the next publish.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

/// A broadcast bus for serialized telemetry snapshot lines.
///
/// Cloneless by design: share it behind an `Arc`. Publishing walks the
/// subscriber list under a short mutex; sends are non-blocking.
#[derive(Debug, Default)]
pub struct SnapshotBus {
    subscribers: Mutex<Vec<Sender<String>>>,
}

impl SnapshotBus {
    /// Create an empty bus with no subscribers.
    pub fn new() -> SnapshotBus {
        SnapshotBus::default()
    }

    /// Register a new subscriber; every subsequent [`publish`](Self::publish)
    /// delivers one `String` per call to the returned receiver. Dropping the
    /// receiver unsubscribes (the sender is pruned on the next publish).
    pub fn subscribe(&self) -> Receiver<String> {
        let (tx, rx) = channel();
        self.subscribers
            .lock()
            .expect("snapshot bus poisoned")
            .push(tx);
        rx
    }

    /// Deliver `line` to every live subscriber, pruning closed ones.
    /// Returns the number of subscribers that received the line.
    pub fn publish(&self, line: &str) -> usize {
        let mut subs = self.subscribers.lock().expect("snapshot bus poisoned");
        subs.retain(|tx| tx.send(line.to_string()).is_ok());
        subs.len()
    }

    /// Number of currently registered subscribers (including any that have
    /// hung up but have not yet been pruned by a publish).
    pub fn len(&self) -> usize {
        self.subscribers
            .lock()
            .expect("snapshot bus poisoned")
            .len()
    }

    /// True when no subscribers are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_reaches_every_subscriber() {
        let bus = SnapshotBus::new();
        let a = bus.subscribe();
        let b = bus.subscribe();
        assert_eq!(bus.publish("snap-1"), 2);
        assert_eq!(a.recv().unwrap(), "snap-1");
        assert_eq!(b.recv().unwrap(), "snap-1");
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let bus = SnapshotBus::new();
        let a = bus.subscribe();
        let b = bus.subscribe();
        drop(b);
        assert_eq!(bus.publish("snap"), 1);
        assert_eq!(a.recv().unwrap(), "snap");
        assert_eq!(bus.len(), 1);
    }

    #[test]
    fn publish_without_subscribers_is_fine() {
        let bus = SnapshotBus::new();
        assert!(bus.is_empty());
        assert_eq!(bus.publish("snap"), 0);
    }

    #[test]
    fn cross_thread_delivery() {
        use std::sync::Arc;
        let bus = Arc::new(SnapshotBus::new());
        let rx = bus.subscribe();
        let publisher = {
            let bus = Arc::clone(&bus);
            std::thread::spawn(move || {
                for i in 0..10u32 {
                    bus.publish(&format!("line-{i}"));
                }
            })
        };
        publisher.join().unwrap();
        let got: Vec<String> = rx.try_iter().collect();
        assert_eq!(got.len(), 10);
        assert_eq!(got[9], "line-9");
    }
}
