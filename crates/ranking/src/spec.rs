//! Declarative rank-function specifications.
//!
//! Completes the Fig. 1 Configuration API on the tenant side: a rank
//! function described as data (JSON-serializable), buildable into the
//! corresponding [`RankFn`] implementation. Simulation harnesses can keep
//! an entire experiment — topology, tenants, rank functions, policy — in
//! one config file.

use crate::funcs::{ArrivalTime, ByteCountFq, Constant, Edf, Lstf, PFabric, Stfq};
use crate::multi::MultiObjective;
use crate::RankFn;
use qvisor_sim::json::{self, ParseError, Value};
use qvisor_sim::Nanos;

/// A rank function as data. See the variants for parameter meanings; all
/// produce ranks where lower = more urgent.
///
/// The JSON form is internally tagged on `"algorithm"` with snake_case
/// variant names, e.g. `{"algorithm": "p_fabric", "unit_bytes": 1000,
/// "max_rank": 100000}`.
#[derive(Clone, Debug, PartialEq)]
pub enum RankFnSpec {
    /// pFabric/SRPT: remaining flow size.
    PFabric {
        /// Bytes per rank unit.
        unit_bytes: u64,
        /// Largest emitted rank.
        max_rank: u64,
    },
    /// Earliest deadline first: slack to deadline.
    Edf {
        /// Nanoseconds per rank unit.
        unit_ns: u64,
        /// Largest emitted rank.
        max_rank: u64,
    },
    /// Least slack time first.
    Lstf {
        /// Nanoseconds per rank unit.
        unit_ns: u64,
        /// Largest emitted rank.
        max_rank: u64,
        /// Line rate used to estimate remaining transmission time.
        line_rate_bps: u64,
    },
    /// Start-time fair queueing.
    Stfq {
        /// Largest emitted rank.
        max_rank: u64,
    },
    /// Byte-count fair queueing (bytes already sent).
    ByteCountFq {
        /// Bytes per rank unit.
        unit_bytes: u64,
        /// Largest emitted rank.
        max_rank: u64,
    },
    /// FIFO+ arrival-time ranking.
    ArrivalTime {
        /// Nanoseconds per rank unit.
        unit_ns: u64,
        /// Largest emitted rank.
        max_rank: u64,
    },
    /// A constant rank.
    Constant {
        /// The rank.
        rank: u64,
    },
    /// Weighted multi-objective combination (§5).
    MultiObjective {
        /// `(component, weight)` pairs.
        components: Vec<(RankFnSpec, u32)>,
        /// Per-component normalization resolution.
        resolution: u64,
    },
}

fn semantic(msg: impl Into<String>) -> ParseError {
    ParseError {
        at: 0,
        msg: msg.into(),
    }
}

impl RankFnSpec {
    /// Render as a JSON value tagged on `"algorithm"`.
    pub fn to_value(&self) -> Value {
        match self {
            RankFnSpec::PFabric {
                unit_bytes,
                max_rank,
            } => Value::object()
                .set("algorithm", "p_fabric")
                .set("unit_bytes", *unit_bytes)
                .set("max_rank", *max_rank),
            RankFnSpec::Edf { unit_ns, max_rank } => Value::object()
                .set("algorithm", "edf")
                .set("unit_ns", *unit_ns)
                .set("max_rank", *max_rank),
            RankFnSpec::Lstf {
                unit_ns,
                max_rank,
                line_rate_bps,
            } => Value::object()
                .set("algorithm", "lstf")
                .set("unit_ns", *unit_ns)
                .set("max_rank", *max_rank)
                .set("line_rate_bps", *line_rate_bps),
            RankFnSpec::Stfq { max_rank } => Value::object()
                .set("algorithm", "stfq")
                .set("max_rank", *max_rank),
            RankFnSpec::ByteCountFq {
                unit_bytes,
                max_rank,
            } => Value::object()
                .set("algorithm", "byte_count_fq")
                .set("unit_bytes", *unit_bytes)
                .set("max_rank", *max_rank),
            RankFnSpec::ArrivalTime { unit_ns, max_rank } => Value::object()
                .set("algorithm", "arrival_time")
                .set("unit_ns", *unit_ns)
                .set("max_rank", *max_rank),
            RankFnSpec::Constant { rank } => Value::object()
                .set("algorithm", "constant")
                .set("rank", *rank),
            RankFnSpec::MultiObjective {
                components,
                resolution,
            } => {
                let comps: Vec<Value> = components
                    .iter()
                    .map(|(spec, w)| Value::from(vec![spec.to_value(), Value::from(*w)]))
                    .collect();
                Value::object()
                    .set("algorithm", "multi_objective")
                    .set("components", Value::from(comps))
                    .set("resolution", *resolution)
            }
        }
    }

    /// Parse from a JSON value tagged on `"algorithm"`.
    pub fn from_value(v: &Value) -> Result<RankFnSpec, ParseError> {
        let algorithm = json::field_str(v, "algorithm")?;
        Ok(match algorithm {
            "p_fabric" => RankFnSpec::PFabric {
                unit_bytes: json::field_u64(v, "unit_bytes")?,
                max_rank: json::field_u64(v, "max_rank")?,
            },
            "edf" => RankFnSpec::Edf {
                unit_ns: json::field_u64(v, "unit_ns")?,
                max_rank: json::field_u64(v, "max_rank")?,
            },
            "lstf" => RankFnSpec::Lstf {
                unit_ns: json::field_u64(v, "unit_ns")?,
                max_rank: json::field_u64(v, "max_rank")?,
                line_rate_bps: json::field_u64(v, "line_rate_bps")?,
            },
            "stfq" => RankFnSpec::Stfq {
                max_rank: json::field_u64(v, "max_rank")?,
            },
            "byte_count_fq" => RankFnSpec::ByteCountFq {
                unit_bytes: json::field_u64(v, "unit_bytes")?,
                max_rank: json::field_u64(v, "max_rank")?,
            },
            "arrival_time" => RankFnSpec::ArrivalTime {
                unit_ns: json::field_u64(v, "unit_ns")?,
                max_rank: json::field_u64(v, "max_rank")?,
            },
            "constant" => RankFnSpec::Constant {
                rank: json::field_u64(v, "rank")?,
            },
            "multi_objective" => {
                let comps = json::field(v, "components")?
                    .as_array()
                    .ok_or_else(|| semantic("field 'components' must be an array"))?;
                let mut components = Vec::with_capacity(comps.len());
                for comp in comps {
                    let pair = comp
                        .as_array()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| semantic("each component must be a [spec, weight] pair"))?;
                    let weight = pair[1]
                        .as_u64()
                        .and_then(|w| u32::try_from(w).ok())
                        .ok_or_else(|| semantic("component weight must fit a u32"))?;
                    components.push((RankFnSpec::from_value(&pair[0])?, weight));
                }
                RankFnSpec::MultiObjective {
                    components,
                    resolution: json::field_u64(v, "resolution")?,
                }
            }
            other => return Err(semantic(format!("unknown algorithm '{other}'"))),
        })
    }

    /// Serialize to compact JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_compact()
    }

    /// Parse from a JSON string.
    pub fn from_json(text: &str) -> Result<RankFnSpec, ParseError> {
        RankFnSpec::from_value(&Value::parse(text)?)
    }

    /// Instantiate the described rank function.
    pub fn build(&self) -> Box<dyn RankFn> {
        match self {
            RankFnSpec::PFabric {
                unit_bytes,
                max_rank,
            } => Box::new(PFabric::new(*unit_bytes, *max_rank)),
            RankFnSpec::Edf { unit_ns, max_rank } => Box::new(Edf::new(Nanos(*unit_ns), *max_rank)),
            RankFnSpec::Lstf {
                unit_ns,
                max_rank,
                line_rate_bps,
            } => Box::new(Lstf::new(Nanos(*unit_ns), *max_rank, *line_rate_bps)),
            RankFnSpec::Stfq { max_rank } => Box::new(Stfq::new(*max_rank)),
            RankFnSpec::ByteCountFq {
                unit_bytes,
                max_rank,
            } => Box::new(ByteCountFq::new(*unit_bytes, *max_rank)),
            RankFnSpec::ArrivalTime { unit_ns, max_rank } => {
                Box::new(ArrivalTime::new(Nanos(*unit_ns), *max_rank))
            }
            RankFnSpec::Constant { rank } => Box::new(Constant(*rank)),
            RankFnSpec::MultiObjective {
                components,
                resolution,
            } => Box::new(MultiObjective::new(
                components
                    .iter()
                    .map(|(spec, w)| (spec.build(), *w))
                    .collect(),
                *resolution,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::RankCtx;
    use qvisor_sim::FlowId;

    #[test]
    fn every_variant_builds_and_ranks() {
        let specs = vec![
            RankFnSpec::PFabric {
                unit_bytes: 1_000,
                max_rank: 100,
            },
            RankFnSpec::Edf {
                unit_ns: 1_000,
                max_rank: 100,
            },
            RankFnSpec::Lstf {
                unit_ns: 1_000,
                max_rank: 100,
                line_rate_bps: 1_000_000,
            },
            RankFnSpec::Stfq { max_rank: 100 },
            RankFnSpec::ByteCountFq {
                unit_bytes: 1_000,
                max_rank: 100,
            },
            RankFnSpec::ArrivalTime {
                unit_ns: 1_000,
                max_rank: 100,
            },
            RankFnSpec::Constant { rank: 7 },
        ];
        let ctx = RankCtx::simple(Nanos::from_micros(5), FlowId(1), 50_000, 10_000);
        for spec in specs {
            let mut f = spec.build();
            let r = f.rank(&ctx);
            assert!(f.range().contains(r), "{spec:?} emitted {r}");
        }
    }

    #[test]
    fn json_roundtrip() {
        let spec = RankFnSpec::MultiObjective {
            components: vec![
                (
                    RankFnSpec::PFabric {
                        unit_bytes: 1_000,
                        max_rank: 1_000,
                    },
                    7,
                ),
                (
                    RankFnSpec::Edf {
                        unit_ns: 1_000,
                        max_rank: 1_000,
                    },
                    3,
                ),
            ],
            resolution: 1_000,
        };
        let json = spec.to_json();
        let back = RankFnSpec::from_json(&json).unwrap();
        assert_eq!(spec, back);
        let mut f = back.build();
        assert_eq!(f.name(), "multi-objective");
        let ctx = RankCtx::simple(Nanos::ZERO, FlowId(1), 1_000, 0);
        assert!(f.range().contains(f.rank(&ctx)));
    }

    #[test]
    fn json_shape_is_human_writable() {
        let json = r#"{"algorithm": "p_fabric", "unit_bytes": 1000, "max_rank": 100000}"#;
        let spec = RankFnSpec::from_json(json).unwrap();
        assert_eq!(
            spec,
            RankFnSpec::PFabric {
                unit_bytes: 1_000,
                max_rank: 100_000
            }
        );
    }

    #[test]
    fn rejects_unknown_algorithm_and_bad_shapes() {
        assert!(RankFnSpec::from_json(r#"{"algorithm": "fancy"}"#).is_err());
        assert!(RankFnSpec::from_json(r#"{"unit_bytes": 1}"#).is_err());
        assert!(RankFnSpec::from_json("[1, 2]").is_err());
        assert!(RankFnSpec::from_json(
            r#"{"algorithm": "multi_objective", "components": [3], "resolution": 10}"#
        )
        .is_err());
    }
}
