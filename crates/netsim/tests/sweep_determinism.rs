//! The parallel sweep runner must be a pure function of the sweep document:
//! results and telemetry snapshots are byte-identical at any `--jobs` level.

use qvisor_netsim::scenario::{merged_value, run_sweep};
use qvisor_netsim::SweepSpec;

/// A fig4-style grid: Poisson pFabric traffic plus a CBR EDF fleet under a
/// QVISOR deployment, swept over load and seed (4 points).
const SWEEP: &str = r#"{
    "base": {
        "name": "fig4-grid",
        "seed": 1,
        "topology": {
            "leaf_spine": {
                "leaves": 2, "spines": 2, "hosts_per_leaf": 4,
                "access_bps": 1000000000, "fabric_bps": 4000000000,
                "access_delay_ns": 1000, "fabric_delay_ns": 1000
            }
        },
        "sim": { "horizon": { "after_last_arrival_ns": 500000000 } },
        "scheduler": { "pifo": {} },
        "qvisor": {
            "tenants": [
                { "id": 1, "name": "pFabric", "algorithm": "pFabric",
                  "rank_min": 0, "rank_max": 2000, "levels": 512 },
                { "id": 2, "name": "EDF", "algorithm": "EDF",
                  "rank_min": 0, "rank_max": 2, "levels": 64 }
            ],
            "policy": "EDF >> pFabric",
            "unknown": "best_effort",
            "scope": "everywhere"
        },
        "rank_fns": [
            { "tenant": 1, "fn": { "algorithm": "p_fabric",
                                   "unit_bytes": 1000, "max_rank": 2000 } },
            { "tenant": 2, "fn": { "algorithm": "edf",
                                   "unit_ns": 300000, "max_rank": 2 } }
        ],
        "workloads": [
            { "poisson": { "tenant": 1, "flows": 60,
                           "sizes": { "data_mining": { "scale_den": 50 } },
                           "arrival": { "load": 0.4 }, "rng_stream": 1 } },
            { "cbr_fleet": { "tenant": 2, "streams": 2, "rate_bps": 100000000,
                             "pkt_size": 1500, "start_ns": 0,
                             "stop": { "after_last_arrival_ns": 5000000 },
                             "deadline_offset_ns": 300000, "rng_stream": 2 } }
        ]
    },
    "axes": [
        { "path": "workloads.0.poisson.arrival.load", "values": [0.3, 0.6] },
        { "path": "seed", "values": [1, 2] }
    ]
}"#;

#[test]
fn sweep_output_is_byte_identical_at_any_jobs_level() {
    let spec = SweepSpec::from_json(SWEEP).unwrap();
    let serial = run_sweep(&spec, 1, true, false).unwrap();
    let parallel = run_sweep(&spec, 8, true, false).unwrap();
    assert_eq!(serial.len(), 4);

    // Merged results document: byte-identical.
    let merged_serial = merged_value(&spec, &serial).to_pretty();
    let merged_parallel = merged_value(&spec, &parallel).to_pretty();
    assert_eq!(merged_serial, merged_parallel);

    // Per-point telemetry snapshots: byte-identical too (wall-clock lines
    // are stripped by the runner's sanitizer).
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.index, p.index);
        assert_eq!(s.label, p.label);
        let st = s.telemetry_jsonl.as_ref().expect("telemetry requested");
        let pt = p.telemetry_jsonl.as_ref().expect("telemetry requested");
        assert_eq!(st, pt, "telemetry diverged at point {}", s.label);
        assert!(!st.contains("runtime_synth_ns"), "wall-clock line leaked");
    }

    // Grid order is rightmost-axis-fastest and independent of scheduling.
    let labels: Vec<&str> = serial.iter().map(|r| r.label.as_str()).collect();
    assert_eq!(
        labels,
        [
            "workloads.0.poisson.arrival.load=0.3,seed=1",
            "workloads.0.poisson.arrival.load=0.3,seed=2",
            "workloads.0.poisson.arrival.load=0.6,seed=1",
            "workloads.0.poisson.arrival.load=0.6,seed=2",
        ]
    );
}

#[test]
fn oversubscribed_jobs_clamp_to_the_grid() {
    let spec = SweepSpec::from_json(SWEEP).unwrap();
    // More workers than points: still every point exactly once, in order.
    let results = run_sweep(&spec, 64, false, false).unwrap();
    assert_eq!(results.len(), 4);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.index, i);
        assert!(r.telemetry_jsonl.is_none());
    }
}
