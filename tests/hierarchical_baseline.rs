//! The PIFO-tree baseline: an idealized hierarchical scheduler (root
//! fair-shares tenants, leaves sort by rank) is what dedicated
//! multi-tenant hardware would provide. QVISOR's claim is that a *flat*
//! commodity PIFO plus rank rewriting approximates it — these tests put
//! the two side by side on the same clashing workload.

use qvisor::core::{SynthConfig, TenantSpec, UnknownTenantAction};
use qvisor::netsim::{NewFlow, QvisorSetup, SchedulerKind, SimConfig, SimReport, Simulation};
use qvisor::ranking::{ByteCountFq, Constant, RankRange};
use qvisor::sim::{gbps, jain_fairness, Nanos, TenantId};
use qvisor::topology::Dumbbell;

const T1: TenantId = TenantId(1);
const T2: TenantId = TenantId(2);

/// Two closed-loop elephants with *clashing* rank scales: both count
/// bytes, but T2's ranks grow 100x slower (a coarser unit), so on a naive
/// flat PIFO T2's numerically tiny ranks dominate. QVISOR's normalization
/// maps both onto a common scale; the tree never compares them at all.
fn run(scheduler: SchedulerKind, qvisor: bool) -> SimReport {
    let d = Dumbbell::build(2, gbps(1), gbps(1), Nanos::from_micros(1));
    let mut cfg = SimConfig {
        seed: 17,
        horizon: Nanos::from_millis(100),
        scheduler,
        ..SimConfig::default()
    };
    if qvisor {
        cfg.qvisor = Some(QvisorSetup {
            specs: vec![
                TenantSpec::new(T1, "T1", "FQ", RankRange::new(0, 14_000)).with_levels(64),
                TenantSpec::new(T2, "T2", "FQ-coarse", RankRange::new(0, 140)).with_levels(64),
            ],
            policy: "T1 + T2".into(),
            synth: SynthConfig::default(),
            unknown: UnknownTenantAction::BestEffort,
            scope: Default::default(),
            monitor: None,
        });
    }
    let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(T1, Box::new(ByteCountFq::new(1_460, 14_000)));
    sim.register_rank_fn(T2, Box::new(ByteCountFq::new(146_000, 140)));
    for (t, i) in [(T1, 0), (T2, 1)] {
        sim.add_flow(NewFlow::new(
            t,
            d.senders[i],
            d.receivers[i],
            20_000_000,
            Nanos::ZERO,
        ));
    }
    sim.run()
}

fn jain(r: &SimReport) -> f64 {
    jain_fairness(&[
        r.tenant(T1).delivered_bytes as f64,
        r.tenant(T2).delivered_bytes as f64,
    ])
    .unwrap()
}

#[test]
fn naive_flat_pifo_is_captured_by_the_coarse_rank_tenant() {
    let r = run(SchedulerKind::Pifo, false);
    let (b1, b2) = (r.tenant(T1).delivered_bytes, r.tenant(T2).delivered_bytes);
    assert!(
        b2 > b1 * 3,
        "the coarse-unit tenant's tiny ranks should dominate a naive PIFO: {b1} vs {b2}"
    );
    assert!(jain(&r) < 0.85);
}

/// A limitation worth pinning: a tenant whose rank function does not
/// *progress* (constant rank, e.g. slack that is always ~0) cannot be
/// fairly shared on ANY flat rank-ordered scheduler — there is no signal
/// for interleaving to act on, and it camps at the head of its band. The
/// hierarchical tree handles it because its root keeps per-tenant state.
/// Flat-PIFO virtualization of `+` therefore assumes progressing rank
/// functions (virtual clocks); QVISOR operators should give such tenants
/// `>>`/`>` placement or a shaper instead.
#[test]
fn constant_rank_tenants_defeat_flat_sharing_but_not_the_tree() {
    let run_const = |scheduler: SchedulerKind, qvisor: bool| -> SimReport {
        let d = Dumbbell::build(2, gbps(1), gbps(1), Nanos::from_micros(1));
        let mut cfg = SimConfig {
            seed: 18,
            horizon: Nanos::from_millis(100),
            scheduler,
            ..SimConfig::default()
        };
        if qvisor {
            cfg.qvisor = Some(QvisorSetup {
                specs: vec![
                    TenantSpec::new(T1, "T1", "FQ", RankRange::new(0, 14_000)).with_levels(64),
                    TenantSpec::new(T2, "T2", "const", RankRange::new(0, 0)),
                ],
                policy: "T1 + T2".into(),
                synth: SynthConfig::default(),
                unknown: UnknownTenantAction::BestEffort,
                scope: Default::default(),
                monitor: None,
            });
        }
        let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
        sim.register_rank_fn(T1, Box::new(ByteCountFq::new(1_460, 14_000)));
        sim.register_rank_fn(T2, Box::new(Constant(0)));
        for (t, i) in [(T1, 0), (T2, 1)] {
            sim.add_flow(NewFlow::new(
                t,
                d.senders[i],
                d.receivers[i],
                20_000_000,
                Nanos::ZERO,
            ));
        }
        sim.run()
    };
    // Flat PIFO + QVISOR: the constant-rank tenant still wins most slots.
    let flat = run_const(SchedulerKind::Pifo, true);
    assert!(jain(&flat) < 0.9, "expected unfair: {:.4}", jain(&flat));
    // The tree is immune.
    let tree = run_const(SchedulerKind::FairTree { tenants: 3 }, false);
    assert!(
        jain(&tree) > 0.99,
        "tree should be fair: {:.4}",
        jain(&tree)
    );
}

#[test]
fn hierarchical_tree_is_fair_without_any_rewriting() {
    let r = run(SchedulerKind::FairTree { tenants: 3 }, false);
    assert!(
        jain(&r) > 0.99,
        "the tree's root fairness must neutralize the rank clash: {:.4}",
        jain(&r)
    );
}

#[test]
fn qvisor_on_flat_pifo_matches_the_tree() {
    let tree = run(SchedulerKind::FairTree { tenants: 3 }, false);
    let qv = run(SchedulerKind::Pifo, true);
    assert!(
        jain(&qv) > 0.99,
        "QVISOR sharing on a flat PIFO must restore fairness: {:.4}",
        jain(&qv)
    );
    // Aggregate goodput within a few percent of the hierarchical ideal.
    let total =
        |r: &SimReport| (r.tenant(T1).delivered_bytes + r.tenant(T2).delivered_bytes) as f64;
    let ratio = total(&qv) / total(&tree);
    assert!(
        (0.9..=1.1).contains(&ratio),
        "flat-PIFO virtualization should cost little goodput vs the tree: {ratio:.3}"
    );
}
