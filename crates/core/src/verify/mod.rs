//! `qvisor check` — static verification of synthesized policies.
//!
//! Where [`crate::analysis`] *describes* a synthesized [`JointPolicy`],
//! this module *proves or refutes* its guarantees before a single packet
//! is simulated:
//!
//! 1. **Interval abstract interpretation** ([`interval`]): each tenant's
//!    chain is executed over its declared input [`RankRange`], proving it
//!    overflow-free (no `Rank::MAX` saturation) and flagging engaged
//!    clamps.
//! 2. **Monotonicity** ([`monotone`]): each chain is proven
//!    order-preserving — strictly monotone where the quantization step
//!    permits — with a computed collision bound for quantize steps.
//! 3. **Isolation** ([`isolation`]): `>>` levels have pairwise-disjoint,
//!    correctly ordered output spans; `+` share groups interleave within
//!    their band; `>` preferences overlap.
//!
//! Every refuted property is reported as a [`Diagnostic`] whose span is a
//! dotted spec path (the same paths the scenario codec uses in its
//! errors), and carries a concrete [`Witness`] input pair that demonstrably
//! violates the property through the real `TransformChain::apply`.
//! Structural suspicions with no reachable witness are downgraded to
//! warnings, so errors are re-checkable by construction.

pub mod diag;
mod interval;
mod isolation;
mod monotone;

pub use diag::{DiagCode, Diagnostic, Severity, Witness};
pub use interval::{analyze_chain, ChainAnalysis, OpReport};
pub use monotone::{check_chain, ChainCheck};

use crate::synth::JointPolicy;
use qvisor_ranking::RankRange;
use qvisor_sim::json::Value;
use qvisor_sim::{Rank, TenantId};
use std::fmt;

/// Maps verifier subjects onto dotted spec paths, so diagnostics point at
/// the same locations the codec's field errors do.
#[derive(Clone, Debug)]
pub struct SpecPaths {
    prefix: String,
}

impl SpecPaths {
    /// Paths for a raw deployment config (`tenants.N`, `policy`, `synth`).
    pub fn config() -> SpecPaths {
        SpecPaths::with_prefix("")
    }

    /// Paths for a scenario file (`qvisor.tenants.N`, `qvisor.policy`, ...).
    pub fn scenario() -> SpecPaths {
        SpecPaths::with_prefix("qvisor.")
    }

    /// Paths under an arbitrary prefix (e.g. `base.qvisor.` inside a sweep
    /// document). The prefix must end with `.` unless empty.
    pub fn with_prefix(prefix: impl Into<String>) -> SpecPaths {
        SpecPaths {
            prefix: prefix.into(),
        }
    }

    /// Path of the `index`-th tenant declaration.
    pub fn tenant(&self, index: usize) -> String {
        format!("{}tenants.{index}", self.prefix)
    }

    /// Path of the policy string.
    pub fn policy(&self) -> String {
        format!("{}policy", self.prefix)
    }

    /// Path of the synthesizer options.
    pub fn synth(&self) -> String {
        format!("{}synth", self.prefix)
    }
}

/// One tenant's verified placement.
#[derive(Clone, Debug)]
pub struct TenantVerify {
    /// The tenant.
    pub tenant: TenantId,
    /// Name from the spec.
    pub name: String,
    /// Dotted spec path of the tenant's declaration.
    pub path: String,
    /// Strict level index (0 = highest priority).
    pub level: usize,
    /// Preference group index within the level.
    pub group: usize,
    /// Declared input rank range.
    pub declared: RankRange,
    /// Sound output interval through the chain.
    pub output: RankRange,
    /// Concrete `(input, output)` attaining the smallest observed output.
    pub observed_min: (Rank, Rank),
    /// Concrete `(input, output)` attaining the largest observed output.
    pub observed_max: (Rank, Rank),
    /// Proven order-preserving on the declared range.
    pub order_preserving: bool,
    /// Proven strictly monotone (no collisions at all).
    pub strictly_monotone: bool,
    /// No `Rank::MAX` saturation on the declared range.
    pub overflow_free: bool,
    /// Upper bound on inputs collapsing onto one output rank.
    pub collision_bound: u64,
}

/// The verifier's full report.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Per-tenant verdicts, layout order.
    pub tenants: Vec<TenantVerify>,
    /// All findings, most severe first (stable within a severity).
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// A report with nothing to say (e.g. a scenario without QVISOR).
    pub fn empty() -> VerifyReport {
        VerifyReport::default()
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Any error-severity findings?
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// The most severe finding, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Should a gate reject this report? Errors always fail; warnings fail
    /// under `deny_warnings`; infos never do.
    pub fn gate_fails(&self, deny_warnings: bool) -> bool {
        match self.worst() {
            Some(Severity::Error) => true,
            Some(Severity::Warning) => deny_warnings,
            _ => false,
        }
    }

    /// Findings at `Warning` or above (what a warn-by-default gate prints).
    pub fn gate_findings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity >= Severity::Warning)
    }

    /// Render the full report as text (one line per tenant and finding).
    pub fn render_text(&self) -> String {
        self.to_string()
    }

    /// Render as JSONL: one `tenant` line per tenant, one `diag` line per
    /// finding, and a trailing `verify_summary` line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for t in &self.tenants {
            let v = Value::object()
                .set("type", "tenant")
                .set("tenant", t.tenant.0)
                .set("name", t.name.as_str())
                .set("path", t.path.as_str())
                .set("level", t.level)
                .set("group", t.group)
                .set(
                    "declared",
                    Value::object()
                        .set("min", t.declared.min)
                        .set("max", t.declared.max),
                )
                .set(
                    "output",
                    Value::object()
                        .set("min", t.output.min)
                        .set("max", t.output.max),
                )
                .set("order_preserving", t.order_preserving)
                .set("strictly_monotone", t.strictly_monotone)
                .set("overflow_free", t.overflow_free)
                .set("collision_bound", t.collision_bound);
            out.push_str(&v.to_compact());
            out.push('\n');
        }
        for d in &self.diagnostics {
            out.push_str(&d.to_value().to_compact());
            out.push('\n');
        }
        let summary = Value::object()
            .set("type", "verify_summary")
            .set("errors", self.count(Severity::Error))
            .set("warnings", self.count(Severity::Warning))
            .set("infos", self.count(Severity::Info));
        out.push_str(&summary.to_compact());
        out.push('\n');
        out
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "QVISOR policy verification")?;
        writeln!(f, "==========================")?;
        for t in &self.tenants {
            writeln!(
                f,
                "  level {} group {}: {:<12} ({}) declared {} -> output {}, {}{}, \
                 collision bound <= {}",
                t.level,
                t.group,
                t.name,
                t.path,
                t.declared,
                t.output,
                if t.strictly_monotone {
                    "strictly monotone"
                } else if t.order_preserving {
                    "order-preserving"
                } else {
                    "NOT ORDER-PRESERVING"
                },
                if t.overflow_free { "" } else { ", SATURATES" },
                t.collision_bound
            )?;
        }
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        writeln!(
            f,
            "  result: {} error(s), {} warning(s), {} info(s)",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        )
    }
}

/// Statically verify a synthesized policy. Diagnostics blame the dotted
/// spec paths produced by `paths`.
pub fn verify(joint: &JointPolicy, paths: &SpecPaths) -> VerifyReport {
    let mut tenants = Vec::new();
    let mut diagnostics = Vec::new();

    let spec_index = |tenant: TenantId| -> usize {
        joint
            .specs
            .iter()
            .position(|s| s.id == tenant)
            .expect("layout members come from specs")
    };

    for (li, level) in joint.layout.iter().enumerate() {
        for (gi, group) in level.groups.iter().enumerate() {
            for member in &group.members {
                let idx = spec_index(member.tenant);
                let spec = &joint.specs[idx];
                let chain = joint.chain(member.tenant).expect("member has a chain");
                let path = paths.tenant(idx);
                let check =
                    check_chain(chain, spec.range, &path, &format!("tenant '{}'", spec.name));
                diagnostics.extend(check.diagnostics);
                tenants.push(TenantVerify {
                    tenant: member.tenant,
                    name: spec.name.clone(),
                    path,
                    level: li,
                    group: gi,
                    declared: spec.range,
                    output: check.analysis.output,
                    observed_min: check.observed_min,
                    observed_max: check.observed_max,
                    order_preserving: check.proved_order_preserving,
                    strictly_monotone: check.analysis.strictly_monotone,
                    overflow_free: !check.analysis.saturates,
                    collision_bound: check.analysis.collision_bound,
                });
            }
        }
    }

    for (idx, spec) in joint.specs.iter().enumerate() {
        if joint.chain(spec.id).is_none() {
            diagnostics.push(Diagnostic {
                code: DiagCode::Unscheduled,
                severity: Severity::Warning,
                span: paths.tenant(idx),
                message: format!(
                    "tenant '{}' has a spec but does not appear in the policy \
                     (its traffic will be treated as unknown)",
                    spec.name
                ),
                witness: None,
            });
        }
    }

    diagnostics.extend(isolation::check_layout(joint, paths, &tenants));

    // Most severe first; insertion order (= layout order) within a
    // severity, so output is deterministic.
    diagnostics.sort_by_key(|d| std::cmp::Reverse(d.severity));

    VerifyReport {
        tenants,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::spec::{SynthConfig, TenantSpec};
    use crate::synth::synthesize;

    fn specs() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(0, 100_000)),
            TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(0, 10_000)),
            TenantSpec::new(TenantId(3), "T3", "FQ", RankRange::new(0, 50)),
        ]
    }

    fn joint(policy: &str, config: SynthConfig) -> JointPolicy {
        synthesize(&specs(), &Policy::parse(policy).unwrap(), config).unwrap()
    }

    #[test]
    fn healthy_strict_policy_verifies_clean() {
        let report = verify(
            &joint("T1 >> T2 >> T3", SynthConfig::default()),
            &SpecPaths::config(),
        );
        assert!(!report.has_errors());
        assert_eq!(report.count(Severity::Warning), 0);
        // Quantization infos for the wide-range tenants.
        assert!(report.count(Severity::Info) >= 2);
        assert!(!report.gate_fails(true));
        assert!(report.tenants.iter().all(|t| t.order_preserving));
        assert!(report.tenants.iter().all(|t| t.overflow_free));
    }

    #[test]
    fn healthy_mixed_policy_verifies_clean() {
        let report = verify(
            &joint("T1 >> T2 + T3", SynthConfig::default()),
            &SpecPaths::config(),
        );
        assert!(!report.gate_fails(true));
    }

    #[test]
    fn paths_point_at_tenant_declarations() {
        let report = verify(&joint("T1", SynthConfig::default()), &SpecPaths::scenario());
        assert_eq!(report.tenants[0].path, "qvisor.tenants.0");
        let info = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::QuantCollision)
            .expect("quantization info");
        assert_eq!(info.span, "qvisor.tenants.0");
    }

    #[test]
    fn unscheduled_tenant_warned_at_its_path() {
        let report = verify(
            &joint("T1 >> T2", SynthConfig::default()),
            &SpecPaths::config(),
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::Unscheduled)
            .expect("unscheduled warning");
        assert_eq!(d.span, "tenants.2");
        assert!(report.gate_fails(true));
        assert!(!report.gate_fails(false));
    }

    #[test]
    fn saturating_first_rank_refutes_isolation_with_witnesses() {
        // Shifting every band to the top of the rank space pins both
        // tenants' outputs at Rank::MAX: overflow per tenant, and the
        // strict boundary collapses with a concrete cross-tenant witness.
        let config = SynthConfig {
            first_rank: Rank::MAX - 5,
            ..SynthConfig::default()
        };
        let report = verify(&joint("T1 >> T2", config), &SpecPaths::scenario());
        assert!(report.has_errors());
        let overflow = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::Overflow && d.severity == Severity::Error)
            .expect("overflow error");
        assert!(overflow.span.starts_with("qvisor.tenants."));
        let w = overflow.witness.expect("overflow witness");
        assert_eq!(w.output_a, w.output_b, "collapse at the ceiling");
        let strict = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::StrictOverlap && d.severity == Severity::Error)
            .expect("strict overlap error");
        assert_eq!(strict.span, "qvisor.policy");
        let w = strict.witness.expect("cross-tenant witness");
        assert!(
            w.output_a >= w.output_b,
            "higher-priority output must demonstrably not beat lower: {w}"
        );
        assert!(report.gate_fails(false));
    }

    #[test]
    fn jsonl_roundtrips_and_names_codes() {
        let report = verify(
            &joint("T1 >> T2", SynthConfig::default()),
            &SpecPaths::config(),
        );
        let jsonl = report.to_jsonl();
        for line in jsonl.lines() {
            let v = Value::parse(line).expect("every line parses");
            assert!(v.get("type").is_some());
        }
        assert!(jsonl.contains("\"type\":\"verify_summary\""));
        assert!(jsonl.contains("QV-UNSCHEDULED"));
        let text = report.render_text();
        assert!(text.contains("result: 0 error(s), 1 warning(s)"));
    }

    #[test]
    fn diagnostics_sorted_most_severe_first() {
        let config = SynthConfig {
            first_rank: Rank::MAX - 5,
            ..SynthConfig::default()
        };
        let report = verify(&joint("T1 >> T2", config), &SpecPaths::config());
        let severities: Vec<Severity> = report.diagnostics.iter().map(|d| d.severity).collect();
        let mut sorted = severities.clone();
        sorted.sort_by_key(|s| std::cmp::Reverse(*s));
        assert_eq!(severities, sorted);
    }
}
