//! Differential lockdown of the event core.
//!
//! The timing wheel ([`EventCore::Wheel`]) is a perf rewrite of a
//! determinism-critical structure, so it is only shippable if it is
//! *observationally identical* to the binary-heap oracle
//! ([`EventCore::Heap`]). Two layers prove that:
//!
//! 1. Randomized traces (seeded [`SimRng`], so failures reproduce) drive
//!    both cores through identical schedule/pop sequences — including
//!    same-timestamp bursts, every wheel level, the 2^48 overflow
//!    boundary, and `schedule_in` saturation near `Nanos::MAX` — and
//!    compare every observable (`pop`, `peek_time`, `len`, `now`) at
//!    every step.
//! 2. End-to-end netsim worlds run under both cores and must produce
//!    byte-identical reports and telemetry exports.

use qvisor::core::{SynthConfig, TenantSpec, UnknownTenantAction};
use qvisor::netsim::{QvisorSetup, SchedulerKind, SimConfig, Simulation};
use qvisor::ranking::{PFabric, RankRange};
use qvisor::sim::{EventCore, EventQueue, Nanos, SimRng, TenantId};
use qvisor::telemetry::Telemetry;
use qvisor::topology::{LeafSpine, LeafSpineConfig};
use qvisor::workloads::{EmpiricalCdf, PoissonFlowGen};

const CASES: u64 = 48;

/// Time spreads exercising dense level-0 traffic, every cascade level, and
/// the overflow heap (spreads beyond 2^48).
const SPREADS: [u64; 6] = [64, 50_000, 1 << 20, 1 << 34, 1 << 49, u64::MAX / 2];

/// One random trace applied to both cores in lockstep; every observable is
/// compared after every operation.
fn run_trace(case: u64, rng: &mut SimRng) {
    let spread = SPREADS[(case % SPREADS.len() as u64) as usize];
    let mut wheel: EventQueue<u64> = EventQueue::with_core(EventCore::Wheel);
    let mut heap: EventQueue<u64> = EventQueue::with_core(EventCore::Heap);
    let ops = 1 + rng.below(500);
    let mut id = 0u64;
    for op in 0..ops {
        match rng.below(10) {
            // Schedule one event at a random offset.
            0..=4 => {
                let delay = Nanos(rng.below(spread));
                wheel.schedule_in(delay, id);
                heap.schedule_in(delay, id);
                id += 1;
            }
            // Same-timestamp burst: FIFO tie-breaking must agree.
            5 => {
                let delay = Nanos(rng.below(spread));
                for _ in 0..=rng.below(8) {
                    wheel.schedule_in(delay, id);
                    heap.schedule_in(delay, id);
                    id += 1;
                }
            }
            // Near-MAX schedule_in: both cores must saturate identically.
            6 => {
                let delay = Nanos(u64::MAX - rng.below(1_000));
                wheel.schedule_in(delay, id);
                heap.schedule_in(delay, id);
                id += 1;
            }
            // Pop.
            _ => {
                assert_eq!(wheel.pop(), heap.pop(), "case {case} op {op}: pop diverged");
            }
        }
        assert_eq!(wheel.len(), heap.len(), "case {case} op {op}: len diverged");
        assert_eq!(
            wheel.peek_time(),
            heap.peek_time(),
            "case {case} op {op}: peek diverged"
        );
        assert_eq!(
            wheel.now(),
            heap.now(),
            "case {case} op {op}: clock diverged"
        );
    }
    // Drain to empty: the full total order must match.
    loop {
        let (w, h) = (wheel.pop(), heap.pop());
        assert_eq!(w, h, "case {case} drain: pop diverged");
        if w.is_none() {
            break;
        }
    }
}

#[test]
fn random_traces_pop_identically_on_both_cores() {
    let mut rng = SimRng::seed_from(0xD1FF);
    for case in 0..CASES {
        run_trace(case, &mut rng);
    }
}

/// Adversarial hand-built trace: monotone bursts that ride the clock right
/// at wheel window boundaries, where cascade bookkeeping is touchiest.
#[test]
fn window_boundary_bursts_pop_identically() {
    let mut wheel: EventQueue<u64> = EventQueue::with_core(EventCore::Wheel);
    let mut heap: EventQueue<u64> = EventQueue::with_core(EventCore::Heap);
    let mut id = 0;
    // Land events exactly on and around every level boundary 2^(8k)±1,
    // then interleave pops so the cursor crosses the boundaries mid-trace.
    for k in [8u32, 16, 24, 32, 40, 48, 56] {
        for fuzz in [-1i64, 0, 1, 255] {
            let at = Nanos(((1u64 << k) as i64 + fuzz) as u64);
            for _ in 0..3 {
                wheel.schedule(at, id);
                heap.schedule(at, id);
                id += 1;
            }
        }
        assert_eq!(wheel.pop(), heap.pop(), "boundary 2^{k}");
        assert_eq!(wheel.peek_time(), heap.peek_time(), "boundary 2^{k}");
    }
    loop {
        let (w, h) = (wheel.pop(), heap.pop());
        assert_eq!(w, h);
        if w.is_none() {
            break;
        }
    }
}

/// A determinism.rs-style world, parameterized by event core.
fn world(core: EventCore, qvisor: bool, telemetry: Telemetry) -> (String, String) {
    let fabric = LeafSpine::build(&LeafSpineConfig::small());
    let hosts = fabric.all_hosts();
    let cfg = SimConfig {
        seed: 11,
        random_loss: 0.01,
        horizon: Nanos::from_millis(40),
        scheduler: SchedulerKind::Pifo,
        sample_interval: Some(Nanos::from_millis(5)),
        qvisor: qvisor.then(|| QvisorSetup {
            specs: vec![
                TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(0, 10_000))
                    .with_levels(128),
            ],
            policy: "T1".into(),
            synth: SynthConfig::default(),
            unknown: UnknownTenantAction::BestEffort,
            scope: Default::default(),
            monitor: None,
        }),
        event_core: core,
        telemetry: telemetry.clone(),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(fabric.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(TenantId(1), Box::new(PFabric::default_datacenter()));
    let sizes = EmpiricalCdf::web_search().scaled(1, 20);
    let flows = PoissonFlowGen {
        tenant: TenantId(1),
        hosts: &hosts,
        sizes: &sizes,
        rate_flows_per_sec: 20_000.0,
    }
    .generate(120, &mut SimRng::seed_from(0xBEEF));
    for f in &flows {
        sim.add_generated(f);
    }
    let r = sim.run();
    (format!("{r:?}"), telemetry.export_jsonl())
}

/// The flagship end-to-end guarantee: swapping the event core changes
/// nothing observable about a full QVISOR simulation — the report debug
/// representation is byte-identical.
#[test]
fn netsim_reports_are_byte_identical_under_both_cores() {
    let (wheel_report, _) = world(EventCore::Wheel, true, Telemetry::disabled());
    let (heap_report, _) = world(EventCore::Heap, true, Telemetry::disabled());
    assert_eq!(
        wheel_report, heap_report,
        "event core changed the simulation"
    );
}

/// Telemetry exports (counters, histograms, and the sim-time event
/// journal) are also byte-identical across cores. Run without a QVISOR
/// deployment so no wall-clock synthesis timing enters the export.
///
/// `profile` lines are the one deliberate exception: the self-profiler
/// measures *wall-clock* time around hot paths, so its values differ
/// between any two runs. The comparison strips those lines but still
/// requires both cores to register the same profile sites.
#[test]
fn telemetry_exports_are_byte_identical_under_both_cores() {
    let (wheel_report, wheel_jsonl) = world(EventCore::Wheel, false, Telemetry::enabled());
    let (heap_report, heap_jsonl) = world(EventCore::Heap, false, Telemetry::enabled());
    assert_eq!(wheel_report, heap_report);
    assert!(
        wheel_jsonl.contains("net_sent_pkts"),
        "telemetry saw no traffic"
    );
    let split = |jsonl: &str| {
        let (profile, rest): (Vec<&str>, Vec<&str>) = jsonl
            .lines()
            .partition(|l| l.starts_with("{\"type\":\"profile\""));
        let sites: Vec<String> = profile
            .iter()
            .filter_map(|l| l.split("\"name\":\"").nth(1))
            .filter_map(|l| l.split('"').next())
            .map(str::to_string)
            .collect();
        (rest.join("\n"), sites)
    };
    let (wheel_rest, wheel_sites) = split(&wheel_jsonl);
    let (heap_rest, heap_sites) = split(&heap_jsonl);
    assert_eq!(
        wheel_rest, heap_rest,
        "event core changed the telemetry export"
    );
    assert_eq!(
        wheel_sites, heap_sites,
        "event core changed the profile sites"
    );
    assert!(
        wheel_sites.contains(&"event_dispatch".to_string()),
        "self-profiler missed event dispatch"
    );
}
