#![deny(missing_docs)]

//! # qvisor-sim — simulation kernel
//!
//! The substrate every other crate builds on: integer simulation time, a
//! deterministic event queue, strongly-typed identifiers, the shared
//! [`Packet`] model, a reproducible PRNG, and streaming statistics.
//!
//! This crate is deliberately free of any networking or scheduling logic so
//! it can be reused by the scheduler models, the hypervisor, and the
//! packet-level network simulator without cycles.

pub mod events;
pub mod id;
pub mod json;
pub mod packet;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
mod wheel;

pub use events::{EventCore, EventQueue};
pub use id::{FlowId, NodeId, Rank, TenantId};
pub use packet::{Packet, PacketArena, PacketKind, PacketSlot};
pub use rng::{stable_hash, SimRng};
pub use shard::{Mailbox, MailboxGrid, ShardClock};
pub use stats::{jain_fairness, Ewma, Log2Histogram, OnlineStats, PercentileCollector};
pub use time::{gbps, mbps, transmission_time, Nanos};
