//! Zero-sized stand-ins compiled when the `enabled` feature is off.
//!
//! Mirrors the API of the live module exactly so call sites never need
//! `cfg` guards; every recording method is an empty inlined body the
//! optimiser removes.

use qvisor_sim::json::Value;
use qvisor_sim::Nanos;

/// No-op counter (telemetry compiled out).
#[derive(Clone, Copy, Default, Debug)]
pub struct Counter;

impl Counter {
    /// No-op.
    #[inline(always)]
    pub fn inc(&self) {}

    /// No-op.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Always 0.
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// No-op gauge (telemetry compiled out).
#[derive(Clone, Copy, Default, Debug)]
pub struct Gauge;

impl Gauge {
    /// No-op.
    #[inline(always)]
    pub fn set(&self, _v: i64) {}

    /// No-op.
    #[inline(always)]
    pub fn add(&self, _delta: i64) {}

    /// Always 0.
    #[inline(always)]
    pub fn get(&self) -> i64 {
        0
    }
}

/// No-op histogram (telemetry compiled out).
#[derive(Clone, Copy, Default, Debug)]
pub struct Histogram;

impl Histogram {
    /// No-op.
    #[inline(always)]
    pub fn record(&self, _v: u64) {}

    /// Always 0.
    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }

    /// Always `None`.
    #[inline(always)]
    pub fn quantile(&self, _p: f64) -> Option<u64> {
        None
    }
}

/// No-op snapshot (telemetry compiled out).
#[derive(Clone, Copy, Default, Debug)]
pub struct TelemetrySnapshot;

/// No-op telemetry entry point (the `enabled` feature is off).
#[derive(Clone, Copy, Default)]
pub struct Telemetry;

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Telemetry(compiled out)")
    }
}

impl Telemetry {
    /// Still a no-op handle; the feature decides, not the constructor.
    pub fn enabled() -> Telemetry {
        Telemetry
    }

    /// A no-op handle.
    pub fn with_journal_capacity(_capacity: usize) -> Telemetry {
        Telemetry
    }

    /// A no-op handle.
    pub fn disabled() -> Telemetry {
        Telemetry
    }

    /// Always false.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        false
    }

    /// Always `None`.
    #[inline(always)]
    pub fn journal_capacity(&self) -> Option<usize> {
        None
    }

    /// A no-op counter.
    #[inline(always)]
    pub fn counter(&self, _name: &str, _labels: &[(&str, &str)]) -> Counter {
        Counter
    }

    /// A no-op gauge.
    #[inline(always)]
    pub fn gauge(&self, _name: &str, _labels: &[(&str, &str)]) -> Gauge {
        Gauge
    }

    /// A no-op histogram.
    #[inline(always)]
    pub fn histogram(&self, _name: &str, _labels: &[(&str, &str)]) -> Histogram {
        Histogram
    }

    /// A no-op profiler.
    #[inline(always)]
    pub fn profiler(&self, _name: &str) -> crate::profile::Profiler {
        crate::profile::Profiler
    }

    /// No-op.
    #[inline(always)]
    pub fn event(&self, _t: Nanos, _kind: &str, _fields: &[(&str, Value)]) {}

    /// An empty snapshot.
    #[inline(always)]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot
    }

    /// No-op.
    #[inline(always)]
    pub fn absorb(&self, _snap: TelemetrySnapshot) {}

    /// Always empty.
    pub fn export_jsonl(&self) -> String {
        String::new()
    }

    /// Notes that telemetry is compiled out.
    pub fn summary(&self) -> String {
        "telemetry compiled out".to_string()
    }
}
