//! Measurement wrapper: counts drops, throughput, and *rank inversions* —
//! the standard fidelity metric for PIFO approximations (a dequeue is an
//! inversion when some queued packet has a strictly lower rank).

use crate::queue::{Enqueue, PacketQueue};
use qvisor_sim::{Nanos, Packet, Rank};
use std::collections::BTreeMap;

/// Counters exported by [`AuditedQueue`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Packets offered.
    pub offered: u64,
    /// Packets admitted.
    pub admitted: u64,
    /// Packets lost (rejected arrivals + evicted residents).
    pub dropped: u64,
    /// Packets dequeued.
    pub dequeued: u64,
    /// Dequeues that were rank inversions.
    pub inversions: u64,
}

impl QueueStats {
    /// Fraction of dequeues that were inversions (0 if none yet).
    pub fn inversion_rate(&self) -> f64 {
        if self.dequeued == 0 {
            0.0
        } else {
            self.inversions as f64 / self.dequeued as f64
        }
    }

    /// Fraction of offered packets that were lost.
    pub fn loss_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }
}

/// Wraps any [`PacketQueue`] and audits its behaviour.
///
/// Keeps a rank multiset mirroring the queue contents, so inversion
/// detection is O(log n) per operation and independent of the inner model.
pub struct AuditedQueue<Q: PacketQueue> {
    inner: Q,
    /// Multiset of resident ranks: rank -> count.
    ranks: BTreeMap<Rank, u64>,
    stats: QueueStats,
}

impl<Q: PacketQueue> AuditedQueue<Q> {
    /// Wrap `inner`.
    pub fn new(inner: Q) -> AuditedQueue<Q> {
        AuditedQueue {
            inner,
            ranks: BTreeMap::new(),
            stats: QueueStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// The wrapped queue.
    pub fn inner(&self) -> &Q {
        &self.inner
    }

    fn note_resident(&mut self, rank: Rank) {
        *self.ranks.entry(rank).or_insert(0) += 1;
    }

    fn forget_resident(&mut self, rank: Rank) {
        match self.ranks.get_mut(&rank) {
            Some(1) => {
                self.ranks.remove(&rank);
            }
            Some(n) => *n -= 1,
            None => debug_assert!(false, "rank {rank} not resident"),
        }
    }
}

impl<Q: PacketQueue> PacketQueue for AuditedQueue<Q> {
    fn enqueue(&mut self, p: Packet, now: Nanos) -> Enqueue {
        self.stats.offered += 1;
        let rank = p.txf_rank;
        let outcome = self.inner.enqueue(p, now);
        match &outcome {
            Enqueue::Accepted => {
                self.stats.admitted += 1;
                self.note_resident(rank);
            }
            Enqueue::AcceptedDropped(dropped) => {
                self.stats.admitted += 1;
                self.note_resident(rank);
                self.stats.dropped += dropped.len() as u64;
                // Evicted packets were residents; drop them from the mirror.
                for d in dropped {
                    self.forget_resident(d.txf_rank);
                }
            }
            Enqueue::Rejected(_) => {
                self.stats.dropped += 1;
            }
        }
        outcome
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        let p = self.inner.dequeue(now)?;
        self.forget_resident(p.txf_rank);
        self.stats.dequeued += 1;
        if let Some((&best, _)) = self.ranks.first_key_value() {
            if best < p.txf_rank {
                self.stats.inversions += 1;
            }
        }
        Some(p)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn bytes(&self) -> u64 {
        self.inner.bytes()
    }

    fn head_rank(&self) -> Option<Rank> {
        self.inner.head_rank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::FifoQueue;
    use crate::pifo::PifoQueue;
    use crate::queue::Capacity;
    use qvisor_sim::{FlowId, NodeId, TenantId};

    fn pkt(seq: u64, rank: Rank) -> Packet {
        let mut p = Packet::data(
            FlowId(1),
            TenantId(0),
            seq,
            100,
            NodeId(0),
            NodeId(1),
            rank,
            Nanos::ZERO,
        );
        p.txf_rank = rank;
        p
    }

    #[test]
    fn pifo_has_zero_inversions() {
        let mut q = AuditedQueue::new(PifoQueue::new(Capacity::UNBOUNDED));
        for (i, r) in [5u64, 1, 9, 3, 7].into_iter().enumerate() {
            q.enqueue(pkt(i as u64, r), Nanos::ZERO);
        }
        while q.dequeue(Nanos::ZERO).is_some() {}
        assert_eq!(q.stats().inversions, 0);
        assert_eq!(q.stats().dequeued, 5);
    }

    #[test]
    fn fifo_inversions_are_counted() {
        let mut q = AuditedQueue::new(FifoQueue::new(Capacity::UNBOUNDED));
        // rank 9 dequeues first while rank 1 waits -> inversion.
        q.enqueue(pkt(0, 9), Nanos::ZERO);
        q.enqueue(pkt(1, 1), Nanos::ZERO);
        q.dequeue(Nanos::ZERO);
        assert_eq!(q.stats().inversions, 1);
        q.dequeue(Nanos::ZERO);
        assert_eq!(q.stats().inversions, 1);
        assert!((q.stats().inversion_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn drop_accounting_covers_rejects_and_evictions() {
        let mut q = AuditedQueue::new(PifoQueue::new(Capacity::bytes(200)));
        q.enqueue(pkt(0, 5), Nanos::ZERO);
        q.enqueue(pkt(1, 6), Nanos::ZERO);
        // Eviction: rank 1 pushes out rank 6.
        q.enqueue(pkt(2, 1), Nanos::ZERO);
        // Rejection: rank 9 bounces.
        q.enqueue(pkt(3, 9), Nanos::ZERO);
        let s = q.stats();
        assert_eq!(s.offered, 4);
        assert_eq!(s.admitted, 3);
        assert_eq!(s.dropped, 2);
        assert!((s.loss_rate() - 0.5).abs() < 1e-12);
        // Mirror stays consistent: drain without panic.
        while q.dequeue(Nanos::ZERO).is_some() {}
        assert_eq!(q.stats().dequeued, 2);
    }

    #[test]
    fn duplicate_ranks_tracked_correctly() {
        let mut q = AuditedQueue::new(FifoQueue::new(Capacity::UNBOUNDED));
        q.enqueue(pkt(0, 4), Nanos::ZERO);
        q.enqueue(pkt(1, 4), Nanos::ZERO);
        q.dequeue(Nanos::ZERO); // equal rank remains: not an inversion
        assert_eq!(q.stats().inversions, 0);
    }
}
