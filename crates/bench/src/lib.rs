#![deny(missing_docs)]

//! # qvisor-bench — experiment harness
//!
//! Shared scenario code regenerating the paper's evaluation (§4):
//! [`fig4`] builds and runs one point of Fig. 4 (any scheme × load), and
//! the binaries in `src/bin/` sweep the full figures and ablations.
//! Microbenches live in `benches/`, on the dependency-free [`harness`].

pub mod fig4;
pub mod harness;
pub mod snapshot;

pub use fig4::{
    run_point, run_point_instrumented, run_point_telemetry, Fig4Config, Fig4Point, Scheme,
    Workload, EDF, PFABRIC,
};
